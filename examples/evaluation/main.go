// Evaluation: a miniature version of the paper's Section VI — compare
// PQS-DA's diversification stage against the HT and DQS baselines on
// Diversity (Eq. 32–33) and ODP Relevance (Eq. 34) over sampled test
// queries, using the synthetic world's ground-truth oracles.
//
//	go run ./examples/evaluation
package main

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/odp"
	"repro/internal/querylog"
	"repro/internal/synth"
)

func main() {
	world := synth.Generate(synth.Config{
		Seed: 13, NumUsers: 25, SessionsPerUser: 30, NumFacets: 6,
		ClickProb: 0.4, NoiseClickProb: 0.15, URLsPerFacet: 50,
	})
	clean, stats := querylog.Clean(world.Log, querylog.CleanerConfig{})
	fmt.Printf("log: %d entries after cleaning (%d kept / %d short / %d long dropped)\n\n",
		clean.Len(), stats.Kept, stats.DroppedShort, stats.DroppedLong)

	graph := clickgraph.Build(clean, bipartite.CFIQF)
	engine, err := core.NewEngine(clean, core.Config{
		Weighting:           bipartite.CFIQF,
		Compact:             bipartite.CompactConfig{Budget: 80},
		SkipPersonalization: true,
	})
	if err != nil {
		panic(err)
	}
	ht := baselines.NewHT(graph, baselines.WalkConfig{})
	dqs := baselines.NewDQS(graph, baselines.WalkConfig{})

	// Oracles from the world's ground truth.
	pages := func(q string) map[string]float64 {
		id, ok := graph.QueryID(q)
		if !ok {
			return nil
		}
		return graph.ClickedURLs(id)
	}
	cat := func(q string) odp.Category { return world.QueryCategory(querylog.NormalizeQuery(q)) }

	// Frequent connected queries as test inputs.
	var tests []string
	freq := clean.QueryFrequency()
	tr := graph.QueryTransition()
	for q, f := range freq {
		if f < 3 {
			continue
		}
		if id, ok := graph.QueryID(q); ok && tr.RowNNZ(id) > 2 {
			tests = append(tests, q)
		}
		if len(tests) == 15 {
			break
		}
	}

	const k = 10
	methods := []struct {
		name    string
		suggest func(q string) []string
	}{
		{"PQS-DA", func(q string) []string {
			res, err := engine.SuggestDiversified(q, nil, time.Now(), k)
			if err != nil {
				return nil
			}
			return res.Diversified
		}},
		{"HT", func(q string) []string { return names(ht.Suggest(q, k)) }},
		{"DQS", func(q string) []string { return names(dqs.Suggest(q, k)) }},
	}

	fmt.Printf("%-8s %12s %12s %12s\n", "method", "diversity@10", "relevance@1", "relevance@10")
	for _, m := range methods {
		accD := metrics.NewAccumulator(k)
		accR := metrics.NewAccumulator(k)
		for _, q := range tests {
			list := m.suggest(q)
			if len(list) == 0 {
				continue
			}
			accD.Add(metrics.MeanDiversityAtK(list, pages, world.PageSim, k))
			accR.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), list, cat, k))
		}
		d, r := accD.Mean(), accR.Mean()
		fmt.Printf("%-8s %12.3f %12.3f %12.3f\n", m.name, d[k-1], r[0], r[k-1])
	}
	fmt.Println("\nexpected shape: PQS-DA pairs DQS-class diversity with near-HT relevance;")
	fmt.Println("HT is relevant but barely diverse; DQS is diverse but drifts off-topic.")
}

func names(s []baselines.Suggestion) []string {
	out := make([]string, len(s))
	for i, sg := range s {
		out[i] = sg.Query
	}
	return out
}
