// Personalization: a walkthrough of the offline User Profiling Model.
// It trains the UPM on a synthetic log, inspects the learned artifacts
// (topic profiles θ_d, temporal Beta profiles τ_k, learned
// hyperparameters α) and shows how preference scores personalize a
// candidate ranking before/after Borda aggregation.
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"sort"

	"repro"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

func main() {
	world := pqsda.SyntheticLog(pqsda.SyntheticConfig{
		Seed: 9, NumUsers: 20, SessionsPerUser: 30, NumFacets: 5,
	})
	sessions := pqsda.Sessionize(world.Log)
	corpus := topicmodel.BuildCorpus(sessions, world.NormalizeTime)
	fmt.Printf("corpus: %d users, %d word types, %d URLs, %d word tokens\n\n",
		len(corpus.Docs), corpus.V(), corpus.U(), corpus.TotalWords())

	upm := topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{
		K: 5, Iterations: 80, Seed: 9, HyperRounds: 2, HyperIters: 10,
	})

	// 1. Learned document-mixture hyperparameters (Eq. 25).
	fmt.Printf("learned alpha: %v\n\n", roundAll(upm.Alpha()))

	// 2. Temporal profiles (Eqs. 28–29): where in the log's time span
	// each topic concentrates.
	fmt.Println("topic temporal profiles Beta(a,b) and their means:")
	for k := 0; k < upm.K(); k++ {
		a, b := upm.Tau(k)
		fmt.Printf("  topic %d: Beta(%.2f, %.2f)  mean=%.2f\n", k, a, b, a/(a+b))
	}

	// 3. A user profile (Eq. 30) and its top words per dominant topic.
	user := world.UserIDs()[0]
	d, _ := upm.DocOf(user)
	theta := upm.Theta(d)
	fmt.Printf("\nuser %s profile θ: %v\n", user, roundAll(theta))
	top := argmax(theta)
	fmt.Printf("dominant topic %d; the user's own top words there:\n", top)
	type ws struct {
		w string
		p float64
	}
	var words []ws
	for w := 0; w < corpus.V(); w++ {
		words = append(words, ws{corpus.Words.Name(w), upm.WordProb(d, top, w)})
	}
	sort.Slice(words, func(i, j int) bool { return words[i].p > words[j].p })
	for _, e := range words[:8] {
		fmt.Printf("  %-14s %.4f\n", e.w, e.p)
	}

	// 4. Preference scores (Eq. 31) re-rank a candidate list.
	store := profile.NewStore(upm, corpus)
	candidates := sampleQueries(world, 8)
	fmt.Printf("\ncandidates with preference scores for %s:\n", user)
	for _, q := range candidates {
		fmt.Printf("  %-28s %.4f (facet %d)\n", q, store.PreferenceScore(user, q, profile.Posterior), world.QueryFacet(q))
	}
	reranked := store.RankByPreference(user, candidates, profile.Posterior)
	final := profile.BordaAggregate(candidates, reranked)
	fmt.Println("\noriginal   :", candidates)
	fmt.Println("preference :", reranked)
	fmt.Println("borda final:", final)
}

// sampleQueries picks frequent queries from distinct facets.
func sampleQueries(w *pqsda.World, n int) []string {
	freq := make(map[string]int)
	for _, e := range w.Log.Entries {
		freq[querylog.NormalizeQuery(e.Query)]++
	}
	type qf struct {
		q string
		f int
	}
	var all []qf
	for q, f := range freq {
		all = append(all, qf{q, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].q < all[j].q
	})
	seenFacet := make(map[int]int)
	var out []string
	for _, e := range all {
		if len(out) == n {
			break
		}
		f := w.QueryFacet(e.q)
		if seenFacet[f] >= 2 { // at most two per facet
			continue
		}
		seenFacet[f]++
		out = append(out, e.q)
	}
	return out
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func roundAll(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
