// Quickstart: generate a small synthetic query log, build a PQS-DA
// engine, and get personalized diversified suggestions for the most
// frequent query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
)

func main() {
	// A synthetic world stands in for a production query log; it ships
	// with ground truth (facets, user preferences) we can print.
	world := pqsda.SyntheticLog(pqsda.SyntheticConfig{
		Seed: 42, NumUsers: 30, SessionsPerUser: 20, NumFacets: 6,
	})
	fmt.Printf("log: %d entries from %d users\n", world.Log.Len(), len(world.Log.Users()))

	engine, err := pqsda.NewEngine(world.Log, pqsda.Config{
		CompactBudget:      120,
		Topics:             6,
		TrainingIterations: 40,
		Seed:               42,
	})
	if err != nil {
		panic(err)
	}

	// Most frequent query = a good ambiguous head candidate.
	input, best := "", 0
	for q, n := range world.Log.QueryFrequency() {
		if n > best {
			input, best = q, n
		}
	}
	user := world.UserIDs()[0]
	fmt.Printf("\ninput query: %q  (user %s)\n", input, user)

	res, err := engine.Do(context.Background(), pqsda.SuggestRequest{
		User: user, Query: input, K: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("\ndiversified (before personalization):")
	for i, s := range res.Diversified {
		fmt.Printf("  %2d. %-30s facet=%d\n", i+1, s, world.QueryFacet(s))
	}
	fmt.Println("\npersonalized (final ranking):")
	for i, s := range res.Suggestions {
		fmt.Printf("  %2d. %-30s facet=%d\n", i+1, s, world.QueryFacet(s))
	}
	fmt.Printf("\nstages: compact %v (%d queries), Eq.15 solve %v (%d iters), hitting time %v, personalize %v\n",
		res.CompactTime.Round(time.Microsecond), res.CompactSize,
		res.SolveTime.Round(time.Microsecond), res.SolveIterations,
		res.HittingTime.Round(time.Microsecond), res.PersonalizeTime.Round(time.Microsecond))
}
