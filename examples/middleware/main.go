// Middleware: the paper's HPR study apparatus (Section VI-C) as a
// running system. A suggestion server records each "expert's" searches,
// folds new users into the trained profiles on demand, serves
// personalized suggestions over HTTP, and collects explicit 6-point
// relevance ratings — then reports the mean HPR, exactly what Fig. 6
// averages.
//
//	go run ./examples/middleware
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/topicmodel"
)

func main() {
	// Train the engine on a synthetic historical log.
	world := pqsda.SyntheticLog(pqsda.SyntheticConfig{
		Seed: 21, NumUsers: 20, SessionsPerUser: 25, NumFacets: 5,
	})
	engine, err := core.NewEngine(world.Log, core.Config{
		UPM: topicmodel.UPMConfig{K: 5, Iterations: 40, Seed: 21, HyperRounds: 1, HyperIters: 8},
	})
	if err != nil {
		panic(err)
	}

	// Stand the middleware up (an in-process listener for the demo;
	// `pqsda -serve :8080` runs the same handler for real).
	srv := server.New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("middleware listening at", ts.URL)

	// A new "expert" shows up and searches for a while: the middleware
	// records every query.
	expert := "expert-007"
	history := world.Log.ByUser(world.UserIDs()[3]) // borrow realistic behaviour
	for _, e := range history[:10] {
		post(ts.URL+"/v1/log", server.LogRequest{
			User: expert, Query: e.Query, ClickedURL: e.ClickedURL,
			At: e.Time.Format(time.RFC3339),
		})
	}
	fmt.Printf("recorded %d searches for %s\n", 10, expert)

	// Fold the expert into the profiles — no retraining.
	post(ts.URL+"/v1/learn", server.LearnRequest{User: expert})
	fmt.Println("profile learned via /v1/learn")

	// The expert asks for suggestions.
	input := history[0].Query
	var sugg server.SuggestResponse
	postInto(ts.URL+"/v1/suggest", server.SuggestRequest{
		User: expert, Query: input, K: 5,
	}, &sugg)
	fmt.Printf("suggestions for %q: %d (served in %.1fms)\n",
		input, len(sugg.Suggestions), sugg.ElapsedMS)

	// The expert rates each suggestion on the 6-point scale. The demo
	// rates by ground truth facet agreement — a perfectly honest oracle
	// expert.
	intended, _ := world.FacetOf(history[0])
	for _, s := range sugg.Suggestions {
		rating := 0.2
		if world.QueryFacet(s) == intended {
			rating = 1.0
		}
		post(ts.URL+"/v1/feedback", server.Feedback{
			User: expert, Query: input, Suggestion: s, Rating: rating,
		})
	}
	fmt.Printf("collected %d ratings, mean HPR = %.2f\n",
		len(srv.FeedbackLog()), srv.MeanHPR())
}

func post(url string, body any) {
	postInto(url, body, nil)
}

func postInto(url string, body any, into any) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			panic(err)
		}
	}
}
