// Ambiguous: the paper's motivating "sun" scenario, hand-built. Three
// groups of users share the ambiguous query "sun" but mean different
// things — Sun Microsystems, the star, or the UK newspaper. PQS-DA
// diversifies the suggestions to cover all three facets and then
// personalizes the ranking per user.
//
//	go run ./examples/ambiguous
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// persona describes one interest group: its sessions are issued by
// several users so the facet has real mass in the log.
type persona struct {
	name     string
	users    []string
	sessions [][]step
}

type step struct {
	query string
	click string
}

func main() {
	personas := []persona{
		{
			name:  "developer",
			users: []string{"dev1", "dev2", "dev3", "dev4"},
			sessions: [][]step{
				{{"sun", "java.sun.com"}, {"sun java", "java.sun.com"}, {"jvm download", "www.java.com"}},
				{{"sun java", "java.sun.com"}, {"java tutorial", "www.java.com"}},
				{{"sun oracle", "www.oracle.com"}, {"oracle solaris", "www.oracle.com/solaris"}},
				{{"sun", "www.oracle.com"}, {"sun solaris", "www.oracle.com/solaris"}},
				{{"java garbage collection", "www.java.com/gc"}, {"jvm tuning", "www.java.com/gc"}},
			},
		},
		{
			name:  "astronomer",
			users: []string{"astro1", "astro2", "astro3", "astro4"},
			sessions: [][]step{
				{{"sun", "nasa.gov/sun"}, {"sun solar system", "nasa.gov/sun"}, {"solar flares", "nasa.gov/flares"}},
				{{"sun solar system", "nasa.gov/sun"}, {"planets orbit", "nasa.gov/planets"}},
				{{"solar energy", "energy.gov/solar"}, {"solar panel efficiency", "energy.gov/panels"}},
				{{"sun", "nasa.gov/sun"}, {"sun temperature core", "nasa.gov/sun"}},
				{{"solar flares", "nasa.gov/flares"}, {"aurora forecast", "nasa.gov/aurora"}},
			},
		},
		{
			name:  "news reader",
			users: []string{"news1", "news2", "news3", "news4"},
			sessions: [][]step{
				{{"sun", "thesun.co.uk"}, {"sun daily uk", "thesun.co.uk"}, {"uk headlines today", "thesun.co.uk/news"}},
				{{"sun daily uk", "thesun.co.uk"}, {"premier league gossip", "thesun.co.uk/sport"}},
				{{"sun", "thesun.co.uk"}, {"sun newspaper sport", "thesun.co.uk/sport"}},
				{{"uk headlines today", "thesun.co.uk/news"}, {"celebrity news uk", "thesun.co.uk/tv"}},
			},
		},
	}

	log := buildLog(personas)
	fmt.Printf("hand-built log: %d entries, %d users\n\n", log.Len(), len(log.Users()))

	engine, err := pqsda.NewEngine(log, pqsda.Config{
		CompactBudget:      60,
		Topics:             6, // a few spare topics help Gibbs separate the 3 facets
		TrainingIterations: 200,
		Seed:               7,
	})
	if err != nil {
		panic(err)
	}

	// Diversification alone: one list covering all facets of "sun".
	res, err := engine.SuggestDiversified("sun", nil, time.Now(), 6)
	if err != nil {
		panic(err)
	}
	fmt.Println(`diversified suggestions for "sun" (no user):`)
	for i, s := range res.Diversified {
		fmt.Printf("  %d. %s\n", i+1, s)
	}

	// Personalization: each persona sees its own facet first.
	for _, p := range personas {
		r, err := engine.Do(context.Background(), pqsda.SuggestRequest{
			User: p.users[0], Query: "sun", K: 6,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\npersonalized for %s (%s):\n", p.users[0], p.name)
		for i, s := range r.Suggestions {
			fmt.Printf("  %d. %s\n", i+1, s)
		}
	}
}

// buildLog converts the persona scripts into a timestamped log: every
// user of a persona replays its sessions at staggered times.
func buildLog(personas []persona) *pqsda.Log {
	log := &pqsda.Log{}
	base := time.Date(2012, 12, 1, 9, 0, 0, 0, time.UTC)
	for pi, p := range personas {
		for ui, user := range p.users {
			clock := base.Add(time.Duration(pi*24+ui*6) * time.Hour)
			for _, sess := range p.sessions {
				for _, st := range sess {
					log.Append(pqsda.Entry{
						UserID: user, Query: st.query, ClickedURL: st.click, Time: clock,
					})
					clock = clock.Add(45 * time.Second)
				}
				clock = clock.Add(3 * time.Hour) // session gap
			}
		}
	}
	return log
}
