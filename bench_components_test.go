package pqsda

// Micro-benchmarks for the deployment-facing features: online fold-in,
// engine persistence, the HTTP middleware, and the personalization
// primitives.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/topicmodel"
)

// BenchmarkFoldIn measures folding one new user (25 sessions) into a
// trained UPM without retraining.
func BenchmarkFoldIn(b *testing.B) {
	e, _ := componentFixture(b)
	donor := e.Log().Users()[0]
	entries := e.Log().ByUser(donor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.LearnUser("bench-user", entries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSave measures engine serialization.
func BenchmarkEngineSave(b *testing.B) {
	e, _ := componentFixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := e.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

// BenchmarkEngineLoad measures engine deserialization.
func BenchmarkEngineLoad(b *testing.B) {
	e, _ := componentFixture(b)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LoadEngine(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSuggest measures one HTTP suggestion round trip
// through the middleware.
func BenchmarkServerSuggest(b *testing.B) {
	e, qs := componentFixture(b)
	srv := server.New(e, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	users := e.Log().Users()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(server.SuggestRequest{
			User: users[i%len(users)], Query: qs[i%len(qs)], K: 10,
		})
		resp, err := http.Post(ts.URL+"/api/suggest", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkPreferenceScore measures one Eq. 31 evaluation.
func BenchmarkPreferenceScore(b *testing.B) {
	e, qs := componentFixture(b)
	user := e.Log().Users()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Profiles().PreferenceScore(user, qs[i%len(qs)], profile.Posterior)
	}
}

// BenchmarkBordaAggregate measures the rank-aggregation step on a
// 10-item list.
func BenchmarkBordaAggregate(b *testing.B) {
	_, qs := componentFixture(b)
	n := 10
	if n > len(qs) {
		n = len(qs)
	}
	r1 := qs[:n]
	r2 := make([]string, n)
	copy(r2, r1)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		r2[i], r2[j] = r2[j], r2[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.BordaAggregate(r1, r2)
	}
}

// BenchmarkUPMFoldInDirect measures the raw fold-in (no engine
// plumbing) at 20 Gibbs sweeps.
func BenchmarkUPMFoldInDirect(b *testing.B) {
	e, _ := componentFixture(b)
	upm := e.Profiles().UPM()
	// Reuse the first trained doc's sessions via the corpus.
	sessions := topicmodel.SessionsForFoldIn(e.Corpus(),
		e.Sessions()[:min(10, len(e.Sessions()))], nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		upm.FoldIn("bench-direct", sessions, 20, int64(i))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
