package pqsda

// A "live deployment" integration test: train on history, serve over
// the HTTP middleware, replay future traffic through the API, fold new
// users in, refresh, and verify the system keeps improving its view of
// the world. This exercises the full production loop end to end:
//
//	loggen → clean → engine → serve → record → learn → refresh → suggest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/querylog"
	"repro/internal/server"
	"repro/internal/topicmodel"
)

func TestLiveDeploymentLoop(t *testing.T) {
	world := SyntheticLog(SyntheticConfig{
		Seed: 99, NumUsers: 14, SessionsPerUser: 16, NumFacets: 5,
	})

	// Split the world's users: most are "history", the last two are
	// future visitors the deployed system has never seen.
	users := world.UserIDs()
	visitors := users[len(users)-2:]
	visitorSet := map[string]bool{visitors[0]: true, visitors[1]: true}
	history := &Log{}
	var future []Entry
	for _, e := range world.Log.Entries {
		if visitorSet[e.UserID] {
			future = append(future, e)
		} else {
			history.Append(e)
		}
	}

	engine, err := core.NewEngine(history, core.Config{
		UPM: topicmodel.UPMConfig{K: 5, Iterations: 25, Seed: 9, HyperRounds: 1, HyperIters: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any, into any) int {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	// Phase 1: visitors search; the middleware records everything.
	for _, e := range future {
		if code := post("/api/log", server.LogRequest{
			User: e.UserID, Query: e.Query, ClickedURL: e.ClickedURL,
			At: e.Time.Format(time.RFC3339),
		}, nil); code != 200 {
			t.Fatalf("log: status %d", code)
		}
	}

	// Phase 2: fold the visitors into the profiles via the API.
	for _, v := range visitors {
		if code := post("/api/learn", server.LearnRequest{User: v}, nil); code != 200 {
			t.Fatalf("learn %s: status %d", v, code)
		}
		// /api/learn hot-swaps a cloned engine in; read the serving one.
		if srv.Engine().Profiles().Theta(v) == nil {
			t.Fatalf("visitor %s unprofiled after /api/learn", v)
		}
	}

	// Phase 3: refresh the graphs so the visitors' queries are servable.
	var refreshed map[string]any
	if code := post("/api/refresh", server.RefreshRequest{Mode: "graphs"}, &refreshed); code != 200 {
		t.Fatalf("refresh: status %d (%v)", code, refreshed)
	}
	if int(refreshed["ingested"].(float64)) != len(future) {
		t.Fatalf("refresh ingested %v entries, want %d", refreshed["ingested"], len(future))
	}

	// Phase 4: a visitor asks for suggestions on one of their own
	// queries; the system serves personalized results.
	visitorQuery := ""
	for _, e := range future {
		if e.UserID == visitors[0] && len(querylog.Tokenize(e.Query)) > 0 {
			visitorQuery = e.Query
			break
		}
	}
	var out server.SuggestResponse
	if code := post("/api/suggest", server.SuggestRequest{
		User: visitors[0], Query: visitorQuery, K: 8,
	}, &out); code != 200 {
		t.Fatalf("suggest: status %d", code)
	}
	if len(out.Suggestions) == 0 {
		t.Fatalf("no suggestions for visitor query %q after full loop", visitorQuery)
	}

	// Phase 5: feedback closes the loop.
	for i, s := range out.Suggestions {
		rating := 0.2
		if i == 0 {
			rating = 1.0
		}
		if code := post("/api/feedback", server.Feedback{
			User: visitors[0], Query: visitorQuery, Suggestion: s, Rating: rating,
		}, nil); code != 200 {
			t.Fatalf("feedback: status %d", code)
		}
	}
	if srv.MeanHPR() <= 0 {
		t.Fatal("no HPR collected")
	}
	if got := len(srv.FeedbackLog()); got != len(out.Suggestions) {
		t.Fatalf("feedback count %d, want %d", got, len(out.Suggestions))
	}
}
