// Package pqsda is the public facade of this reproduction of
// "Personalized Query Suggestion With Diversity Awareness" (Jiang,
// Leung, Vosecky, Ng — ICDE 2014).
//
// PQS-DA answers an ambiguous search query ("sun") with a suggestion
// list that is DIVERSIFIED — covering the query's facets (Sun
// Microsystems, the star, the newspaper) — and PERSONALIZED — ranked so
// the facets matching the user's long-term interests come first.
//
// # Quick start
//
//	log, _ := pqsda.ReadLogFile("queries.tsv") // or pqsda.SyntheticLog(...)
//	engine, _ := pqsda.NewEngine(log, pqsda.Config{})
//	res, _ := engine.Do(ctx, pqsda.SuggestRequest{User: "u0001", Query: "sun", K: 10})
//	fmt.Println(res.Suggestions)
//
// Engine.Do is the request API: a SuggestRequest carries the user, the
// query, optional session context, and knobs like K, NoCache and
// SkipPersonalization. Engines built for serving can attach a
// snapshot-keyed suggestion cache with Engine.EnableCache; cached
// entries are invalidated automatically when the engine is rebuilt
// (see internal/suggestcache).
//
// The heavy lifting lives in the internal packages (see DESIGN.md for
// the architecture): internal/bipartite builds the multi-bipartite
// query-log representation, internal/regularize and
// internal/hittingtime implement the two-phase diversification,
// internal/topicmodel trains the User Profiling Model, and
// internal/profile personalizes the ranking.
package pqsda

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/admission"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/querylog"
	"repro/internal/server"
	"repro/internal/sparse"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

// Entry is one query-log record: who searched what, what they clicked
// (empty for no click), and when.
type Entry = querylog.Entry

// Log is an ordered collection of entries.
type Log = querylog.Log

// Session is one user's burst of queries serving a single information
// need.
type Session = querylog.Session

// Result is a suggestion run: the final personalized list, the
// intermediate diversified list, and timing/size diagnostics.
type Result = core.Result

// Engine is a ready-to-serve PQS-DA instance. Build one with NewEngine.
type Engine = core.Engine

// SuggestRequest is the versioned request object accepted by
// Engine.Do: user, query, optional session context, and per-request
// knobs (K, NoCache, SkipPersonalization).
type SuggestRequest = core.SuggestRequest

// SyntheticConfig parameterizes the synthetic query-log generator that
// stands in for a production search log.
type SyntheticConfig = synth.Config

// World is a generated synthetic universe: the log plus full ground
// truth (facets, page topics, user preferences) for evaluation.
type World = synth.World

// Config tunes the engine. The zero value reproduces the paper's
// recommended configuration: cf·iqf weighting, a 200-query compact
// representation, light regularization, and UPM-based personalization.
type Config struct {
	// RawWeights switches the multi-bipartite edges from cf·iqf to raw
	// frequencies (the paper's Fig. 3 ablation).
	RawWeights bool
	// CompactBudget is the paper's ℚ, the compact representation size
	// (default 200).
	CompactBudget int
	// Topics is the UPM topic count (default 10).
	Topics int
	// TrainingIterations is the UPM Gibbs sweep count (default 100).
	TrainingIterations int
	// Seed drives every stochastic component (sampler initialization).
	Seed int64
	// Workers parallelizes all three compute stages: UPM training
	// across user documents, the Eq. 15 CG solve's mat-vec across
	// matrix rows, and the hitting-time sweeps of the diversification
	// stage across matrix rows (0/1 = sequential; results are
	// bit-identical at any worker count).
	Workers int
	// DiversificationOnly skips user profiling: Suggest returns the
	// diversified ranking unchanged (the intermediate system of the
	// paper's Section VI-B).
	DiversificationOnly bool
	// RefreshMode selects how Engine.Refresh/Rebuild rebuild the
	// representation: "full" (default; recount the whole log) or
	// "delta" (incremental build over the entries ingested since the
	// last build — bit-identical to full, much faster for small
	// deltas). Any other value is an error.
	RefreshMode string
	// Strategy selects the default diversification strategy: "hitting"
	// (default; the paper's Algorithm 1), "mmr", "pfar" or "relevance".
	// Per-request overrides go through SuggestRequest.Strategy; unknown
	// names are rejected by NewEngine.
	Strategy string
	// Precision selects the floating-point width of the CG-solve and
	// hitting-sweep inner loops: "float64" (default; bit-exact
	// reference) or "float32" (roughly halves kernel memory traffic;
	// ~1e-7 relative error, far below the solver tolerance, and the CG
	// solve self-verifies in float64 and falls back when a system is
	// too ill-conditioned for float32). Any other value is an error.
	Precision string
	// CompactCache bounds the engine's LRU of built compact
	// representations keyed by (snapshot generation, seed IDs). A hit
	// skips the representation carving and its derived matrices
	// (normalized affinities, Eq. 15 system, walker transition) while
	// every query-dependent stage still runs — results are
	// bit-identical with the cache on or off. 0 selects the default
	// (128 entries); negative disables it.
	CompactCache int
}

// NewEngine cleans the log, builds the multi-bipartite representation
// and (unless disabled) trains user profiles. The input log is not
// modified.
func NewEngine(l *Log, cfg Config) (*Engine, error) {
	cleaned, _ := querylog.Clean(l, querylog.CleanerConfig{})
	cc := core.Config{
		Compact:      bipartite.CompactConfig{Budget: cfg.CompactBudget},
		CompactCache: cfg.CompactCache,
		UPM: topicmodel.UPMConfig{
			K:          cfg.Topics,
			Iterations: cfg.TrainingIterations,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		},
		SkipPersonalization: cfg.DiversificationOnly,
	}
	cc.Regularize.Solver.Workers = cfg.Workers
	cc.Hitting.Workers = cfg.Workers
	prec, err := sparse.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, fmt.Errorf("pqsda: %w", err)
	}
	cc.Regularize.Solver.Precision = prec
	cc.Hitting.Precision = prec
	if cfg.RawWeights {
		cc.Weighting = bipartite.Raw
	} else {
		cc.Weighting = bipartite.CFIQF
	}
	switch cfg.RefreshMode {
	case "", "full":
		cc.Strategy = core.FullRebuild
	case "delta":
		cc.Strategy = core.DeltaRebuild
	default:
		return nil, fmt.Errorf("pqsda: RefreshMode %q (want \"full\" or \"delta\")", cfg.RefreshMode)
	}
	// core.NewEngine validates the name against the diversify registry.
	cc.Diversify.Strategy = cfg.Strategy
	return core.NewEngine(cleaned, cc)
}

// AdvancedConfig exposes every stage's tunables for research use; see
// the internal packages' documentation for the semantics.
type AdvancedConfig = core.Config

// AdmissionConfig assembles the serving-time overload protections
// (internal/admission): per-user/per-IP token-bucket rate limits,
// bounded concurrency gates per stage class, and the circuit breaker
// that degrades to cached suggestion lists under sustained pressure.
// Install on a server with server.Server.SetAdmission. The zero value
// disables everything; DefaultAdmissionConfig is the recommended
// serving posture.
type AdmissionConfig = admission.Config

// RateLimitConfig tunes one token-bucket rate limiter of an
// AdmissionConfig.
type RateLimitConfig = admission.RateConfig

// GateConfig tunes one bounded concurrency gate of an AdmissionConfig.
type GateConfig = admission.GateConfig

// BreakerConfig tunes the AdmissionConfig circuit breaker.
type BreakerConfig = admission.BreakerConfig

// DefaultAdmissionConfig returns the recommended serving posture:
// suggestion concurrency capped at 4×GOMAXPROCS with a bounded wait
// queue, mutating endpoints single-file, breaker at 50% failures over
// 10s, rate limiters off (per-key rates are deployment-specific).
func DefaultAdmissionConfig() AdmissionConfig { return admission.DefaultConfig() }

// SLOConfig declares the serving service-level objectives
// (internal/server, internal/slo): the end-to-end latency budget, the
// availability and full-fidelity goals, the flight-recorder sizing and
// the burn-rate evaluation cadence. Install on a server with
// server.Server.EnableSLO; the burn state drives /v1/health, the
// admission advisory, and automatic flight-recorder dumps.
type SLOConfig = server.SLOConfig

// DefaultSLOConfig returns the recommended SLO posture: 250ms
// end-to-end p99, 99.9% availability, 99% full-fidelity responses, a
// 4096-event flight recorder, evaluation every 10s.
func DefaultSLOConfig() SLOConfig { return server.DefaultSLOConfig() }

// NewEngineAdvanced builds an engine from a fully explicit
// configuration without cleaning the log first.
func NewEngineAdvanced(l *Log, cfg AdvancedConfig) (*Engine, error) {
	return core.NewEngine(l, cfg)
}

// SyntheticLog generates a synthetic world (log + ground truth). Use
// World.Log as the engine input and the World's oracles for
// evaluation.
func SyntheticLog(cfg SyntheticConfig) *World {
	return synth.Generate(cfg)
}

// ReadLog parses a TSV query log (UserID, Query, ClickedURL, Timestamp
// with a header line) from r.
func ReadLog(r io.Reader) (*Log, error) {
	return querylog.ReadTSV(r)
}

// ReadLogFile parses a TSV query log from a file.
func ReadLogFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return querylog.ReadTSV(f)
}

// ReadAOLLog parses the classic AOL-2006 query-log format
// (AnonID\tQuery\tQueryTime\tItemRank\tClickURL).
func ReadAOLLog(r io.Reader) (*Log, error) {
	return querylog.ReadAOL(r)
}

// WriteLog serializes a log as TSV.
func WriteLog(l *Log, w io.Writer) error {
	return l.WriteTSV(w)
}

// Sessionize segments a log into sessions with the default
// configuration (30-minute timeout with lexical-similarity rescue).
func Sessionize(l *Log) []Session {
	return querylog.Sessionize(l, querylog.SessionizerConfig{})
}

// Suggest is a convenience one-shot: build an engine over the log and
// produce k personalized suggestions for the user's query at time now.
// For repeated queries, build the Engine once and reuse it.
func Suggest(l *Log, userID, query string, k int, cfg Config) ([]string, error) {
	e, err := NewEngine(l, cfg)
	if err != nil {
		return nil, err
	}
	res, err := e.Do(context.Background(), SuggestRequest{User: userID, Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return res.Suggestions, nil
}
