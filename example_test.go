package pqsda_test

import (
	"fmt"
	"time"

	"repro"
)

// buildTinyLog assembles the paper's Table I example log by hand.
func buildTinyLog() *pqsda.Log {
	mk := func(s string) time.Time {
		t, _ := time.Parse("2006-01-02 15:04:05", s)
		return t.UTC()
	}
	l := &pqsda.Log{}
	l.Append(pqsda.Entry{UserID: "u1", Query: "sun", ClickedURL: "www.java.com", Time: mk("2012-12-12 11:12:41")})
	l.Append(pqsda.Entry{UserID: "u1", Query: "sun java", ClickedURL: "java.sun.com", Time: mk("2012-12-12 11:13:01")})
	l.Append(pqsda.Entry{UserID: "u1", Query: "jvm download", Time: mk("2012-12-12 11:14:21")})
	l.Append(pqsda.Entry{UserID: "u2", Query: "sun", ClickedURL: "www.suncellular.com", Time: mk("2012-12-13 07:13:21")})
	l.Append(pqsda.Entry{UserID: "u2", Query: "solar cell", ClickedURL: "en.wikipedia.org", Time: mk("2012-12-13 07:14:21")})
	l.Append(pqsda.Entry{UserID: "u3", Query: "sun oracle", ClickedURL: "www.oracle.com", Time: mk("2012-12-14 14:35:14")})
	l.Append(pqsda.Entry{UserID: "u3", Query: "java", ClickedURL: "www.java.com", Time: mk("2012-12-14 14:36:26")})
	return l
}

// ExampleSessionize reproduces the paper's Definition 1 walkthrough:
// Table I's seven entries form exactly three sessions.
func ExampleSessionize() {
	sessions := pqsda.Sessionize(buildTinyLog())
	fmt.Println("sessions:", len(sessions))
	for _, s := range sessions {
		fmt.Println(s.UserID, s.Queries())
	}
	// Output:
	// sessions: 3
	// u1 [sun sun java jvm download]
	// u2 [sun solar cell]
	// u3 [sun oracle java]
}

// ExampleNewEngine shows the minimal end-to-end flow on the Table I
// log: diversified suggestions for the ambiguous query "sun".
func ExampleNewEngine() {
	engine, err := pqsda.NewEngine(buildTinyLog(), pqsda.Config{
		CompactBudget:       10,
		DiversificationOnly: true,
	})
	if err != nil {
		panic(err)
	}
	res, err := engine.SuggestDiversified("sun", nil, time.Now(), 3)
	if err != nil {
		panic(err)
	}
	// Three suggestions from a six-query log: each suggestion exists
	// and is not "sun" itself.
	fmt.Println("suggestions:", len(res.Diversified))
	for _, s := range res.Diversified {
		fmt.Println(s != "sun" && s != "")
	}
	// Output:
	// suggestions: 3
	// true
	// true
	// true
}

// ExampleSyntheticLog generates a deterministic synthetic world and
// inspects its ground truth.
func ExampleSyntheticLog() {
	world := pqsda.SyntheticLog(pqsda.SyntheticConfig{
		Seed: 1, NumUsers: 3, SessionsPerUser: 4, NumFacets: 4,
	})
	fmt.Println("users:", len(world.UserIDs()))
	fmt.Println("facets:", len(world.Facets))
	fmt.Println("entries > 0:", world.Log.Len() > 0)
	// Output:
	// users: 3
	// facets: 4
	// entries > 0: true
}
