package pqsda

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bipartite"
)

func TestReadLogFile(t *testing.T) {
	w := facadeWorld(t)
	path := filepath.Join(t.TempDir(), "log.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLog(w.Log, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Log.Len() {
		t.Fatalf("read %d entries, want %d", got.Len(), w.Log.Len())
	}
	if _, err := ReadLogFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNewEngineAdvanced(t *testing.T) {
	w := facadeWorld(t)
	e, err := NewEngineAdvanced(w.Log, AdvancedConfig{
		Weighting:           bipartite.Raw,
		Compact:             bipartite.CompactConfig{Budget: 30},
		SkipPersonalization: true,
		PoolFactor:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rep().Weighting != bipartite.Raw {
		t.Error("advanced config weighting not honored")
	}
}

func TestFacadeExplainAndLearnUser(t *testing.T) {
	// The facade's Engine alias carries the full core API: Explain,
	// LearnUser, Save.
	w := facadeWorld(t)
	e, err := NewEngine(w.Log, Config{CompactBudget: 50, Topics: 4, TrainingIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	best, n := "", 0
	for q, f := range w.Log.QueryFrequency() {
		if f > n {
			best, n = q, f
		}
	}
	if err := e.LearnUser("newbie", w.Log.ByUser(w.UserIDs()[1])); err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain("newbie", best, nil, time.Now(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Candidates) == 0 {
		t.Fatal("no explained candidates")
	}
}
