package pqsda

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section (Fig. 3a–d, 4, 5a–d, 6, 7), each regenerating the
// figure's series through internal/experiments, plus component-level
// micro-benchmarks for the pipeline stages. Run:
//
//	go test -bench=. -benchmem
//
// The figure values printed by cmd/benchfigs (and recorded in
// EXPERIMENTS.md) come from the same drivers.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/querylog"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

var (
	benchSetupOnce sync.Once
	benchSetup     *experiments.Setup
)

// figureSetup builds the shared experiment world once; individual
// figure benches reuse it (and its cached personalization fixtures).
func figureSetup() *experiments.Setup {
	benchSetupOnce.Do(func() {
		benchSetup = experiments.NewSetup(experiments.SmallScale(77))
	})
	return benchSetup
}

func benchFigure(b *testing.B, id string) {
	s := figureSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := s.RunFigure(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3aDiversityRaw regenerates Fig. 3(a): diversity of the
// diversification stage on raw click/bipartite weights.
func BenchmarkFig3aDiversityRaw(b *testing.B) { benchFigure(b, "3a") }

// BenchmarkFig3bDiversityWeighted regenerates Fig. 3(b) (cf·iqf).
func BenchmarkFig3bDiversityWeighted(b *testing.B) { benchFigure(b, "3b") }

// BenchmarkFig3cRelevanceRaw regenerates Fig. 3(c).
func BenchmarkFig3cRelevanceRaw(b *testing.B) { benchFigure(b, "3c") }

// BenchmarkFig3dRelevanceWeighted regenerates Fig. 3(d).
func BenchmarkFig3dRelevanceWeighted(b *testing.B) { benchFigure(b, "3d") }

// BenchmarkFig4Perplexity regenerates Fig. 4: held-out perplexity of
// the UPM vs LDA, PTM1, PTM2, TOT, MWM, TUM, CTM, SSTM.
func BenchmarkFig4Perplexity(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig5aDiversityPersonalizedRaw regenerates Fig. 5(a).
func BenchmarkFig5aDiversityPersonalizedRaw(b *testing.B) { benchFigure(b, "5a") }

// BenchmarkFig5bDiversityPersonalizedWeighted regenerates Fig. 5(b).
func BenchmarkFig5bDiversityPersonalizedWeighted(b *testing.B) { benchFigure(b, "5b") }

// BenchmarkFig5cPPRRaw regenerates Fig. 5(c).
func BenchmarkFig5cPPRRaw(b *testing.B) { benchFigure(b, "5c") }

// BenchmarkFig5dPPRWeighted regenerates Fig. 5(d).
func BenchmarkFig5dPPRWeighted(b *testing.B) { benchFigure(b, "5d") }

// BenchmarkFig6HPR regenerates Fig. 6: oracle-graded personalized
// relevance on the 6-point scale.
func BenchmarkFig6HPR(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig7Efficiency regenerates Fig. 7: suggestion latency as the
// utilized query count grows.
func BenchmarkFig7Efficiency(b *testing.B) { benchFigure(b, "7") }

// --- Component micro-benchmarks -------------------------------------

var (
	benchEngineOnce sync.Once
	benchEngine     *core.Engine
	benchQueries    []string
)

func componentFixture(b *testing.B) (*core.Engine, []string) {
	benchEngineOnce.Do(func() {
		w := synth.Generate(synth.Config{Seed: 5, NumUsers: 40, SessionsPerUser: 25})
		clean, _ := querylog.Clean(w.Log, querylog.CleanerConfig{})
		var err error
		benchEngine, err = core.NewEngine(clean, core.Config{
			Weighting: bipartite.CFIQF,
			Compact:   bipartite.CompactConfig{Budget: 150},
			UPM:       topicmodel.UPMConfig{K: 8, Iterations: 30, Seed: 5, HyperRounds: 1, HyperIters: 5},
		})
		if err != nil {
			panic(err)
		}
		freq := clean.QueryFrequency()
		for q, n := range freq {
			if n >= 5 {
				benchQueries = append(benchQueries, q)
			}
		}
	})
	if len(benchQueries) == 0 {
		b.Skip("no frequent queries in fixture")
	}
	return benchEngine, benchQueries
}

// BenchmarkSuggestDiversified measures one diversification-only
// suggestion (compact build + Eq. 15 solve + hitting-time selection).
func BenchmarkSuggestDiversified(b *testing.B) {
	e, qs := componentFixture(b)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SuggestDiversified(qs[i%len(qs)], nil, now, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuggestDiversifiedArena is the same serve loop on an
// engine round-tripped through the wire format, so the compact
// representation, symbols and profiles are arena-backed (flat arrays
// aliasing one loaded image) instead of individually heap-allocated.
// The guard in `make bench-guard` holds it to the same per-request
// allocation budget as the builder-backed engine above: the backing
// swap must be invisible to the serve path.
func BenchmarkSuggestDiversifiedArena(b *testing.B) {
	e, qs := componentFixture(b)
	benchArenaOnce.Do(func() {
		img, err := e.WireImage()
		if err != nil {
			panic(err)
		}
		if benchArenaEngine, err = core.LoadEngine(bytes.NewReader(img)); err != nil {
			panic(err)
		}
	})
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchArenaEngine.SuggestDiversified(qs[i%len(qs)], nil, now, 10); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	benchArenaOnce   sync.Once
	benchArenaEngine *core.Engine
)

// BenchmarkSuggestPersonalized measures the full pipeline per query.
func BenchmarkSuggestPersonalized(b *testing.B) {
	e, qs := componentFixture(b)
	users := e.Log().Users()
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Suggest(users[i%len(users)], qs[i%len(qs)], nil, now, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildRepresentation measures multi-bipartite construction
// from a cleaned log.
func BenchmarkBuildRepresentation(b *testing.B) {
	w := synth.Generate(synth.Config{Seed: 6, NumUsers: 40, SessionsPerUser: 25})
	clean, _ := querylog.Clean(w.Log, querylog.CleanerConfig{})
	sessions := querylog.Sessionize(clean, querylog.SessionizerConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bipartite.BuildFromSessions(sessions, bipartite.CFIQF)
	}
}

// BenchmarkTrainUPM measures offline user profiling (30 sweeps, one
// hyperparameter round).
func BenchmarkTrainUPM(b *testing.B) {
	w := synth.Generate(synth.Config{Seed: 6, NumUsers: 20, SessionsPerUser: 20})
	sessions := querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
	corpus := topicmodel.BuildCorpus(sessions, w.NormalizeTime)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{
			K: 8, Iterations: 30, Seed: int64(i), HyperRounds: 1, HyperIters: 5,
		})
	}
}

// BenchmarkSyntheticGeneration measures the workload generator itself.
func BenchmarkSyntheticGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		synth.Generate(synth.Config{Seed: int64(i), NumUsers: 50, SessionsPerUser: 20})
	}
}
