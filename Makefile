# Development targets. `make ci` is what every PR must pass: vet,
# build, the full test suite under the race detector (the serving
# path is lock-free by design — races are correctness bugs here), and
# a one-iteration benchmark smoke run so the harness can't rot.

GO ?= go

.PHONY: build test race vet fmt-check bench-smoke bench bench-guard metrics-lint chaos fuzz-smoke eval eval-smoke ci

# Where `make bench` writes its aggregated measurements.
BENCH_OUT ?= BENCH_pr10.json

# Where `make eval` writes the strategy A/B report.
EVAL_OUT ?= EVAL_pr7.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt — keeps diffs mechanical-noise-free.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Every benchmark runs exactly once: catches harness bitrot (bad
# fixtures, panics, compile errors in bench-only code) without paying
# for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Real measurement run over the serving hot path — kernel (sparse,
# randomwalk), stage (hittingtime) and end-to-end (facade/server)
# benchmarks, 5 repetitions each, aggregated into $(BENCH_OUT) by
# cmd/benchjson (min ns/op across runs, max B/op & allocs/op).
bench:
	@rm -f .bench.out
	$(GO) test -run '^$$' -bench 'SolveCG|MulVec' -benchmem -count 5 ./internal/sparse/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'HittingTime' -benchmem -count 5 ./internal/randomwalk/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'HittingStage|NewWalker|SelectDiverse' -benchmem -count 5 ./internal/hittingtime/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'SuggestDiversified|ServerSuggest' -benchmem -count 5 . | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'RefreshBuild' -benchmem -count 5 ./internal/core/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'ShedPath' -benchmem -count 5 ./internal/server/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'SnapshotLoad' -benchmem -count 5 ./internal/snapwire/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'LegacyGobLoad|ConvertedWireLoad' -benchmem -count 5 ./cmd/snaptool/ | tee -a .bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < .bench.out
	@rm -f .bench.out

# Allocation regression guards: the steady-state hitting-time sweep
# (pooled scratch, precomputed dangling mass) must stay at 0 allocs/op,
# and a steady-state delta snapshot build must stay allocation-bounded
# (proportional to the delta and merged rows — measured 55 allocs/op,
# guarded at 80 for headroom), enforced on every CI run.
bench-guard:
	$(GO) test -run '^$$' -bench 'HittingTimeSteadyState' -benchmem ./internal/randomwalk/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkHittingTimeSteadyState -max-allocs 0
	$(GO) test -run '^$$' -bench 'DeltaBuildSteadyState' -benchmem ./internal/bipartite/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkDeltaBuildSteadyState -max-allocs 80
	$(GO) test -run '^$$' -bench 'ShedPath' -benchmem ./internal/server/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkShedPath -max-allocs 2
	$(GO) test -run '^$$' -bench 'FlightRecorderEmit' -benchmem ./internal/slo/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkFlightRecorderEmit -max-allocs 0
	$(GO) test -run '^$$' -bench 'HittingStageSeed' -benchmem ./internal/hittingtime/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkHittingStageSeed -max-allocs 64
	$(GO) test -run '^$$' -bench 'SolveCGMulti4$$|SolveCGMulti64$$' -benchmem ./internal/sparse/ | tee .bench.guard.out | \
		$(GO) run ./cmd/benchjson -guard BenchmarkSolveCGMulti4 -max-allocs 4
	$(GO) run ./cmd/benchjson -guard BenchmarkSolveCGMulti64 -max-allocs 4 < .bench.guard.out
	@rm -f .bench.guard.out
	$(GO) test -run '^$$' -bench 'SuggestDiversifiedArena' -benchmem . | \
		$(GO) run ./cmd/benchjson -guard BenchmarkSuggestDiversifiedArena -max-allocs 30
	$(GO) test -run '^$$' -bench 'SnapshotLoadLarge' -benchmem ./internal/snapwire/ | \
		$(GO) run ./cmd/benchjson -guard BenchmarkSnapshotLoadLarge -max-allocs 48

# Metric-name drift guard: every registered Prometheus family must be
# listed in metrics.txt and vice versa, plus both exposition formats
# must pass the strict in-repo linter. Regenerate the manifest with
#   UPDATE_METRICS_MANIFEST=1 $(GO) test ./internal/server -run TestMetricsManifest
metrics-lint:
	$(GO) test -count=1 -run 'TestMetricsManifest|TestMetricsExpositionConformance|TestLint' ./internal/server/ ./internal/obs/

# Chaos / overload suite under the race detector: floods past the
# concurrency cap, bounded-queue shedding, per-user/per-IP rate limits,
# breaker trip→half-open→close, degraded cache fallback, body cap,
# trailing-garbage rejection. Run it whenever the admission layer or
# server middleware changes.
chaos:
	$(GO) test -race -count=1 ./internal/admission/
	$(GO) test -race -count=1 -run 'Flood|Breaker|RateLimit|StatsAdmission|BodyCap|TrailingGarbage|BatchItemsShed|LearnAndRefreshGated' ./internal/server/

# 10-second fuzz smoke over the snapshot loader: random mutations of
# valid images (plus the corpus of hand-built corruptions) must always
# come back as clean errors — never a panic, hang or out-of-bounds
# read. The image is untrusted input on the POST /v1/snapshot path, so
# this runs on every CI pass, not just when someone remembers to fuzz.
fuzz-smoke:
	$(GO) test -run '^FuzzLoadSnapshot$$' -fuzz 'FuzzLoadSnapshot' -fuzztime 10s ./internal/snapwire/

# Offline strategy A/B report (cmd/evalab): every registered
# diversification strategy plus the paper's click-graph baselines,
# scored per scenario class (ambiguous / navigational / cold-start)
# with alpha-nDCG, subtopic recall and intra-list distance.
eval:
	$(GO) run ./cmd/evalab -scale paper -baselines -out $(EVAL_OUT)

# Small-scale eval run: proves the harness end to end (world build,
# strategy fan-out, pooled ideal, JSON emission) without paying for the
# paper-scale world. Part of `make ci`.
eval-smoke:
	$(GO) run ./cmd/evalab -scale small -baselines -max-queries 3 -out /tmp/EVAL_smoke.json

ci: vet fmt-check build race chaos bench-smoke bench-guard metrics-lint fuzz-smoke eval-smoke
