# Development targets. `make ci` is what every PR must pass: vet,
# build, the full test suite under the race detector (the serving
# path is lock-free by design — races are correctness bugs here), and
# a one-iteration benchmark smoke run so the harness can't rot.

GO ?= go

.PHONY: build test race vet fmt-check bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt — keeps diffs mechanical-noise-free.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Every benchmark runs exactly once: catches harness bitrot (bad
# fixtures, panics, compile errors in bench-only code) without paying
# for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: vet fmt-check build race bench-smoke
