# Development targets. `make ci` is what every PR must pass: vet,
# build, and the full test suite under the race detector (the serving
# path is lock-free by design — races are correctness bugs here).

GO ?= go

.PHONY: build test race vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

ci: vet build race
