// Command loggen generates a synthetic search-engine query log with the
// statistical structure PQS-DA exploits (ambiguous queries, per-user
// preferences, sessions, web dynamics) and writes it as TSV.
//
// Usage:
//
//	loggen -users 100 -sessions 30 -facets 12 -seed 7 -o log.tsv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/synth"
)

func main() {
	var (
		users    = flag.Int("users", 100, "number of simulated users")
		sessions = flag.Int("sessions", 30, "sessions per user")
		facets   = flag.Int("facets", 12, "number of topic facets")
		shared   = flag.Int("shared", 6, "number of ambiguous head terms")
		robots   = flag.Int("robots", 0, "robotic burst users to add (cleaning fodder)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "-", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print world statistics to stderr")
		truth    = flag.String("truth", "", "also write the ground-truth oracle (query/URL/user facets) to this file")
	)
	flag.Parse()

	w := synth.Generate(synth.Config{
		Seed:            *seed,
		NumUsers:        *users,
		SessionsPerUser: *sessions,
		NumFacets:       *facets,
		SharedTerms:     *shared,
		RobotUsers:      *robots,
	})

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := w.Log.WriteTSV(dst); err != nil {
		fatal(err)
	}
	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		if err := w.WriteGroundTruth(tf); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		freq := w.Log.QueryFrequency()
		fmt.Fprintf(os.Stderr, "entries=%d users=%d distinct-queries=%d facets=%d\n",
			w.Log.Len(), len(w.Log.Users()), len(freq), len(w.Facets))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
