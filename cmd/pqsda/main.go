// Command pqsda serves personalized, diversity-aware query suggestions
// from a query log. It reads a TSV log (see cmd/loggen) or generates a
// synthetic one, builds the PQS-DA engine, and answers queries from
// flags, interactively from stdin, or over HTTP.
//
// Usage:
//
//	pqsda -log log.tsv -user u0003 -query "sun" -k 10
//	pqsda -synthetic -user u0003              # interactive: one query per line
//	pqsda -log log.tsv -serve :8080           # HTTP middleware (see internal/server)
//	pqsda -log log.tsv -save engine.bin       # train once, persist
//	pqsda -engine engine.bin -query "sun"     # serve from a persisted engine
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		logPath   = flag.String("log", "", "query log file (TSV from loggen, or AOL format with -format aol)")
		format    = flag.String("format", "tsv", "log file format: tsv or aol")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic log instead of -log")
		seed      = flag.Int64("seed", 1, "seed for -synthetic and model training")
		user      = flag.String("user", "", "user ID to personalize for (empty: diversification only)")
		query     = flag.String("query", "", "input query (empty: read queries from stdin)")
		k         = flag.Int("k", 10, "number of suggestions")
		budget    = flag.Int("budget", 200, "compact representation size (the paper's Q)")
		topics    = flag.Int("topics", 10, "UPM topic count")
		verbose   = flag.Bool("v", false, "print stage diagnostics")
		workers   = flag.Int("workers", 1, "parallel workers for every compute stage: UPM training, the Eq. 15 CG solve, and hitting-time sweeps (results are identical at any count)")
		serve     = flag.String("serve", "", "serve the HTTP suggestion API on this address instead of the CLI")
		reqTimout = flag.Duration("request-timeout", 5*time.Second, "per-request suggestion deadline for -serve (0 disables; overruns return 504)")
		slowQuery = flag.Duration("slow-query", 250*time.Millisecond, "log the full trace of any suggestion slower than this (0 disables)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the serving mux")
		cacheSize = flag.Int("cache-size", 4096, "suggestion cache capacity in entries (0 disables caching)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "suggestion cache entry lifetime (0: entries live until evicted or the engine is swapped)")
		savePath  = flag.String("save", "", "persist the trained engine to this file and exit")
		enginePth = flag.String("engine", "", "load a persisted engine instead of training from a log")
		refrMode  = flag.String("refresh-mode", "full", "representation build strategy for /v1/refresh: full (recount the whole log) or delta (incremental, bit-identical to full)")
	)
	flag.Parse()

	var engine *pqsda.Engine
	if *enginePth != "" {
		f, err := os.Open(*enginePth)
		if err != nil {
			fatal(err)
		}
		engine, err = core.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded engine from %s\n", *enginePth)
	} else {
		var log *pqsda.Log
		switch {
		case *logPath != "":
			f, err := os.Open(*logPath)
			if err != nil {
				fatal(err)
			}
			switch *format {
			case "tsv":
				log, err = pqsda.ReadLog(f)
			case "aol":
				log, err = pqsda.ReadAOLLog(f)
			default:
				err = fmt.Errorf("unknown -format %q", *format)
			}
			f.Close()
			if err != nil {
				fatal(err)
			}
		case *synthetic:
			log = pqsda.SyntheticLog(pqsda.SyntheticConfig{Seed: *seed, NumUsers: 50, SessionsPerUser: 25}).Log
		default:
			fatal(fmt.Errorf("need -log FILE, -synthetic, or -engine FILE"))
		}
		fmt.Fprintf(os.Stderr, "building engine over %d log entries…\n", log.Len())
		var err error
		engine, err = pqsda.NewEngine(log, pqsda.Config{
			CompactBudget:       *budget,
			Topics:              *topics,
			TrainingIterations:  60,
			Seed:                *seed,
			Workers:             *workers,
			DiversificationOnly: *user == "" && *serve == "" && *savePath == "",
			RefreshMode:         *refrMode,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := engine.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "engine saved to %s\n", *savePath)
		return
	}

	if *cacheSize > 0 {
		engine.EnableCache(*cacheSize, *cacheTTL)
	}

	if *serve != "" {
		srv := server.New(engine, os.Stderr)
		srv.SetRequestTimeout(*reqTimout)
		srv.SetSlowQueryThreshold(*slowQuery)
		srv.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})))
		if *pprofFlag {
			srv.EnablePProf()
		}
		fmt.Fprintf(os.Stderr, "serving suggestion API on %s (GET /v1/suggest?user=&q=&k=&debug=trace; stats on /v1/stats, /metrics, /debug/traces, /debug/vars; request timeout %v; slow-query %v; cache %d entries; pprof %v)\n",
			*serve, *reqTimout, *slowQuery, *cacheSize, *pprofFlag)
		fatal(http.ListenAndServe(*serve, srv.Handler()))
	}

	answer := func(q string) {
		res, err := engine.Do(context.Background(), core.SuggestRequest{
			User: *user, Query: q, K: *k,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%q: %v\n", q, err)
			return
		}
		for i, s := range res.Suggestions {
			fmt.Printf("%2d. %s\n", i+1, s)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "compact=%d queries, solve=%d iters, cached=%v, stages: compact %v, solve %v, hitting %v, personalize %v\n",
				res.CompactSize, res.SolveIterations, res.CacheHit,
				res.CompactTime.Round(time.Microsecond), res.SolveTime.Round(time.Microsecond),
				res.HittingTime.Round(time.Microsecond), res.PersonalizeTime.Round(time.Microsecond))
		}
	}

	if *query != "" {
		answer(*query)
		return
	}
	fmt.Fprintln(os.Stderr, "enter queries, one per line (Ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		answer(q)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqsda:", err)
	os.Exit(1)
}
