// Command pqsda serves personalized, diversity-aware query suggestions
// from a query log. It reads a TSV log (see cmd/loggen) or generates a
// synthetic one, builds the PQS-DA engine, and answers queries from
// flags, interactively from stdin, or over HTTP.
//
// Usage:
//
//	pqsda -log log.tsv -user u0003 -query "sun" -k 10
//	pqsda -synthetic -user u0003              # interactive: one query per line
//	pqsda -log log.tsv -serve :8080           # HTTP middleware (see internal/server)
//	pqsda -log log.tsv -save engine.bin       # train once, persist
//	pqsda -engine engine.bin -query "sun"     # serve from a persisted engine
//	pqsda -snapshot-load engine.bin -serve :8080   # mmap the image, zero-copy
//	pqsda -log log.tsv -snapshot-save engine.bin -serve :8080  # train, persist, serve
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		logPath   = flag.String("log", "", "query log file (TSV from loggen, or AOL format with -format aol)")
		format    = flag.String("format", "tsv", "log file format: tsv or aol")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic log instead of -log")
		seed      = flag.Int64("seed", 1, "seed for -synthetic and model training")
		user      = flag.String("user", "", "user ID to personalize for (empty: diversification only)")
		query     = flag.String("query", "", "input query (empty: read queries from stdin)")
		k         = flag.Int("k", 10, "number of suggestions")
		budget    = flag.Int("budget", 200, "compact representation size (the paper's Q)")
		topics    = flag.Int("topics", 10, "UPM topic count")
		verbose   = flag.Bool("v", false, "print stage diagnostics")
		workers   = flag.Int("workers", 1, "parallel workers for every compute stage: UPM training, the Eq. 15 CG solve, and hitting-time sweeps (results are identical at any count)")
		precision = flag.String("precision", "float64", "floating-point width of the CG-solve and hitting-sweep kernels: float64 (bit-exact reference) or float32 (~half the kernel memory traffic; the CG solve self-verifies and falls back to float64 on ill-conditioned systems)")
		serve     = flag.String("serve", "", "serve the HTTP suggestion API on this address instead of the CLI")
		reqTimout = flag.Duration("request-timeout", 5*time.Second, "per-request suggestion deadline for -serve (0 disables; overruns return 504)")
		slowQuery = flag.Duration("slow-query", 250*time.Millisecond, "log the full trace of any suggestion slower than this (0 disables)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the serving mux")
		cacheSize = flag.Int("cache-size", 4096, "suggestion cache capacity in entries (0 disables caching)")
		compCache = flag.Int("compact-cache", 128, "compact-representation cache capacity in entries — a hit skips the per-request graph carving and its derived matrices, results are bit-identical (0 disables)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "suggestion cache entry lifetime (0: entries live until evicted or the engine is swapped)")
		savePath  = flag.String("save", "", "persist the trained engine to this file and exit")
		enginePth = flag.String("engine", "", "load a persisted engine instead of training from a log")
		snapSave  = flag.String("snapshot-save", "", "write the engine's wire-format snapshot image to this file and keep going (unlike -save; combine with -serve to train, persist and serve in one run)")
		snapLoad  = flag.String("snapshot-load", "", "load a snapshot image from this file via mmap where the platform supports it (zero heap copy; falls back to a heap read) instead of training from a log")
		refrMode  = flag.String("refresh-mode", "full", "representation build strategy for /v1/refresh: full (recount the whole log) or delta (incremental, bit-identical to full)")
		strategy  = flag.String("strategy", "", "default diversification strategy: hitting (the paper's Algorithm 1), mmr, pfar or relevance (empty: hitting); per-request override via the strategy field of /v1/suggest")
		brownout  = flag.String("brownout-strategy", "relevance", "cheap strategy serving breaker-open cache misses under -serve instead of 503 (empty disables the brownout fallback)")
		batchSlv  = flag.Bool("batch-solve", true, "group /v1/suggest/batch items by solve signature and answer each group with one blocked multi-RHS CG solve (false: legacy independent items)")

		// Admission control / overload hardening (-serve only).
		admissionOn = flag.Bool("admission", true, "enable admission control: per-stage concurrency gates with bounded queues (429 on shed) and the degraded-path circuit breaker")
		suggestLim  = flag.Int("suggest-limit", 0, "max concurrently running suggestion pipelines (0: 4x GOMAXPROCS)")
		suggestQ    = flag.Int("suggest-queue", -1, "bounded wait-queue depth at the suggest gate (-1: 2x limit)")
		suggestWait = flag.Duration("suggest-max-wait", 100*time.Millisecond, "max time a suggestion may queue for a gate slot before shedding with 429")
		rateUser    = flag.Float64("rate-user", 0, "per-user token-bucket rate limit in requests/second (0 disables)")
		rateIP      = flag.Float64("rate-ip", 0, "per-client-IP token-bucket rate limit in requests/second (0 disables)")
		maxBody     = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "max /v1 POST body size in bytes; overflow returns 413 (0 disables the cap)")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM before exiting")

		// Structured logging and SLOs (-serve only).
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		sloOn     = flag.Bool("slo", true, "enable the SLO subsystem: burn-rate evaluation over the declared objectives, the /v1/health component scoreboard, and the wide-event flight recorder")
		sloP99    = flag.Duration("slo-latency-p99", 250*time.Millisecond, "end-to-end suggestion latency budget of the latency SLO (99% of requests must finish within it)")
		sloAvail  = flag.Float64("slo-availability", 0.999, "availability SLO goal over guarded API requests (good = no 5xx)")
		frSize    = flag.Int("flightrecorder-size", 4096, "wide-event flight-recorder ring capacity in requests")
		frDumpDir = flag.String("flightrecorder-dump-dir", "", "directory receiving an automatic flight-recorder JSONL dump when an SLO enters fast burn (empty disables auto-dump)")
	)
	flag.Parse()

	var engine *pqsda.Engine
	var snapSource string // "mmap" | "heap" when -snapshot-load was used
	var snapElapsed time.Duration
	if *snapLoad != "" {
		start := time.Now()
		var err error
		engine, err = core.LoadEngineFile(*snapLoad)
		if err != nil {
			fatal(err)
		}
		snapElapsed = time.Since(start)
		snapSource = "heap"
		if engine.LoadedImage().Mapped {
			snapSource = "mmap"
		}
		fmt.Fprintf(os.Stderr, "snapshot %s loaded in %v (%s, %d bytes)\n",
			*snapLoad, snapElapsed.Round(time.Microsecond), snapSource, engine.LoadedImage().Size)
	} else if *enginePth != "" {
		f, err := os.Open(*enginePth)
		if err != nil {
			fatal(err)
		}
		engine, err = core.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded engine from %s\n", *enginePth)
	} else {
		var log *pqsda.Log
		switch {
		case *logPath != "":
			f, err := os.Open(*logPath)
			if err != nil {
				fatal(err)
			}
			switch *format {
			case "tsv":
				log, err = pqsda.ReadLog(f)
			case "aol":
				log, err = pqsda.ReadAOLLog(f)
			default:
				err = fmt.Errorf("unknown -format %q", *format)
			}
			f.Close()
			if err != nil {
				fatal(err)
			}
		case *synthetic:
			log = pqsda.SyntheticLog(pqsda.SyntheticConfig{Seed: *seed, NumUsers: 50, SessionsPerUser: 25}).Log
		default:
			fatal(fmt.Errorf("need -log FILE, -synthetic, or -engine FILE"))
		}
		fmt.Fprintf(os.Stderr, "building engine over %d log entries…\n", log.Len())
		var err error
		engine, err = pqsda.NewEngine(log, pqsda.Config{
			CompactBudget:       *budget,
			Topics:              *topics,
			TrainingIterations:  60,
			Seed:                *seed,
			Workers:             *workers,
			DiversificationOnly: *user == "" && *serve == "" && *savePath == "" && *snapSave == "",
			RefreshMode:         *refrMode,
			Strategy:            *strategy,
			Precision:           *precision,
			CompactCache:        compactCacheSize(*compCache),
		})
		if err != nil {
			fatal(err)
		}
	}

	if *snapSave != "" {
		img, err := engine.WireImage()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapSave, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s (%d bytes)\n", *snapSave, len(img))
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := engine.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "engine saved to %s\n", *savePath)
		return
	}

	if *cacheSize > 0 {
		engine.EnableCache(*cacheSize, *cacheTTL)
	}

	if *serve != "" {
		srv := server.New(engine, os.Stderr)
		if snapSource != "" {
			srv.ObserveSnapshotLoad(snapSource, snapElapsed)
		}
		srv.SetRequestTimeout(*reqTimout)
		srv.SetBatchSolve(*batchSlv)
		srv.SetSlowQueryThreshold(*slowQuery)
		opts := &slog.HandlerOptions{Level: slog.LevelInfo}
		switch *logFormat {
		case "text":
			srv.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, opts)))
		case "json":
			srv.SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, opts)))
		default:
			fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
		}
		if *pprofFlag {
			srv.EnablePProf()
		}
		srv.SetMaxBodyBytes(*maxBody)
		if err := srv.SetBrownoutStrategy(*brownout); err != nil {
			fatal(err)
		}
		if *admissionOn {
			acfg := admission.DefaultConfig()
			if *suggestLim > 0 {
				acfg.Suggest.Limit = *suggestLim
			}
			acfg.Suggest.Queue = *suggestQ
			acfg.Suggest.MaxWait = *suggestWait
			acfg.User = admission.RateConfig{Rate: *rateUser}
			acfg.IP = admission.RateConfig{Rate: *rateIP}
			srv.SetAdmission(acfg)
		}
		if *sloOn {
			scfg := pqsda.DefaultSLOConfig()
			scfg.LatencyP99 = *sloP99
			scfg.Availability = *sloAvail
			scfg.FlightRecorderSize = *frSize
			scfg.DumpDir = *frDumpDir
			srv.EnableSLO(scfg)
			defer srv.Close()
		}
		fmt.Fprintf(os.Stderr, "serving suggestion API on %s (GET /v1/suggest?user=&q=&k=&debug=trace; health on /v1/health; stats on /v1/stats, /metrics, /debug/traces, /debug/exemplars, /debug/flightrecorder, /debug/vars; request timeout %v; slow-query %v; cache %d entries; admission %v; slo %v (p99 %v, availability %g); max body %d bytes; pprof %v)\n",
			*serve, *reqTimout, *slowQuery, *cacheSize, *admissionOn, *sloOn, *sloP99, *sloAvail, *maxBody, *pprofFlag)
		if err := serveHTTP(*serve, srv.Handler(), *drainWait); err != nil {
			fatal(err)
		}
		return
	}

	answer := func(q string) {
		res, err := engine.Do(context.Background(), core.SuggestRequest{
			User: *user, Query: q, K: *k,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%q: %v\n", q, err)
			return
		}
		for i, s := range res.Suggestions {
			fmt.Printf("%2d. %s\n", i+1, s)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "compact=%d queries, solve=%d iters, cached=%v, stages: compact %v, solve %v, hitting %v, personalize %v\n",
				res.CompactSize, res.SolveIterations, res.CacheHit,
				res.CompactTime.Round(time.Microsecond), res.SolveTime.Round(time.Microsecond),
				res.HittingTime.Round(time.Microsecond), res.PersonalizeTime.Round(time.Microsecond))
		}
	}

	if *query != "" {
		answer(*query)
		return
	}
	fmt.Fprintln(os.Stderr, "enter queries, one per line (Ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		answer(q)
	}
}

// serveHTTP runs a hardened http.Server: slow-client timeouts on every
// phase of the exchange (the bare http.ListenAndServe it replaces had
// none, so one slowloris peer per connection slot was a full outage)
// and graceful drain on SIGINT/SIGTERM — in-flight requests get up to
// drain to finish, new connections are refused immediately.
func serveHTTP(addr string, h http.Handler, drain time.Duration) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal during the drain kills immediately
		fmt.Fprintf(os.Stderr, "pqsda: signal received, draining for up to %v…\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete after %v: %w", drain, err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(os.Stderr, "pqsda: drained, bye")
		return nil
	}
}

// compactCacheSize maps the flag's "0 disables" convention onto the
// engine config's "0 = default, negative disables".
func compactCacheSize(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqsda:", err)
	os.Exit(1)
}
