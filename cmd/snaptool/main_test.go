package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snapwire"
)

// convertFixture converts one testdata gob file into dir and returns
// the output path plus the decoded legacy mirror for cross-checks.
func convertFixture(t *testing.T, dir, name string) (string, *gobEngine) {
	t.Helper()
	in := filepath.Join("testdata", name)
	out := filepath.Join(dir, strings.TrimSuffix(name, ".gob")+".bin")
	var buf bytes.Buffer
	if err := run([]string{"convert", in, out}, &buf); err != nil {
		t.Fatalf("convert %s: %v", name, err)
	}
	data, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := decodeLegacy(data)
	if err != nil {
		t.Fatal(err)
	}
	return out, legacy
}

func TestConvertedImageServes(t *testing.T) {
	for _, name := range []string{"legacy_engine.gob", "legacy_engine_divonly.gob"} {
		t.Run(name, func(t *testing.T) {
			out, legacy := convertFixture(t, t.TempDir(), name)

			// The converted image must pass the full verifier.
			if err := run([]string{"verify", out}, new(bytes.Buffer)); err != nil {
				t.Fatalf("verify: %v", err)
			}

			// And load into a serving engine whose shape matches the
			// legacy file exactly.
			eng, err := core.LoadEngineFile(out)
			if err != nil {
				t.Fatalf("loading converted image: %v", err)
			}
			snap := eng.Snapshot()
			if got, want := snap.Rep.NumQueries(), len(legacy.Rep.Queries.Names); got != want {
				t.Fatalf("queries %d, want %d", got, want)
			}
			// Sessions decode lazily — count them off the image itself.
			img, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			l, err := snapwire.Load(img)
			if err != nil {
				t.Fatal(err)
			}
			sessions, err := l.DecodeSessions()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(sessions), len(legacy.Rep.Sessions); got != want {
				t.Fatalf("sessions %d, want %d", got, want)
			}
			if legacy.HasUPM != (snap.Profiles != nil) {
				t.Fatalf("profiles present=%v, legacy hasUPM=%v", snap.Profiles != nil, legacy.HasUPM)
			}

			// Every registered strategy serves suggestions for a query
			// the legacy engine knew, personalized when profiles exist.
			query := legacy.Rep.Queries.Names[0]
			user := ""
			if legacy.HasUPM {
				users := make([]string, 0, len(legacy.UPM.DocID))
				for u := range legacy.UPM.DocID {
					users = append(users, u)
				}
				sort.Strings(users)
				user = users[0]
			}
			for _, strat := range eng.StrategyNames() {
				res, err := eng.Do(context.Background(), core.SuggestRequest{
					Strategy: strat, User: user, Query: query, K: 5,
				})
				if err != nil {
					t.Fatalf("strategy %s: %v", strat, err)
				}
				if len(res.Suggestions) == 0 {
					t.Fatalf("strategy %s returned no suggestions for %q", strat, query)
				}
			}
		})
	}
}

func TestConvertedUPMMatchesLegacyDims(t *testing.T) {
	out, legacy := convertFixture(t, t.TempDir(), "legacy_engine.gob")
	img, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	l, err := snapwire.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Meta.HasUPM {
		t.Fatal("converted image lost the UPM")
	}
	if l.Meta.UPMVocab != legacy.UPM.V || l.Meta.UPMURLs != legacy.UPM.U {
		t.Fatalf("UPM dims V=%d U=%d, legacy V=%d U=%d",
			l.Meta.UPMVocab, l.Meta.UPMURLs, legacy.UPM.V, legacy.UPM.U)
	}
	if got, want := l.Words.Len(), len(legacy.WordIndex.Names); got != want {
		t.Fatalf("vocabulary %d, want %d", got, want)
	}
	// Every legacy user profile survived with its original id.
	st := l.Snap.Profiles.UPM().State()
	if st.D != len(legacy.UPM.DocID) {
		t.Fatalf("profiles %d, want %d", st.D, len(legacy.UPM.DocID))
	}
}

func TestInspectAndVerifyOutput(t *testing.T) {
	out, _ := convertFixture(t, t.TempDir(), "legacy_engine.gob")

	var buf bytes.Buffer
	if err := run([]string{"inspect", out}, &buf); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"snapwire v1", "meta", "mat-rowptr/0", "sym-tokptr", "sessions"} {
		if !strings.Contains(text, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := run([]string{"verify", out}, &buf); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(buf.String(), "OK") {
		t.Fatalf("verify output: %s", buf.String())
	}
}

func TestCommandErrors(t *testing.T) {
	dir := t.TempDir()
	out, _ := convertFixture(t, dir, "legacy_engine.gob")

	// inspect/verify on a gob file names the migration path.
	err := run([]string{"inspect", filepath.Join("testdata", "legacy_engine.gob")}, new(bytes.Buffer))
	if !errors.Is(err, snapwire.ErrLegacyGob) {
		t.Fatalf("inspect on gob: %v", err)
	}

	// convert refuses an already-converted image.
	err = run([]string{"convert", out, filepath.Join(dir, "twice.bin")}, new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("convert on wire image: %v", err)
	}

	// convert rejects garbage.
	garbage := filepath.Join(dir, "garbage.gob")
	if err := os.WriteFile(garbage, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"convert", garbage, filepath.Join(dir, "g.bin")}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("convert accepted garbage")
	}

	// Bad usage.
	if err := run(nil, new(bytes.Buffer)); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frobnicate"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown command accepted")
	}
}

// TestConvertedEncodeIsStable expects convert → load → save to be a
// fixed point: a loaded engine serves its original image verbatim (the
// engine seeds its image cache with the loaded buffer), so nothing —
// lazily-decoded sessions included — is lost by a save-after-load.
func TestConvertedEncodeIsStable(t *testing.T) {
	out, _ := convertFixture(t, t.TempDir(), "legacy_engine.gob")
	img, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.LoadEngine(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.WireImage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, again) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(img), len(again))
	}
}
