// Command snaptool inspects, verifies and migrates engine snapshot
// images (the snapwire format documented in DESIGN.md).
//
//	snaptool inspect engine.bin          # header, section table, sizes
//	snaptool verify engine.bin           # full checksum + assembly check
//	snaptool convert old.gob engine.bin  # migrate a pre-wire gob file
//
// convert exists because the serving binary reads only the wire
// format: files written by pqsda -save before the format change are
// rejected with a pointer here.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/snapwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snaptool:", err)
		os.Exit(1)
	}
}

func usage() error {
	return errors.New("usage: snaptool inspect FILE | verify FILE | convert IN.gob OUT.bin")
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return usage()
	}
	switch cmd := args[0]; cmd {
	case "inspect":
		if len(args) != 2 {
			return usage()
		}
		return inspect(args[1], out)
	case "verify":
		if len(args) != 2 {
			return usage()
		}
		return verify(args[1], out)
	case "convert":
		if len(args) != 3 {
			return usage()
		}
		return convert(args[1], args[2], out)
	default:
		return fmt.Errorf("unknown command %q\n%v", cmd, usage())
	}
}

// inspect prints the validated header and section table. Parsing the
// header already checks every checksum, so a file that inspects also
// has intact bytes; `verify` additionally proves it assembles.
func inspect(path string, out io.Writer) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, err := snapwire.Inspect(buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: snapwire v%d, %d bytes, %d sections\n", path, h.Version, len(buf), len(h.Sections))
	fmt.Fprintf(out, "%-24s %10s %10s %10s\n", "SECTION", "OFFSET", "BYTES", "CRC32C")
	for _, s := range h.Sections {
		fmt.Fprintf(out, "%-24s %10d %10d   %08x\n", s.Name(), s.Offset, s.Length, s.CRC)
	}
	return nil
}

// verify runs the full load path — checksums, bounds, structural
// cross-validation, session decode — and summarizes the image.
func verify(path string, out io.Writer) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := snapwire.Verify(buf); err != nil {
		return err
	}
	l, err := snapwire.Load(buf)
	if err != nil {
		return err
	}
	sessions, err := l.DecodeSessions()
	if err != nil {
		return err
	}
	profiles := "no"
	if l.Meta.HasUPM {
		profiles = "yes"
	}
	fmt.Fprintf(out, "%s: OK (v%d, %d bytes, %d sections, %d queries, %d sessions, profiles: %s)\n",
		path, l.Version, l.Size, len(l.Sections), l.Snap.Rep.NumQueries(), len(sessions), profiles)
	return nil
}

// convert migrates a legacy gob engine file to the wire format.
func convert(in, outPath string, out io.Writer) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if _, err := snapwire.Inspect(data); err == nil {
		return fmt.Errorf("%s is already a snapwire image", in)
	}
	img, err := convertLegacy(data)
	if err != nil {
		return fmt.Errorf("converting %s: %w", in, err)
	}
	if err := os.WriteFile(outPath, img, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s (%d bytes gob) -> %s (%d bytes snapwire v%d)\n",
		in, len(data), outPath, len(img), snapwire.Version)
	return nil
}
