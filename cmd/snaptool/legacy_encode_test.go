package main

// Test-only legacy gob ENCODER. The serving tree can no longer write
// the old format; these helpers synthesize legacy files on demand so
// convert is tested against arbitrary worlds (not just the checked-in
// fixtures) and so the gob-vs-wire load benchmarks have a large input.

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/sparse"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

func (x *gobIndex) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(x.Names)
	return buf.Bytes(), err
}

func (m *gobMatrix) GobEncode() ([]byte, error) {
	w := struct {
		Rows, Cols int
		RowPtr     []int
		ColIdx     []int
		Val        []float64
	}{m.Rows, m.Cols, m.RowPtr, m.ColIdx, m.Val}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

func (m *gobUPM) GobEncode() ([]byte, error) {
	type wire gobUPM
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode((*wire)(m))
	return buf.Bytes(), err
}

func indexToGob(ix *bipartite.Index) *gobIndex {
	return &gobIndex{Names: ix.Names()}
}

func matrixToGob(m *sparse.Matrix) *gobMatrix {
	v := m.View()
	return &gobMatrix{Rows: m.Rows(), Cols: m.Cols(), RowPtr: v.RowPtr, ColIdx: v.ColIdx, Val: v.Val}
}

// upmToGob reverses upmStateFromWire: the flat state back into the
// nested map-of-maps shape the old format stored.
func upmToGob(t testing.TB, u *topicmodel.UPM) *gobUPM {
	st := u.State()
	k := st.Cfg.K
	unflatten := func(flat []float64, n, cols int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = flat[i*cols : (i+1)*cols]
		}
		return out
	}
	w := &gobUPM{
		Cfg: st.Cfg, V: st.V, U: st.U,
		Alpha:      st.Alpha,
		BetaPrior:  unflatten(st.BetaPrior, k, st.V),
		DeltaPrior: unflatten(st.DeltaPrior, k, st.U),
		BetaSum:    st.BetaSum, DeltaSum: st.DeltaSum,
		Ndk: unflatten(st.Ndk, st.D, k), NdkSum: st.NdkSum,
		NkwdSum: unflatten(st.NkwdSum, st.D, k),
		NkudSum: unflatten(st.NkudSum, st.D, k),
		DocID:   map[string]int{},
	}
	w.Tau = make([][2]float64, k)
	for i := 0; i < k; i++ {
		w.Tau[i] = [2]float64{st.Tau[2*i], st.Tau[2*i+1]}
	}
	toMaps := func(ptr, idx []int64, val []float64) [][]map[int]float64 {
		out := make([][]map[int]float64, st.D)
		for d := 0; d < st.D; d++ {
			out[d] = make([]map[int]float64, k)
			for ki := 0; ki < k; ki++ {
				r := d*k + ki
				m := map[int]float64{}
				for p := ptr[r]; p < ptr[r+1]; p++ {
					m[int(idx[p])] = val[p]
				}
				out[d][ki] = m
			}
		}
		return out
	}
	w.Nkwd = toMaps(st.NkwdPtr, st.NkwdIdx, st.NkwdVal)
	w.Nkud = toMaps(st.NkudPtr, st.NkudIdx, st.NkudVal)
	docs, err := arena.NewStrings(st.DocOffsets, st.DocBlob, st.DocTable)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range docs.Names() {
		w.DocID[name] = i
	}
	return w
}

// buildLegacyWorld trains a fresh serving state and serializes it in
// the legacy gob format, returning the gob bytes and the structures
// they were built from.
func buildLegacyWorld(t testing.TB, users, sessionsPerUser int) ([]byte, *snapshot.Snapshot, *topicmodel.UPM, *bipartite.Index) {
	w := synth.Generate(synth.Config{Seed: 91, NumFacets: 5, NumUsers: users, SessionsPerUser: sessionsPerUser})
	sessions := querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
	snap := snapshot.Builder{Weighting: bipartite.CFIQF}.FromSessions(sessions, w.Log.Len(), 1)
	corpus := topicmodel.BuildCorpus(sessions, nil)
	upm := topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{
		K: 6, Iterations: 10, Seed: 2, HyperRounds: 1, HyperIters: 3,
	})
	eng := gobEngine{
		Version: legacyVersion,
		Cfg:     core.Config{Compact: bipartite.CompactConfig{Budget: 80}},
		Rep: &gobRep{
			Queries:   indexToGob(snap.Rep.Queries),
			Sessions:  snap.Rep.Sessions,
			Weighting: int(snap.Rep.Weighting),
		},
		HasUPM:    true,
		UPM:       upmToGob(t, upm),
		WordIndex: indexToGob(corpus.Words),
	}
	for v := 0; v < bipartite.NumViews; v++ {
		eng.Rep.Objects[v] = indexToGob(snap.Rep.Objects[v])
		eng.Rep.W[v] = matrixToGob(snap.Rep.W[v])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(eng); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snap, upm, corpus.Words
}
