package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/snapwire"
	"repro/internal/sparse"
	"repro/internal/topicmodel"
)

// This file is the one remaining reader of the pre-wire gob engine
// format. The serving binary dropped its gob codecs when snapwire
// landed; snaptool keeps local mirror structs instead so old files stay
// convertible without the serving code carrying a second format
// forever. gob matches struct fields by name (and GobEncoder payloads
// are opaque inner streams), so the mirrors decode streams written by
// the original types without sharing their names.

// legacyVersion is the only gob format version that ever shipped.
const legacyVersion = 1

// gobEngine mirrors the old core.engineWire.
type gobEngine struct {
	Version   int
	Cfg       core.Config
	Rep       *gobRep
	HasUPM    bool
	UPM       *gobUPM
	WordIndex *gobIndex
}

// gobRep mirrors the exported fields of bipartite.Representation as
// gob encoded them.
type gobRep struct {
	Queries   *gobIndex
	Objects   [3]*gobIndex
	W         [3]*gobMatrix
	Sessions  []querylog.Session
	Weighting int
}

// gobIndex decodes the old bipartite.Index GobEncoder payload: an
// inner gob stream holding the name slice.
type gobIndex struct{ Names []string }

func (x *gobIndex) GobDecode(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&x.Names)
}

// gobMatrix decodes the old sparse.Matrix GobEncoder payload.
type gobMatrix struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

func (m *gobMatrix) GobDecode(data []byte) error {
	var w struct {
		Rows, Cols int
		RowPtr     []int
		ColIdx     []int
		Val        []float64
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*m = w
	return nil
}

// gobUPM decodes the old topicmodel.UPM GobEncoder payload (the
// map-of-maps count layout the flat format replaced).
type gobUPM struct {
	Cfg        topicmodel.UPMConfig
	V, U       int
	Alpha      []float64
	BetaPrior  [][]float64
	DeltaPrior [][]float64
	BetaSum    []float64
	DeltaSum   []float64
	Tau        [][2]float64
	Ndk        [][]float64
	NdkSum     []float64
	Nkwd       [][]map[int]float64
	NkwdSum    [][]float64
	Nkud       [][]map[int]float64
	NkudSum    [][]float64
	DocID      map[string]int
}

func (m *gobUPM) GobDecode(data []byte) error {
	type wire gobUPM // drop the method set so the inner decode is structural
	var w wire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*m = gobUPM(w)
	return nil
}

// decodeLegacy parses one legacy gob engine file.
func decodeLegacy(data []byte) (*gobEngine, error) {
	var e gobEngine
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("decoding legacy gob: %w", err)
	}
	if e.Version != legacyVersion {
		return nil, fmt.Errorf("legacy engine file version %d, want %d", e.Version, legacyVersion)
	}
	if e.Rep == nil {
		return nil, fmt.Errorf("legacy engine file has no representation")
	}
	return &e, nil
}

func indexFromNames(x *gobIndex) *bipartite.Index {
	ix := bipartite.NewIndex()
	if x == nil {
		return ix
	}
	for _, n := range x.Names {
		ix.Intern(n)
	}
	return ix
}

func matrixFromWire(m *gobMatrix) (*sparse.Matrix, error) {
	if m == nil {
		return nil, fmt.Errorf("missing view matrix")
	}
	rowPtr := m.RowPtr
	if rowPtr == nil {
		rowPtr = make([]int, m.Rows+1)
	}
	return sparse.FromCSRChecked(m.Rows, m.Cols, rowPtr, m.ColIdx, m.Val)
}

// upmStateFromWire reshapes the map-of-maps legacy model into the flat
// UPMState layout (counts as CSR over rows r = d*K+k with ascending
// column ids; priors row-major; docs as an arena string table).
func upmStateFromWire(w *gobUPM) (*topicmodel.UPMState, error) {
	k := w.Cfg.K
	d := len(w.Ndk)
	if k <= 0 {
		return nil, fmt.Errorf("legacy UPM has K=%d", k)
	}
	st := &topicmodel.UPMState{
		Cfg: w.Cfg, V: w.V, U: w.U, D: d,
		Alpha:   w.Alpha,
		BetaSum: w.BetaSum, DeltaSum: w.DeltaSum,
	}
	st.BetaPrior = flatten(w.BetaPrior, k, w.V)
	st.DeltaPrior = flatten(w.DeltaPrior, k, w.U)
	st.Tau = make([]float64, 0, 2*k)
	for _, t := range w.Tau {
		st.Tau = append(st.Tau, t[0], t[1])
	}
	st.Ndk = flatten(w.Ndk, d, k)
	st.NdkSum = w.NdkSum
	st.NkwdSum = flatten(w.NkwdSum, d, k)
	st.NkudSum = flatten(w.NkudSum, d, k)
	st.NkwdPtr, st.NkwdIdx, st.NkwdVal = countsToCSR(w.Nkwd, d, k)
	st.NkudPtr, st.NkudIdx, st.NkudVal = countsToCSR(w.Nkud, d, k)

	// Doc (user) names ordered by their ids.
	names := make([]string, d)
	for name, id := range w.DocID {
		if id < 0 || id >= d {
			return nil, fmt.Errorf("legacy UPM doc id %d out of range [0,%d)", id, d)
		}
		names[id] = name
	}
	st.DocOffsets, st.DocBlob, st.DocTable = arena.BuildStrings(names)
	return st, nil
}

// flatten concatenates rows×cols nested rows into one row-major slice,
// zero-padding short or missing rows (gob drops empty slices to nil).
func flatten(rows [][]float64, n, cols int) []float64 {
	out := make([]float64, n*cols)
	for i := 0; i < n && i < len(rows); i++ {
		copy(out[i*cols:(i+1)*cols], rows[i])
	}
	return out
}

// countsToCSR converts counts[d][k]map[id]val into CSR over D*K rows
// with ascending column ids, the flat layout UPMFromState validates.
func countsToCSR(counts [][]map[int]float64, d, k int) (ptr, idx []int64, val []float64) {
	ptr = make([]int64, d*k+1)
	for di := 0; di < d; di++ {
		for ki := 0; ki < k; ki++ {
			var m map[int]float64
			if di < len(counts) && ki < len(counts[di]) {
				m = counts[di][ki]
			}
			cols := make([]int, 0, len(m))
			for c := range m {
				cols = append(cols, c)
			}
			sort.Ints(cols)
			for _, c := range cols {
				idx = append(idx, int64(c))
				val = append(val, m[c])
			}
			ptr[di*k+ki+1] = int64(len(idx))
		}
	}
	if idx == nil {
		idx, val = []int64{}, []float64{}
	}
	return ptr, idx, val
}

// convertLegacy rebuilds a wire image from a legacy gob engine file.
func convertLegacy(data []byte) ([]byte, error) {
	src, err := rebuildSource(data)
	if err != nil {
		return nil, err
	}
	img, err := snapwire.Encode(src)
	if err != nil {
		return nil, err
	}
	// Paranoia: never emit an image the loader would reject.
	if _, err := snapwire.Load(img); err != nil {
		return nil, fmt.Errorf("converted image fails to load (bug): %w", err)
	}
	return img, nil
}

// rebuildSource is the decode half of convert: gob decode plus the
// reconstruction of every serving structure (indexes, CSR matrices,
// symbols, flat UPM) — exactly the work the old gob LoadEngine did on
// every start, which the wire format's Load replaces with checksums
// and slice aliasing.
func rebuildSource(data []byte) (*snapwire.Source, error) {
	e, err := decodeLegacy(data)
	if err != nil {
		return nil, err
	}
	rep := &bipartite.Representation{
		Queries:   indexFromNames(e.Rep.Queries),
		Sessions:  e.Rep.Sessions,
		Weighting: bipartite.Weighting(e.Rep.Weighting),
	}
	for v := 0; v < bipartite.NumViews; v++ {
		rep.Objects[v] = indexFromNames(e.Rep.Objects[v])
		if rep.W[v], err = matrixFromWire(e.Rep.W[v]); err != nil {
			return nil, fmt.Errorf("view %d: %w", v, err)
		}
	}
	cfgJSON, err := json.Marshal(e.Cfg)
	if err != nil {
		return nil, fmt.Errorf("encoding config: %w", err)
	}
	src := &snapwire.Source{
		Config:   cfgJSON,
		Rep:      rep,
		Symbols:  snapshot.BuildSymbols(rep),
		Sessions: e.Rep.Sessions,
		Meta:     snapwire.Meta{NumSessions: len(e.Rep.Sessions)},
	}
	if e.HasUPM {
		if e.UPM == nil || e.WordIndex == nil {
			return nil, fmt.Errorf("legacy engine file profile section incomplete")
		}
		st, err := upmStateFromWire(e.UPM)
		if err != nil {
			return nil, err
		}
		if src.UPM, err = topicmodel.UPMFromState(st); err != nil {
			return nil, fmt.Errorf("rebuilding UPM: %w", err)
		}
		src.Words = indexFromNames(e.WordIndex)
	}
	return src, nil
}
