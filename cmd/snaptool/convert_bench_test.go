package main

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/snapwire"
)

// TestSynthesizedLegacyConverts is the structural round trip on a
// fresh world (the checked-in fixtures pin the historical byte
// layout; this pins the transformation itself): train → legacy gob
// encode → convert → load, then compare the loaded snapshot against
// the structures the gob was built from. Every step is a lossless
// reshape, so equality is exact.
func TestSynthesizedLegacyConverts(t *testing.T) {
	data, snap, upm, words := buildLegacyWorld(t, 12, 10)
	img, err := convertLegacy(data)
	if err != nil {
		t.Fatal(err)
	}
	l, err := snapwire.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.Snap.Rep.Queries.Len(), snap.Rep.Queries.Len(); got != want {
		t.Fatalf("queries %d, want %d", got, want)
	}
	for v := 0; v < bipartite.NumViews; v++ {
		a, b := l.Snap.Rep.W[v].View(), snap.Rep.W[v].View()
		if len(a.Val) != len(b.Val) {
			t.Fatalf("view %d: nnz %d, want %d", v, len(a.Val), len(b.Val))
		}
		for i := range a.Val {
			if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
				t.Fatalf("view %d: entry %d differs", v, i)
			}
		}
	}
	sessions, err := l.DecodeSessions()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sessions), len(snap.Rep.Sessions); got != want {
		t.Fatalf("sessions %d, want %d", got, want)
	}
	if got, want := l.Words.Len(), words.Len(); got != want {
		t.Fatalf("words %d, want %d", got, want)
	}
	st, want := l.Snap.Profiles.UPM().State(), upm.State()
	if st.D != want.D || st.V != want.V || st.U != want.U {
		t.Fatalf("UPM dims (%d,%d,%d), want (%d,%d,%d)", st.D, st.V, st.U, want.D, want.V, want.U)
	}
	for i := range want.Ndk {
		if st.Ndk[i] != want.Ndk[i] {
			t.Fatalf("Ndk[%d] = %v, want %v", i, st.Ndk[i], want.Ndk[i])
		}
	}
}

// --- gob vs wire load -------------------------------------------------
//
// The before/after of the tentpole on one large synth world: the gob
// path re-runs the full decode + rebuild (allocating the entire object
// graph), the wire path validates checksums and aliases slices. The
// retained-objects metric is the GC story — what each load leaves
// behind for every future mark phase to trace.

var (
	cmpOnce sync.Once
	cmpGob  []byte
	cmpImg  []byte
)

func cmpFixture(tb testing.TB) (gobData, img []byte) {
	cmpOnce.Do(func() {
		cmpGob, _, _, _ = buildLegacyWorld(tb, 50, 25)
		var err error
		if cmpImg, err = convertLegacy(cmpGob); err != nil {
			tb.Fatal(err)
		}
	})
	return cmpGob, cmpImg
}

// reportRetained reruns load once across a GC fence and reports how
// many heap objects it pins while its result is live.
func reportRetained(b *testing.B, load func() any) {
	b.StopTimer()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	keep := load()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.HeapObjects)-float64(m0.HeapObjects), "retained-objects")
	runtime.KeepAlive(keep)
}

// BenchmarkLegacyGobLoad is what every process start paid before the
// wire format: gob decode plus full serving-structure reconstruction.
func BenchmarkLegacyGobLoad(b *testing.B) {
	data, _ := cmpFixture(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rebuildSource(data); err != nil {
			b.Fatal(err)
		}
	}
	reportRetained(b, func() any {
		src, err := rebuildSource(data)
		if err != nil {
			b.Fatal(err)
		}
		return src
	})
}

// BenchmarkConvertedWireLoad loads the same world from its converted
// image — the after side of BenchmarkLegacyGobLoad.
func BenchmarkConvertedWireLoad(b *testing.B) {
	_, img := cmpFixture(b)
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapwire.Load(img); err != nil {
			b.Fatal(err)
		}
	}
	reportRetained(b, func() any {
		l, err := snapwire.Load(img)
		if err != nil {
			b.Fatal(err)
		}
		return l
	})
}
