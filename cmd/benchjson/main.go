// Command benchjson turns `go test -bench` text output into a JSON
// document keyed by benchmark name, and doubles as the allocation
// guard for the hot-path benchmarks.
//
// Collect mode (default) reads benchmark output on stdin and writes
// JSON to -o (stdout when unset). Repeated runs of the same benchmark
// (-count > 1) are aggregated: ns/op keeps the MINIMUM across runs
// (the least-noise estimate on a shared box), bytes and allocs keep
// the maximum (they are deterministic in practice; max surfaces any
// run that allocated more).
//
//	go test -run '^$' -bench . -benchmem -count 5 ./... | benchjson -o BENCH.json
//
// Guard mode fails (exit 1) when a named benchmark's allocs/op exceeds
// a ceiling — `make bench-guard` uses it to keep the steady-state
// hitting-time sweep allocation-free:
//
//	go test -run '^$' -bench SteadyState -benchmem ./internal/randomwalk/ |
//	    benchjson -guard BenchmarkHittingTimeSteadyState -max-allocs 0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark's aggregated measurement.
type result struct {
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (MB/s, retained-objects,
	// bytes, ...) keyed by unit name; max across runs, like the other
	// deterministic columns.
	Extra  map[string]float64 `json:"extra,omitempty"`
	hasMem bool
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkHittingTimeFlat-4   1000   1234 ns/op   56 B/op   7 allocs/op
//
// returning the benchmark name (CPU suffix stripped) and the parsed
// fields, or ok=false for non-benchmark lines.
func parseLine(line string) (name string, r result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r.Runs = 1
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
			r.hasMem = true
		case "allocs/op":
			r.AllocsOp = v
			r.hasMem = true
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return name, r, r.NsPerOp > 0
}

func merge(into *result, r result) {
	if into.Runs == 0 {
		*into = r
		return
	}
	into.Runs += r.Runs
	if r.NsPerOp < into.NsPerOp {
		into.NsPerOp = r.NsPerOp
	}
	if r.BPerOp > into.BPerOp {
		into.BPerOp = r.BPerOp
	}
	if r.AllocsOp > into.AllocsOp {
		into.AllocsOp = r.AllocsOp
	}
	for unit, v := range r.Extra {
		if into.Extra == nil {
			into.Extra = map[string]float64{}
		}
		if v > into.Extra[unit] {
			into.Extra[unit] = v
		}
	}
	into.hasMem = into.hasMem || r.hasMem
}

func main() {
	out := flag.String("o", "", "write JSON to this file (stdout when empty)")
	guard := flag.String("guard", "", "guard mode: benchmark name to check instead of emitting JSON")
	maxAllocs := flag.Float64("max-allocs", 0, "guard mode: fail when allocs/op exceeds this")
	flag.Parse()

	results := map[string]*result{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if results[name] == nil {
			results[name] = &result{}
			order = append(order, name)
		}
		merge(results[name], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *guard != "" {
		r, ok := results[*guard]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: guard benchmark %s not found in input\n", *guard)
			os.Exit(1)
		}
		if !r.hasMem {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no -benchmem fields to guard\n", *guard)
			os.Exit(1)
		}
		if r.AllocsOp > *maxAllocs {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocates %.0f allocs/op, ceiling %.0f\n",
				*guard, r.AllocsOp, *maxAllocs)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s ok (%.0f allocs/op ≤ %.0f)\n", *guard, r.AllocsOp, *maxAllocs)
		return
	}

	doc := make(map[string]*result, len(results))
	for _, n := range order {
		doc[n] = results[n]
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(enc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
