package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkHittingTimeFlat-4   \t 1000\t   1234.5 ns/op\t  56 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkHittingTimeFlat" {
		t.Errorf("name = %q (CPU suffix should be stripped)", name)
	}
	if r.NsPerOp != 1234.5 || r.BPerOp != 56 || r.AllocsOp != 7 || !r.hasMem {
		t.Errorf("parsed = %+v", r)
	}

	if _, _, ok := parseLine("PASS"); ok {
		t.Error("PASS parsed as benchmark")
	}
	if _, _, ok := parseLine("goos: linux"); ok {
		t.Error("header parsed as benchmark")
	}
	// No -cpu suffix, no -benchmem fields.
	name, r, ok = parseLine("BenchmarkX 10 99 ns/op")
	if !ok || name != "BenchmarkX" || r.hasMem {
		t.Errorf("plain line: ok=%v name=%q r=%+v", ok, name, r)
	}
}

func TestMergeAggregation(t *testing.T) {
	var agg result
	merge(&agg, result{Runs: 1, NsPerOp: 120, BPerOp: 64, AllocsOp: 2, hasMem: true})
	merge(&agg, result{Runs: 1, NsPerOp: 100, BPerOp: 64, AllocsOp: 3, hasMem: true})
	merge(&agg, result{Runs: 1, NsPerOp: 140, BPerOp: 32, AllocsOp: 2, hasMem: true})
	if agg.Runs != 3 {
		t.Errorf("runs = %d", agg.Runs)
	}
	if agg.NsPerOp != 100 { // min across runs
		t.Errorf("ns/op = %v, want min 100", agg.NsPerOp)
	}
	if agg.BPerOp != 64 || agg.AllocsOp != 3 { // max across runs
		t.Errorf("mem = %v B, %v allocs; want max 64, 3", agg.BPerOp, agg.AllocsOp)
	}
}
