// Command upmtool trains the User Profiling Model on a query log and
// prints its learned structure: per-topic word content (under the
// learned β priors), temporal Beta profiles, and per-user topic
// profiles with each user's personal top words — the interpretability
// view of the paper's Section V-A.
//
// Usage:
//
//	upmtool -log log.tsv -k 10 -iters 80
//	upmtool -synthetic -users 20 -k 8 -user u0003
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

func main() {
	var (
		logPath   = flag.String("log", "", "TSV query log")
		aol       = flag.Bool("aol", false, "treat -log as AOL-format")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic log")
		users     = flag.Int("users", 20, "synthetic users")
		k         = flag.Int("k", 10, "topic count")
		iters     = flag.Int("iters", 80, "Gibbs sweeps")
		seed      = flag.Int64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "parallel Gibbs workers")
		topN      = flag.Int("top", 8, "words shown per topic")
		user      = flag.String("user", "", "also print this user's profile in detail")
	)
	flag.Parse()

	var log *pqsda.Log
	switch {
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		if *aol {
			log, err = pqsda.ReadAOLLog(f)
		} else {
			log, err = pqsda.ReadLog(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *synthetic:
		log = pqsda.SyntheticLog(pqsda.SyntheticConfig{Seed: *seed, NumUsers: *users, SessionsPerUser: 25}).Log
	default:
		fatal(fmt.Errorf("need -log FILE or -synthetic"))
	}

	clean, _ := querylog.Clean(log, querylog.CleanerConfig{})
	sessions := querylog.Sessionize(clean, querylog.SessionizerConfig{})
	corpus := topicmodel.BuildCorpus(sessions, nil)
	fmt.Fprintf(os.Stderr, "corpus: %d users, %d word types, %d URLs, %d tokens\n",
		len(corpus.Docs), corpus.V(), corpus.U(), corpus.TotalWords())

	upm := topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{
		K: *k, Iterations: *iters, Seed: *seed, Workers: *workers,
		HyperRounds: 2, HyperIters: 15,
	})

	fmt.Println("== learned topics (global content via β priors) ==")
	for t := 0; t < upm.K(); t++ {
		a, b := upm.Tau(t)
		fmt.Printf("topic %2d  time Beta(%.2f,%.2f) mean %.2f  words:", t, a, b, a/(a+b))
		for _, w := range upm.TopWords(t, *topN) {
			fmt.Printf(" %s", corpus.Words.Name(w))
		}
		fmt.Println()
	}

	// Users ranked by profile concentration (most focused first).
	type uc struct {
		id  string
		max float64
	}
	var ranked []uc
	for _, doc := range corpus.Docs {
		d, _ := upm.DocOf(doc.UserID)
		theta := upm.Theta(d)
		m := 0.0
		for _, p := range theta {
			if p > m {
				m = p
			}
		}
		ranked = append(ranked, uc{doc.UserID, m})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].max > ranked[j].max })
	fmt.Println("\n== most focused users ==")
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("%-10s peak θ = %.2f\n", ranked[i].id, ranked[i].max)
	}

	if *user != "" {
		d, ok := upm.DocOf(*user)
		if !ok {
			fatal(fmt.Errorf("user %q not in corpus", *user))
		}
		theta := upm.Theta(d)
		fmt.Printf("\n== profile of %s ==\n", *user)
		for t := 0; t < upm.K(); t++ {
			if theta[t] < 0.05 {
				continue
			}
			fmt.Printf("topic %2d  θ = %.2f  personal words:", t, theta[t])
			for _, w := range upm.TopWordsFor(d, t, *topN) {
				fmt.Printf(" %s", corpus.Words.Name(w))
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "upmtool:", err)
	os.Exit(1)
}
