// Command evalab runs the offline diversification-strategy A/B harness:
// it replays synthetic-world queries through one engine under every
// registered strategy (optionally plus the paper's click-graph
// baselines) and scores each strategy's suggestion lists against the
// world's ground-truth facets — α-nDCG against a pooled greedy ideal,
// subtopic recall and intra-list distance — split by scenario class
// (ambiguous / navigational / cold-start). Results go to stdout as a
// summary table and to -out as JSON.
//
// Usage:
//
//	evalab -scale small -out EVAL.json
//	evalab -scale paper -baselines -strategies hitting,mmr,pfar,relevance
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		scale      = flag.String("scale", "small", "world size: small (test-suite scale) or paper (benchmark scale)")
		seed       = flag.Int64("seed", 1, "synthetic-world seed (the run is deterministic in it)")
		k          = flag.Int("k", 10, "suggestion list length")
		alpha      = flag.Float64("alpha", 0.5, "alpha-nDCG redundancy penalty")
		out        = flag.String("out", "", "write the JSON report to this file (empty: stdout only)")
		strategies = flag.String("strategies", "", "comma-separated registry strategies to score (empty: all registered)")
		baselines  = flag.Bool("baselines", false, "also score the paper's FRW/BRW/HT/DQS baselines via the Diversifier adapter")
		maxQueries = flag.Int("max-queries", 0, "cap replayed queries per scenario class (0: all sampled)")
	)
	flag.Parse()

	cfg := experiments.EvalConfig{
		K:                *k,
		Alpha:            *alpha,
		IncludeBaselines: *baselines,
		MaxQueries:       *maxQueries,
	}
	switch *scale {
	case "small":
		cfg.Scale = experiments.SmallScale(*seed)
	case "paper":
		cfg.Scale = experiments.PaperScale(*seed)
	default:
		fatal(fmt.Errorf("unknown -scale %q (want small or paper)", *scale))
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Strategies = append(cfg.Strategies, s)
			}
		}
	}

	report, err := experiments.RunEvalAB(cfg)
	if err != nil {
		fatal(err)
	}

	printSummary(report)

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "evalab: report written to %s\n", *out)
	}
}

func printSummary(r *experiments.EvalReport) {
	names := make([]string, 0, len(r.Scenarios))
	for name := range r.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("evalab: seed=%d k=%d alpha=%.2f strategies=%s\n",
		r.Seed, r.K, r.Alpha, strings.Join(r.Strategies, ","))
	for _, name := range names {
		fmt.Printf("\n[%s]\n", name)
		fmt.Printf("%-12s %8s %8s %10s %10s %8s %10s\n",
			"strategy", "queries", "listLen", "a-nDCG", "s-recall", "ILD", "selectMs")
		for _, sc := range r.Scenarios[name] {
			fmt.Printf("%-12s %8d %8.2f %10.4f %10.4f %8.4f %10.3f\n",
				sc.Strategy, sc.Queries, sc.MeanListLen, sc.AlphaNDCG,
				sc.SubtopicRecall, sc.IntraListDistance, sc.MeanSelectMs)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalab:", err)
	os.Exit(1)
}
