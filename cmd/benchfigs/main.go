// Command benchfigs regenerates the paper's evaluation figures (Figs.
// 3–7 of Section VI) on the synthetic world and prints each as a text
// table. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	benchfigs -all                 # every figure at the default scale
//	benchfigs -fig 3a -fig 4       # selected figures
//	benchfigs -scale paper -seed 7 # larger, slower, closer to the paper
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*f = append(*f, part)
		}
	}
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to regenerate (3a 3b 3c 3d 4 5a 5b 5c 5d 6 7); repeatable")
	all := flag.Bool("all", false, "regenerate every figure")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 77, "world seed")
	chart := flag.Bool("chart", false, "render Unicode charts instead of tables")
	list := flag.Bool("list", false, "list figure ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.FigureIDs {
			fmt.Println(id)
		}
		return
	}

	if *all {
		figs = append(figList{}, experiments.FigureIDs...)
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "benchfigs: nothing to do; pass -all or -fig ID")
		flag.Usage()
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale(*seed)
	case "paper":
		sc = experiments.PaperScale(*seed)
	default:
		fmt.Fprintf(os.Stderr, "benchfigs: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d)…\n", *scale, *seed)
	setup := experiments.NewSetup(sc)
	for _, id := range figs {
		start := time.Now()
		fig, err := setup.RunFigure(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfigs: fig %s: %v\n", id, err)
			os.Exit(1)
		}
		if *chart {
			fmt.Println(fig.RenderChart())
		} else {
			fmt.Println(fig.Render())
		}
		fmt.Fprintf(os.Stderr, "fig %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
