package pqsda

import (
	"bytes"
	"testing"
	"time"
)

func facadeWorld(t *testing.T) *World {
	t.Helper()
	return SyntheticLog(SyntheticConfig{Seed: 61, NumFacets: 5, NumUsers: 10, SessionsPerUser: 15})
}

func TestFacadeEndToEnd(t *testing.T) {
	w := facadeWorld(t)
	e, err := NewEngine(w.Log, Config{CompactBudget: 60, Topics: 5, TrainingIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a frequent query.
	best, bestN := "", 0
	for q, n := range w.Log.QueryFrequency() {
		if n > bestN {
			best, bestN = q, n
		}
	}
	res, err := e.Suggest(w.UserIDs()[0], best, nil, time.Now(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if len(res.Suggestions) != len(res.Diversified) {
		t.Error("personalization changed the candidate set size")
	}
}

func TestFacadeDiversificationOnly(t *testing.T) {
	w := facadeWorld(t)
	e, err := NewEngine(w.Log, Config{CompactBudget: 60, DiversificationOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Profiles() != nil {
		t.Error("DiversificationOnly engine trained profiles")
	}
}

func TestFacadeLogRoundTrip(t *testing.T) {
	w := facadeWorld(t)
	var buf bytes.Buffer
	if err := WriteLog(w.Log, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Log.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), w.Log.Len())
	}
}

func TestFacadeSessionize(t *testing.T) {
	w := facadeWorld(t)
	sessions := Sessionize(w.Log)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
}

func TestFacadeOneShotSuggest(t *testing.T) {
	w := facadeWorld(t)
	best, bestN := "", 0
	for q, n := range w.Log.QueryFrequency() {
		if n > bestN {
			best, bestN = q, n
		}
	}
	sugs, err := Suggest(w.Log, w.UserIDs()[0], best, 5, Config{
		CompactBudget: 50, Topics: 5, TrainingIterations: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 || len(sugs) > 5 {
		t.Fatalf("suggestions = %v", sugs)
	}
}

// TestFacadeWorkersDeterministic pins the -workers contract end to end:
// every compute stage (UPM training, the Eq. 15 CG solve, hitting-time
// sweeps) is bit-identical at any worker count, so two engines differing
// only in Workers must suggest exactly the same queries in the same
// order.
func TestFacadeWorkersDeterministic(t *testing.T) {
	w := facadeWorld(t)
	base := Config{CompactBudget: 60, Topics: 5, TrainingIterations: 20}
	seq, err := NewEngine(w.Log, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 4
	parE, err := NewEngine(w.Log, par)
	if err != nil {
		t.Fatal(err)
	}
	best, bestN := "", 0
	for q, n := range w.Log.QueryFrequency() {
		if n > bestN {
			best, bestN = q, n
		}
	}
	now := time.Now()
	for _, uid := range w.UserIDs()[:3] {
		a, err := seq.Suggest(uid, best, nil, now, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parE.Suggest(uid, best, nil, now, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Suggestions) != len(b.Suggestions) {
			t.Fatalf("user %s: %d vs %d suggestions", uid, len(a.Suggestions), len(b.Suggestions))
		}
		for i := range a.Suggestions {
			if a.Suggestions[i] != b.Suggestions[i] {
				t.Fatalf("user %s: suggestion %d differs: %q vs %q",
					uid, i, a.Suggestions[i], b.Suggestions[i])
			}
		}
	}
}
