package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict exposition-format checker for the registry's
// own output. It exists because "renders something Prometheus-shaped"
// rots silently: a histogram missing its +Inf bucket, a _count that
// disagrees with the cumulative buckets, or a malformed exemplar all
// scrape fine until the one day an operator needs them. LintText and
// LintOpenMetrics are run by the conformance tests on every CI run, so
// the exposition endpoints cannot drift from the format contract.

// LintText validates a classic Prometheus text-format (0.0.4)
// exposition. It returns the first violation found, nil when clean.
func LintText(data string) error { return lintExposition(data, false) }

// LintOpenMetrics validates an OpenMetrics text exposition: everything
// LintText checks, plus the mandatory `# EOF` terminator, the
// counter-family naming rule (the TYPE line declares the family without
// the _total suffix its samples carry), and exemplar syntax on
// histogram bucket lines.
func LintOpenMetrics(data string) error { return lintExposition(data, true) }

// histKey identifies one histogram series (family + its labels minus
// le) while accumulating bucket invariants.
type histState struct {
	lastLe    float64
	lastCum   uint64
	hasInf    bool
	infCum    uint64
	count     uint64
	hasCount  bool
	hasSum    bool
	bucketSeq int
}

// famInfo is the declared type of one metric family.
type famInfo struct{ typ string }

func lintExposition(data string, openMetrics bool) error {
	families := map[string]famInfo{}
	hists := map[string]*histState{}
	lines := strings.Split(data, "\n")
	sawEOF := false
	for n, line := range lines {
		lineNo := n + 1
		if line == "" {
			continue
		}
		if sawEOF {
			return fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "EOF":
				sawEOF = true
			case "HELP":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
			case "TYPE":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, rest)
				}
				if _, dup := families[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				families[name] = famInfo{typ: rest}
			}
			continue
		}
		s, err := parseSample(line, openMetrics)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix, ok := resolveFamily(s.name, families, openMetrics)
		if !ok {
			return fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, s.name)
		}
		typ := families[fam].typ
		if openMetrics && typ == "counter" && suffix != "_total" {
			return fmt.Errorf("line %d: counter sample %q must carry the _total suffix", lineNo, s.name)
		}
		if s.exemplar != nil && !(typ == "histogram" && suffix == "_bucket") {
			return fmt.Errorf("line %d: exemplar on non-bucket sample %q", lineNo, s.name)
		}
		if typ != "histogram" {
			continue
		}
		key := fam + "\x00" + labelsKey(s.labels, "le")
		st := hists[key]
		if st == nil {
			st = &histState{lastLe: math.Inf(-1)}
			hists[key] = st
		}
		switch suffix {
		case "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			le, err := parseLe(leStr)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q", lineNo, leStr)
			}
			if le <= st.lastLe {
				return fmt.Errorf("line %d: le %q not ascending for %s", lineNo, leStr, fam)
			}
			cum := uint64(s.value)
			if float64(cum) != s.value || s.value < 0 {
				return fmt.Errorf("line %d: bucket value %v not a non-negative integer", lineNo, s.value)
			}
			if st.bucketSeq > 0 && cum < st.lastCum {
				return fmt.Errorf("line %d: cumulative bucket count decreased for %s", lineNo, fam)
			}
			st.lastLe, st.lastCum = le, cum
			st.bucketSeq++
			if math.IsInf(le, 1) {
				st.hasInf, st.infCum = true, cum
			}
		case "_sum":
			st.hasSum = true
		case "_count":
			st.hasCount = true
			st.count = uint64(s.value)
		default:
			return fmt.Errorf("line %d: histogram sample %q has no histogram suffix", lineNo, s.name)
		}
	}
	if openMetrics && !sawEOF {
		return fmt.Errorf("missing # EOF terminator")
	}
	for key, st := range hists {
		fam := key[:strings.IndexByte(key, 0)]
		if !st.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", fam)
		}
		if !st.hasSum || !st.hasCount {
			return fmt.Errorf("histogram %s: missing _sum or _count", fam)
		}
		if st.count != st.infCum {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", fam, st.count, st.infCum)
		}
	}
	return nil
}

// parseComment splits a # line into its kind ("HELP"/"TYPE"/"EOF",
// anything else is an ignorable comment), metric name and remainder.
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimPrefix(body, " ")
	switch {
	case body == "EOF":
		return "EOF", "", "", nil
	case strings.HasPrefix(body, "HELP "), strings.HasPrefix(body, "TYPE "):
		kind = body[:4]
		fields := strings.SplitN(body[5:], " ", 2)
		if len(fields) == 0 || fields[0] == "" {
			return "", "", "", fmt.Errorf("%s without metric name", kind)
		}
		name = fields[0]
		if len(fields) == 2 {
			rest = fields[1]
		}
		if kind == "TYPE" && rest == "" {
			return "", "", "", fmt.Errorf("TYPE without type")
		}
		return kind, name, rest, nil
	default:
		return "comment", "", "", nil
	}
}

// sample is one parsed exposition line.
type sample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar *sampleExemplar
}

type sampleExemplar struct {
	labels map[string]string
	value  float64
	hasTs  bool
	ts     float64
}

func parseSample(line string, openMetrics bool) (sample, error) {
	var s sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value on sample line")
	}
	s.name = rest[:i]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		var err error
		s.labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	// Value runs to the next space (or end of line).
	valStr := rest
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		valStr, rest = rest[:j], rest[j+1:]
	} else {
		rest = ""
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valStr)
	}
	s.value = v
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, nil
	}
	if strings.HasPrefix(rest, "#") {
		if !openMetrics {
			return s, fmt.Errorf("exemplar in non-OpenMetrics exposition")
		}
		ex, err := parseExemplar(rest)
		if err != nil {
			return s, err
		}
		s.exemplar = ex
		return s, nil
	}
	// Classic format allows a trailing integer timestamp.
	if _, err := strconv.ParseInt(rest, 10, 64); err != nil {
		return s, fmt.Errorf("trailing garbage %q", rest)
	}
	return s, nil
}

// parseExemplar parses `# {k="v",…} value [timestamp]`.
func parseExemplar(rest string) (*sampleExemplar, error) {
	rest = strings.TrimPrefix(rest, "#")
	rest = strings.TrimPrefix(rest, " ")
	if !strings.HasPrefix(rest, "{") {
		return nil, fmt.Errorf("exemplar without label set")
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar labels: %v", err)
	}
	// The OpenMetrics exemplar label set is capped at 128 runes of
	// combined names and values.
	runes := 0
	for k, v := range labels {
		runes += len([]rune(k)) + len([]rune(v))
	}
	if runes > 128 {
		return nil, fmt.Errorf("exemplar label set over 128 runes")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar needs value [timestamp], got %q", rest)
	}
	ex := &sampleExemplar{labels: labels}
	if ex.value, err = parseValue(fields[0]); err != nil {
		return nil, fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		ex.hasTs = true
		if ex.ts, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return ex, nil
}

// parseLabels parses a `{k="v",…}` block, returning the remainder after
// the closing brace.
func parseLabels(rest string) (map[string]string, string, error) {
	if !strings.HasPrefix(rest, "{") {
		return nil, rest, fmt.Errorf("no label block")
	}
	rest = rest[1:]
	labels := map[string]string{}
	for {
		rest = strings.TrimPrefix(rest, ",")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, rest, fmt.Errorf("label without =")
		}
		name := rest[:eq]
		if !validLabelName(name) {
			return nil, rest, fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, rest, fmt.Errorf("unquoted label value")
		}
		val, n, err := unquoteLabelValue(rest)
		if err != nil {
			return nil, rest, err
		}
		if _, dup := labels[name]; dup {
			return nil, rest, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		rest = rest[n:]
	}
}

// unquoteLabelValue consumes a quoted label value with \\, \" and \n
// escapes, returning the decoded value and bytes consumed.
func unquoteLabelValue(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf(`bad escape \%c in label value`, s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseValue accepts the exposition float syntax including +Inf/-Inf
// and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// resolveFamily maps a sample name to its declared family: the name
// itself, or — for histogram samples — the name minus the
// _bucket/_sum/_count suffix, or — for OpenMetrics counters — the name
// minus _total.
func resolveFamily(name string, families map[string]famInfo, openMetrics bool) (fam, suffix string, ok bool) {
	if f, ok := families[name]; ok && f.typ != "histogram" {
		return name, "", true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := families[base]; ok && f.typ == "histogram" {
				return base, suf, true
			}
		}
	}
	if openMetrics {
		base := strings.TrimSuffix(name, "_total")
		if base != name {
			if f, ok := families[base]; ok && f.typ == "counter" {
				return base, "_total", true
			}
		}
	}
	// Classic format declares counters under their full name.
	if f, ok := families[name]; ok {
		_ = f
		return name, "", true
	}
	return "", "", false
}

// labelsKey canonicalizes a label set (minus one excluded key) so all
// samples of one histogram series aggregate under one state.
func labelsKey(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q;", k, labels[k])
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
