package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition output for a
// small registry: header once per family, cumulative buckets with `le`,
// _sum/_count, sorted and quoted labels.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_duration_seconds", "Test latency.", []float64{1, 2}, Labels{"stage": "solve"})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	r.CounterFunc("test_requests_total", "Requests served.", nil, func() float64 { return 42 })
	r.GaugeFunc("test_generation", "", Labels{"b": "x", "a": `quo"te`}, func() float64 { return 3 })

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP test_duration_seconds Test latency.
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{stage="solve",le="1"} 1
test_duration_seconds_bucket{stage="solve",le="2"} 2
test_duration_seconds_bucket{stage="solve",le="+Inf"} 3
test_duration_seconds_sum{stage="solve"} 11
test_duration_seconds_count{stage="solve"} 3
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 42
# TYPE test_generation gauge
test_generation{a="quo\"te",b="x"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusParses feeds a realistic registry through a
// minimal exposition-format parser: every sample line must parse, every
// histogram family must have monotonically non-decreasing cumulative
// buckets ending at +Inf == _count, and _sum must match observations.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	for _, stage := range []string{"compact", "solve"} {
		h := r.NewHistogram("stage_seconds", "Per-stage latency.", LatencyBuckets, Labels{"stage": stage})
		for i := 1; i <= 10; i++ {
			h.Observe(float64(i) * 1e-4)
		}
	}
	depth := r.NewHistogram("cg_iterations", "CG iterations.", CountBuckets, nil)
	depth.Observe(17)
	r.CounterFunc("reqs_total", "", nil, func() float64 { return 5 })

	var b strings.Builder
	r.WritePrometheus(&b)

	type family struct {
		lastCum map[string]uint64 // label-set → last cumulative bucket value
		infSeen map[string]uint64
		count   map[string]uint64
	}
	families := map[string]*family{}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# ") {
				parts := strings.SplitN(line, " ", 4)
				if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
					t.Fatalf("malformed comment line: %q", line)
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name, labels = name[:i], name[i+1:len(name)-1]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := name[:len(name)-len("_bucket")]
			f := families[fam]
			if f == nil {
				f = &family{lastCum: map[string]uint64{}, infSeen: map[string]uint64{}, count: map[string]uint64{}}
				families[fam] = f
			}
			le := ""
			base := []string{}
			for _, pair := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				uq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("label value not quoted in %q: %v", line, err)
				}
				if k == "le" {
					le = uq
				} else {
					base = append(base, pair)
				}
			}
			if le == "" {
				t.Fatalf("bucket without le label: %q", line)
			}
			key := strings.Join(base, ",")
			if uint64(val) < f.lastCum[key] {
				t.Errorf("non-monotonic cumulative bucket in %s{%s}: %v after %d", fam, labels, val, f.lastCum[key])
			}
			f.lastCum[key] = uint64(val)
			if le == "+Inf" {
				f.infSeen[key] = uint64(val)
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("non-numeric le %q in %q", le, line)
			}
		case strings.HasSuffix(name, "_count"):
			fam := name[:len(name)-len("_count")]
			if f := families[fam]; f != nil {
				f.count[labels] = uint64(val)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(families) != 2 {
		t.Fatalf("parsed %d histogram families, want 2", len(families))
	}
	for fam, f := range families {
		if len(f.infSeen) == 0 {
			t.Errorf("family %s has no +Inf bucket", fam)
		}
		for key, inf := range f.infSeen {
			if c, ok := f.count[key]; !ok || c != inf {
				t.Errorf("family %s{%s}: +Inf bucket %d != _count %d", fam, key, inf, c)
			}
		}
	}
}

func TestRegistryObserveByName(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("named", "", []float64{1}, nil)
	labeled := r.NewHistogram("labeled", "", []float64{1}, Labels{"x": "y"})
	r.Observe("named", 0.5)
	r.Observe("labeled", 0.5) // labeled series are not name-addressable
	r.Observe("missing", 0.5) // unknown names are a silent no-op
	if got := h.Snapshot().Count; got != 1 {
		t.Errorf("named count = %d, want 1", got)
	}
	if got := labeled.Snapshot().Count; got != 0 {
		t.Errorf("labeled count = %d, want 0 (not addressable by name)", got)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("one_total", "", nil, func() float64 { return 1 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if want := fmt.Sprintf("one_total %g\n", 1.0); !strings.Contains(rec.Body.String(), want) {
		t.Errorf("body missing %q:\n%s", want, rec.Body.String())
	}
}
