package obs

import "context"

// The pipeline is instrumented from the HTTP handler down to the CG
// solver, but the deep packages (sparse, hittingtime, suggestcache)
// must not depend on the server. The contract is the context: the
// server attaches a Trace, a metric Sink and a request ID; instrumented
// code calls StartSpan / Observe / RequestIDFrom, all of which no-op
// when nothing is attached (a library user or benchmark pays only a
// context lookup).

type ctxKey int

const (
	ctxTrace ctxKey = iota
	ctxSink
	ctxRequestID
)

// Sink receives named histogram observations. *Registry implements it.
type Sink interface {
	Observe(name string, v float64)
}

// Names of the label-less pipeline-depth histograms the instrumented
// packages record into. The server registers histograms under exactly
// these names; any registry without them drops the observations.
const (
	// MetricCGIterations is the CG iteration count of one Eq. 15 solve.
	MetricCGIterations = "pqsda_cg_iterations"
	// MetricCGResidual is the final relative residual of one solve.
	MetricCGResidual = "pqsda_cg_residual"
	// MetricHittingRounds is the number of greedy rounds one
	// Algorithm-1 selection ran (each round is one truncated
	// hitting-time computation).
	MetricHittingRounds = "pqsda_hitting_rounds"
	// MetricHittingWalkSteps is the total matrix-sweep count of one
	// selection: the sweeps actually executed, which is at most rounds
	// × truncation depth l and less when a round's recursion converges
	// early.
	MetricHittingWalkSteps = "pqsda_hitting_walk_steps"
	// MetricSnapshotBuildDuration is the wall time of one serving
	// snapshot build, labeled by build mode ("full"/"delta").
	MetricSnapshotBuildDuration = "pqsda_snapshot_build_duration_seconds"
	// MetricSnapshotDeltaEntries is the fresh-entry count folded in by
	// one delta build.
	MetricSnapshotDeltaEntries = "pqsda_snapshot_delta_entries"
)

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxTrace, t)
}

// TraceFrom returns the attached trace, nil when absent.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxTrace).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace; returns a nil span
// (whose methods no-op) when no trace is attached.
func StartSpan(ctx context.Context, name string) *Span {
	return TraceFrom(ctx).StartSpan(name)
}

// WithSink attaches a metric sink to the context.
func WithSink(ctx context.Context, s Sink) context.Context {
	return context.WithValue(ctx, ctxSink, s)
}

// Observe records v into the context's sink under name; no-op when no
// sink is attached or the sink has no histogram of that name.
func Observe(ctx context.Context, name string, v float64) {
	if s, ok := ctx.Value(ctxSink).(Sink); ok {
		s.Observe(name, v)
	}
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the attached request ID, "" when absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}
