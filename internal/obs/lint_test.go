package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// testRegistry builds a registry exercising every series type: a
// counter, a gauge, a labelled histogram family and a label-less
// histogram with exemplars enabled.
func testRegistry() *Registry {
	r := NewRegistry()
	r.CounterFunc("test_requests_total", "Requests served.", nil, func() float64 { return 42 })
	r.GaugeFunc("test_depth", "Queue depth.", Labels{"gate": "suggest"}, func() float64 { return 3 })
	for _, stage := range []string{"solve", "hitting"} {
		h := r.NewHistogram("test_stage_seconds", "Per-stage latency.", []float64{0.01, 0.1, 1}, Labels{"stage": stage})
		h.Observe(0.005)
		h.Observe(0.5)
		h.Observe(5) // overflow bucket
	}
	h := r.NewHistogram("test_e2e_seconds", "End-to-end latency.", []float64{0.01, 0.1, 1}, nil).
		EnableExemplars(-1)
	h.ObserveExemplar(0.005, "req1", "trc1")
	h.ObserveExemplar(0.5, "req2", "trc2")
	return r
}

func TestLintClassicExposition(t *testing.T) {
	var b strings.Builder
	testRegistry().WritePrometheus(&b)
	out := b.String()
	if err := LintText(out); err != nil {
		t.Fatalf("classic exposition fails lint: %v\n%s", err, out)
	}
	// Exemplars must NOT leak into the classic format.
	if strings.Contains(out, "trace_id") {
		t.Fatalf("classic exposition carries exemplars:\n%s", out)
	}
	if strings.Contains(out, "# EOF") {
		t.Fatalf("classic exposition carries OpenMetrics terminator:\n%s", out)
	}
}

func TestLintOpenMetricsExposition(t *testing.T) {
	var b strings.Builder
	testRegistry().WriteOpenMetrics(&b)
	out := b.String()
	if err := LintOpenMetrics(out); err != nil {
		t.Fatalf("OpenMetrics exposition fails lint: %v\n%s", err, out)
	}
	// The counter family must drop _total in its TYPE line while the
	// sample keeps it.
	if !strings.Contains(out, "# TYPE test_requests counter") {
		t.Fatalf("counter family not declared without _total:\n%s", out)
	}
	if !strings.Contains(out, "test_requests_total 42") {
		t.Fatalf("counter sample lost its _total suffix:\n%s", out)
	}
	// The exemplar-enabled histogram's occupied buckets carry exemplars.
	if !strings.Contains(out, `# {trace_id="trc1",request_id="req1"} 0.005`) {
		t.Fatalf("low-bucket exemplar missing:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
}

func TestLintRejectsViolations(t *testing.T) {
	cases := []struct {
		name string
		om   bool
		data string
	}{
		{"undeclared family", false, "some_metric 1\n"},
		{"missing +Inf bucket", false, "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 1\nh_count 2\n"},
		{"count disagrees with +Inf", false, "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n"},
		{"non-cumulative buckets", false, "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n"},
		{"le not ascending", false, "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"missing _sum", false, "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 1` + "\nh_count 1\n"},
		{"exemplar in classic format", false, "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1 # {trace_id="t"} 0.5` + "\nh_sum 1\nh_count 1\n"},
		{"missing EOF", true, "# TYPE c counter\nc_total 1\n"},
		{"counter sample without _total", true, "# TYPE c counter\nc 1\n# EOF\n"},
		{"content after EOF", true, "# TYPE c counter\nc_total 1\n# EOF\nc_total 2\n"},
		{"exemplar on non-bucket sample", true, "# TYPE c counter\n" +
			`c_total 1 # {trace_id="t"} 0.5` + "\n# EOF\n"},
		{"malformed exemplar", true, "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1 # trace_id="t" 0.5` + "\nh_sum 1\nh_count 1\n# EOF\n"},
		{"exemplar labels over 128 runes", true, "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1 # {trace_id="` + strings.Repeat("x", 130) + `"} 0.5` +
			"\nh_sum 1\nh_count 1\n# EOF\n"},
		{"duplicate TYPE", false, "# TYPE c counter\n# TYPE c counter\nc 1\n"},
		{"bad metric name", false, "# TYPE 9bad counter\n"},
	}
	for _, tc := range cases {
		lint := LintText
		if tc.om {
			lint = LintOpenMetrics
		}
		if err := lint(tc.data); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", tc.name, tc.data)
		}
	}
}

func TestExemplarRotationRateLimit(t *testing.T) {
	h := NewHistogram([]float64{1}).EnableExemplars(time.Hour)
	h.ObserveExemplar(0.5, "req1", "trc1")
	h.ObserveExemplar(0.6, "req2", "trc2") // within minAge: must not rotate
	snap := h.Snapshot()
	if snap.Exemplars[0] == nil || snap.Exemplars[0].TraceID != "trc1" {
		t.Fatalf("exemplar rotated within minAge: %+v", snap.Exemplars[0])
	}
	if snap.Count != 2 {
		t.Fatalf("rate limit must not drop observations: count = %d", snap.Count)
	}

	// Negative minAge rotates on every observation (the test hook).
	h2 := NewHistogram([]float64{1}).EnableExemplars(-1)
	h2.ObserveExemplar(0.5, "req1", "trc1")
	h2.ObserveExemplar(0.6, "req2", "trc2")
	if ex := h2.Snapshot().Exemplars[0]; ex == nil || ex.TraceID != "trc2" {
		t.Fatalf("negative minAge did not rotate: %+v", ex)
	}
}

func TestExemplarDisabledAndEmptyTrace(t *testing.T) {
	// Without EnableExemplars, ObserveExemplar must behave exactly like
	// Observe and the snapshot must not report exemplar slots.
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, "req1", "trc1")
	snap := h.Snapshot()
	if snap.Exemplars != nil {
		t.Fatalf("disabled histogram reports exemplars: %+v", snap.Exemplars)
	}
	if snap.Count != 1 {
		t.Fatalf("observation lost: count = %d", snap.Count)
	}
	// An empty trace ID records the value but pins nothing.
	h2 := NewHistogram([]float64{1}).EnableExemplars(-1)
	h2.ObserveExemplar(0.5, "req1", "")
	if ex := h2.Snapshot().Exemplars[0]; ex != nil {
		t.Fatalf("empty trace ID pinned an exemplar: %+v", ex)
	}
}

func TestExemplarReset(t *testing.T) {
	h := NewHistogram([]float64{1}).EnableExemplars(-1)
	h.ObserveExemplar(0.5, "req1", "trc1")
	h.Reset()
	if ex := h.Snapshot().Exemplars[0]; ex != nil {
		t.Fatalf("Reset left an exemplar behind: %+v", ex)
	}
}

// TestExemplarScrapeHammer is the -race hammer: concurrent exemplar
// observations, OpenMetrics scrapes and resets must stay linter-clean
// and race-free.
func TestExemplarScrapeHammer(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("hammer_seconds", "Hammered histogram.", []float64{0.01, 0.1, 1}, nil).
		EnableExemplars(-1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.005, 0.05, 0.5, 5}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveExemplar(vals[i%len(vals)], "req", "trc")
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.WriteOpenMetrics(&b)
		if err := LintOpenMetrics(b.String()); err != nil {
			// A scrape concurrent with observations may catch _count
			// mid-update relative to the buckets; the invariant the ring
			// guarantees is per-line well-formedness, so only re-check
			// a quiescent scrape below for the full invariants.
			if !strings.Contains(err.Error(), "_count") {
				t.Fatalf("scrape %d: %v\n%s", i, err, b.String())
			}
		}
		if i%10 == 0 {
			h.Reset()
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: all invariants must hold exactly.
	var b strings.Builder
	r.WriteOpenMetrics(&b)
	if err := LintOpenMetrics(b.String()); err != nil {
		t.Fatalf("quiescent scrape: %v\n%s", err, b.String())
	}
}
