package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestTraceSpanLifecycle(t *testing.T) {
	tr := NewTrace("req-1")
	sp := tr.StartSpan("solve")
	sp.SetAttr("iterations", 12)
	sp.SetAttr("residual", 1e-11)
	time.Sleep(time.Millisecond)
	sp.End()
	d := sp.dur
	sp.End() // double-End keeps the first duration
	if sp.dur != d {
		t.Errorf("double End changed duration: %v → %v", d, sp.dur)
	}

	snap := tr.Snapshot()
	if snap.ID != "req-1" {
		t.Errorf("snapshot ID = %q", snap.ID)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(snap.Spans))
	}
	ss := snap.Spans[0]
	if ss.Name != "solve" {
		t.Errorf("span name = %q", ss.Name)
	}
	if ss.DurationMS <= 0 {
		t.Errorf("span duration = %g, want > 0", ss.DurationMS)
	}
	if ss.Attrs["iterations"] != 12 || ss.Attrs["residual"] != 1e-11 {
		t.Errorf("span attrs = %v", ss.Attrs)
	}
}

// TestNilSafety exercises the "no trace attached" path: every method on
// a nil trace/span must no-op, because the pipeline calls them
// unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("anything")
	if sp != nil {
		t.Fatal("nil trace returned a non-nil span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if snap := tr.Snapshot(); len(snap.Spans) != 0 || snap.ID != "" {
		t.Errorf("nil trace snapshot = %+v", snap)
	}

	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Error("TraceFrom on bare context should be nil")
	}
	StartSpan(ctx, "x").End() // no trace attached: no-op
	Observe(ctx, "x", 1)      // no sink attached: no-op
	if id := RequestIDFrom(ctx); id != "" {
		t.Errorf("RequestIDFrom on bare context = %q", id)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTrace("abc")
	reg := NewRegistry()
	h := reg.NewHistogram(MetricCGIterations, "", CountBuckets, nil)
	ctx := WithTrace(context.Background(), tr)
	ctx = WithSink(ctx, reg)
	ctx = WithRequestID(ctx, "abc")

	if TraceFrom(ctx) != tr {
		t.Error("TraceFrom lost the trace")
	}
	StartSpan(ctx, "stage").End()
	Observe(ctx, MetricCGIterations, 9)
	if got := h.Snapshot().Count; got != 1 {
		t.Errorf("sink observation count = %d, want 1", got)
	}
	if id := RequestIDFrom(ctx); id != "abc" {
		t.Errorf("request ID = %q", id)
	}
	if got := len(tr.Snapshot().Spans); got != 1 {
		t.Errorf("trace has %d spans, want 1", got)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(TraceSnapshot{ID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshots()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []string{"t4", "t3", "t2"} { // most recent first
		if got[i].ID != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].ID, want)
		}
	}
	if NewTraceRing(0) == nil {
		t.Fatal("zero-capacity ring should clamp, not fail")
	}
}
