package obs

import (
	"sync"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// Trace is one request's span record: the pipeline stages it ran, each
// with wall-clock bounds and attributes (seeds found, CG iterations,
// final residual, hitting-time rounds, cache outcome …). A Trace is
// created per suggestion request and carried down the pipeline via
// context.Context; instrumented packages add spans through StartSpan
// without knowing who is listening.
type Trace struct {
	// ID is the request ID the trace belongs to.
	ID string
	// TraceID is the trace's own identifier — distinct from the request
	// ID because the request ID may be client-supplied (and reused),
	// while exemplars and the flight recorder need a key that uniquely
	// names one recorded span tree. Empty when the creator did not
	// assign one.
	TraceID string
	Start   time.Time

	mu    sync.Mutex
	spans []*Span
}

// NewTrace starts an empty trace.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// StartSpan opens a named span. Safe on a nil trace (returns a nil
// span whose methods no-op), so instrumentation costs nothing when no
// trace is attached to the context.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed, attributed operation inside a trace. Methods are
// nil-safe; a span is written by the single goroutine running its
// stage.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration
	ended bool
	attrs []Attr
}

// SetAttr attaches an attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span. Double-End keeps the first duration.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.dur = time.Since(s.start)
	s.ended = true
}

// SpanSnapshot is the JSON shape of one span.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartOffsetMS is the span's start relative to the trace start.
	StartOffsetMS float64        `json:"startOffsetMs"`
	DurationMS    float64        `json:"durationMs"`
	Attrs         map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON shape of a completed trace, served inline
// on debug=trace requests and from the /debug/traces ring.
type TraceSnapshot struct {
	ID         string         `json:"requestId"`
	TraceID    string         `json:"traceId,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"durationMs"`
	Spans      []SpanSnapshot `json:"spans"`
}

// Snapshot renders the trace for serialization. Spans still open are
// reported with their duration so far. Intended for completed
// requests; the per-span attrs are copied without synchronization
// against a stage that is still appending.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := TraceSnapshot{ID: t.ID, TraceID: t.TraceID, Start: t.Start, DurationMS: msFloat(time.Since(t.Start))}
	for _, s := range spans {
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		ss := SpanSnapshot{
			Name:          s.name,
			StartOffsetMS: msFloat(s.start.Sub(t.Start)),
			DurationMS:    msFloat(d),
		}
		if len(s.attrs) > 0 {
			ss.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		out.Spans = append(out.Spans, ss)
	}
	return out
}

func msFloat(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// TraceRing keeps the last N trace snapshots. Add is a short critical
// section per completed request (off the per-stage hot path).
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceSnapshot
	next int
	n    int
}

// NewTraceRing creates a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceSnapshot, capacity)}
}

// Add stores a snapshot, evicting the oldest when full.
func (r *TraceRing) Add(ts TraceSnapshot) {
	r.mu.Lock()
	r.buf[r.next] = ts
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Find returns the most recent stored trace whose trace ID or request
// ID equals id. This is what resolves a /metrics exemplar ("p99 is
// 40ms, trace deadbeef…") to the span tree of the actual request.
func (r *TraceRing) Find(id string) (TraceSnapshot, bool) {
	if id == "" {
		return TraceSnapshot{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		if t := r.buf[idx]; t.TraceID == id || t.ID == id {
			return t, true
		}
	}
	return TraceSnapshot{}, false
}

// Snapshots returns the stored traces, most recent first.
func (r *TraceRing) Snapshots() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
