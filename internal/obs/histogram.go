// Package obs is the reproduction's stdlib-only observability layer:
// lock-free fixed-boundary latency/depth histograms with quantile
// estimation, a Prometheus-text-format metric registry, and
// request-scoped traces carried through context.Context. It exists so
// the serving pipeline can expose the per-stage cost accounting of the
// paper's own evaluation (Fig. 7's stage breakdown, the Eq. 15 CG
// solve, Algorithm 1's hitting-time rounds) live, per request and in
// aggregate, without taking a lock on the suggestion hot path.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary histogram safe for concurrent use. All
// updates are single atomic adds plus bounded CAS loops (sum, max), so
// concurrent Observe calls never contend on a lock — the property that
// lets it replace the serving path's old mean/max aggregates without
// changing the path's lock-freedom.
//
// Bounds are bucket UPPER bounds (Prometheus `le` semantics): bucket i
// counts observations v ≤ bounds[i]; one implicit overflow bucket
// counts the rest. Bounds must be sorted ascending and never change
// after construction.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last = overflow (+Inf)
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	maxBits atomic.Uint64 // math.Float64bits of the running max

	// exemplars, when EnableExemplars was called, holds one recent
	// occupant per bucket (len(bounds)+1, aligned with buckets). A slot
	// is replaced at most once per exemplarMinAge, so the retention cost
	// on a hot bucket is bounded regardless of traffic; high buckets see
	// rare observations and therefore keep them — which is the point:
	// "p99 is 40ms" links to an actual 40ms request.
	exemplars      []atomic.Pointer[Exemplar]
	exemplarMinAge time.Duration
}

// Exemplar pins one concrete observation to a histogram bucket: the
// request and trace that produced the value, so a bucket count on
// /metrics can be followed to the span tree of a real request.
// Exemplars are immutable once stored.
type Exemplar struct {
	// Value is the observed value (same unit as the histogram).
	Value float64
	// TraceID and RequestID identify the occupant request.
	TraceID   string
	RequestID string
	// Time is when the observation was recorded.
	Time time.Time
}

// defaultExemplarMinAge rate-limits exemplar rotation per bucket.
const defaultExemplarMinAge = time.Second

// EnableExemplars allocates the per-bucket exemplar slots. minAge
// bounds how often one bucket's exemplar may rotate: 0 applies the
// 1-second default, negative rotates on every observation (useful in
// tests). Call before serving; it is not synchronized against
// concurrent Observe.
func (h *Histogram) EnableExemplars(minAge time.Duration) *Histogram {
	if minAge == 0 {
		minAge = defaultExemplarMinAge
	}
	h.exemplars = make([]atomic.Pointer[Exemplar], len(h.buckets))
	h.exemplarMinAge = minAge
	return h
}

// NewHistogram builds a histogram over the given upper bounds. The
// bounds slice is copied; it must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Negative values clamp to zero (durations
// and counts are the intended domain).
func (h *Histogram) Observe(v float64) { h.observe(v) }

// observe is the shared update path; it returns the bucket index so
// ObserveExemplar can attach the exemplar without a second search.
func (h *Histogram) observe(v float64) int {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, overflow otherwise
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	return i
}

// ObserveExemplar records one value and, when exemplar retention is
// enabled and the bucket's current exemplar is older than the rotation
// age, pins this observation's request/trace IDs to the bucket. Without
// EnableExemplars (or with an empty trace ID) it is exactly Observe —
// the hot path pays one nil check. The replacement itself is a single
// allocation, rate-limited per bucket.
func (h *Histogram) ObserveExemplar(v float64, requestID, traceID string) {
	i := h.observe(v)
	if h.exemplars == nil || traceID == "" {
		return
	}
	cur := h.exemplars[i].Load()
	now := time.Now()
	if cur != nil && now.Sub(cur.Time) < h.exemplarMinAge {
		return
	}
	// A racing replacement loses; either exemplar is a real recent
	// occupant of the bucket, which is all the contract promises.
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, RequestID: requestID, Time: now})
}

// Reset zeroes every bucket and the count/sum/max. It is not atomic
// with respect to concurrent Observe calls — an observation racing the
// reset may land in a partially cleared state — which is acceptable for
// its purpose: re-baselining a long-running process's aggregates.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.maxBits.Store(0)
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
}

// Snapshot is a point-in-time copy of a histogram's state.
type Snapshot struct {
	// Bounds are the bucket upper bounds (shared, read-only).
	Bounds []float64
	// Counts are per-bucket (non-cumulative) observation counts;
	// len(Bounds)+1 with the overflow bucket last.
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64
	// Exemplars are the per-bucket pinned observations, aligned with
	// Counts; nil when exemplar retention is disabled. Entries may be
	// nil (bucket never occupied since the last reset).
	Exemplars []*Exemplar
}

// Snapshot copies the current state. Buckets are read individually, so
// a snapshot taken under concurrent writes may be off by in-flight
// observations — fine for monitoring.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if h.exemplars != nil {
		s.Exemplars = make([]*Exemplar, len(h.exemplars))
		for i := range h.exemplars {
			s.Exemplars[i] = h.exemplars[i].Load()
		}
	}
	return s
}

// Mean returns the average observation, 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimator Prometheus's histogram_quantile uses, so the numbers in
// /v1/stats and a Prometheus dashboard agree. Observations in the
// overflow bucket report the tracked exact max. Returns 0 when empty.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max // overflow bucket: no finite upper bound
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		est := lo + (hi-lo)*(rank-prev)/float64(c)
		// The tracked exact max is a tighter cap than the bucket bound.
		if est > s.Max && s.Max > 0 {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// ExpBuckets returns n exponentially spaced upper bounds
// start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bucket layouts (documented in DESIGN.md's Observability
// section).
var (
	// LatencyBuckets covers 1µs … ~33.6s doubling per bucket — wide
	// enough for a cache hit (µs) and a cold multi-second CG solve in
	// the same histogram. Values are SECONDS (Prometheus convention).
	LatencyBuckets = ExpBuckets(1e-6, 2, 26)
	// CountBuckets covers 1 … 8192 doubling per bucket: CG iteration
	// counts, hitting-time greedy rounds, walk steps.
	CountBuckets = ExpBuckets(1, 2, 14)
	// ResidualBuckets covers 1e-12 … 10 per decade: the final relative
	// residual of the Eq. 15 solve (tol defaults to 1e-10; a residual
	// in the top decades means the solver hit its iteration budget).
	ResidualBuckets = ExpBuckets(1e-12, 10, 13)
)
