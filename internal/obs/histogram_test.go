package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refQuantile is the sort-based reference the histogram estimator is
// checked against: the same rank definition (cum ≥ q·n) applied to the
// exact sorted sample.
func refQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileAccuracy drives random samples through the histogram and
// checks every estimated quantile against the sort-based reference.
// With factor-2 buckets, estimate and reference land in the same bucket
// [lo, 2·lo], so the ratio is bounded by the bucket factor.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		h := NewHistogram(LatencyBuckets)
		n := 2000 + rng.Intn(3000)
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform across the bucket range, like real latencies.
			vals[i] = math.Exp(rng.Float64()*math.Log(1e6)) * 1e-6
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		snap := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			ref := refQuantile(vals, q)
			est := snap.Quantile(q)
			if ratio := est / ref; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("trial %d q=%g: estimate %g vs reference %g (ratio %g outside bucket factor)",
					trial, q, est, ref, ratio)
			}
		}
		if got := snap.Quantile(1.0); got != vals[n-1] {
			// p100 must be the tracked exact max, not a bucket bound.
			t.Errorf("trial %d: p100 = %g, want exact max %g", trial, got, vals[n-1])
		}
	}
}

func TestHistogramSnapshotAggregates(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100, -2, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 105 { // negatives and NaN clamp to 0
		t.Errorf("sum = %g, want 105", s.Sum)
	}
	if s.Max != 100 {
		t.Errorf("max = %g, want 100", s.Max)
	}
	// Buckets: ≤1 holds {0.5, 0, 0}, ≤2 holds {1.5}, ≤4 holds {3}, overflow {100}.
	want := []uint64{3, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if m := s.Mean(); m != 105.0/6 {
		t.Errorf("mean = %g, want %g", m, 105.0/6)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(10) // overflow bucket only
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("overflow-only quantile = %g, want tracked max 10", got)
	}
	if got := s.Quantile(-1); got != 10 {
		t.Errorf("q<0 should clamp; got %g", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Errorf("q>1 should clamp; got %g", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(5)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("after reset: count=%d sum=%g max=%g, want zeros", s.Count, s.Sum, s.Max)
	}
	for i, c := range s.Counts {
		if c != 0 {
			t.Fatalf("bucket %d = %d after reset", i, c)
		}
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run
// under -race it proves the lock-free claim, and the final snapshot
// must account for every observation exactly.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	h := NewHistogram(CountBuckets)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100 + g))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	wantSum := 0.0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			wantSum += float64(i%100 + g)
		}
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
	if s.Max != 99+goroutines-1 {
		t.Errorf("max = %g, want %d", s.Max, 99+goroutines-1)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if !sort.Float64sAreSorted(LatencyBuckets) || !sort.Float64sAreSorted(CountBuckets) || !sort.Float64sAreSorted(ResidualBuckets) {
		t.Fatal("default bucket layouts must be sorted ascending")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 3) should panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}
