package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels are the constant label pairs of one metric series (e.g.
// {"stage": "solve"}). nil means no labels.
type Labels map[string]string

// Registry holds metric series and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration takes a lock;
// observation and by-name lookup (Observe) are lock-free, so a registry
// installed on the serving hot path adds no contention.
//
// Unlike expvar's process-global namespace, a Registry is an instance:
// every Server (or test) owns its own and nothing collides.
type Registry struct {
	mu     sync.Mutex
	series []series
	// byName maps the names of label-less histograms for the
	// context-sink Observe path. Registration replaces the whole map
	// (copy-on-write) so lookups are a lock-free atomic load.
	byName atomic.Pointer[map[string]*Histogram]
}

type series struct {
	name, help, typ string // typ: "counter" | "gauge" | "histogram"
	labels          Labels
	hist            *Histogram     // histogram series
	fn              func() float64 // counter/gauge series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]*Histogram{}
	r.byName.Store(&empty)
	return r
}

// NewHistogram registers and returns a histogram series. Several
// histograms may share a name with distinct labels (they render as one
// metric family). Label-less histograms are additionally addressable by
// name through Observe — the hook packages deep in the pipeline
// (sparse, hittingtime) use to record without importing the server.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels Labels) *Histogram {
	h := NewHistogram(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, series{name: name, help: help, typ: "histogram", labels: labels, hist: h})
	if len(labels) == 0 {
		old := *r.byName.Load()
		next := make(map[string]*Histogram, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[name] = h
		r.byName.Store(&next)
	}
	return h
}

// CounterFunc registers a counter series backed by a read function —
// the natural fit for the server's existing atomic counters.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(series{name: name, help: help, typ: "counter", labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series backed by a read function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(series{name: name, help: help, typ: "gauge", labels: labels, fn: fn})
}

func (r *Registry) register(s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, s)
}

// Observe records v into the label-less histogram registered under
// name. Unknown names are a silent no-op, so instrumented packages work
// against any registry (or none). The lookup is one atomic pointer load
// plus a map read — lock-free.
func (r *Registry) Observe(name string, v float64) {
	if h := (*r.byName.Load())[name]; h != nil {
		h.Observe(v)
	}
}

// WritePrometheus renders every registered series in the text
// exposition format: one # HELP/# TYPE header per metric family (in
// registration order), histogram families as cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.write(w, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// counter families are declared under their name minus the mandatory
// _total suffix, histogram bucket lines carry the bucket's pinned
// exemplar (`# {trace_id="…",request_id="…"} value timestamp`), and the
// output is terminated by the required `# EOF` marker. This is the
// format a scraper opts into via Accept: application/openmetrics-text —
// and the jump-off point from "p99 is high" to an actual slow request.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.write(w, true)
	io.WriteString(w, "# EOF\n")
}

func (r *Registry) write(w io.Writer, openMetrics bool) {
	r.mu.Lock()
	all := append([]series(nil), r.series...)
	r.mu.Unlock()

	seen := make(map[string]bool, len(all))
	for _, s := range all {
		if !seen[s.name] {
			seen[s.name] = true
			family := s.name
			if openMetrics && s.typ == "counter" {
				family = strings.TrimSuffix(family, "_total")
			}
			if s.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(s.help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", family, s.typ)
		}
		switch s.typ {
		case "histogram":
			writeHistogram(w, s, openMetrics)
		default:
			fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels, "", ""), formatFloat(s.fn()))
		}
	}
}

func writeHistogram(w io.Writer, s series, openMetrics bool) {
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d", s.name, renderLabels(s.labels, "le", le), cum)
		if openMetrics && snap.Exemplars != nil {
			if ex := snap.Exemplars[i]; ex != nil {
				fmt.Fprintf(w, " # {trace_id=%q,request_id=%q} %s %s",
					ex.TraceID, ex.RequestID, formatFloat(ex.Value),
					formatTimestamp(ex.Time))
			}
		}
		io.WriteString(w, "\n")
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels, "", ""), formatFloat(snap.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels, "", ""), snap.Count)
}

// formatTimestamp renders an exemplar timestamp as Unix seconds with
// millisecond precision, the OpenMetrics convention.
func formatTimestamp(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixMilli())/1e3, 'f', 3, 64)
}

// renderLabels renders {k="v",...} with keys sorted, appending the
// extra pair (the histogram `le`) last as Prometheus convention has it.
// Returns "" when there is nothing to render.
func renderLabels(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	// %q escapes `\`, `"` and newlines exactly as the exposition
	// format requires for label values.
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// Names returns every distinct metric family name in registration
// order — the surface the metrics-lint manifest check pins.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.series))
	out := make([]string, 0, len(r.series))
	for _, s := range r.series {
		if !seen[s.name] {
			seen[s.name] = true
			out = append(out, s.name)
		}
	}
	return out
}

// HistogramSeries is one registered histogram with its identity, as
// returned by Histograms — what /debug/exemplars walks.
type HistogramSeries struct {
	Name   string
	Labels Labels
	Hist   *Histogram
}

// Histograms returns every registered histogram series in registration
// order.
func (r *Registry) Histograms() []HistogramSeries {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]HistogramSeries, 0, len(r.series))
	for _, s := range r.series {
		if s.typ == "histogram" {
			out = append(out, HistogramSeries{Name: s.name, Labels: s.labels, Hist: s.hist})
		}
	}
	return out
}

// Handler serves the registry: the classic Prometheus text format
// (0.0.4) by default, or the OpenMetrics format — with exemplars and
// the # EOF terminator — when the scraper asks for it via Accept:
// application/openmetrics-text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
