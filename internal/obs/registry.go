package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the constant label pairs of one metric series (e.g.
// {"stage": "solve"}). nil means no labels.
type Labels map[string]string

// Registry holds metric series and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration takes a lock;
// observation and by-name lookup (Observe) are lock-free, so a registry
// installed on the serving hot path adds no contention.
//
// Unlike expvar's process-global namespace, a Registry is an instance:
// every Server (or test) owns its own and nothing collides.
type Registry struct {
	mu     sync.Mutex
	series []series
	// byName maps the names of label-less histograms for the
	// context-sink Observe path. Registration replaces the whole map
	// (copy-on-write) so lookups are a lock-free atomic load.
	byName atomic.Pointer[map[string]*Histogram]
}

type series struct {
	name, help, typ string // typ: "counter" | "gauge" | "histogram"
	labels          Labels
	hist            *Histogram     // histogram series
	fn              func() float64 // counter/gauge series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]*Histogram{}
	r.byName.Store(&empty)
	return r
}

// NewHistogram registers and returns a histogram series. Several
// histograms may share a name with distinct labels (they render as one
// metric family). Label-less histograms are additionally addressable by
// name through Observe — the hook packages deep in the pipeline
// (sparse, hittingtime) use to record without importing the server.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels Labels) *Histogram {
	h := NewHistogram(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, series{name: name, help: help, typ: "histogram", labels: labels, hist: h})
	if len(labels) == 0 {
		old := *r.byName.Load()
		next := make(map[string]*Histogram, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[name] = h
		r.byName.Store(&next)
	}
	return h
}

// CounterFunc registers a counter series backed by a read function —
// the natural fit for the server's existing atomic counters.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(series{name: name, help: help, typ: "counter", labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series backed by a read function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(series{name: name, help: help, typ: "gauge", labels: labels, fn: fn})
}

func (r *Registry) register(s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, s)
}

// Observe records v into the label-less histogram registered under
// name. Unknown names are a silent no-op, so instrumented packages work
// against any registry (or none). The lookup is one atomic pointer load
// plus a map read — lock-free.
func (r *Registry) Observe(name string, v float64) {
	if h := (*r.byName.Load())[name]; h != nil {
		h.Observe(v)
	}
}

// WritePrometheus renders every registered series in the text
// exposition format: one # HELP/# TYPE header per metric family (in
// registration order), histogram families as cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	all := append([]series(nil), r.series...)
	r.mu.Unlock()

	seen := make(map[string]bool, len(all))
	for _, s := range all {
		if !seen[s.name] {
			seen[s.name] = true
			if s.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.typ)
		}
		switch s.typ {
		case "histogram":
			writeHistogram(w, s)
		default:
			fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels, "", ""), formatFloat(s.fn()))
		}
	}
}

func writeHistogram(w io.Writer, s series) {
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabels(s.labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels, "", ""), formatFloat(snap.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels, "", ""), snap.Count)
}

// renderLabels renders {k="v",...} with keys sorted, appending the
// extra pair (the histogram `le`) last as Prometheus convention has it.
// Returns "" when there is nothing to render.
func renderLabels(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	// %q escapes `\`, `"` and newlines exactly as the exposition
	// format requires for label values.
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
