package odp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	c := ParseCategory("computers/software//java/")
	if c.String() != "computers/software/java" {
		t.Errorf("round trip = %q", c.String())
	}
	if len(ParseCategory("")) != 0 {
		t.Error("empty parse should be root")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := ParseCategory("computers/software/java")
	b := ParseCategory("computers/software/python")
	c := ParseCategory("science/astronomy")
	if got := CommonPrefixLen(a, b); got != 2 {
		t.Errorf("CPL(a,b) = %d, want 2", got)
	}
	if got := CommonPrefixLen(a, c); got != 0 {
		t.Errorf("CPL(a,c) = %d, want 0", got)
	}
	if got := CommonPrefixLen(a, a); got != 3 {
		t.Errorf("CPL(a,a) = %d, want 3", got)
	}
}

func TestRelevanceEq34(t *testing.T) {
	a := ParseCategory("computers/software/java")
	b := ParseCategory("computers/software/python")
	if got := Relevance(a, b); got != 2.0/3 {
		t.Errorf("Relevance = %v, want 2/3", got)
	}
	if got := Relevance(a, a); got != 1 {
		t.Errorf("self relevance = %v, want 1", got)
	}
	if got := Relevance(nil, nil); got != 0 {
		t.Errorf("empty relevance = %v, want 0", got)
	}
	// Different lengths: prefix 1, max len 3.
	short := ParseCategory("computers")
	if got := Relevance(a, short); got != 1.0/3 {
		t.Errorf("mixed-length relevance = %v, want 1/3", got)
	}
}

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tax := Generate(rng, GenerateConfig{Depth: 3, Branching: 2})
	if len(tax.Leaves) != 8 {
		t.Fatalf("leaves = %d, want 2^3 = 8", len(tax.Leaves))
	}
	for _, l := range tax.Leaves {
		if len(l) != 3 {
			t.Errorf("leaf %v depth %d, want 3", l, len(l))
		}
	}
	// Deterministic under the same seed.
	tax2 := Generate(rand.New(rand.NewSource(1)), GenerateConfig{Depth: 3, Branching: 2})
	for i := range tax.Leaves {
		if tax.Leaves[i].String() != tax2.Leaves[i].String() {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestAssignAndRelevanceOf(t *testing.T) {
	tax := NewTaxonomy()
	tax.Assign("q1", ParseCategory("a/b/c"))
	tax.Assign("q2", ParseCategory("a/b/d"))
	if got := tax.RelevanceOf("q1", "q2"); got != 2.0/3 {
		t.Errorf("RelevanceOf = %v", got)
	}
	if got := tax.RelevanceOf("q1", "missing"); got != 0 {
		t.Errorf("missing label relevance = %v", got)
	}
	if c, ok := tax.CategoryOf("q1"); !ok || c.String() != "a/b/c" {
		t.Errorf("CategoryOf = %v %v", c, ok)
	}
}

// Properties of the Eq. 34 relevance: symmetry, range [0,1], identity.
func TestPropertyRelevance(t *testing.T) {
	gen := func(rng *rand.Rand) Category {
		depth := rng.Intn(5)
		c := make(Category, depth)
		for i := range c {
			c[i] = string(rune('a' + rng.Intn(3)))
		}
		return c
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		r1, r2 := Relevance(a, b), Relevance(b, a)
		if r1 != r2 || r1 < 0 || r1 > 1 {
			return false
		}
		if len(a) > 0 && Relevance(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
