// Package odp provides a synthetic stand-in for the Open Directory
// Project (dmoz) category taxonomy used by the paper's Relevance metric
// (Eq. 34). It models categories as slash-separated paths in a rooted
// tree, supports deterministic random taxonomy generation, and computes
// the longest-common-prefix relevance between categories.
//
// Substitution note (see DESIGN.md): the real ODP is unavailable; the
// metric only performs path arithmetic, so a generated tree whose leaves
// are assigned to synthetic facets preserves the metric's behaviour.
package odp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Category is a path from the root, e.g. ["computers", "software",
// "java"]. The zero-length category is the root.
type Category []string

// String renders the category as a slash-joined path.
func (c Category) String() string { return strings.Join(c, "/") }

// ParseCategory parses a slash-joined path. Empty segments are dropped.
func ParseCategory(s string) Category {
	parts := strings.Split(s, "/")
	out := make(Category, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// CommonPrefixLen returns the length of the longest common prefix of two
// categories.
func CommonPrefixLen(a, b Category) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Relevance implements the paper's Eq. 34: |PF(A_i, A_j)| divided by the
// length of the longer of the two category paths. Two empty categories
// have relevance 0 (nothing is known about either query).
func Relevance(a, b Category) float64 {
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 0
	}
	return float64(CommonPrefixLen(a, b)) / float64(max)
}

// Taxonomy is a rooted category tree plus an assignment of labels
// (queries, URLs, facets) to categories.
type Taxonomy struct {
	// Leaves are the leaf categories in creation order.
	Leaves []Category
	// assign maps a label to its category.
	assign map[string]Category
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{assign: make(map[string]Category)}
}

// GenerateConfig controls random taxonomy generation.
type GenerateConfig struct {
	// Depth is the tree depth below the root (default 3).
	Depth int
	// Branching is the number of children per internal node (default 3).
	Branching int
}

// Generate builds a complete tree of the given depth and branching and
// records its leaves. Node names are deterministic in rng.
func Generate(rng *rand.Rand, cfg GenerateConfig) *Taxonomy {
	if cfg.Depth <= 0 {
		cfg.Depth = 3
	}
	if cfg.Branching <= 0 {
		cfg.Branching = 3
	}
	t := NewTaxonomy()
	var walk func(prefix Category, depth int)
	walk = func(prefix Category, depth int) {
		if depth == cfg.Depth {
			leaf := make(Category, len(prefix))
			copy(leaf, prefix)
			t.Leaves = append(t.Leaves, leaf)
			return
		}
		for i := 0; i < cfg.Branching; i++ {
			name := fmt.Sprintf("%s%d", syllable(rng), i)
			walk(append(prefix, name), depth+1)
		}
	}
	walk(nil, 0)
	return t
}

// AddLeaf registers an explicit leaf category (used by hand-seeded
// scenario facets such as the paper's "sun" example).
func (t *Taxonomy) AddLeaf(c Category) {
	t.Leaves = append(t.Leaves, c)
}

// Assign binds a label to a category.
func (t *Taxonomy) Assign(label string, c Category) {
	t.assign[label] = c
}

// CategoryOf returns the category assigned to label; ok is false for
// unknown labels.
func (t *Taxonomy) CategoryOf(label string) (Category, bool) {
	c, ok := t.assign[label]
	return c, ok
}

// RelevanceOf returns the Eq. 34 relevance between two labels, zero when
// either label has no category.
func (t *Taxonomy) RelevanceOf(a, b string) float64 {
	ca, oka := t.assign[a]
	cb, okb := t.assign[b]
	if !oka || !okb {
		return 0
	}
	return Relevance(ca, cb)
}

// syllable emits a pronounceable two-letter fragment for node names.
func syllable(rng *rand.Rand) string {
	const cons = "bcdfgklmnprstvz"
	const vow = "aeiou"
	return string([]byte{cons[rng.Intn(len(cons))], vow[rng.Intn(len(vow))]})
}
