package suggestcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(gen uint64, q string, k int) Key {
	return Key{Generation: gen, Query: q, K: k}
}

func TestHitMissBasics(t *testing.T) {
	c := New[string](Config{MaxEntries: 8})
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (string, error) { calls++; return "v", nil }

	v, out, err := c.Do(ctx, key(1, "sun", 5), compute)
	if err != nil || v != "v" || out != Miss {
		t.Fatalf("first Do = %q %v %v", v, out, err)
	}
	v, out, err = c.Do(ctx, key(1, "sun", 5), compute)
	if err != nil || v != "v" || out != Hit {
		t.Fatalf("second Do = %q %v %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Distinct generations, queries, k, context fingerprints and scopes must
// all address distinct entries.
func TestKeyComponentsPartition(t *testing.T) {
	c := New[int](Config{MaxEntries: 64})
	ctx := context.Background()
	n := 0
	keys := []Key{
		{Generation: 1, Query: "sun", K: 5},
		{Generation: 2, Query: "sun", K: 5},
		{Generation: 1, Query: "moon", K: 5},
		{Generation: 1, Query: "sun", K: 6},
		{Generation: 1, Query: "sun", K: 5, ContextFP: "solar@0"},
		{Generation: 1, Query: "sun", K: 5, Scope: "u0001"},
	}
	for _, k := range keys {
		c.Do(ctx, k, func(context.Context) (int, error) { n++; return n, nil })
	}
	if n != len(keys) {
		t.Fatalf("computed %d values for %d distinct keys", n, len(keys))
	}
	// And every one hits afterwards.
	for i, k := range keys {
		v, out, _ := c.Do(ctx, k, func(context.Context) (int, error) { t.Fatal("recompute"); return 0, nil })
		if out != Hit || v != i+1 {
			t.Fatalf("key %d: %v %v", i, v, out)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](Config{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(key(1, fmt.Sprintf("q%d", i), 1), i)
	}
	// Touch q0 so q1 is the cold end.
	if _, ok := c.Get(key(1, "q0", 1)); !ok {
		t.Fatal("q0 missing before eviction")
	}
	c.Put(key(1, "q3", 1), 3)
	if _, ok := c.Get(key(1, "q1", 1)); ok {
		t.Fatal("LRU kept the cold entry")
	}
	if _, ok := c.Get(key(1, "q0", 1)); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Put(key(1, "sun", 5), 42)
	if _, ok := c.Get(key(1, "sun", 5)); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get(key(1, "sun", 5)); ok {
		t.Fatal("expired entry served")
	}
	if st := c.Stats(); st.Expirations != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](Config{MaxEntries: 8})
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(ctx, key(1, "sun", 5), func(context.Context) (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, out, err := c.Do(ctx, key(1, "sun", 5), func(context.Context) (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || out != Miss {
		t.Fatalf("retry = %v %v %v", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// N concurrent identical requests must coalesce to ONE computation, and
// every caller must see the same value.
func TestCoalescing(t *testing.T) {
	c := New[int](Config{MaxEntries: 8})
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) (int, error) {
		close(started)
		<-release
		computes.Add(1)
		return 99, nil
	}

	const n = 16
	var wg sync.WaitGroup
	outs := make([]Outcome, n)
	vals := make([]int, n)
	// The leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], outs[0], _ = c.Do(context.Background(), key(1, "sun", 5), fn)
	}()
	<-started // leader is inside fn; everyone else must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], outs[i], _ = c.Do(context.Background(), key(1, "sun", 5),
				func(context.Context) (int, error) {
					computes.Add(1)
					return 99, nil
				})
		}(i)
	}
	// Give the waiters a moment to join the in-flight call, then let
	// the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for %d concurrent identical requests", got, n)
	}
	var hits, misses, coal int
	for i := 0; i < n; i++ {
		if vals[i] != 99 {
			t.Fatalf("caller %d got %d", i, vals[i])
		}
		switch outs[i] {
		case Hit:
			hits++
		case Miss:
			misses++
		case Coalesced:
			coal++
		}
	}
	if misses != 1 {
		t.Fatalf("misses = %d (hits %d, coalesced %d)", misses, hits, coal)
	}
	if coal == 0 {
		t.Fatal("no caller coalesced")
	}
}

// A waiter whose own context dies stops waiting with its own error.
func TestWaiterCancellation(t *testing.T) {
	c := New[int](Config{MaxEntries: 8})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), key(1, "sun", 5), func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key(1, "sun", 5), func(context.Context) (int, error) { return 2, nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still waiting")
	}
	close(release)
}

// If the LEADER's context dies mid-computation, a live waiter must not
// inherit the cancellation: it retries and becomes the new leader.
func TestLeaderCancellationElectsNewLeader(t *testing.T) {
	c := New[int](Config{MaxEntries: 8})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	go c.Do(leaderCtx, key(1, "sun", 5), func(ctx context.Context) (int, error) {
		close(started)
		<-ctx.Done()
		return 0, ctx.Err()
	})
	<-started

	done := make(chan int, 1)
	go func() {
		v, _, err := c.Do(context.Background(), key(1, "sun", 5),
			func(context.Context) (int, error) { return 42, nil })
		if err != nil {
			t.Errorf("survivor err = %v", err)
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the survivor join the call
	cancelLeader()
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("survivor got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never recovered from the leader's cancellation")
	}
}

// Race hammer: many goroutines over a small key space with concurrent
// generation bumps. Run with -race; correctness assertion is that a
// value computed for generation g is only ever observed under keys of
// generation g.
func TestHammerConcurrent(t *testing.T) {
	c := New[[2]uint64](Config{MaxEntries: 32})
	var gen atomic.Uint64
	gen.Store(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				q := fmt.Sprintf("q%d", i%7)
				kk := Key{Generation: gen.Load(), Query: q, K: 5}
				v, _, err := c.Do(context.Background(), kk, func(context.Context) ([2]uint64, error) {
					return [2]uint64{kk.Generation, uint64(len(q))}, nil
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v[0] != kk.Generation {
					t.Errorf("generation %d key served value computed for generation %d", kk.Generation, v[0])
					return
				}
			}
		}(g)
	}
	// Swapper: bump the generation while the hammer runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			gen.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}
