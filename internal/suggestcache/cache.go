// Package suggestcache is a snapshot-keyed result cache with request
// coalescing for the suggestion hot path.
//
// The cache exists because the paper's pipeline front-loads all of its
// cost into inputs that repeat: the Eq. 15 CG solve and the Algorithm-1
// hitting-time greedy loop depend only on (query, session context, k)
// and on the engine snapshot they run against — not on the user, whose
// personalization (Section V) is a cheap re-rank applied afterwards. A
// popular head query therefore pays the full diversification once per
// engine snapshot and is served from memory until the next hot-swap,
// the same way click-graph suggestion systems amortize their
// random-walk cost.
//
// Invalidation is by construction, not by flush: every key embeds the
// engine's generation number (stamped when the engine is built and
// bumped by every clone→mutate→swap), so entries computed against a
// replaced engine can never be returned — they simply stop being
// addressable and age out of the LRU.
//
// Coalescing: when N identical requests miss concurrently, one caller
// (the leader) runs the computation and the other N−1 wait on its
// result. A waiter whose own context dies stops waiting; if instead the
// LEADER's context dies mid-solve, the surviving waiters elect a new
// leader and retry rather than inheriting a cancellation they did not
// cause.
package suggestcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Key identifies one cacheable suggestion computation. Two requests
// with equal keys are guaranteed (by the caller) to produce the same
// value, so all fields that influence the computation must be folded
// in.
type Key struct {
	// Generation is the engine snapshot the value was computed against.
	// Bumped on every hot-swap, it makes stale entries unaddressable.
	Generation uint64
	// Query is the normalized input query (querylog.NormalizeQuery).
	// Left empty when QueryID addresses the query instead.
	Query string
	// QueryID addresses a snapshot-interned query by its symbol id PLUS
	// ONE (0 means "not interned" — Query carries the string). Keys for
	// known queries hash a fixed-width integer instead of the raw query
	// string; Generation keeps ids from different snapshots apart.
	QueryID uint32
	// ContextFP fingerprints the session context: each context query
	// with its Eq. 7 decay weight quantized into time buckets, so two
	// requests whose contexts would decay indistinguishably share an
	// entry (see core.ContextFingerprint).
	ContextFP string
	// K is the requested suggestion count.
	K int
	// Strategy is the resolved diversification strategy name. Part of
	// the key so lists produced by different selectors (hitting, mmr,
	// pfar, relevance, …) are isolated from each other: an MMR list can
	// never be served for a hitting-time request, across generations
	// and hot-swaps alike.
	Strategy string
	// Scope partitions the cache when the cached value is NOT
	// user-independent. The suggestion path caches the diversified
	// (pre-personalization) list and leaves Scope empty — "anonymous" —
	// so one entry serves every user asking the same thing.
	Scope string
}

// Outcome reports how Do satisfied a request.
type Outcome int

const (
	// Miss: this caller ran the computation.
	Miss Outcome = iota
	// Hit: served from a stored entry.
	Hit
	// Coalesced: waited on a concurrent identical computation.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Config tunes the cache.
type Config struct {
	// MaxEntries bounds the LRU (default 4096; values < 1 take the
	// default).
	MaxEntries int
	// TTL expires entries by age. Zero disables expiry: generation
	// keying already bounds staleness to the life of an engine
	// snapshot, so the TTL is belt-and-suspenders against very
	// long-lived snapshots.
	TTL time.Duration
}

const defaultMaxEntries = 4096

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Entries     int   `json:"entries"`
}

// HitRate returns hits / (hits + misses + coalesced), 0 when idle.
func (s Stats) HitRate() float64 {
	n := s.Hits + s.Misses + s.Coalesced
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// Cache is a thread-safe LRU with singleflight coalescing. The zero
// value is not usable; create with New.
type Cache[V any] struct {
	cfg Config
	// now is the clock, swappable in tests to exercise the TTL without
	// sleeping.
	now func() time.Time

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[Key]*list.Element
	inflight map[Key]*call[V]

	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	expirations atomic.Int64
}

type entry[V any] struct {
	key      Key
	val      V
	storedAt time.Time
}

// call is one in-flight computation: the leader closes done after
// setting val/err; waiters read them only after done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New creates a cache.
func New[V any](cfg Config) *Cache[V] {
	if cfg.MaxEntries < 1 {
		cfg.MaxEntries = defaultMaxEntries
	}
	return &Cache[V]{
		cfg:      cfg,
		now:      time.Now,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*call[V]),
	}
}

// Get returns the cached value for key, if present and fresh. Lookups
// count toward the hit/miss stats like Do — the batch and cached-only
// paths read through Get, and their traffic must not vanish from the
// hit-rate the operator tunes capacity by.
func (c *Cache[V]) Get(key Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lookupLocked(key); ok {
		c.hits.Add(1)
		return v, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// lookupLocked checks the LRU for a fresh entry, expiring a stale one.
func (c *Cache[V]) lookupLocked(key Key) (V, bool) {
	var zero V
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	en := el.Value.(*entry[V])
	if c.cfg.TTL > 0 && c.now().Sub(en.storedAt) > c.cfg.TTL {
		c.removeLocked(el)
		c.expirations.Add(1)
		return zero, false
	}
	c.ll.MoveToFront(el)
	return en.val, true
}

// Put stores a value, evicting from the cold end when over capacity.
func (c *Cache[V]) Put(key Key, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, v)
}

func (c *Cache[V]) putLocked(key Key, v V) {
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*entry[V])
		en.val = v
		en.storedAt = c.now()
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[V]{key: key, val: v, storedAt: c.now()})
	c.entries[key] = el
	for c.ll.Len() > c.cfg.MaxEntries {
		c.removeLocked(c.ll.Back())
		c.evictions.Add(1)
	}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*entry[V]).key)
}

// Do returns the value for key, computing it with fn on a miss.
// Concurrent Do calls for the same key coalesce: exactly one runs fn
// (with its own context) and the rest share the outcome. Errors are
// returned to every sharer but never stored, so the next request
// retries. If the computation fails because the LEADER's context was
// cancelled while this caller's context is still live, this caller
// retries (one of the survivors becomes the new leader) instead of
// propagating a cancellation it did not cause.
func (c *Cache[V]) Do(ctx context.Context, key Key, fn func(ctx context.Context) (V, error)) (V, Outcome, error) {
	// The cache span brackets the whole lookup-or-compute, so on a miss
	// it encloses the pipeline stages the leader ran; on a hit or a
	// coalesced wait its duration IS the cost the cache charged.
	sp := obs.StartSpan(ctx, "cache")
	v, out, err := c.do(ctx, key, fn)
	if sp != nil {
		sp.SetAttr("outcome", out.String())
		sp.SetAttr("generation", key.Generation)
		sp.End()
	}
	return v, out, err
}

func (c *Cache[V]) do(ctx context.Context, key Key, fn func(ctx context.Context) (V, error)) (V, Outcome, error) {
	var zero V
	for {
		c.mu.Lock()
		if v, ok := c.lookupLocked(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-cl.done:
			case <-ctx.Done():
				return zero, Coalesced, ctx.Err()
			}
			if isCancellation(cl.err) && ctx.Err() == nil {
				continue // leader died, not us: re-run the election
			}
			return cl.val, Coalesced, cl.err
		}
		// This caller is the leader.
		cl := &call[V]{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()
		c.misses.Add(1)

		v, err := fn(ctx)

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.putLocked(key, v)
		}
		c.mu.Unlock()
		cl.val, cl.err = v, err
		close(cl.done)
		return v, Miss, err
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every stored entry (in-flight computations finish and
// store their results normally). Counters are not reset.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[Key]*list.Element)
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Entries:     n,
	}
}

// SetClock replaces the cache's time source (tests only).
func (c *Cache[V]) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
