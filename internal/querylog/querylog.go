// Package querylog defines the query-log data model used throughout the
// PQS-DA reproduction: log entries (Table I of the paper), tokenization,
// log cleaning, session segmentation (Definition 1) and search-context
// extraction (Definition 2).
//
// A log is an ordered slice of Entry values; sessions and per-user views
// are derived, never stored redundantly.
package querylog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one query-log record, mirroring the paper's Table I: the query
// identifier is implicit (index in the log), and each record carries the
// user, the raw query string, the clicked URL (empty when the user did
// not click) and the submission timestamp.
type Entry struct {
	UserID     string
	Query      string
	ClickedURL string // empty when no click
	Time       time.Time
}

// Log is an ordered collection of entries. Entries are kept in the order
// they were appended; Sort orders them by (UserID, Time) which is the
// canonical order sessionization expects.
type Log struct {
	Entries []Entry
}

// Append adds an entry to the log.
func (l *Log) Append(e Entry) { l.Entries = append(l.Entries, e) }

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.Entries) }

// Sort orders entries by user then time, with query text as a final
// tie-break so ordering is total and deterministic.
func (l *Log) Sort() {
	sort.SliceStable(l.Entries, func(i, j int) bool {
		a, b := l.Entries[i], l.Entries[j]
		if a.UserID != b.UserID {
			return a.UserID < b.UserID
		}
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Query < b.Query
	})
}

// Users returns the distinct user IDs in first-appearance order.
func (l *Log) Users() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range l.Entries {
		if !seen[e.UserID] {
			seen[e.UserID] = true
			out = append(out, e.UserID)
		}
	}
	return out
}

// ByUser returns the entries of a single user in log order.
func (l *Log) ByUser(user string) []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.UserID == user {
			out = append(out, e)
		}
	}
	return out
}

// TimeRange returns the earliest and latest timestamps in the log. ok is
// false for an empty log.
func (l *Log) TimeRange() (min, max time.Time, ok bool) {
	if len(l.Entries) == 0 {
		return time.Time{}, time.Time{}, false
	}
	min, max = l.Entries[0].Time, l.Entries[0].Time
	for _, e := range l.Entries[1:] {
		if e.Time.Before(min) {
			min = e.Time
		}
		if e.Time.After(max) {
			max = e.Time
		}
	}
	return min, max, true
}

// tsvTimeLayout is the timestamp format used by the TSV codec, matching
// the paper's Table I rendering.
const tsvTimeLayout = "2006-01-02 15:04:05"

// WriteTSV serializes the log as tab-separated values with a header, one
// entry per line: user, query, clicked URL (may be empty), timestamp.
// Tabs and newlines inside fields are replaced by spaces so a written
// log always reparses (queries are free text; users paste anything).
func (l *Log) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "UserID\tQuery\tClickedURL\tTimestamp"); err != nil {
		return err
	}
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			tsvField(e.UserID), tsvField(e.Query), tsvField(e.ClickedURL),
			e.Time.UTC().Format(tsvTimeLayout)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// tsvField flattens characters that would corrupt the TSV framing.
func tsvField(s string) string {
	if !strings.ContainsAny(s, "\t\n\r") {
		return s
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case '\t', '\n', '\r':
			return ' '
		}
		return r
	}, s)
}

// ReadTSV parses a log written by WriteTSV.
func ReadTSV(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	log := &Log{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 && strings.HasPrefix(line, "UserID\t") {
			continue // header
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("querylog: line %d: want 4 fields, got %d", lineNo, len(parts))
		}
		ts, err := time.Parse(tsvTimeLayout, parts[3])
		if err != nil {
			return nil, fmt.Errorf("querylog: line %d: bad timestamp %q: %w", lineNo, parts[3], err)
		}
		log.Append(Entry{UserID: parts[0], Query: parts[1], ClickedURL: parts[2], Time: ts.UTC()})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}

// ErrEmptyLog is returned by operations that need at least one entry.
var ErrEmptyLog = errors.New("querylog: empty log")

// QueryFrequency returns, for every distinct (normalized) query string,
// the number of log entries that carry it.
func (l *Log) QueryFrequency() map[string]int {
	freq := make(map[string]int)
	for _, e := range l.Entries {
		freq[NormalizeQuery(e.Query)]++
	}
	return freq
}

// String renders a compact human-readable ID for an entry, for debugging.
func (e Entry) String() string {
	return e.UserID + "/" + strconv.Quote(e.Query) + "@" + e.Time.UTC().Format(tsvTimeLayout)
}
