package querylog

import (
	"strings"
	"testing"
)

const aolSample = `AnonID	Query	QueryTime	ItemRank	ClickURL
142	rentdirect.com	2006-03-01 07:17:12
142	staple.com	2006-03-01 17:29:13	1	http://www.staples.com
142	-	2006-03-02 10:00:00
217	lottery	2006-03-03 12:31:06	2	http://www.calottery.com
217	lottery	2006-03-03 12:31:06	3	http://www.flalottery.com
`

func TestReadAOL(t *testing.T) {
	l, err := ReadAOL(strings.NewReader(aolSample))
	if err != nil {
		t.Fatal(err)
	}
	// 5 data rows minus 1 redacted = 4 entries (two clicks on "lottery"
	// stay separate).
	if l.Len() != 4 {
		t.Fatalf("entries = %d, want 4", l.Len())
	}
	e := l.Entries[0]
	if e.UserID != "aol142" || e.Query != "rentdirect.com" || e.ClickedURL != "" {
		t.Errorf("entry 0 = %+v", e)
	}
	if l.Entries[1].ClickedURL != "http://www.staples.com" {
		t.Errorf("entry 1 URL = %q", l.Entries[1].ClickedURL)
	}
	if l.Entries[2].UserID != "aol217" || l.Entries[3].ClickedURL != "http://www.flalottery.com" {
		t.Errorf("lottery entries = %+v %+v", l.Entries[2], l.Entries[3])
	}
	if got := l.Entries[1].Time.Format("2006-01-02 15:04:05"); got != "2006-03-01 17:29:13" {
		t.Errorf("time = %s", got)
	}
}

func TestReadAOLThreeFieldRows(t *testing.T) {
	// Some AOL dumps truncate clickless rows to three fields.
	l, err := ReadAOL(strings.NewReader("1\tweather boston\t2006-03-01 07:17:12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || l.Entries[0].ClickedURL != "" {
		t.Fatalf("log = %+v", l.Entries)
	}
}

func TestReadAOLErrors(t *testing.T) {
	if _, err := ReadAOL(strings.NewReader("1\tq\n")); err == nil {
		t.Error("2-field row accepted")
	}
	if _, err := ReadAOL(strings.NewReader("1\tq\tnot-a-time\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
	l, err := ReadAOL(strings.NewReader("AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"))
	if err != nil || l.Len() != 0 {
		t.Errorf("header-only: %v, %d entries", err, l.Len())
	}
}

func TestReadAOLFeedsPipeline(t *testing.T) {
	l, err := ReadAOL(strings.NewReader(aolSample))
	if err != nil {
		t.Fatal(err)
	}
	sessions := Sessionize(l, SessionizerConfig{})
	if len(sessions) == 0 {
		t.Fatal("no sessions from AOL log")
	}
	for _, s := range sessions {
		if !strings.HasPrefix(s.UserID, "aol") {
			t.Errorf("session user %q", s.UserID)
		}
	}
}
