package querylog

// Segment is one sealed, immutable batch of ingested entries. The
// engine's log is an append-only list of segments: ingestion seals a
// new tail segment and never touches earlier ones, so a snapshot
// builder can identify "everything after the last build" as a suffix of
// the segment list without copying or locking the already-built prefix.
type Segment struct {
	Entries []Entry
}

// SegmentList is an append-only sequence of sealed segments. The zero
// value is an empty list. A SegmentList is NOT safe for concurrent
// mutation; the engine serializes Append/Clone with its other mutators
// (the serving path never touches segments).
type SegmentList struct {
	segs  []Segment
	total int
}

// Append seals entries into a new tail segment (the slice is copied —
// callers keep ownership of their argument). Empty batches seal no
// segment.
func (sl *SegmentList) Append(entries []Entry) {
	if len(entries) == 0 {
		return
	}
	sl.segs = append(sl.segs, Segment{Entries: append([]Entry(nil), entries...)})
	sl.total += len(entries)
}

// NumSegments returns the number of sealed segments.
func (sl *SegmentList) NumSegments() int { return len(sl.segs) }

// TotalEntries returns the entry count across all segments.
func (sl *SegmentList) TotalEntries() int { return sl.total }

// EntriesFrom flattens the segments from index seg onward into one
// fresh slice (nil when seg is past the end).
func (sl *SegmentList) EntriesFrom(seg int) []Entry {
	if seg < 0 {
		seg = 0
	}
	n := 0
	for i := seg; i < len(sl.segs); i++ {
		n += len(sl.segs[i].Entries)
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := seg; i < len(sl.segs); i++ {
		out = append(out, sl.segs[i].Entries...)
	}
	return out
}

// Flatten returns all entries as a fresh Log (segments stay sealed; the
// returned log is the caller's to sort or mutate).
func (sl *SegmentList) Flatten() *Log {
	return &Log{Entries: sl.EntriesFrom(0)}
}

// Clone returns a list sharing the sealed segments but no mutable
// state: appending to either list never affects the other (the segment
// slice is copied with exact capacity, so growth always reallocates).
func (sl *SegmentList) Clone() *SegmentList {
	return &SegmentList{segs: append([]Segment(nil), sl.segs...), total: sl.total}
}
