package querylog

import (
	"strings"
	"time"
)

// CleanerConfig tunes log cleaning. The defaults follow the spirit of
// Wang & Zhai (the paper's reference [33]): drop navigational noise,
// ultra-rare junk and robotic burst traffic before any modeling.
type CleanerConfig struct {
	// MinQueryLen drops queries whose normalized form is shorter
	// (default 2 runes).
	MinQueryLen int
	// MaxQueryTerms drops queries with more terms (default 12) — long
	// pastes are almost never reformulable suggestions.
	MaxQueryTerms int
	// MaxUserQueriesPerMinute flags robotic users: any user exceeding
	// this sustained rate in some minute-long window is dropped entirely
	// (default 20).
	MaxUserQueriesPerMinute int
	// KeepURLQueries retains entries whose query looks like a pasted
	// URL; by default (false) they are dropped as navigational noise.
	KeepURLQueries bool
}

func (c CleanerConfig) withDefaults() CleanerConfig {
	if c.MinQueryLen <= 0 {
		c.MinQueryLen = 2
	}
	if c.MaxQueryTerms <= 0 {
		c.MaxQueryTerms = 12
	}
	if c.MaxUserQueriesPerMinute <= 0 {
		c.MaxUserQueriesPerMinute = 20
	}
	return c
}

// CleanStats reports what Clean removed.
type CleanStats struct {
	Kept          int
	DroppedShort  int
	DroppedLong   int
	DroppedURL    int
	RoboticUsers  int
	DroppedByUser int
}

// Clean returns a new log with noise removed: too-short and too-long
// queries, URL-like queries, and the full history of users whose request
// rate marks them as robots. The input log is not modified.
func Clean(l *Log, cfg CleanerConfig) (*Log, CleanStats) {
	cfg = cfg.withDefaults()
	var stats CleanStats

	// Pass 1: find robotic users via per-minute burst rate.
	robots := make(map[string]bool)
	perUser := make(map[string][]time.Time)
	for _, e := range l.Entries {
		perUser[e.UserID] = append(perUser[e.UserID], e.Time)
	}
	for user, times := range perUser {
		if isRobotic(times, cfg.MaxUserQueriesPerMinute) {
			robots[user] = true
		}
	}
	stats.RoboticUsers = len(robots)

	out := &Log{}
	for _, e := range l.Entries {
		if robots[e.UserID] {
			stats.DroppedByUser++
			continue
		}
		norm := NormalizeQuery(e.Query)
		switch {
		case len([]rune(norm)) < cfg.MinQueryLen:
			stats.DroppedShort++
		case len(strings.Fields(norm)) > cfg.MaxQueryTerms:
			stats.DroppedLong++
		case !cfg.KeepURLQueries && looksLikeURL(e.Query):
			stats.DroppedURL++
		default:
			out.Append(e)
			stats.Kept++
		}
	}
	return out, stats
}

// isRobotic reports whether any sliding minute-long window contains more
// than maxPerMinute timestamps.
func isRobotic(times []time.Time, maxPerMinute int) bool {
	if len(times) <= maxPerMinute {
		return false
	}
	sorted := append([]time.Time(nil), times...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Before(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	lo := 0
	for hi := range sorted {
		for sorted[hi].Sub(sorted[lo]) > time.Minute {
			lo++
		}
		if hi-lo+1 > maxPerMinute {
			return true
		}
	}
	return false
}

// looksLikeURL reports whether the raw query string is a pasted URL or
// hostname rather than a search phrase.
func looksLikeURL(q string) bool {
	s := strings.ToLower(strings.TrimSpace(q))
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return true
	}
	if strings.ContainsAny(s, " \t") {
		return false
	}
	return strings.HasPrefix(s, "www.") ||
		strings.HasSuffix(s, ".com") || strings.HasSuffix(s, ".org") ||
		strings.HasSuffix(s, ".net") || strings.HasSuffix(s, ".edu")
}
