package querylog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ts(s string) time.Time {
	t, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

// tableILog reconstructs the paper's Table I example log.
func tableILog() *Log {
	l := &Log{}
	l.Append(Entry{"u1", "sun", "www.java.com", ts("2012-12-12 11:12:41")})
	l.Append(Entry{"u1", "sun java", "java.sun.com", ts("2012-12-12 11:13:01")})
	l.Append(Entry{"u1", "jvm download", "", ts("2012-12-12 11:14:21")})
	l.Append(Entry{"u2", "sun", "www.suncellular.com", ts("2012-12-13 07:13:21")})
	l.Append(Entry{"u2", "solar cell", "en.wikipedia.org/wiki/Solar_cell", ts("2012-12-13 07:14:21")})
	l.Append(Entry{"u3", "sun oracle", "www.oracle.com", ts("2012-12-14 14:35:14")})
	l.Append(Entry{"u3", "java", "www.java.com", ts("2012-12-14 14:36:26")})
	return l
}

func TestUsersAndByUser(t *testing.T) {
	l := tableILog()
	users := l.Users()
	if len(users) != 3 || users[0] != "u1" || users[2] != "u3" {
		t.Errorf("Users = %v", users)
	}
	if got := len(l.ByUser("u2")); got != 2 {
		t.Errorf("ByUser(u2) len = %d, want 2", got)
	}
}

func TestTimeRange(t *testing.T) {
	l := tableILog()
	min, max, ok := l.TimeRange()
	if !ok || !min.Equal(ts("2012-12-12 11:12:41")) || !max.Equal(ts("2012-12-14 14:36:26")) {
		t.Errorf("TimeRange = %v %v %v", min, max, ok)
	}
	if _, _, ok := (&Log{}).TimeRange(); ok {
		t.Error("empty log TimeRange ok = true")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	l := tableILog()
	var buf bytes.Buffer
	if err := l.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip len %d != %d", got.Len(), l.Len())
	}
	for i := range l.Entries {
		a, b := l.Entries[i], got.Entries[i]
		if a.UserID != b.UserID || a.Query != b.Query || a.ClickedURL != b.ClickedURL || !a.Time.Equal(b.Time) {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("u1\tq\n")); err == nil {
		t.Error("want field-count error")
	}
	if _, err := ReadTSV(strings.NewReader("u1\tq\turl\tnot-a-time\n")); err == nil {
		t.Error("want timestamp error")
	}
	// Header-only input is an empty, valid log.
	l, err := ReadTSV(strings.NewReader("UserID\tQuery\tClickedURL\tTimestamp\n"))
	if err != nil || l.Len() != 0 {
		t.Errorf("header-only: %v len=%d", err, l.Len())
	}
}

func TestQueryFrequencyNormalizes(t *testing.T) {
	l := &Log{}
	l.Append(Entry{"u", "Sun  Java", "", ts("2012-01-01 00:00:00")})
	l.Append(Entry{"u", "sun java", "", ts("2012-01-01 00:00:10")})
	freq := l.QueryFrequency()
	if freq["sun java"] != 2 {
		t.Errorf("freq = %v", freq)
	}
}

func TestSortStableTotal(t *testing.T) {
	l := tableILog()
	// Shuffle deterministically by reversing.
	for i, j := 0, len(l.Entries)-1; i < j; i, j = i+1, j-1 {
		l.Entries[i], l.Entries[j] = l.Entries[j], l.Entries[i]
	}
	l.Sort()
	if l.Entries[0].UserID != "u1" || l.Entries[0].Query != "sun" {
		t.Errorf("first after sort: %+v", l.Entries[0])
	}
	if l.Entries[6].UserID != "u3" || l.Entries[6].Query != "java" {
		t.Errorf("last after sort: %+v", l.Entries[6])
	}
}
