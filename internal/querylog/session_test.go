package querylog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSessionizeTableI(t *testing.T) {
	// The paper states Table I splits into sessions {q1,q2,q3}, {q4,q5},
	// {q6,q7}.
	sessions := Sessionize(tableILog(), SessionizerConfig{})
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	wantLens := []int{3, 2, 2}
	for i, s := range sessions {
		if len(s.Entries) != wantLens[i] {
			t.Errorf("session %d has %d entries, want %d", i, len(s.Entries), wantLens[i])
		}
	}
	if q := sessions[0].Queries(); q[0] != "sun" || q[2] != "jvm download" {
		t.Errorf("session 0 queries = %v", q)
	}
}

func TestSessionizeTimeoutSplits(t *testing.T) {
	l := &Log{}
	l.Append(Entry{"u", "first query", "", ts("2012-01-01 10:00:00")})
	l.Append(Entry{"u", "totally different topic", "", ts("2012-01-01 11:00:00")})
	sessions := Sessionize(l, SessionizerConfig{})
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2 (1-hour gap)", len(sessions))
	}
}

func TestSessionizeSimilarityRescue(t *testing.T) {
	// 10-minute gap exceeds the soft timeout; a similar reformulation
	// stays in-session, a dissimilar one starts a new session.
	mk := func(second string) []Session {
		l := &Log{}
		l.Append(Entry{"u", "toyota camry price", "", ts("2012-01-01 10:00:00")})
		l.Append(Entry{"u", second, "", ts("2012-01-01 10:10:00")})
		return Sessionize(l, SessionizerConfig{})
	}
	if got := len(mk("toyota camry 2012 review")); got != 1 {
		t.Errorf("similar reformulation split into %d sessions, want 1", got)
	}
	if got := len(mk("chocolate cake recipe")); got != 2 {
		t.Errorf("dissimilar query kept in %d sessions, want 2", got)
	}
}

func TestSessionizeUserBoundary(t *testing.T) {
	l := &Log{}
	l.Append(Entry{"a", "same query", "", ts("2012-01-01 10:00:00")})
	l.Append(Entry{"b", "same query", "", ts("2012-01-01 10:00:01")})
	sessions := Sessionize(l, SessionizerConfig{})
	if len(sessions) != 2 {
		t.Fatalf("users merged into %d sessions, want 2", len(sessions))
	}
}

func TestSearchContext(t *testing.T) {
	sessions := Sessionize(tableILog(), SessionizerConfig{})
	s := sessions[0]
	if got := SearchContext(s, 0); len(got) != 0 {
		t.Errorf("context of first query has %d entries", len(got))
	}
	ctx := SearchContext(s, 2)
	if len(ctx) != 2 || NormalizeQuery(ctx[0].Query) != "sun" || NormalizeQuery(ctx[1].Query) != "sun java" {
		t.Errorf("context = %v", ctx)
	}
	if got := SearchContext(s, -1); got != nil {
		t.Error("negative index should give nil")
	}
}

func TestSessionsByUserAndSplitRecent(t *testing.T) {
	sessions := Sessionize(tableILog(), SessionizerConfig{})
	by := SessionsByUser(sessions)
	if len(by) != 3 || len(by["u1"]) != 1 {
		t.Errorf("SessionsByUser = %v", by)
	}
	many := make([]Session, 5)
	for i := range many {
		many[i] = Session{UserID: "u", Entries: []Entry{{UserID: "u", Query: fmt.Sprint(i)}}}
	}
	hist, test := SplitRecent(many, 2)
	if len(hist) != 3 || len(test) != 2 {
		t.Errorf("SplitRecent 5/2 = %d,%d", len(hist), len(test))
	}
	if test[1].Entries[0].Query != "4" {
		t.Error("test should hold most recent sessions")
	}
	hist, test = SplitRecent(many, 10)
	if hist != nil || len(test) != 5 {
		t.Errorf("SplitRecent overflow = %d,%d", len(hist), len(test))
	}
}

// Property: sessionization is a partition — every entry appears exactly
// once, sessions are per-user and time-ordered within.
func TestPropertySessionizePartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &Log{}
		base := ts("2012-06-01 00:00:00")
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("u%d", rng.Intn(4))
			base = base.Add(time.Duration(rng.Intn(3600)) * time.Second)
			l.Append(Entry{user, fmt.Sprintf("query %c%d", 'a'+rune(rng.Intn(5)), rng.Intn(8)), "", base})
		}
		sessions := Sessionize(l, SessionizerConfig{})
		total := 0
		for _, s := range sessions {
			total += len(s.Entries)
			for i, e := range s.Entries {
				if e.UserID != s.UserID {
					return false
				}
				if i > 0 && e.Time.Before(s.Entries[i-1].Time) {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
