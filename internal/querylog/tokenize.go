package querylog

import (
	"strings"
	"unicode"
)

// stopwords are high-frequency English function words removed during
// tokenization; they carry no facet signal and would otherwise dominate
// the query–term bipartite.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "how": true,
	"in": true, "is": true, "it": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "this": true, "to": true, "was": true,
	"what": true, "when": true, "where": true, "who": true, "will": true,
	"with": true, "www": true,
}

// IsStopword reports whether the (lowercased) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// NormalizeQuery lowercases a query and collapses runs of whitespace and
// punctuation into single spaces, producing the canonical form used as
// the query-node identity in all graphs.
func NormalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	lastSpace := true
	for _, r := range strings.ToLower(q) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			lastSpace = false
		} else if !lastSpace {
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimSpace(b.String())
}

// Tokenize splits a query into lowercase terms, dropping stopwords and
// single-character leftovers. It never returns empty strings.
func Tokenize(q string) []string {
	fields := strings.Fields(NormalizeQuery(q))
	out := fields[:0]
	for _, f := range fields {
		if len(f) > 1 && !stopwords[f] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		// A query made entirely of stopwords still needs at least one
		// term node; keep the normalized fields in that case.
		return fields
	}
	return out
}

// TermVector returns the term-frequency vector of a query as a sparse
// map, the form the PPR metric and the CM baseline consume.
func TermVector(q string) map[string]float64 {
	v := make(map[string]float64)
	for _, t := range Tokenize(q) {
		v[t]++
	}
	return v
}
