package querylog

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// ReadAOL parses the classic AOL-2006-style query log format, the most
// common public substitute for a commercial log:
//
//	AnonID\tQuery\tQueryTime\tItemRank\tClickURL
//
// with a header line, timestamps as "2006-03-01 07:17:12", and the last
// two fields empty for query events without a click. Rows whose query
// is "-" (AOL's redaction marker) are skipped. Duplicate rows for the
// same (user, time, query) with different clicked URLs become separate
// entries, matching how the click graph counts multiple clicks.
func ReadAOL(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	log := &Log{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 && strings.HasPrefix(line, "AnonID\t") {
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("querylog: AOL line %d: want 3–5 fields, got %d", lineNo, len(parts))
		}
		query := strings.TrimSpace(parts[1])
		if query == "-" || query == "" {
			continue
		}
		ts, err := time.Parse("2006-01-02 15:04:05", parts[2])
		if err != nil {
			return nil, fmt.Errorf("querylog: AOL line %d: bad timestamp %q: %w", lineNo, parts[2], err)
		}
		url := ""
		if len(parts) == 5 {
			url = strings.TrimSpace(parts[4])
		}
		log.Append(Entry{
			UserID:     "aol" + strings.TrimSpace(parts[0]),
			Query:      query,
			ClickedURL: url,
			Time:       ts.UTC(),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}
