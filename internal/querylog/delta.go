package querylog

import "sort"

// SessionizeDelta re-segments ONE user's history after fresh entries
// arrive, reusing the unchanged prefix instead of re-scanning the whole
// history. old is the user's current sessions in chronological order
// (as produced by Sessionize); fresh is the user's new entries, in
// ingestion order. It returns how many leading old sessions survive
// untouched (keep) and the sessions replacing old[keep:] — together,
// old[:keep] + rebuilt is exactly what a full Sessionize over the
// user's combined history would produce.
//
// Why the prefix is reusable: the boundary scan's decisions look only
// backward (the gap to the previous entry and the terms accumulated so
// far), so every session that ends strictly before the merge position
// of the earliest fresh entry is segmented identically in the combined
// history. The session ending exactly at that position is NOT safe —
// the first fresh entry may continue it — so it is re-scanned too.
//
// Equal (time, query) keys order old-before-fresh and fresh in
// ingestion order, matching what the stable full-log sort produces for
// entries appended after the existing history.
func SessionizeDelta(old []Session, fresh []Entry, cfg SessionizerConfig) (keep int, rebuilt []Session) {
	cfg = cfg.withDefaults()
	if len(fresh) == 0 {
		return len(old), nil
	}

	fs := append([]Entry(nil), fresh...)
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Query < b.Query
	})

	nOld := 0
	for _, s := range old {
		nOld += len(s.Entries)
	}
	oldEnt := make([]Entry, 0, nOld)
	for _, s := range old {
		oldEnt = append(oldEnt, s.Entries...)
	}

	// Merge, old entries winning ties; p is the merged position of the
	// earliest fresh entry.
	freshBefore := func(f, o Entry) bool {
		if !f.Time.Equal(o.Time) {
			return f.Time.Before(o.Time)
		}
		return f.Query < o.Query
	}
	merged := make([]Entry, 0, len(oldEnt)+len(fs))
	oi, fi, p := 0, 0, -1
	for oi < len(oldEnt) || fi < len(fs) {
		if fi < len(fs) && (oi >= len(oldEnt) || freshBefore(fs[fi], oldEnt[oi])) {
			if p < 0 {
				p = len(merged)
			}
			merged = append(merged, fs[fi])
			fi++
		} else {
			merged = append(merged, oldEnt[oi])
			oi++
		}
	}

	// Keep old sessions whose end sits strictly before p. A session
	// ending exactly at p is dropped into the re-scan: the fresh entry
	// at p might extend it.
	end := 0
	for keep < len(old) {
		e2 := end + len(old[keep].Entries)
		if e2 >= p {
			break
		}
		end = e2
		keep++
	}
	return keep, scanUserSessions(merged[end:], cfg)
}
