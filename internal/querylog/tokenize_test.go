package querylog

import (
	"reflect"
	"testing"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Sun  Java", "sun java"},
		{"  SUN ", "sun"},
		{"solar-cell!!", "solar cell"},
		{"a.b/c", "a b c"},
		{"", ""},
		{"C++ tutorial", "c tutorial"},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.in); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	if got := Tokenize("the sun and the moon"); !reflect.DeepEqual(got, []string{"sun", "moon"}) {
		t.Errorf("Tokenize = %v", got)
	}
	// All-stopword queries keep their fields rather than vanishing.
	if got := Tokenize("to be or not to be"); len(got) == 0 {
		t.Error("all-stopword query produced no tokens")
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	// Single characters are dropped.
	if got := Tokenize("x y sun"); !reflect.DeepEqual(got, []string{"sun"}) {
		t.Errorf("Tokenize = %v", got)
	}
}

func TestTermVector(t *testing.T) {
	v := TermVector("sun sun java")
	if v["sun"] != 2 || v["java"] != 1 {
		t.Errorf("TermVector = %v", v)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("sun") {
		t.Error("stopword detection wrong")
	}
}
