package querylog

import (
	"fmt"
	"testing"
	"time"
)

func TestCleanDropsShortLongURL(t *testing.T) {
	l := &Log{}
	l.Append(Entry{"u", "x", "", ts("2012-01-01 10:00:00")})                  // too short
	l.Append(Entry{"u", "www.example.com", "", ts("2012-01-01 10:01:00")})    // URL
	l.Append(Entry{"u", "http://foo.bar/baz", "", ts("2012-01-01 10:02:00")}) // URL
	l.Append(Entry{"u", "normal query here", "", ts("2012-01-01 10:03:00")})  // kept
	long := ""
	for i := 0; i < 20; i++ {
		long += fmt.Sprintf("term%d ", i)
	}
	l.Append(Entry{"u", long, "", ts("2012-01-01 10:04:00")}) // too long

	out, stats := Clean(l, CleanerConfig{})
	if out.Len() != 1 || stats.Kept != 1 {
		t.Fatalf("kept %d entries, want 1 (stats %+v)", out.Len(), stats)
	}
	if stats.DroppedShort != 1 || stats.DroppedURL != 2 || stats.DroppedLong != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if l.Len() != 5 {
		t.Error("Clean modified its input")
	}
}

func TestCleanDropsRobots(t *testing.T) {
	l := &Log{}
	base := ts("2012-01-01 10:00:00")
	// Robot: 60 queries in one minute.
	for i := 0; i < 60; i++ {
		l.Append(Entry{"bot", fmt.Sprintf("spam query %d", i), "", base.Add(time.Duration(i) * time.Second)})
	}
	// Human: a few queries spread out.
	for i := 0; i < 5; i++ {
		l.Append(Entry{"human", fmt.Sprintf("real query %d", i), "", base.Add(time.Duration(i) * time.Minute)})
	}
	out, stats := Clean(l, CleanerConfig{})
	if stats.RoboticUsers != 1 {
		t.Errorf("RoboticUsers = %d, want 1", stats.RoboticUsers)
	}
	for _, e := range out.Entries {
		if e.UserID == "bot" {
			t.Fatal("robot entry survived cleaning")
		}
	}
	if got := len(out.ByUser("human")); got != 5 {
		t.Errorf("human entries after clean = %d, want 5", got)
	}
}

func TestCleanKeepsSlowUsers(t *testing.T) {
	l := &Log{}
	base := ts("2012-01-01 10:00:00")
	// 100 queries but spread over 100 minutes: not robotic.
	for i := 0; i < 100; i++ {
		l.Append(Entry{"u", fmt.Sprintf("steady query %d", i), "", base.Add(time.Duration(i) * time.Minute)})
	}
	_, stats := Clean(l, CleanerConfig{})
	if stats.RoboticUsers != 0 {
		t.Errorf("slow user flagged robotic: %+v", stats)
	}
}

func TestLooksLikeURL(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"www.google.com", true},
		{"http://x.y", true},
		{"https://x.y", true},
		{"facebook.com", true},
		{"sun java download", false},
		{"java.com tutorial page", false}, // has spaces → treated as phrase
	}
	for _, c := range cases {
		if got := looksLikeURL(c.in); got != c.want {
			t.Errorf("looksLikeURL(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
