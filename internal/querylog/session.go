package querylog

import (
	"time"
)

// Session is a maximal run of one user's queries serving a single
// information need (paper Definition 1). Entries are in submission
// order.
type Session struct {
	UserID  string
	Entries []Entry
}

// Queries returns the normalized query strings of the session in order.
func (s Session) Queries() []string {
	out := make([]string, len(s.Entries))
	for i, e := range s.Entries {
		out[i] = NormalizeQuery(e.Query)
	}
	return out
}

// Start returns the timestamp of the first entry.
func (s Session) Start() time.Time { return s.Entries[0].Time }

// End returns the timestamp of the last entry.
func (s Session) End() time.Time { return s.Entries[len(s.Entries)-1].Time }

// SessionizerConfig tunes session segmentation. The defaults follow the
// context-aware segmentation of the paper's reference [25]: a hard
// inactivity timeout plus a lexical-similarity rescue that keeps related
// reformulations in one session even across moderate gaps.
type SessionizerConfig struct {
	// Timeout is the inactivity gap that always closes a session
	// (default 30 minutes, the standard from the sessionization
	// literature).
	Timeout time.Duration
	// SoftTimeout is a shorter gap below which queries always continue
	// the session regardless of similarity (default 5 minutes).
	SoftTimeout time.Duration
	// MinSimilarity is the Jaccard term overlap required to keep the
	// session open for gaps between SoftTimeout and Timeout (default
	// 0.2).
	MinSimilarity float64
}

func (c SessionizerConfig) withDefaults() SessionizerConfig {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Minute
	}
	if c.SoftTimeout <= 0 {
		c.SoftTimeout = 5 * time.Minute
	}
	if c.SoftTimeout > c.Timeout {
		c.SoftTimeout = c.Timeout
	}
	if c.MinSimilarity <= 0 {
		c.MinSimilarity = 0.2
	}
	return c
}

// Sessionize segments the log into sessions. The log is sorted (by user,
// then time) as a side effect. A new session starts when the user
// changes, when the inactivity gap exceeds Timeout, or when the gap
// exceeds SoftTimeout and the query shares insufficient vocabulary with
// the session so far.
func Sessionize(l *Log, cfg SessionizerConfig) []Session {
	cfg = cfg.withDefaults()
	l.Sort()
	var sessions []Session
	for i := 0; i < len(l.Entries); {
		j := i
		for j < len(l.Entries) && l.Entries[j].UserID == l.Entries[i].UserID {
			j++
		}
		sessions = append(sessions, scanUserSessions(l.Entries[i:j], cfg)...)
		i = j
	}
	return sessions
}

// scanUserSessions runs the boundary scan over one user's entries,
// already sorted by (time, query). cfg must carry defaults. This is the
// single scan both Sessionize and SessionizeDelta use — the delta
// path's prefix-reuse argument depends on every boundary decision
// looking only backward (gap to the previous entry, terms of the
// session so far), which holds here.
func scanUserSessions(entries []Entry, cfg SessionizerConfig) []Session {
	var sessions []Session
	var cur *Session
	var curTerms map[string]bool
	for _, e := range entries {
		if cur != nil {
			gap := e.Time.Sub(cur.Entries[len(cur.Entries)-1].Time)
			if gap > cfg.Timeout ||
				(gap > cfg.SoftTimeout && jaccardWithSet(curTerms, e.Query) < cfg.MinSimilarity) {
				sessions = append(sessions, *cur)
				cur = nil
			}
		}
		if cur == nil {
			cur = &Session{UserID: e.UserID}
			curTerms = make(map[string]bool)
		}
		cur.Entries = append(cur.Entries, e)
		for _, t := range Tokenize(e.Query) {
			curTerms[t] = true
		}
	}
	if cur != nil && len(cur.Entries) > 0 {
		sessions = append(sessions, *cur)
	}
	return sessions
}

// jaccardWithSet computes |terms(q) ∩ set| / |terms(q) ∪ set|.
func jaccardWithSet(set map[string]bool, q string) float64 {
	toks := Tokenize(q)
	if len(toks) == 0 || len(set) == 0 {
		return 0
	}
	qset := make(map[string]bool, len(toks))
	for _, t := range toks {
		qset[t] = true
	}
	inter := 0
	for t := range qset {
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(qset) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SearchContext returns the previously submitted entries within the same
// session as the entry at position idx (paper Definition 2). idx indexes
// into s.Entries.
func SearchContext(s Session, idx int) []Entry {
	if idx < 0 || idx > len(s.Entries) {
		return nil
	}
	return s.Entries[:idx]
}

// SessionsByUser groups sessions per user, preserving chronological
// order within each user.
func SessionsByUser(sessions []Session) map[string][]Session {
	out := make(map[string][]Session)
	for _, s := range sessions {
		out[s.UserID] = append(out[s.UserID], s)
	}
	return out
}

// SplitRecent partitions one user's sessions into (history, test) where
// test holds the n most recent sessions — the evaluation protocol of the
// paper's Section VI-C (10 most recent sessions per user are held out).
func SplitRecent(sessions []Session, n int) (history, test []Session) {
	if n >= len(sessions) {
		return nil, sessions
	}
	cut := len(sessions) - n
	return sessions[:cut], sessions[cut:]
}
