package querylog

import (
	"bytes"
	"strings"
	"testing"
	"time"
	"unicode"
)

// FuzzNormalizeQuery: normalization must be idempotent, lowercase, and
// never emit framing characters.
func FuzzNormalizeQuery(f *testing.F) {
	for _, seed := range []string{
		"Sun Java", "  spaces  ", "C++ & Go!", "日本語 クエリ", "tabs\tand\nnewlines",
		"", "a", strings.Repeat("x", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n := NormalizeQuery(q)
		if n != NormalizeQuery(n) {
			t.Fatalf("not idempotent: %q -> %q -> %q", q, n, NormalizeQuery(n))
		}
		for _, r := range n {
			if unicode.IsUpper(r) {
				t.Fatalf("uppercase survived: %q", n)
			}
			if r == '\t' || r == '\n' || r == '\r' {
				t.Fatalf("framing char survived: %q", n)
			}
		}
		if strings.HasPrefix(n, " ") || strings.HasSuffix(n, " ") || strings.Contains(n, "  ") {
			t.Fatalf("whitespace not collapsed: %q", n)
		}
	})
}

// FuzzTSVRoundTrip: any entry written by WriteTSV must reparse, and
// tab-free fields must survive byte-for-byte.
func FuzzTSVRoundTrip(f *testing.F) {
	f.Add("u1", "sun java", "www.java.com")
	f.Add("user with spaces", "query\twith\ttabs", "url\nwith\nnewlines")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, user, query, url string) {
		l := &Log{}
		when := time.Date(2012, 3, 4, 5, 6, 7, 0, time.UTC)
		l.Append(Entry{UserID: user, Query: query, ClickedURL: url, Time: when})
		var buf bytes.Buffer
		if err := l.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, buf.String())
		}
		if got.Len() != 1 {
			t.Fatalf("round trip produced %d entries", got.Len())
		}
		e := got.Entries[0]
		if !e.Time.Equal(when) {
			t.Fatalf("time changed: %v", e.Time)
		}
		if !strings.ContainsAny(user, "\t\n\r") && e.UserID != user {
			t.Fatalf("user changed: %q -> %q", user, e.UserID)
		}
		if !strings.ContainsAny(query, "\t\n\r") && e.Query != query {
			t.Fatalf("query changed: %q -> %q", query, e.Query)
		}
	})
}

// FuzzSessionize: arbitrary entry soups must partition cleanly.
func FuzzSessionize(f *testing.F) {
	f.Add("u1", "a query", int64(0), "u2", "another", int64(3600))
	f.Fuzz(func(t *testing.T, u1, q1 string, off1 int64, u2, q2 string, off2 int64) {
		base := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
		l := &Log{}
		l.Append(Entry{UserID: u1, Query: q1, Time: base.Add(time.Duration(off1%86400) * time.Second)})
		l.Append(Entry{UserID: u2, Query: q2, Time: base.Add(time.Duration(off2%86400) * time.Second)})
		sessions := Sessionize(l, SessionizerConfig{})
		total := 0
		for _, s := range sessions {
			total += len(s.Entries)
			for _, e := range s.Entries {
				if e.UserID != s.UserID {
					t.Fatal("session mixes users")
				}
			}
		}
		if total != 2 {
			t.Fatalf("partition lost entries: %d", total)
		}
	})
}
