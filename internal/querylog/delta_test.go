package querylog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// deltaRandomEntries generates one user's entries with gaps straddling
// every sessionizer regime: sub-soft-timeout, rescue-window, and hard
// timeout.
func deltaRandomEntries(rng *rand.Rand, user string, n int, start time.Time) []Entry {
	words := []string{"sun", "java", "solar", "cell", "oracle", "panel"}
	out := make([]Entry, n)
	t := start
	for i := range out {
		q := words[rng.Intn(len(words))]
		if rng.Intn(2) == 0 {
			q += " " + words[rng.Intn(len(words))]
		}
		out[i] = Entry{UserID: user, Query: q, Time: t}
		// Mix of gaps: mostly short, sometimes in the soft-to-hard
		// window, sometimes past the hard timeout.
		switch rng.Intn(4) {
		case 0:
			t = t.Add(time.Duration(1+rng.Intn(4)) * time.Minute)
		case 1:
			t = t.Add(time.Duration(6+rng.Intn(20)) * time.Minute)
		case 2:
			t = t.Add(time.Duration(31+rng.Intn(90)) * time.Minute)
		default:
			t = t.Add(time.Duration(rng.Intn(300)) * time.Second)
		}
	}
	return out
}

// TestSessionizeDeltaMatchesFull is the prefix-reuse property test:
// old[:keep] + rebuilt must equal a full Sessionize over the combined
// history, across random histories, burst sizes and time overlaps.
func TestSessionizeDeltaMatchesFull(t *testing.T) {
	cfg := SessionizerConfig{}
	start := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		user := "u1"
		base := deltaRandomEntries(rng, user, 30+rng.Intn(40), start)
		// Fresh entries begin somewhere in the base's tail — sometimes
		// extending the last session, sometimes long after it.
		lastT := base[len(base)-1].Time
		freshStart := lastT.Add(time.Duration(rng.Intn(120)-30) * time.Minute)
		fresh := deltaRandomEntries(rng, user, 1+rng.Intn(15), freshStart)

		bl := &Log{Entries: append([]Entry(nil), base...)}
		old := Sessionize(bl, cfg)

		keep, rebuilt := SessionizeDelta(old, fresh, cfg)
		if keep < 0 || keep > len(old) {
			t.Fatalf("seed %d: keep = %d of %d", seed, keep, len(old))
		}
		got := append(append([]Session(nil), old[:keep]...), rebuilt...)

		cl := &Log{Entries: append(append([]Entry(nil), base...), fresh...)}
		want := Sessionize(cl, cfg)

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d sessions, full %d", seed, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Entries, want[i].Entries) {
				t.Fatalf("seed %d session %d:\n delta %v\n full  %v", seed, i, got[i].Entries, want[i].Entries)
			}
		}
	}
}

// TestSessionizeDeltaEmptyFresh: no fresh entries keeps everything.
func TestSessionizeDeltaEmptyFresh(t *testing.T) {
	start := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(1))
	bl := &Log{Entries: deltaRandomEntries(rng, "u1", 20, start)}
	old := Sessionize(bl, SessionizerConfig{})
	keep, rebuilt := SessionizeDelta(old, nil, SessionizerConfig{})
	if keep != len(old) || rebuilt != nil {
		t.Fatalf("keep = %d (want %d), rebuilt = %v (want nil)", keep, len(old), rebuilt)
	}
}

// TestSessionizeDeltaFreshOnly: a brand-new user has no old sessions.
func TestSessionizeDeltaFreshOnly(t *testing.T) {
	start := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	fresh := []Entry{
		{UserID: "new", Query: "sun", Time: start},
		{UserID: "new", Query: "sun java", Time: start.Add(time.Minute)},
		{UserID: "new", Query: "solar", Time: start.Add(2 * time.Hour)},
	}
	keep, rebuilt := SessionizeDelta(nil, fresh, SessionizerConfig{})
	if keep != 0 {
		t.Fatalf("keep = %d", keep)
	}
	if len(rebuilt) != 2 {
		t.Fatalf("rebuilt %d sessions, want 2", len(rebuilt))
	}
}

// TestSegmentList covers the append-only sealed-segment log: totals,
// the delta boundary (EntriesFrom), flatten, and clone isolation.
func TestSegmentList(t *testing.T) {
	mk := func(n int, tag string) []Entry {
		out := make([]Entry, n)
		for i := range out {
			out[i] = Entry{UserID: "u", Query: fmt.Sprintf("%s-%d", tag, i)}
		}
		return out
	}
	var sl SegmentList
	sl.Append(mk(3, "a"))
	sl.Append(nil) // empty appends do not create segments
	sl.Append(mk(2, "b"))
	if sl.NumSegments() != 2 || sl.TotalEntries() != 5 {
		t.Fatalf("segments %d entries %d", sl.NumSegments(), sl.TotalEntries())
	}
	if got := sl.EntriesFrom(1); len(got) != 2 || got[0].Query != "b-0" {
		t.Fatalf("EntriesFrom(1) = %v", got)
	}
	if got := sl.EntriesFrom(2); got != nil {
		t.Fatalf("EntriesFrom(2) = %v, want nil", got)
	}
	if l := sl.Flatten(); l.Len() != 5 || l.Entries[3].Query != "b-0" {
		t.Fatalf("Flatten = %v", l.Entries)
	}

	// A clone must not observe appends to the original (and vice
	// versa) — the server's hot-swap relies on this isolation.
	cl := sl.Clone()
	sl.Append(mk(1, "c"))
	if cl.NumSegments() != 2 || cl.TotalEntries() != 5 {
		t.Fatalf("clone observed original's append: %d segs %d entries", cl.NumSegments(), cl.TotalEntries())
	}
	cl.Append(mk(4, "d"))
	if sl.NumSegments() != 3 || sl.TotalEntries() != 6 {
		t.Fatalf("original observed clone's append: %d segs %d entries", sl.NumSegments(), sl.TotalEntries())
	}
}
