package randomwalk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// chain builds the transition matrix of a simple directed chain
// 0 → 1 → 2 → … → n−1 (absorbing at the end).
func chain(n int) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, 1)
	}
	return b.Build()
}

// ring builds a symmetric random walk on an n-cycle.
func ring(n int) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, (i+1)%n, 0.5)
		b.Add(i, (i+n-1)%n, 0.5)
	}
	return b.Build()
}

func TestForwardChain(t *testing.T) {
	tr := chain(4)
	p := Forward(tr, Unit(4, 0), 2, 0)
	if p[2] != 1 {
		t.Errorf("after 2 steps mass at %v, want all at node 2", p)
	}
}

func TestForwardSelfLoop(t *testing.T) {
	tr := chain(3)
	p := Forward(tr, Unit(3, 0), 1, 0.25)
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Errorf("self-loop distribution = %v", p)
	}
}

func TestForwardPreservesMassOnStochastic(t *testing.T) {
	tr := ring(7)
	p := Forward(tr, Unit(7, 3), 25, 0.1)
	s := 0.0
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("mass = %v, want 1", s)
	}
}

func TestBackwardChain(t *testing.T) {
	tr := chain(4)
	// Backward score w.r.t. node 3: probability a 2-step walk from each
	// node reaches node 3 — only node 1 does.
	b := Backward(tr, Unit(4, 3), 2, 0)
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("b = %v, want %v", b, want)
			break
		}
	}
}

func TestForwardBackwardDuality(t *testing.T) {
	// For any stochastic T: Forward(p0, t)·q0 == p0·Backward(q0, t).
	rng := rand.New(rand.NewSource(3))
	n := 9
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				b.Add(i, j, rng.Float64())
			}
		}
	}
	tr := b.Build().RowNormalized()
	p0 := Unit(n, 2)
	q0 := Unit(n, 7)
	steps := 4
	fwd := Forward(tr, p0, steps, 0)
	bwd := Backward(tr, q0, steps, 0)
	lhs, rhs := 0.0, 0.0
	for i := 0; i < n; i++ {
		lhs += fwd[i] * q0[i]
		rhs += p0[i] * bwd[i]
	}
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("duality violated: %v vs %v", lhs, rhs)
	}
}

func TestTruncatedHittingTimeChain(t *testing.T) {
	// On the chain 0→1→2→3 with target {3}: h(3)=0, h(2)=1, h(1)=2,
	// h(0)=3 once l ≥ 3.
	tr := chain(4)
	h := HittingTimeToSet(tr, map[int]bool{3: true}, 10)
	want := []float64{3, 2, 1, 0}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Fatalf("h = %v, want %v", h, want)
		}
	}
}

func TestTruncatedHittingTimeUnreachable(t *testing.T) {
	// Two disconnected nodes: from node 1 the set {0} is unreachable;
	// truncated h grows with l (saturating at l).
	b := sparse.NewBuilder(2, 2)
	b.Add(1, 1, 1)
	tr := b.Build()
	h := HittingTimeToSet(tr, map[int]bool{0: true}, 15)
	if h[0] != 0 {
		t.Errorf("h[0] = %v, want 0", h[0])
	}
	if h[1] != 15 {
		t.Errorf("h[1] = %v, want l = 15", h[1])
	}
}

func TestHittingTimeMonotoneInL(t *testing.T) {
	// Truncated hitting time is non-decreasing in the truncation depth.
	tr := ring(8)
	set := map[int]bool{0: true}
	prev := HittingTimeToSet(tr, set, 1)
	for l := 2; l <= 12; l++ {
		h := HittingTimeToSet(tr, set, l)
		for i := range h {
			if h[i]+1e-12 < prev[i] {
				t.Fatalf("l=%d node %d: h decreased %v → %v", l, i, prev[i], h[i])
			}
		}
		prev = h
	}
}

func TestHittingTimeNearerIsSmaller(t *testing.T) {
	// On the ring, nodes closer to the target have smaller hitting time.
	tr := ring(9)
	h := HittingTimeToSet(tr, map[int]bool{0: true}, 50)
	if !(h[1] < h[2] && h[2] < h[3] && h[3] < h[4]) {
		t.Errorf("hitting times not increasing with distance: %v", h)
	}
	// Symmetry of the ring.
	if math.Abs(h[1]-h[8]) > 1e-9 || math.Abs(h[4]-h[5]) > 1e-9 {
		t.Errorf("ring symmetry violated: %v", h)
	}
}

// Property: h is 0 exactly on the target set, positive elsewhere (for
// l ≥ 1).
func TestPropertyHittingTimeZeroOnSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		b := sparse.NewBuilder(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					b.Add(i, j, rng.Float64())
				}
			}
		}
		tr := b.Build().RowNormalized()
		set := map[int]bool{rng.Intn(n): true}
		h := HittingTimeToSet(tr, set, 1+rng.Intn(10))
		for i := range h {
			if set[i] && h[i] != 0 {
				return false
			}
			if !set[i] && h[i] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnit(t *testing.T) {
	u := Unit(4, 2)
	if u[2] != 1 || u[0] != 0 || len(u) != 4 {
		t.Errorf("Unit = %v", u)
	}
}
