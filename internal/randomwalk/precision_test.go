package randomwalk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// The float32 sweep must track the float64 recursion to within the
// accumulated rounding of l sweeps over [0, l]-bounded values —
// comfortably below the gaps that the greedy argmax of the hitting
// stage discriminates on. Tol is left at 0 so both paths run exactly
// Steps sweeps and the iteration counts are comparable.
func TestFlatFloat32Parity(t *testing.T) {
	cases := []struct {
		name               string
		n, deg, isolate, l int
	}{
		{"small", 30, 4, 0, 10},
		{"medium", 200, 8, 0, 10},
		{"dangling-heavy", 120, 3, 0, 25},
		{"unreachable-block", 150, 6, 30, 10},
		{"deep", 80, 5, 10, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			trans := randTransition(rng, tc.n, tc.deg, tc.isolate)
			inS := make([]bool, tc.n)
			for i := 0; i < tc.n/10+1; i++ {
				inS[rng.Intn(tc.n)] = true
			}

			h64, it64 := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: tc.l})
			h32, it32 := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
				Steps: tc.l, Precision: sparse.PrecisionFloat32,
			})
			if it32 != it64 {
				t.Fatalf("float32 ran %d sweeps, float64 %d", it32, it64)
			}
			// Per-sweep float32 rounding is ~u32 · |h| with |h| ≤ l; over l
			// sweeps the worst case grows linearly, so budget l·l·u32 with
			// headroom.
			tol := float64(tc.l) * float64(tc.l) * 1e-6
			for i := range h64 {
				if d := math.Abs(h32[i] - h64[i]); d > tol {
					t.Fatalf("h[%d]: float32 %v vs float64 %v (diff %v > %v)", i, h32[i], h64[i], d, tol)
				}
			}
		})
	}
}

// Worker-count determinism must hold for the float32 kernel too: the
// parallel sweep partitions rows but never reorders a row's
// accumulation.
func TestFlatFloat32WorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 400
	trans := randTransition(rng, n, 12, 0)
	inS := make([]bool, n)
	for i := 0; i < 30; i++ {
		inS[rng.Intn(n)] = true
	}
	seq, _ := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
		Steps: 12, Precision: sparse.PrecisionFloat32, Workers: 1,
	})
	par, _ := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
		Steps: 12, Precision: sparse.PrecisionFloat32, Workers: 4,
	})
	for i := range seq {
		if math.Float64bits(seq[i]) != math.Float64bits(par[i]) {
			t.Fatalf("h[%d]: workers=4 diverged from workers=1", i)
		}
	}
}

// The early-convergence exit must behave identically in float32: on
// the stabilize-in-one-step graph of TestFlatEarlyExit the sweep stops
// after the confirmation pass, well before the truncation depth.
func TestFlatFloat32EarlyExit(t *testing.T) {
	const n, l = 50, 200
	b := sparse.NewBuilder(n, n)
	for i := 1; i < n; i++ {
		b.Add(i, 0, 1.0) // every node moves to node 0 in one step
	}
	trans := b.Build()
	inS := make([]bool, n)
	inS[0] = true
	_, iters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
		Steps: l, Tol: 1e-6, Precision: sparse.PrecisionFloat32,
	})
	if iters != 2 {
		t.Fatalf("float32 early exit: %d sweeps, want 2 (stabilize + confirm)", iters)
	}
}
