package randomwalk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func randomStochastic(rng *rand.Rand, n int) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				b.Add(i, j, rng.Float64())
			}
		}
	}
	return b.Build().RowNormalized()
}

// Property: enlarging the target set can only LOWER (or keep) every
// node's hitting time — more targets are easier to hit. This is the
// monotonicity Algorithm 1's greedy selection depends on.
func TestPropertyHittingTimeMonotoneInTargetSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		tr := randomStochastic(rng, n)
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		l := 1 + rng.Intn(15)
		hSmall := HittingTimeToSet(tr, map[int]bool{a: true}, l)
		hBig := HittingTimeToSet(tr, map[int]bool{a: true, b: true}, l)
		for i := range hSmall {
			if hBig[i] > hSmall[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Forward with zero steps returns the start distribution.
func TestPropertyForwardZeroSteps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		tr := randomStochastic(rng, n)
		start := Unit(n, rng.Intn(n))
		p := Forward(tr, start, 0, 0.3)
		for i := range p {
			if p[i] != start[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hitting times are bounded by the truncation depth l.
func TestPropertyHittingTimeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		tr := randomStochastic(rng, n)
		l := 1 + rng.Intn(20)
		h := HittingTimeToSet(tr, map[int]bool{rng.Intn(n): true}, l)
		for _, v := range h {
			if v < 0 || v > float64(l)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
