package randomwalk

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// The synthetic kernel workload: a 2,000-node transition graph at ~12
// nonzeros per row (≈24k nnz, large enough for the parallel path to
// engage) with a small unreachable block and a 3-node target set — the
// shape of one greedy round on a generously-sized compact
// representation.
const benchN, benchDeg, benchL = 2000, 12, 10

func benchFixture() (*sparse.Matrix, []bool, []float64) {
	rng := rand.New(rand.NewSource(23))
	trans := randTransition(rng, benchN, benchDeg, 100)
	inS := make([]bool, benchN)
	for i := 0; i < 3; i++ {
		inS[rng.Intn(benchN-100)] = true
	}
	return trans, inS, DanglingMass(trans)
}

// BenchmarkHittingTimeClosure is the seed kernel: closure callback per
// nonzero, per-call rowSum recomputation, fresh vectors every call.
func BenchmarkHittingTimeClosure(b *testing.B) {
	trans, inS, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTime(trans, func(i int) bool { return inS[i] }, benchL)
	}
}

// benchmarkFlat runs the flat kernel at a given worker count with the
// early exit disabled — the pure kernel-vs-kernel comparison against
// BenchmarkHittingTimeClosure (identical sweep count).
func benchmarkFlat(b *testing.B, workers int) {
	trans, inS, dangling := benchFixture()
	scratch := &SweepScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
			Steps: benchL, Workers: workers, Dangling: dangling, Scratch: scratch,
		})
	}
}

func BenchmarkHittingTimeFlat(b *testing.B)         { benchmarkFlat(b, 1) }
func BenchmarkHittingTimeFlatWorkers4(b *testing.B) { benchmarkFlat(b, 4) }
func BenchmarkHittingTimeFlatWorkers8(b *testing.B) { benchmarkFlat(b, 8) }

// BenchmarkHittingTimeFlatFloat32 is the same kernel on the float32
// value mirror — the precision split of the bench suite. The win is
// memory-bandwidth-bound: it grows with the transition matrix, so on
// this L2-resident fixture it reads as a lower bound.
func BenchmarkHittingTimeFlatFloat32(b *testing.B) {
	trans, inS, dangling := benchFixture()
	trans.Prewarm32()
	scratch := &SweepScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
			Steps: benchL, Dangling: dangling, Scratch: scratch,
			Precision: sparse.PrecisionFloat32,
		})
	}
}

// BenchmarkHittingTimeSteadyState is the allocation guard (`make
// bench-guard` fails the build if this ever allocates): the flat
// kernel on the sequential path with caller scratch and precomputed
// dangling mass must run the steady-state sweep with 0 allocs/op.
func BenchmarkHittingTimeSteadyState(b *testing.B) {
	trans, inS, dangling := benchFixture()
	scratch := &SweepScratch{}
	opts := HittingTimeOpts{Steps: benchL, Dangling: dangling, Scratch: scratch}
	TruncatedHittingTimeFlat(trans, inS, opts) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, opts)
	}
}

// BenchmarkHittingTimeSeedMap is the kernel exactly as the greedy loop
// originally invoked it: map-based membership through HittingTimeToSet
// on a realistic |S| — the honest "before" for the flat kernel numbers
// above (BenchmarkHittingTimeClosure isolates just the closure cost by
// using a []bool-backed callback).
func BenchmarkHittingTimeSeedMap(b *testing.B) {
	trans, inSb, _ := benchFixture()
	set := map[int]bool{}
	for i, in := range inSb {
		if in {
			set[i] = true
		}
	}
	rng := rand.New(rand.NewSource(5))
	for len(set) < 10 {
		set[rng.Intn(benchN)] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HittingTimeToSet(trans, set, benchL)
	}
}
