package randomwalk

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sparse"
)

// The synthetic kernel workload: a 2,000-node transition graph at ~12
// nonzeros per row (≈24k nnz, large enough for the parallel path to
// engage) with a small unreachable block and a 3-node target set — the
// shape of one greedy round on a generously-sized compact
// representation.
const benchN, benchDeg, benchL = 2000, 12, 10

func benchFixture() (*sparse.Matrix, []bool, []float64) {
	rng := rand.New(rand.NewSource(23))
	trans := randTransition(rng, benchN, benchDeg, 100)
	inS := make([]bool, benchN)
	for i := 0; i < 3; i++ {
		inS[rng.Intn(benchN-100)] = true
	}
	return trans, inS, DanglingMass(trans)
}

// BenchmarkHittingTimeClosure is the seed kernel: closure callback per
// nonzero, per-call rowSum recomputation, fresh vectors every call.
func BenchmarkHittingTimeClosure(b *testing.B) {
	trans, inS, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTime(trans, func(i int) bool { return inS[i] }, benchL)
	}
}

// benchmarkFlat runs the flat kernel at a given worker count with the
// early exit disabled — the pure kernel-vs-kernel comparison against
// BenchmarkHittingTimeClosure (identical sweep count).
func benchmarkFlat(b *testing.B, workers int) {
	trans, inS, dangling := benchFixture()
	scratch := &SweepScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
			Steps: benchL, Workers: workers, Dangling: dangling, Scratch: scratch,
		})
	}
}

func BenchmarkHittingTimeFlat(b *testing.B)         { benchmarkFlat(b, 1) }
func BenchmarkHittingTimeFlatWorkers4(b *testing.B) { benchmarkFlat(b, 4) }
func BenchmarkHittingTimeFlatWorkers8(b *testing.B) { benchmarkFlat(b, 8) }

// BenchmarkHittingTimeFlatFloat32 is the same kernel on the float32
// value mirror — the precision split of the bench suite. The win is
// memory-bandwidth-bound: it grows with the transition matrix, so on
// this L2-resident fixture it reads as a lower bound.
func BenchmarkHittingTimeFlatFloat32(b *testing.B) {
	trans, inS, dangling := benchFixture()
	trans.Prewarm32()
	scratch := &SweepScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
			Steps: benchL, Dangling: dangling, Scratch: scratch,
			Precision: sparse.PrecisionFloat32,
		})
	}
}

// BenchmarkHittingTimeSteadyState is the allocation guard (`make
// bench-guard` fails the build if this ever allocates): the flat
// kernel on the sequential path with caller scratch and precomputed
// dangling mass must run the steady-state sweep with 0 allocs/op.
func BenchmarkHittingTimeSteadyState(b *testing.B) {
	trans, inS, dangling := benchFixture()
	scratch := &SweepScratch{}
	opts := HittingTimeOpts{Steps: benchL, Dangling: dangling, Scratch: scratch}
	TruncatedHittingTimeFlat(trans, inS, opts) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, opts)
	}
}

// BenchmarkHittingTimeSeedMap is the kernel exactly as the greedy loop
// originally invoked it: map-based membership through HittingTimeToSet
// on a realistic |S| — the honest "before" for the flat kernel numbers
// above (BenchmarkHittingTimeClosure isolates just the closure cost by
// using a []bool-backed callback).
func BenchmarkHittingTimeSeedMap(b *testing.B) {
	trans, inSb, _ := benchFixture()
	set := map[int]bool{}
	for i, in := range inSb {
		if in {
			set[i] = true
		}
	}
	rng := rand.New(rand.NewSource(5))
	for len(set) < 10 {
		set[rng.Intn(benchN)] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HittingTimeToSet(trans, set, benchL)
	}
}

// --- Beyond-L2 fixture ----------------------------------------------
//
// The 2,000-node fixture above fits in L2, so the float32 sweep reads
// as a wash there (with every stream cache-resident there is no
// bandwidth to save). This fixture is sized past any L2/L3 slice on
// the fleet: ~524k nodes at ~8.5 nonzeros per row is ≈4M nnz — a
// ~80 MiB float64 sweep working set (colidx + val + rowptr + three
// vectors), with the h-vector gather target alone at 4 MiB. Sweeps
// stream from memory and the gathers miss cache, so the value-width
// split becomes measurable (~1.2x on the reference box: float32 halves
// both the value stream and the gather footprint).

const llcN, llcDeg = 1 << 19, 16

var (
	llcOnce     sync.Once
	llcTrans    *sparse.Matrix
	llcInS      []bool
	llcDangling []float64
)

func llcFixture() (*sparse.Matrix, []bool, []float64) {
	llcOnce.Do(func() {
		rng := rand.New(rand.NewSource(29))
		llcTrans = randTransition(rng, llcN, llcDeg, 1000)
		llcInS = make([]bool, llcN)
		for i := 0; i < 5; i++ {
			llcInS[rng.Intn(llcN-1000)] = true
		}
		llcDangling = DanglingMass(llcTrans)
		llcTrans.Prewarm32()
	})
	return llcTrans, llcInS, llcDangling
}

func benchmarkLLC(b *testing.B, precision sparse.Precision) {
	trans, inS, dangling := llcFixture()
	view := trans.View()
	nnz := len(view.Val)
	b.SetBytes(int64(benchL * nnz * 16)) // colidx + float64 val per sweep
	scratch := &SweepScratch{}
	opts := HittingTimeOpts{
		Steps: benchL, Dangling: dangling, Scratch: scratch, Precision: precision,
	}
	TruncatedHittingTimeFlat(trans, inS, opts) // warm scratch + mirrors
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TruncatedHittingTimeFlat(trans, inS, opts)
	}
}

// BenchmarkHittingTimeLLC is the float64 sweep on the beyond-L2
// fixture — the memory-bound baseline.
func BenchmarkHittingTimeLLC(b *testing.B) { benchmarkLLC(b, sparse.PrecisionFloat64) }

// BenchmarkHittingTimeLLCFloat32 is the same sweep on the float32
// value mirror: half the value-stream traffic, which is most of the
// per-sweep bytes at this size.
func BenchmarkHittingTimeLLCFloat32(b *testing.B) { benchmarkLLC(b, sparse.PrecisionFloat32) }
