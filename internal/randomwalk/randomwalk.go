// Package randomwalk provides generic Markov random-walk machinery on
// sparse transition matrices: multi-step forward and backward visit
// distributions (the FRW/BRW baselines of Craswell & Szummer) and
// truncated hitting times (Mei et al.), which the HT, DQS and PHT
// baselines and PQS-DA's own diversification stage build on.
package randomwalk

import (
	"repro/internal/sparse"
)

// Forward computes the t-step forward walk distribution p_t = p_0 Tᵗ
// with per-step self-transition probability selfLoop (Craswell &
// Szummer keep the walker in place with probability s each step; pass 0
// to disable). start is the initial distribution over nodes.
func Forward(trans *sparse.Matrix, start []float64, steps int, selfLoop float64) []float64 {
	n := trans.Rows()
	p := append([]float64(nil), start...)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		trans.MulVecT(p, next) // next[j] = Σ_i p[i]·T[i,j]
		if selfLoop > 0 {
			for i := range next {
				next[i] = selfLoop*p[i] + (1-selfLoop)*next[i]
			}
		}
		p, next = next, p
	}
	return p
}

// Backward computes the t-step backward walk scores: the probability
// that a walk started at each node reaches the start distribution after
// t steps, b_t = Tᵗ b_0 (column vector iteration). The BRW baseline
// ranks suggestion candidates by this score.
func Backward(trans *sparse.Matrix, start []float64, steps int, selfLoop float64) []float64 {
	n := trans.Rows()
	b := append([]float64(nil), start...)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		trans.MulVec(b, next) // next[i] = Σ_j T[i,j]·b[j]
		if selfLoop > 0 {
			for i := range next {
				next[i] = selfLoop*b[i] + (1-selfLoop)*next[i]
			}
		}
		b, next = next, b
	}
	return b
}

// TruncatedHittingTime computes the l-step truncated expected hitting
// time from every node to the target set S on the transition matrix:
//
//	h_{t+1}(i) = 1 + Σ_j T[i,j]·h_t(j)   for i ∉ S,   h(i) = 0 on S,
//
// iterated l times from h_0 = 0 (paper Eq. 17 / Algorithm 1). Nodes in S
// have hitting time 0. Dangling probability mass (rows summing below 1,
// including fully disconnected nodes) self-loops, so nodes that cannot
// reach S saturate at exactly l — callers can treat h ≥ l as
// "unreachable within the horizon".
func TruncatedHittingTime(trans *sparse.Matrix, inS func(i int) bool, l int) []float64 {
	n := trans.Rows()
	h := make([]float64, n)
	next := make([]float64, n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum[i] = trans.RowSum(i)
	}
	for t := 0; t < l; t++ {
		for i := 0; i < n; i++ {
			if inS(i) {
				next[i] = 0
				continue
			}
			s := 1.0
			trans.Row(i, func(j int, v float64) {
				s += v * h[j]
			})
			if dangling := 1 - rowSum[i]; dangling > 1e-12 {
				s += dangling * h[i]
			}
			next[i] = s
		}
		h, next = next, h
	}
	return h
}

// HittingTimeToSet is a convenience wrapper taking the target set as a
// map.
func HittingTimeToSet(trans *sparse.Matrix, set map[int]bool, l int) []float64 {
	return TruncatedHittingTime(trans, func(i int) bool { return set[i] }, l)
}

// Unit returns a length-n one-hot distribution at idx.
func Unit(n, idx int) []float64 {
	v := make([]float64, n)
	v[idx] = 1
	return v
}
