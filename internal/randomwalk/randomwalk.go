// Package randomwalk provides generic Markov random-walk machinery on
// sparse transition matrices: multi-step forward and backward visit
// distributions (the FRW/BRW baselines of Craswell & Szummer) and
// truncated hitting times (Mei et al.), which the HT, DQS and PHT
// baselines and PQS-DA's own diversification stage build on.
package randomwalk

import (
	"sync"

	"repro/internal/sparse"
)

// Forward computes the t-step forward walk distribution p_t = p_0 Tᵗ
// with per-step self-transition probability selfLoop (Craswell &
// Szummer keep the walker in place with probability s each step; pass 0
// to disable). start is the initial distribution over nodes.
func Forward(trans *sparse.Matrix, start []float64, steps int, selfLoop float64) []float64 {
	n := trans.Rows()
	p := append([]float64(nil), start...)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		trans.MulVecT(p, next) // next[j] = Σ_i p[i]·T[i,j]
		if selfLoop > 0 {
			for i := range next {
				next[i] = selfLoop*p[i] + (1-selfLoop)*next[i]
			}
		}
		p, next = next, p
	}
	return p
}

// Backward computes the t-step backward walk scores: the probability
// that a walk started at each node reaches the start distribution after
// t steps, b_t = Tᵗ b_0 (column vector iteration). The BRW baseline
// ranks suggestion candidates by this score.
func Backward(trans *sparse.Matrix, start []float64, steps int, selfLoop float64) []float64 {
	n := trans.Rows()
	b := append([]float64(nil), start...)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		trans.MulVec(b, next) // next[i] = Σ_j T[i,j]·b[j]
		if selfLoop > 0 {
			for i := range next {
				next[i] = selfLoop*b[i] + (1-selfLoop)*next[i]
			}
		}
		b, next = next, b
	}
	return b
}

// TruncatedHittingTime computes the l-step truncated expected hitting
// time from every node to the target set S on the transition matrix:
//
//	h_{t+1}(i) = 1 + Σ_j T[i,j]·h_t(j)   for i ∉ S,   h(i) = 0 on S,
//
// iterated l times from h_0 = 0 (paper Eq. 17 / Algorithm 1). Nodes in S
// have hitting time 0. Dangling probability mass (rows summing below 1,
// including fully disconnected nodes) self-loops, so nodes that cannot
// reach S saturate at exactly l — callers can treat h ≥ l as
// "unreachable within the horizon".
//
// This closure-based form is the readable reference implementation; the
// serving hot path uses TruncatedHittingTimeFlat, which computes the
// identical recursion over the raw CSR arrays without a dynamic call
// per nonzero, without per-call allocation, and optionally across
// worker goroutines. The two are kept in bit-exact agreement by the
// parity tests in flat_test.go.
func TruncatedHittingTime(trans *sparse.Matrix, inS func(i int) bool, l int) []float64 {
	n := trans.Rows()
	sc := refPool.Get().(*refScratch)
	defer refPool.Put(sc)
	sc.resize(n)
	h, next, rowSum := sc.h, sc.next, sc.rowSum
	for i := range h {
		h[i] = 0
	}
	for i := 0; i < n; i++ {
		rowSum[i] = trans.RowSum(i)
	}
	for t := 0; t < l; t++ {
		for i := 0; i < n; i++ {
			if inS(i) {
				next[i] = 0
				continue
			}
			s := 1.0
			trans.Row(i, func(j int, v float64) {
				s += v * h[j]
			})
			if dangling := 1 - rowSum[i]; dangling > 1e-12 {
				s += dangling * h[i]
			}
			next[i] = s
		}
		h, next = next, h
	}
	// The recursion ping-pongs inside the pooled scratch; the returned
	// vector must outlive it, so copy out (the only per-call allocation).
	out := make([]float64, n)
	copy(out, h)
	return out
}

// refScratch is TruncatedHittingTime's pooled working set: the two
// ping-pong vectors plus the per-row probability mass. The greedy
// seed-selection loop calls the reference kernel once per round, so
// without pooling those three n-vectors dominate the stage's
// allocation count.
type refScratch struct {
	h, next, rowSum []float64
}

var refPool = sync.Pool{New: func() any { return new(refScratch) }}

func (s *refScratch) resize(n int) {
	if cap(s.h) < n {
		s.h = make([]float64, n)
		s.next = make([]float64, n)
		s.rowSum = make([]float64, n)
		return
	}
	s.h = s.h[:n]
	s.next = s.next[:n]
	s.rowSum = s.rowSum[:n]
}

// HittingTimeToSet is a convenience wrapper taking the target set as a
// map.
func HittingTimeToSet(trans *sparse.Matrix, set map[int]bool, l int) []float64 {
	return TruncatedHittingTime(trans, func(i int) bool { return set[i] }, l)
}

// danglingEps is the threshold below which a row's missing probability
// mass is treated as rounding noise rather than a dangling self-loop.
// It matches the historical check in TruncatedHittingTime so the flat
// kernel reproduces it bit-exactly.
const danglingEps = 1e-12

// DanglingMass returns each row's missing probability mass 1 − Σ_j
// T[i,j], clamped to 0 where it is below the rounding threshold. The
// hitting-time recursion self-loops this mass, and for an immutable
// transition matrix it is a pure function of the matrix — compute it
// once and pass it to every TruncatedHittingTimeFlat call instead of
// re-deriving row sums per greedy round.
func DanglingMass(trans *sparse.Matrix) []float64 {
	n := trans.Rows()
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		if dangling := 1 - trans.RowSum(i); dangling > danglingEps {
			d[i] = dangling
		}
	}
	return d
}

// SweepScratch is the reusable state of truncated hitting-time sweeps:
// the two ping-pong n-vectors of the recursion. A zero SweepScratch is
// ready to use; Resize (or the kernel itself) grows it on demand.
// Callers that run one sweep per greedy round — or pool scratch across
// requests — pay zero steady-state allocation.
//
// The slice returned by TruncatedHittingTimeFlat aliases this scratch:
// consume it (or copy it out) before the next sweep reuses the buffers.
type SweepScratch struct {
	h, next []float64

	// float32 counterparts, only materialized when a sweep runs with
	// Precision == sparse.PrecisionFloat32 (plus the narrowed dangling
	// mass — converted per run, it is O(n) against the sweep's O(l·nnz)).
	h32, next32, dangling32 []float32
}

// Resize readies the scratch for n-node sweeps, reallocating only when
// the capacity is insufficient.
func (s *SweepScratch) Resize(n int) {
	if cap(s.h) < n {
		s.h = make([]float64, n)
		s.next = make([]float64, n)
		return
	}
	s.h = s.h[:n]
	s.next = s.next[:n]
}

// resize32 readies the float32 buffers (lazily — float64 sweeps never
// pay for them).
func (s *SweepScratch) resize32(n int) {
	if cap(s.h32) < n {
		s.h32 = make([]float32, n)
		s.next32 = make([]float32, n)
		s.dangling32 = make([]float32, n)
		return
	}
	s.h32 = s.h32[:n]
	s.next32 = s.next32[:n]
	s.dangling32 = s.dangling32[:n]
}

// HittingTimeOpts tunes TruncatedHittingTimeFlat.
type HittingTimeOpts struct {
	// Steps is the paper's l, the truncation depth (must be > 0).
	Steps int
	// Tol enables the early-convergence exit: the recursion stops after
	// sweep t once max_i |h_t(i) − h_{t−1}(i)| ≤ Tol, i.e. when another
	// sweep cannot move any hitting time by more than Tol. ≤ 0 runs the
	// full fixed-l recursion of Eq. 17. Note that graphs with nodes
	// unable to reach S never converge (their h grows by 1 per sweep
	// until truncation), so the exit fires only when every node either
	// reaches S or is in it.
	Tol float64
	// Workers partitions each sweep's rows across this many goroutines
	// in contiguous ranges (≤ 1, or a matrix too small to benefit, runs
	// sequentially). Every row is computed with the same operation
	// order regardless of the partition, and the convergence test
	// combines per-range maxima with max — results and iteration counts
	// are bit-identical to the sequential kernel.
	Workers int
	// Dangling is the precomputed DanglingMass of the matrix. Nil makes
	// the kernel derive it per call (allocating); callers holding an
	// immutable matrix should compute it once.
	Dangling []float64
	// Scratch provides the sweep's two n-vectors. Nil allocates fresh
	// ones.
	Scratch *SweepScratch
	// Precision selects the sweep arithmetic. Float32 runs the inner
	// loop on the matrix's float32 value mirror at half the memory
	// traffic; the returned hitting times are widened back to float64.
	// Hitting times are only compared against each other (greedy
	// argmax), so float32's ~7 significant digits over values bounded
	// by Steps are ample — the tolerance-bounded parity test pins the
	// error down.
	Precision sparse.Precision
}

// TruncatedHittingTimeFlat is the hot-path form of
// TruncatedHittingTime: the same recursion over a []bool membership
// vector and the raw CSR arrays, with caller-owned scratch, precomputed
// dangling mass, optional worker-parallel sweeps and an optional early
// convergence exit. It returns the hitting-time vector (aliasing
// opts.Scratch when provided) and the number of sweeps actually run
// (= opts.Steps unless the early exit fired).
func TruncatedHittingTimeFlat(trans *sparse.Matrix, inS []bool, opts HittingTimeOpts) ([]float64, int) {
	n := trans.Rows()
	if len(inS) != n {
		panic("randomwalk: inS length does not match matrix rows")
	}
	dangling := opts.Dangling
	if dangling == nil {
		dangling = DanglingMass(trans)
	}
	scratch := opts.Scratch
	if scratch == nil {
		scratch = &SweepScratch{}
	}
	scratch.Resize(n)
	if opts.Precision == sparse.PrecisionFloat32 {
		return hittingTimeFlat32(trans, inS, dangling, scratch, opts)
	}
	h, next := scratch.h, scratch.next
	for i := range h {
		h[i] = 0
	}
	view := trans.View()
	workers := opts.Workers
	parallel := workers > 1 && n >= 4*workers && trans.NNZ() >= 4096
	iters := 0
	for t := 0; t < opts.Steps; t++ {
		var maxDiff float64
		if parallel {
			maxDiff = sweepParallel(view, dangling, inS, h, next, workers)
		} else {
			maxDiff = sweepRange(0, n, view, dangling, inS, h, next)
		}
		h, next = next, h
		iters = t + 1
		if opts.Tol > 0 && maxDiff <= opts.Tol {
			break
		}
	}
	scratch.h, scratch.next = h, next
	return h, iters
}

// hittingTimeFlat32 is the float32 sweep body: the identical recursion
// on the matrix's float32 value mirror, widened into scratch.h on
// return so callers see the usual []float64.
func hittingTimeFlat32(trans *sparse.Matrix, inS []bool, dangling []float64, scratch *SweepScratch, opts HittingTimeOpts) ([]float64, int) {
	n := trans.Rows()
	scratch.resize32(n)
	h, next := scratch.h32, scratch.next32
	for i := range h {
		h[i] = 0
	}
	d32 := scratch.dangling32
	for i, v := range dangling {
		d32[i] = float32(v)
	}
	view := trans.View32()
	workers := opts.Workers
	parallel := workers > 1 && n >= 4*workers && trans.NNZ() >= 4096
	iters := 0
	for t := 0; t < opts.Steps; t++ {
		var maxDiff float64
		if parallel {
			maxDiff = sweepParallel32(view, d32, inS, h, next, workers)
		} else {
			maxDiff = sweepRange32(0, n, view, d32, inS, h, next)
		}
		h, next = next, h
		iters = t + 1
		if opts.Tol > 0 && maxDiff <= opts.Tol {
			break
		}
	}
	scratch.h32, scratch.next32 = h, next
	out := scratch.h
	for i := range out {
		out[i] = float64(h[i])
	}
	return out, iters
}

// sweepRange runs one hitting-time sweep over rows [lo, hi), reading h
// and writing next, and returns max_i |next_i − h_i| over the range.
// This is the innermost loop of the diversification stage; it indexes
// the CSR arrays directly so the compiler sees plain slice loads
// instead of a closure call per nonzero.
func sweepRange(lo, hi int, view sparse.CSRView, dangling []float64, inS []bool, h, next []float64) float64 {
	rowPtr, colIdx, val := view.RowPtr, view.ColIdx, view.Val
	maxDiff := 0.0
	for i := lo; i < hi; i++ {
		if inS[i] {
			next[i] = 0
			continue
		}
		// Row dot product with four accumulators: the naive s += v·h
		// chain serializes on FP-add latency; independent partial sums
		// let the loads and adds overlap. The split is a fixed function
		// of the row's nnz — independent of the worker partition — so
		// parallel and sequential sweeps stay bit-identical.
		start, end := rowPtr[i], rowPtr[i+1]
		cols, vals := colIdx[start:end], val[start:end]
		var s0, s1, s2, s3 float64
		p := 0
		for ; p+4 <= len(vals); p += 4 {
			s0 += vals[p] * h[cols[p]]
			s1 += vals[p+1] * h[cols[p+1]]
			s2 += vals[p+2] * h[cols[p+2]]
			s3 += vals[p+3] * h[cols[p+3]]
		}
		for ; p < len(vals); p++ {
			s0 += vals[p] * h[cols[p]]
		}
		s := 1.0 + ((s0 + s1) + (s2 + s3))
		if d := dangling[i]; d != 0 {
			s += d * h[i]
		}
		next[i] = s
		diff := s - h[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

// sweepParallel is sweepRange partitioned into contiguous row chunks,
// one goroutine each — the same discipline as Matrix.MulVecParallel, so
// each row's result is bit-identical to the sequential sweep. Per-chunk
// maxima combine with max (exact in floating point), keeping the early
// convergence decision, and therefore the iteration count, independent
// of the partition.
func sweepParallel(view sparse.CSRView, dangling []float64, inS []bool, h, next []float64, workers int) float64 {
	n := len(inS)
	chunk := (n + workers - 1) / workers
	diffs := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			diffs[w] = sweepRange(lo, hi, view, dangling, inS, h, next)
		}(w, lo, hi)
	}
	wg.Wait()
	maxDiff := 0.0
	for _, d := range diffs {
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// sweepRange32 is sweepRange on the float32 value mirror: identical
// structure (four accumulators, dangling self-loop, max-diff tracking),
// float32 arithmetic. The convergence metric is returned as float64 so
// the shared early-exit comparison is unchanged.
func sweepRange32(lo, hi int, view sparse.CSRView32, dangling []float32, inS []bool, h, next []float32) float64 {
	rowPtr, colIdx, val := view.RowPtr, view.ColIdx, view.Val
	var maxDiff float32
	for i := lo; i < hi; i++ {
		if inS[i] {
			next[i] = 0
			continue
		}
		start, end := rowPtr[i], rowPtr[i+1]
		cols, vals := colIdx[start:end], val[start:end]
		var s0, s1, s2, s3 float32
		p := 0
		for ; p+4 <= len(vals); p += 4 {
			s0 += vals[p] * h[cols[p]]
			s1 += vals[p+1] * h[cols[p+1]]
			s2 += vals[p+2] * h[cols[p+2]]
			s3 += vals[p+3] * h[cols[p+3]]
		}
		for ; p < len(vals); p++ {
			s0 += vals[p] * h[cols[p]]
		}
		s := 1.0 + ((s0 + s1) + (s2 + s3))
		if d := dangling[i]; d != 0 {
			s += d * h[i]
		}
		next[i] = s
		diff := s - h[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return float64(maxDiff)
}

// sweepParallel32 mirrors sweepParallel for the float32 kernel.
func sweepParallel32(view sparse.CSRView32, dangling []float32, inS []bool, h, next []float32, workers int) float64 {
	n := len(inS)
	chunk := (n + workers - 1) / workers
	diffs := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			diffs[w] = sweepRange32(lo, hi, view, dangling, inS, h, next)
		}(w, lo, hi)
	}
	wg.Wait()
	maxDiff := 0.0
	for _, d := range diffs {
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// Unit returns a length-n one-hot distribution at idx.
func Unit(n, idx int) []float64 {
	v := make([]float64, n)
	v[idx] = 1
	return v
}
