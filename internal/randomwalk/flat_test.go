package randomwalk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// randTransition builds a random sub-stochastic transition matrix with
// the pathologies the kernel must handle: rows whose mass sums below 1
// (dangling mass), fully empty rows (disconnected nodes), and — when
// isolate > 0 — a trailing block of nodes whose edges stay inside the
// block, unreachable from (and unable to reach) the rest.
func randTransition(rng *rand.Rand, n, deg, isolate int) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	edge := func(i, lo, hi int) {
		d := 1 + rng.Intn(deg)
		w := make([]float64, d)
		sum := 0.0
		for e := range w {
			w[e] = rng.Float64()
			sum += w[e]
		}
		// Random total row mass in [0.6, 1]: most rows keep a little
		// dangling mass, exercising the self-loop term.
		mass := 0.6 + 0.4*rng.Float64()
		for e := range w {
			b.Add(i, lo+rng.Intn(hi-lo), mass*w[e]/sum)
		}
	}
	main := n - isolate
	for i := 0; i < main; i++ {
		if rng.Float64() < 0.1 {
			continue // fully disconnected row
		}
		edge(i, 0, main)
	}
	for i := main; i < n; i++ {
		edge(i, main, n)
	}
	return b.Build()
}

// TestFlatMatchesClosure is the kernel parity table: the flat CSR
// kernel must reproduce the closure-based reference to 1e-12 on random
// transition matrices with dangling rows and unreachable components.
func TestFlatMatchesClosure(t *testing.T) {
	cases := []struct {
		name            string
		n, deg, isolate int
		l               int
		seed            int64
	}{
		{"small", 30, 4, 0, 10, 1},
		{"medium", 200, 8, 0, 10, 2},
		{"dangling-heavy", 120, 3, 0, 25, 3},
		{"unreachable-block", 150, 6, 30, 10, 4},
		{"deep", 80, 5, 10, 100, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			trans := randTransition(rng, tc.n, tc.deg, tc.isolate)
			inS := make([]bool, tc.n)
			set := map[int]bool{}
			for len(set) < 3 {
				i := rng.Intn(tc.n - tc.isolate) // S in the main block
				set[i] = true
				inS[i] = true
			}
			want := TruncatedHittingTime(trans, func(i int) bool { return inS[i] }, tc.l)
			got, iters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: tc.l})
			if iters != tc.l {
				t.Fatalf("iters = %d, want full %d (no Tol set)", iters, tc.l)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("h[%d] = %v, reference %v", i, got[i], want[i])
				}
			}
			// Unreachable nodes saturate at l (up to rounding of the
			// per-row mass: their full probability returns to the block
			// every step, but as a sum of individually rounded products).
			for i := tc.n - tc.isolate; i < tc.n; i++ {
				if math.Abs(got[i]-float64(tc.l)) > 1e-9*float64(tc.l) {
					t.Errorf("unreachable h[%d] = %v, want ≈%d", i, got[i], tc.l)
				}
			}
		})
	}
}

// TestFlatWorkersBitIdentical pins the determinism contract: any worker
// count yields bit-identical hitting times and iteration counts,
// including with the early exit enabled (the convergence decision is
// partition-independent).
func TestFlatWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough that the parallel path actually engages (nnz ≥ 4096).
	trans := randTransition(rng, 1200, 8, 100)
	inS := make([]bool, 1200)
	for i := 0; i < 5; i++ {
		inS[rng.Intn(1100)] = true
	}
	for _, tol := range []float64{0, 1e-9} {
		ref, refIters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: 40, Tol: tol})
		ref = append([]float64(nil), ref...)
		for _, workers := range []int{0, 1, 2, 7, 64} {
			got, iters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
				Steps: 40, Tol: tol, Workers: workers,
			})
			if iters != refIters {
				t.Fatalf("tol %v workers %d: iters %d != %d", tol, workers, iters, refIters)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("tol %v workers %d: h[%d] = %v != %v (not bit-identical)",
						tol, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestFlatEarlyExit verifies the convergence exit: on a graph where
// every non-target node steps straight into S, h stabilizes after two
// sweeps, so the kernel must stop far short of l with the exact
// fixed-point values.
func TestFlatEarlyExit(t *testing.T) {
	const n, l = 50, 200
	b := sparse.NewBuilder(n, n)
	for i := 1; i < n; i++ {
		b.Add(i, 0, 1.0) // every node moves to node 0 in one step
	}
	trans := b.Build()
	inS := make([]bool, n)
	inS[0] = true
	full, fullIters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: l})
	full = append([]float64(nil), full...)
	if fullIters != l {
		t.Fatalf("fixed-l run stopped at %d", fullIters)
	}
	got, iters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: l, Tol: 1e-9})
	if iters >= l {
		t.Fatalf("early exit did not fire: %d sweeps", iters)
	}
	if iters != 2 {
		t.Errorf("expected exactly 2 sweeps (stabilize + confirm), got %d", iters)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("early-exited h[%d] = %v differs from fixed point %v", i, got[i], full[i])
		}
	}
}

// TestFlatEarlyExitNeverFiresOnUnreachable pins the documented
// semantics: nodes that cannot reach S grow by 1 per sweep, so the
// exit must not trigger and saturation at l is preserved.
func TestFlatEarlyExitNeverFiresOnUnreachable(t *testing.T) {
	const n, l = 20, 30
	trans := sparse.NewBuilder(n, n).Build() // no edges at all
	inS := make([]bool, n)
	inS[0] = true
	h, iters := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: l, Tol: 1e-6})
	if iters != l {
		t.Fatalf("exit fired at %d on an unreachable graph", iters)
	}
	for i := 1; i < n; i++ {
		if h[i] != float64(l) {
			t.Errorf("h[%d] = %v, want saturation at %d", i, h[i], l)
		}
	}
}

// TestFlatScratchReuse checks that caller scratch is actually reused
// (the result aliases it) and that repeated sweeps over the same
// scratch stay correct.
func TestFlatScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trans := randTransition(rng, 100, 5, 0)
	inS := make([]bool, 100)
	inS[3] = true
	var scratch SweepScratch
	dangling := DanglingMass(trans)
	want, _ := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{Steps: 10})
	want = append([]float64(nil), want...)
	for round := 0; round < 3; round++ {
		got, _ := TruncatedHittingTimeFlat(trans, inS, HittingTimeOpts{
			Steps: 10, Dangling: dangling, Scratch: &scratch,
		})
		if &got[0] != &scratch.h[0] {
			t.Fatal("result does not alias the provided scratch")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: h[%d] = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestDanglingMass checks the precomputation against the kernel's
// historical inline derivation.
func TestDanglingMass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	trans := randTransition(rng, 60, 4, 0)
	d := DanglingMass(trans)
	for i := range d {
		want := 1 - trans.RowSum(i)
		if want <= 1e-12 {
			want = 0
		}
		if d[i] != want {
			t.Errorf("dangling[%d] = %v, want %v", i, d[i], want)
		}
	}
}
