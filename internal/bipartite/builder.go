package bipartite

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/querylog"
	"repro/internal/sparse"
)

// This file implements the mergeable build path of the multi-bipartite
// representation. The counting state (the raw cf co-occurrence counts
// of Eqs. 1–3) is kept as an immutable BuilderState; a DeltaBuilder
// accumulates signed count updates for added and removed sessions, and
// Apply merges them into a new state in O(nnz + |delta|·log|delta|)
// instead of recounting the whole log. Materialize derives the weighted
// Representation (Eqs. 4–6) from a state, recomputing every iqf column
// from the current counts — the |Q| numerator changes with every new
// query, so iqf is never patched in place, only recomputed from exact
// counts, which costs one O(nnz) pass.
//
// Counts are integers represented exactly in float64, removals cancel
// additions exactly, and every edge weight is computed by the same
// c·log(|Q|/n(o)) expression from the same counts — so a delta-built
// state materializes to weights bit-identical to a from-scratch rebuild
// of the same sessions (the guarantee builder_test.go verifies).

// BuilderState is the immutable counting state of a build: the interned
// node spaces and the raw co-occurrence count matrix of every view.
// Apply returns a new state and never mutates its input, so a serving
// snapshot keeps its state while a background delta build derives the
// next one from it.
type BuilderState struct {
	Queries *Index
	Objects [NumViews]*Index
	// Counts[v] is the queries × objects matrix of raw co-occurrence
	// counts c^X_ij (always integers, stored exactly in float64).
	Counts [NumViews]*sparse.Matrix
}

// NewBuilderState returns the empty counting state.
func NewBuilderState() *BuilderState {
	s := &BuilderState{Queries: NewIndex()}
	for v := 0; v < NumViews; v++ {
		s.Objects[v] = NewIndex()
		s.Counts[v] = sparse.FromCSR(0, 0, []int{0}, nil, nil)
	}
	return s
}

// StateFromSessions builds the counting state of a full rebuild: every
// session added once, with the canonical per-user session object names.
func StateFromSessions(sessions []querylog.Session) *BuilderState {
	d := NewBuilderState().Delta()
	seq := make(map[string]int)
	for _, s := range sessions {
		d.AddSession(SessionObjectName(s.UserID, seq[s.UserID]), s)
		seq[s.UserID]++
	}
	state, err := d.Apply()
	if err != nil {
		// Unreachable: a pure-addition delta cannot drive a count
		// negative.
		panic(err)
	}
	return state
}

// SessionObjectName names the session object of a user's seq-th session
// (0-based, chronological). Names are per-user so a delta rebuild of
// one user's tail never renames another user's session columns; \x1f
// cannot appear in a user ID that survived querylog.Clean.
func SessionObjectName(userID string, seq int) string {
	return userID + "\x1f" + itoa(seq)
}

// DeltaBuilder accumulates session additions and removals against a
// base state. It is cheap to create (index overlays, empty count
// deltas) and single-goroutine; Apply produces the merged state.
type DeltaBuilder struct {
	base    *BuilderState
	queries *indexOverlay
	objects [NumViews]*indexOverlay
	deltas  [NumViews]map[edgeKey]float64
}

type edgeKey struct{ q, o int }

// Delta starts an incremental build on top of s.
func (s *BuilderState) Delta() *DeltaBuilder {
	d := &DeltaBuilder{base: s, queries: newIndexOverlay(s.Queries)}
	for v := 0; v < NumViews; v++ {
		d.objects[v] = newIndexOverlay(s.Objects[v])
		d.deltas[v] = make(map[edgeKey]float64)
	}
	return d
}

// AddSession applies the co-occurrence counts of one session: +1 per
// (query, session-object) entry, per (query, clicked URL) and per
// (query, term) — exactly what a full rebuild counts for this session.
// name must be the session's canonical object name (SessionObjectName).
func (d *DeltaBuilder) AddSession(name string, s querylog.Session) { d.applySession(name, s, 1) }

// RemoveSession cancels a previous AddSession of the identical session
// under the identical name. Removing a session that was never added
// drives a count negative, which Apply reports as an error.
func (d *DeltaBuilder) RemoveSession(name string, s querylog.Session) { d.applySession(name, s, -1) }

func (d *DeltaBuilder) applySession(name string, s querylog.Session, sign float64) {
	sid := d.objects[ViewSession].intern(name)
	for _, e := range s.Entries {
		q := d.queries.intern(querylog.NormalizeQuery(e.Query))
		d.deltas[ViewSession][edgeKey{q, sid}] += sign
		if e.ClickedURL != "" {
			o := d.objects[ViewURL].intern(e.ClickedURL)
			d.deltas[ViewURL][edgeKey{q, o}] += sign
		}
		for _, t := range querylog.Tokenize(e.Query) {
			o := d.objects[ViewTerm].intern(t)
			d.deltas[ViewTerm][edgeKey{q, o}] += sign
		}
	}
}

// Apply merges the accumulated deltas into a new state. The base state
// is not modified. It returns an error when any merged count would go
// negative (a removal of a session that was never added) — the base
// state remains valid in that case.
func (d *DeltaBuilder) Apply() (*BuilderState, error) {
	out := &BuilderState{Queries: d.queries.result()}
	for v := 0; v < NumViews; v++ {
		out.Objects[v] = d.objects[v].result()
		m, err := mergeCounts(d.base.Counts[v], d.deltas[v],
			out.Queries.Len(), out.Objects[v].Len(), View(v))
		if err != nil {
			return nil, err
		}
		out.Counts[v] = m
	}
	return out, nil
}

// mergeCounts merges sorted delta triplets into the base CSR, growing
// the dimensions to rows × cols. Exact zero counts (removal cancelling
// addition) are dropped; negative counts are an error.
func mergeCounts(base *sparse.Matrix, delta map[edgeKey]float64, rows, cols int, v View) (*sparse.Matrix, error) {
	type trip struct {
		q, o int
		c    float64
	}
	trips := make([]trip, 0, len(delta))
	for k, c := range delta {
		if c != 0 {
			trips = append(trips, trip{k.q, k.o, c})
		}
	}
	sort.Slice(trips, func(i, j int) bool {
		if trips[i].q != trips[j].q {
			return trips[i].q < trips[j].q
		}
		return trips[i].o < trips[j].o
	})

	bv := base.View()
	baseRows := base.Rows()
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, base.NNZ()+len(trips))
	val := make([]float64, 0, base.NNZ()+len(trips))
	ti := 0
	for r := 0; r < rows; r++ {
		bp, bend := 0, 0
		if r < baseRows {
			bp, bend = bv.RowPtr[r], bv.RowPtr[r+1]
		}
		for bp < bend || (ti < len(trips) && trips[ti].q == r) {
			var c int
			var cv float64
			switch {
			case bp < bend && ti < len(trips) && trips[ti].q == r && trips[ti].o == bv.ColIdx[bp]:
				c, cv = bv.ColIdx[bp], bv.Val[bp]+trips[ti].c
				bp++
				ti++
			case bp < bend && (ti >= len(trips) || trips[ti].q != r || bv.ColIdx[bp] < trips[ti].o):
				c, cv = bv.ColIdx[bp], bv.Val[bp]
				bp++
			default:
				c, cv = trips[ti].o, trips[ti].c
				ti++
			}
			if cv < 0 {
				return nil, fmt.Errorf("bipartite: %s count of edge (%d,%d) went negative (%g): removed a session that was never added", v, r, c, cv)
			}
			if cv == 0 {
				continue
			}
			colIdx = append(colIdx, c)
			val = append(val, cv)
		}
		rowPtr[r+1] = len(colIdx)
	}
	return sparse.FromCSR(rows, cols, rowPtr, colIdx, val), nil
}

// Materialize derives the weighted Representation from the counting
// state: for CFIQF it recomputes every object's iqf from the current
// counts (n(o) = column nnz, |Q| = interned queries) and scales each
// edge; for Raw the counts matrix itself is the weight matrix (both are
// immutable, so sharing is safe). The caller attaches Sessions.
func (s *BuilderState) Materialize(wt Weighting) *Representation {
	r := &Representation{Queries: s.Queries, Weighting: wt}
	totalQ := float64(s.Queries.Len())
	for v := 0; v < NumViews; v++ {
		r.Objects[v] = s.Objects[v]
		m := s.Counts[v]
		if wt != CFIQF {
			r.W[v] = m
			continue
		}
		mv := m.View()
		// n^X(o): distinct queries touching object o = column nnz of the
		// counts (counts are strictly positive once stored).
		n := make([]int, m.Cols())
		for _, c := range mv.ColIdx {
			n[c]++
		}
		iqf := make([]float64, m.Cols())
		for o, cnt := range n {
			if cnt == 0 {
				continue
			}
			f := math.Log(totalQ / float64(cnt))
			if f <= 0 {
				// An object touched by every query carries no signal but
				// must not erase the edge entirely.
				f = math.Log(1.0001)
			}
			iqf[o] = f
		}
		rowPtr := append([]int(nil), mv.RowPtr...)
		colIdx := append([]int(nil), mv.ColIdx...)
		val := make([]float64, len(mv.Val))
		for p, c := range mv.ColIdx {
			val[p] = mv.Val[p] * iqf[c]
		}
		r.W[v] = sparse.FromCSR(m.Rows(), m.Cols(), rowPtr, colIdx, val)
	}
	return r
}

// Clone returns a copy of the index sharing no mutable state with ix.
func (ix *Index) Clone() *Index {
	out := &Index{
		byName: make(map[string]int, len(ix.byName)),
		names:  append([]string(nil), ix.names...),
	}
	for i, n := range out.names {
		out.byName[n] = i
	}
	return out
}

// indexOverlay resolves names against a base index, assigning IDs past
// the base for new names without touching the base.
type indexOverlay struct {
	base  *Index
	extra map[string]int
	names []string // overlay names in ID order
}

func newIndexOverlay(base *Index) *indexOverlay { return &indexOverlay{base: base} }

func (o *indexOverlay) intern(name string) int {
	if id, ok := o.base.Lookup(name); ok {
		return id
	}
	if id, ok := o.extra[name]; ok {
		return id
	}
	id := o.base.Len() + len(o.names)
	if o.extra == nil {
		o.extra = make(map[string]int)
	}
	o.extra[name] = id
	o.names = append(o.names, name)
	return id
}

// result freezes the overlay: the base index is shared untouched when
// nothing new was interned, cloned-and-extended otherwise.
func (o *indexOverlay) result() *Index {
	if len(o.names) == 0 {
		return o.base
	}
	ix := o.base.Clone()
	for _, n := range o.names {
		ix.Intern(n)
	}
	return ix
}
