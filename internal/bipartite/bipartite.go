// Package bipartite implements the paper's multi-bipartite query-log
// representation (Section III): three bipartite graphs sharing one query
// node space — query–URL, query–session and query–term — with edges
// weighted either by raw co-occurrence frequency or by the paper's
// cf·iqf scheme (Eqs. 1–6). It also builds the compact representation
// the diversification component runs on (Section IV-A).
package bipartite

import (
	"math"
	"sync"

	"repro/internal/querylog"
	"repro/internal/sparse"
)

// View identifies one of the three bipartites; the paper's X ∈ {U, S, T}.
type View int

const (
	ViewURL View = iota
	ViewSession
	ViewTerm
	NumViews = 3
)

// String names the view for diagnostics.
func (v View) String() string {
	switch v {
	case ViewURL:
		return "URL"
	case ViewSession:
		return "session"
	case ViewTerm:
		return "term"
	}
	return "unknown"
}

// Weighting selects between raw frequencies and the cf·iqf scheme.
type Weighting int

const (
	// Raw uses plain co-occurrence counts c_ij.
	Raw Weighting = iota
	// CFIQF multiplies counts by the inverse query frequency of the
	// object (Eqs. 4–6).
	CFIQF
)

// Representation is the multi-bipartite query-log representation. W[v]
// is the queries × objects weight matrix of view v; the query node space
// is shared across views.
type Representation struct {
	Queries  *Index
	Objects  [NumViews]*Index
	W        [NumViews]*sparse.Matrix
	Sessions []querylog.Session
	// Weighting records how W was weighted.
	Weighting Weighting

	// avgTransition memoizes AverageTransition: it touches the whole
	// graph and is reused by every BuildCompact call. avgOnce makes the
	// lazy computation safe under concurrent suggestion serving.
	avgOnce       sync.Once
	avgTransition *sparse.Matrix

	// wT memoizes WTransposed per view (object→query adjacency), used on
	// the unknown-query fallback path of every cold request.
	wTOnce [NumViews]sync.Once
	wT     [NumViews]*sparse.Matrix
}

// Build constructs the full multi-bipartite representation from a log.
// The log is sessionized with cfg (pass the zero value for defaults).
func Build(l *querylog.Log, scfg querylog.SessionizerConfig, wt Weighting) *Representation {
	sessions := querylog.Sessionize(l, scfg)
	return BuildFromSessions(sessions, wt)
}

// BuildFromSessions constructs the representation from pre-segmented
// sessions (useful when the caller needs the same segmentation
// elsewhere). It is the full-rebuild path: the mergeable builder counts
// every session from scratch and the result is materialized once (see
// builder.go; the incremental path shares the same counting and
// weighting code, which is what makes delta builds bit-identical).
func BuildFromSessions(sessions []querylog.Session, wt Weighting) *Representation {
	r := StateFromSessions(sessions).Materialize(wt)
	r.Sessions = sessions
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// IQF returns the inverse query frequency of object o in view v
// (Eqs. 1–3), computed from the stored matrices: n(o) is the number of
// distinct queries with a stored edge to o.
func (r *Representation) IQF(v View, o int) float64 {
	n := 0
	wT := r.W[v].Transpose()
	wT.Row(o, func(c int, val float64) { n++ })
	if n == 0 {
		return 0
	}
	return math.Log(float64(r.Queries.Len()) / float64(n))
}

// QueryTransition returns the query→query transition matrix of view v:
// the two-step walk query → object → query, row-normalized. This is the
// p^X(q_a|q_b) of Section IV-C.
func (r *Representation) QueryTransition(v View) *sparse.Matrix {
	w := r.W[v].RowNormalized()
	wt := r.W[v].Transpose().RowNormalized()
	return sparse.MulMat(w, wt)
}

// Affinity returns W^X W^Xᵀ for view v — the query–query affinity the
// regularization framework's smoothness constraint uses (Eq. 9).
func (r *Representation) Affinity(v View) *sparse.Matrix {
	return sparse.MulMat(r.W[v], r.W[v].Transpose())
}

// NormalizedAffinity returns L^X = D^{-1/2} (W Wᵀ) D^{-1/2} where D is
// the diagonal of row sums of W Wᵀ (Eq. 13). Rows with zero sum stay
// zero. Its eigenvalues lie in [−1, 1], making Eq. 15's system SPD.
func (r *Representation) NormalizedAffinity(v View) *sparse.Matrix {
	return normalizedAffinityOf(r.W[v])
}

// NumQueries returns the size of the query node space.
func (r *Representation) NumQueries() int { return r.Queries.Len() }

// QueryID resolves a raw query string (normalized internally) to its
// node ID.
func (r *Representation) QueryID(rawQuery string) (int, bool) {
	return r.Queries.Lookup(querylog.NormalizeQuery(rawQuery))
}

// AverageTransition returns the mean of the three views' query→query
// transition matrices — the uniform cross-view walk used for compact-
// representation expansion. The result is computed once and memoized
// (the representation is immutable after Build); callers must not
// mutate it.
func (r *Representation) AverageTransition() *sparse.Matrix {
	r.avgOnce.Do(func() {
		var acc *sparse.Matrix
		for v := 0; v < NumViews; v++ {
			t := r.QueryTransition(View(v))
			if acc == nil {
				acc = t.Scale(1.0 / NumViews)
			} else {
				acc = sparse.Add(acc, t, 1.0/NumViews)
			}
		}
		r.avgTransition = acc
	})
	return r.avgTransition
}

// WTransposed returns the object→query adjacency W[v]ᵀ, computed once
// and memoized (the representation is immutable after Build); callers
// must not mutate it. A new Representation — every Refresh builds one —
// starts with an empty cache, so staleness is impossible.
func (r *Representation) WTransposed(v View) *sparse.Matrix {
	r.wTOnce[v].Do(func() {
		r.wT[v] = r.W[v].Transpose()
	})
	return r.wT[v]
}

// ClickedURLs returns the URL names clicked for query node q, with their
// stored weights.
func (r *Representation) ClickedURLs(q int) map[string]float64 {
	out := make(map[string]float64)
	r.W[ViewURL].Row(q, func(o int, v float64) {
		out[r.Objects[ViewURL].Name(o)] = v
	})
	return out
}
