package bipartite

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/querylog"
)

// randomLog generates n entries over a small vocabulary so queries and
// clicks repeat across users (otherwise iqf never discriminates).
func randomLog(rng *rand.Rand, n int, users int, start time.Time) []querylog.Entry {
	words := []string{"sun", "java", "solar", "cell", "oracle", "jvm", "panel", "energy", "download", "news"}
	urls := []string{"", "www.java.com", "java.sun.com", "en.wikipedia.org", "www.oracle.com", "sun.example.com"}
	out := make([]querylog.Entry, n)
	for i := range out {
		q := words[rng.Intn(len(words))]
		if rng.Intn(2) == 0 {
			q += " " + words[rng.Intn(len(words))]
		}
		out[i] = querylog.Entry{
			UserID:     fmt.Sprintf("u%02d", rng.Intn(users)),
			Query:      q,
			ClickedURL: urls[rng.Intn(len(urls))],
			// Random minute offsets create a mix of in-session
			// continuations and timeout boundaries.
			Time: start.Add(time.Duration(rng.Intn(72*60)) * time.Minute),
		}
	}
	return out
}

// weightsByName flattens a representation view into (query, object) →
// weight under the NAMES, not the ids — a delta build interns new
// queries in arrival order, which differs from the full rebuild's
// session order, so ids are not comparable but names must be.
func weightsByName(r *Representation, view int) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	v := r.W[view].View()
	for q := 0; q < r.Queries.Len(); q++ {
		for p := v.RowPtr[q]; p < v.RowPtr[q+1]; p++ {
			key := [2]string{r.Queries.Name(q), r.Objects[view].Name(v.ColIdx[p])}
			out[key] = v.Val[p]
		}
	}
	return out
}

// iqfByName maps every nonempty object column to its iqf. Empty columns
// are skipped: a delta build that removed a merged session leaves its
// old column allocated but empty, which is invisible to every weight.
func iqfByName(r *Representation, view int) map[string]float64 {
	out := make(map[string]float64)
	for o := 0; o < r.Objects[view].Len(); o++ {
		nonEmpty := false
		v := r.W[view].View()
		for q := 0; q < r.Queries.Len() && !nonEmpty; q++ {
			for p := v.RowPtr[q]; p < v.RowPtr[q+1]; p++ {
				if v.ColIdx[p] == o && v.Val[p] != 0 {
					nonEmpty = true
					break
				}
			}
		}
		if nonEmpty {
			out[r.Objects[view].Name(o)] = r.IQF(View(view), o)
		}
	}
	return out
}

// assertRepsEquivalent requires exact (bit-identical) weight and iqf
// agreement between two representations across all three views.
func assertRepsEquivalent(t *testing.T, full, delta *Representation) {
	t.Helper()
	for view := 0; view < NumViews; view++ {
		fw, dw := weightsByName(full, view), weightsByName(delta, view)
		if len(fw) != len(dw) {
			t.Fatalf("view %d: full has %d edges, delta %d", view, len(fw), len(dw))
		}
		for key, w := range fw {
			dwv, ok := dw[key]
			if !ok {
				t.Fatalf("view %d: delta missing edge %v", view, key)
			}
			if w != dwv { // exact: delta must be bit-identical
				t.Fatalf("view %d edge %v: full %v delta %v (diff %g)", view, key, w, dwv, math.Abs(w-dwv))
			}
		}
		fi, di := iqfByName(full, view), iqfByName(delta, view)
		if len(fi) != len(di) {
			t.Fatalf("view %d: full has %d nonempty objects, delta %d", view, len(fi), len(di))
		}
		for name, v := range fi {
			if dv, ok := di[name]; !ok || dv != v {
				t.Fatalf("view %d iqf[%s]: full %v delta %v", view, name, v, di[name])
			}
		}
	}
}

// buildDelta replays the engine's incremental path at the bipartite
// level: sessionize the base, then fold fresh entries in per user via
// SessionizeDelta + count deltas.
func buildDelta(t *testing.T, base []querylog.Entry, fresh []querylog.Entry, wt Weighting) *Representation {
	t.Helper()
	bl := &querylog.Log{Entries: append([]querylog.Entry(nil), base...)}
	sessions := querylog.Sessionize(bl, querylog.SessionizerConfig{})
	state := StateFromSessions(sessions)
	byUser := querylog.SessionsByUser(sessions)

	freshByUser := make(map[string][]querylog.Entry)
	for _, e := range fresh {
		freshByUser[e.UserID] = append(freshByUser[e.UserID], e)
	}
	d := state.Delta()
	for u, fe := range freshByUser {
		old := byUser[u]
		keep, rebuilt := querylog.SessionizeDelta(old, fe, querylog.SessionizerConfig{})
		for i := keep; i < len(old); i++ {
			d.RemoveSession(SessionObjectName(u, i), old[i])
		}
		for i, s := range rebuilt {
			d.AddSession(SessionObjectName(u, keep+i), s)
		}
	}
	next, err := d.Apply()
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return next.Materialize(wt)
}

// TestDeltaBuildEquivalence is the bit-identicality guarantee: folding
// random ingest bursts in incrementally yields exactly the edge weights
// and iqf values of a full rebuild over the combined log — for both
// weightings, across randomized seeds and burst sizes.
func TestDeltaBuildEquivalence(t *testing.T) {
	start := ts("2013-01-07 09:00:00")
	for seed := int64(0); seed < 6; seed++ {
		for _, wt := range []Weighting{CFIQF, Raw} {
			rng := rand.New(rand.NewSource(seed))
			base := randomLog(rng, 300, 12, start)
			// Fresh entries arrive later but interleave with session
			// tails (offsets overlap the base's last hours).
			fresh := randomLog(rng, 30+rng.Intn(60), 12, start.Add(60*time.Hour))

			combined := append(append([]querylog.Entry(nil), base...), fresh...)
			cl := &querylog.Log{Entries: combined}
			full := BuildFromSessions(querylog.Sessionize(cl, querylog.SessionizerConfig{}), wt)

			delta := buildDelta(t, base, fresh, wt)
			assertRepsEquivalent(t, full, delta)
		}
	}
}

// TestDeltaBuildNewUsersAndQueries checks the overlay path: fresh
// entries from users and queries the base has never seen.
func TestDeltaBuildNewUsersAndQueries(t *testing.T) {
	start := ts("2013-01-07 09:00:00")
	rng := rand.New(rand.NewSource(99))
	base := randomLog(rng, 200, 8, start)
	fresh := []querylog.Entry{
		{UserID: "brandnew", Query: "quantum computing", ClickedURL: "qc.example.com", Time: start.Add(100 * time.Hour)},
		{UserID: "brandnew", Query: "quantum computing basics", Time: start.Add(100*time.Hour + time.Minute)},
		{UserID: "u01", Query: "never seen before", Time: start.Add(101 * time.Hour)},
	}
	combined := append(append([]querylog.Entry(nil), base...), fresh...)
	cl := &querylog.Log{Entries: combined}
	full := BuildFromSessions(querylog.Sessionize(cl, querylog.SessionizerConfig{}), CFIQF)
	delta := buildDelta(t, base, fresh, CFIQF)
	assertRepsEquivalent(t, full, delta)
}

// TestDeltaRemovalCancelsExactly: adding and removing the same session
// restores the exact previous counts (integer arithmetic in float64 —
// no drift), and the no-op delta shares the base indices.
func TestDeltaRemovalCancelsExactly(t *testing.T) {
	sessions := querylog.Sessionize(tableILog(), querylog.SessionizerConfig{})
	state := StateFromSessions(sessions)

	extra := querylog.Session{UserID: "u9", Entries: []querylog.Entry{
		{UserID: "u9", Query: "sun", ClickedURL: "www.java.com", Time: ts("2012-12-15 10:00:00")},
		{UserID: "u9", Query: "sun java", Time: ts("2012-12-15 10:01:00")},
	}}

	d := state.Delta()
	d.AddSession(SessionObjectName("u9", 0), extra)
	d.RemoveSession(SessionObjectName("u9", 0), extra)
	next, err := d.Apply()
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for view := 0; view < NumViews; view++ {
		a, b := state.Counts[view].View(), next.Counts[view].View()
		if len(a.Val) != len(b.Val) {
			t.Fatalf("view %d: nnz changed %d -> %d", view, len(a.Val), len(b.Val))
		}
		for i := range a.Val {
			if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
				t.Fatalf("view %d: counts changed at %d", view, i)
			}
		}
	}
}

// TestDeltaNegativeCountErrors: removing a session that was never
// counted must surface an error, not a silently negative count.
func TestDeltaNegativeCountErrors(t *testing.T) {
	sessions := querylog.Sessionize(tableILog(), querylog.SessionizerConfig{})
	state := StateFromSessions(sessions)
	d := state.Delta()
	d.RemoveSession(SessionObjectName("ghost", 0), querylog.Session{UserID: "ghost", Entries: []querylog.Entry{
		{UserID: "ghost", Query: "sun", Time: ts("2012-12-15 10:00:00")},
	}})
	if _, err := d.Apply(); err == nil {
		t.Fatal("Apply accepted a negative count")
	}
}

// TestDeltaSharesUntouchedIndices: when no new names appear, the merged
// state reuses the base index objects instead of copying them.
func TestDeltaSharesUntouchedIndices(t *testing.T) {
	sessions := querylog.Sessionize(tableILog(), querylog.SessionizerConfig{})
	state := StateFromSessions(sessions)
	d := state.Delta()
	// Re-add an existing session's worth of counts with only known
	// names (same queries, same URL, same terms).
	s := sessions[0]
	d.AddSession(SessionObjectName(s.UserID, 0), s)
	next, err := d.Apply()
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.Queries != state.Queries {
		t.Error("query index copied despite no new queries")
	}
	for view := 0; view < NumViews; view++ {
		if View(view) != ViewSession && next.Objects[view] != state.Objects[view] {
			t.Errorf("view %d object index copied despite no new objects", view)
		}
	}
}

// BenchmarkDeltaBuildSteadyState is the bench-guard target: applying a
// small, fixed delta against a prebuilt state. Allocations must stay
// bounded (proportional to the delta and the merged rows, not to
// repeated whole-state copies).
func BenchmarkDeltaBuildSteadyState(b *testing.B) {
	start := ts("2013-01-07 09:00:00")
	rng := rand.New(rand.NewSource(7))
	base := randomLog(rng, 2000, 40, start)
	bl := &querylog.Log{Entries: base}
	sessions := querylog.Sessionize(bl, querylog.SessionizerConfig{})
	state := StateFromSessions(sessions)

	fresh := querylog.Session{UserID: "u00", Entries: []querylog.Entry{
		{UserID: "u00", Query: "solar panel", ClickedURL: "sun.example.com", Time: start.Add(80 * time.Hour)},
		{UserID: "u00", Query: "solar energy", Time: start.Add(80*time.Hour + time.Minute)},
	}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := state.Delta()
		d.AddSession(SessionObjectName("u00", 999), fresh)
		if _, err := d.Apply(); err != nil {
			b.Fatal(err)
		}
	}
}
