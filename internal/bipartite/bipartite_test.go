package bipartite

import (
	"math"
	"testing"
	"time"

	"repro/internal/querylog"
)

func ts(s string) time.Time {
	t, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

// tableILog reconstructs the paper's Table I example.
func tableILog() *querylog.Log {
	l := &querylog.Log{}
	l.Append(querylog.Entry{UserID: "u1", Query: "sun", ClickedURL: "www.java.com", Time: ts("2012-12-12 11:12:41")})
	l.Append(querylog.Entry{UserID: "u1", Query: "sun java", ClickedURL: "java.sun.com", Time: ts("2012-12-12 11:13:01")})
	l.Append(querylog.Entry{UserID: "u1", Query: "jvm download", Time: ts("2012-12-12 11:14:21")})
	l.Append(querylog.Entry{UserID: "u2", Query: "sun", ClickedURL: "www.suncellular.com", Time: ts("2012-12-13 07:13:21")})
	l.Append(querylog.Entry{UserID: "u2", Query: "solar cell", ClickedURL: "en.wikipedia.org", Time: ts("2012-12-13 07:14:21")})
	l.Append(querylog.Entry{UserID: "u3", Query: "sun oracle", ClickedURL: "www.oracle.com", Time: ts("2012-12-14 14:35:14")})
	l.Append(querylog.Entry{UserID: "u3", Query: "java", ClickedURL: "www.java.com", Time: ts("2012-12-14 14:36:26")})
	return l
}

func TestIndex(t *testing.T) {
	ix := NewIndex()
	a := ix.Intern("x")
	b := ix.Intern("y")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := ix.Intern("x"); got != a {
		t.Error("re-interning changed the ID")
	}
	if id, ok := ix.Lookup("y"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := ix.Lookup("z"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if ix.Name(a) != "x" || ix.Len() != 2 {
		t.Error("Name/Len wrong")
	}
}

func TestBuildTableIStructure(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, Raw)
	// 6 distinct queries: sun, sun java, jvm download, solar cell,
	// sun oracle, java.
	if r.NumQueries() != 6 {
		t.Fatalf("queries = %d, want 6", r.NumQueries())
	}
	// 6 distinct clicked URLs.
	if got := r.Objects[ViewURL].Len(); got != 5 {
		t.Errorf("URLs = %d, want 5", got)
	}
	// 3 sessions, as the paper's Definition 1 example states.
	if got := r.Objects[ViewSession].Len(); got != 3 {
		t.Errorf("sessions = %d, want 3", got)
	}
	// Terms: sun, java, jvm, download, solar, cell, oracle.
	if got := r.Objects[ViewTerm].Len(); got != 7 {
		t.Errorf("terms = %d, want 7", got)
	}
}

// The paper's Section III walkthrough: via the query-URL bipartite "sun"
// reaches only "java" (shared www.java.com); via query-session it
// reaches "sun java", "jvm download", "solar cell"; via query-term it
// reaches "sun java", "sun oracle".
func TestTableIReachability(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, Raw)
	sun, ok := r.QueryID("sun")
	if !ok {
		t.Fatal("sun not indexed")
	}
	reach := func(v View) map[string]bool {
		tr := r.QueryTransition(v)
		out := make(map[string]bool)
		tr.Row(sun, func(c int, val float64) {
			name := r.Queries.Name(c)
			if name != "sun" && val > 0 {
				out[name] = true
			}
		})
		return out
	}
	urlReach := reach(ViewURL)
	if !urlReach["java"] || len(urlReach) != 1 {
		t.Errorf("URL-view reach = %v, want exactly {java}", urlReach)
	}
	sessReach := reach(ViewSession)
	for _, want := range []string{"sun java", "jvm download", "solar cell"} {
		if !sessReach[want] {
			t.Errorf("session-view reach misses %q (got %v)", want, sessReach)
		}
	}
	termReach := reach(ViewTerm)
	for _, want := range []string{"sun java", "sun oracle"} {
		if !termReach[want] {
			t.Errorf("term-view reach misses %q (got %v)", want, termReach)
		}
	}
}

func TestCFIQFDownweightsCommonObjects(t *testing.T) {
	// Two URLs: "common" clicked by 3 distinct queries, "rare" by 1.
	l := &querylog.Log{}
	base := ts("2012-01-01 10:00:00")
	for i, q := range []string{"alpha", "beta", "gamma"} {
		l.Append(querylog.Entry{UserID: "u" + string(rune('1'+i)), Query: q, ClickedURL: "common.example", Time: base.Add(time.Duration(i) * time.Hour)})
	}
	l.Append(querylog.Entry{UserID: "u9", Query: "delta", ClickedURL: "rare.example", Time: base.Add(9 * time.Hour)})

	r := Build(l, querylog.SessionizerConfig{}, CFIQF)
	alpha, _ := r.QueryID("alpha")
	delta, _ := r.QueryID("delta")
	common, _ := r.Objects[ViewURL].Lookup("common.example")
	rare, _ := r.Objects[ViewURL].Lookup("rare.example")
	wCommon := r.W[ViewURL].At(alpha, common)
	wRare := r.W[ViewURL].At(delta, rare)
	if wRare <= wCommon {
		t.Errorf("rare URL weight %v should exceed common URL weight %v", wRare, wCommon)
	}
	// Raw weighting gives both edges weight 1.
	raw := Build(l, querylog.SessionizerConfig{}, Raw)
	alphaR, _ := raw.QueryID("alpha")
	commonR, _ := raw.Objects[ViewURL].Lookup("common.example")
	if got := raw.W[ViewURL].At(alphaR, commonR); got != 1 {
		t.Errorf("raw weight = %v, want 1", got)
	}
}

func TestIQFMatchesFormula(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, Raw)
	// www.java.com is clicked by 2 distinct queries (sun, java); |Q| = 6.
	u, ok := r.Objects[ViewURL].Lookup("www.java.com")
	if !ok {
		t.Fatal("www.java.com missing")
	}
	want := math.Log(6.0 / 2.0)
	if got := r.IQF(ViewURL, u); math.Abs(got-want) > 1e-12 {
		t.Errorf("IQF = %v, want %v", got, want)
	}
}

func TestQueryTransitionRowStochastic(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, CFIQF)
	for v := 0; v < NumViews; v++ {
		tr := r.QueryTransition(View(v))
		for q := 0; q < r.NumQueries(); q++ {
			s := tr.RowSum(q)
			if s != 0 && math.Abs(s-1) > 1e-9 {
				t.Errorf("view %v row %d sums to %v", View(v), q, s)
			}
		}
	}
}

func TestNormalizedAffinitySymmetricBounded(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, CFIQF)
	for v := 0; v < NumViews; v++ {
		l := r.NormalizedAffinity(View(v))
		n := l.Rows()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(l.At(i, j)-l.At(j, i)) > 1e-9 {
					t.Fatalf("view %v: L not symmetric at (%d,%d)", View(v), i, j)
				}
			}
		}
		if l.MaxAbs() > 1+1e-9 {
			t.Errorf("view %v: |L| max %v > 1", View(v), l.MaxAbs())
		}
	}
}

func TestAverageTransitionCombinesViews(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, Raw)
	avg := r.AverageTransition()
	sun, _ := r.QueryID("sun")
	// Through the average, sun must reach queries from all three views.
	reached := make(map[string]bool)
	avg.Row(sun, func(c int, v float64) {
		if v > 0 {
			reached[r.Queries.Name(c)] = true
		}
	})
	for _, want := range []string{"java", "sun java", "jvm download", "solar cell", "sun oracle"} {
		if !reached[want] {
			t.Errorf("average transition misses %q; got %v", want, reached)
		}
	}
}

func TestClickedURLs(t *testing.T) {
	r := Build(tableILog(), querylog.SessionizerConfig{}, Raw)
	sun, _ := r.QueryID("sun")
	urls := r.ClickedURLs(sun)
	if len(urls) != 2 || urls["www.java.com"] == 0 || urls["www.suncellular.com"] == 0 {
		t.Errorf("ClickedURLs(sun) = %v", urls)
	}
}
