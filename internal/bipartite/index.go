package bipartite

import (
	"repro/internal/arena"
)

// Index is a bidirectional mapping between strings and dense integer
// IDs, used for query, URL, session and term node spaces.
//
// An Index is backed either by a map + slice (the mutable form produced
// by NewIndex/Intern) or by a flat arena string table (the read-only
// form produced by IndexFromArena when a snapshot is loaded in place).
// The serving path only ever calls Lookup/Name/Len, which are
// zero-allocation on both backings; the rare mutation path (Intern,
// used by delta rebuilds) transparently thaws an arena-backed index
// into the mutable form first.
type Index struct {
	byName map[string]int
	names  []string
	flat   *arena.Strings // non-nil → arena-backed until thawed
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{byName: make(map[string]int)}
}

// IndexFromArena wraps a flat string table as a read-only Index without
// copying or building a map. The table (and every string handed out by
// Name) aliases the arena buffer; see the arena.Strings lifetime rules.
func IndexFromArena(s *arena.Strings) *Index {
	return &Index{flat: s}
}

// thaw materializes a mutable map+slice backing from the arena table.
// The strings still alias the arena buffer (no blob copy).
func (ix *Index) thaw() {
	if ix.flat == nil {
		return
	}
	n := ix.flat.Len()
	ix.names = ix.flat.Names()
	ix.byName = make(map[string]int, n)
	for i, name := range ix.names {
		if _, dup := ix.byName[name]; !dup {
			ix.byName[name] = i
		}
	}
	ix.flat = nil
}

// Intern returns the ID for name, assigning the next free ID on first
// sight.
func (ix *Index) Intern(name string) int {
	if ix.flat != nil {
		ix.thaw()
	}
	if id, ok := ix.byName[name]; ok {
		return id
	}
	id := len(ix.names)
	if ix.byName == nil {
		ix.byName = make(map[string]int)
	}
	ix.byName[name] = id
	ix.names = append(ix.names, name)
	return id
}

// Lookup returns the ID for name; ok is false when the name was never
// interned.
func (ix *Index) Lookup(name string) (int, bool) {
	if ix.flat != nil {
		return ix.flat.Lookup(name)
	}
	id, ok := ix.byName[name]
	return id, ok
}

// Name returns the string for an ID. It panics on out-of-range IDs.
func (ix *Index) Name(id int) string {
	if ix.flat != nil {
		return ix.flat.Name(id)
	}
	return ix.names[id]
}

// Len returns the number of interned names.
func (ix *Index) Len() int {
	if ix.flat != nil {
		return ix.flat.Len()
	}
	return len(ix.names)
}

// Names returns the name slice in ID order (do not mutate). For an
// arena-backed index this materializes a fresh slice whose elements
// alias the arena buffer.
func (ix *Index) Names() []string {
	if ix.flat != nil {
		return ix.flat.Names()
	}
	return ix.names
}
