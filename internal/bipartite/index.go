package bipartite

import (
	"bytes"
	"encoding/gob"
)

// Index is a bidirectional mapping between strings and dense integer
// IDs, used for query, URL, session and term node spaces.
type Index struct {
	byName map[string]int
	names  []string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{byName: make(map[string]int)}
}

// Intern returns the ID for name, assigning the next free ID on first
// sight.
func (ix *Index) Intern(name string) int {
	if id, ok := ix.byName[name]; ok {
		return id
	}
	id := len(ix.names)
	ix.byName[name] = id
	ix.names = append(ix.names, name)
	return id
}

// Lookup returns the ID for name; ok is false when the name was never
// interned.
func (ix *Index) Lookup(name string) (int, bool) {
	id, ok := ix.byName[name]
	return id, ok
}

// Name returns the string for an ID. It panics on out-of-range IDs.
func (ix *Index) Name(id int) string { return ix.names[id] }

// Len returns the number of interned names.
func (ix *Index) Len() int { return len(ix.names) }

// Names returns the backing name slice (do not mutate).
func (ix *Index) Names() []string { return ix.names }

// GobEncode implements gob.GobEncoder: only the name slice travels;
// the reverse map is rebuilt on decode.
func (ix *Index) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ix.names)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (ix *Index) GobDecode(data []byte) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ix.names); err != nil {
		return err
	}
	ix.byName = make(map[string]int, len(ix.names))
	for i, n := range ix.names {
		ix.byName[n] = i
	}
	return nil
}
