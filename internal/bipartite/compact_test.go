package bipartite

import (
	"math"
	"sync"
	"testing"

	"repro/internal/querylog"
	"repro/internal/synth"
)

func synthRep(t *testing.T, wt Weighting) *Representation {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 5, NumFacets: 6, NumUsers: 12, SessionsPerUser: 10})
	return Build(w.Log, querylog.SessionizerConfig{}, wt)
}

func TestBuildCompactBudget(t *testing.T) {
	r := synthRep(t, CFIQF)
	sun := 0 // any query id works as seed
	c := r.BuildCompact([]int{sun}, CompactConfig{Budget: 30})
	if c.Size() > 30 {
		t.Fatalf("compact size %d exceeds budget", c.Size())
	}
	if c.Size() < 2 {
		t.Fatalf("compact did not expand beyond the seed (size %d)", c.Size())
	}
	if c.QueryIDs[0] != sun {
		t.Error("seed is not first")
	}
	// LocalOf inverts QueryIDs.
	for local, q := range c.QueryIDs {
		if c.LocalOf[q] != local {
			t.Fatalf("LocalOf[%d] = %d, want %d", q, c.LocalOf[q], local)
		}
	}
}

func TestBuildCompactSeedsFirst(t *testing.T) {
	r := synthRep(t, Raw)
	seeds := []int{3, 1, 4}
	c := r.BuildCompact(seeds, CompactConfig{Budget: 20})
	for i, s := range seeds {
		if c.QueryIDs[i] != s {
			t.Errorf("seed %d at position %d, want %d", c.QueryIDs[i], i, s)
		}
	}
}

func TestBuildCompactIgnoresBadSeeds(t *testing.T) {
	r := synthRep(t, Raw)
	c := r.BuildCompact([]int{0, 0, -5, 999999}, CompactConfig{Budget: 10})
	if c.Size() == 0 || c.QueryIDs[0] != 0 {
		t.Fatalf("compact = %v", c.QueryIDs)
	}
	seen := make(map[int]bool)
	for _, q := range c.QueryIDs {
		if seen[q] {
			t.Fatal("duplicate query in compact")
		}
		seen[q] = true
	}
}

func TestCompactInducedEdgesMatchFull(t *testing.T) {
	r := synthRep(t, CFIQF)
	c := r.BuildCompact([]int{2}, CompactConfig{Budget: 15})
	// Every compact row's total weight equals the full row's total (all
	// objects of a selected query are kept).
	for v := 0; v < NumViews; v++ {
		for lq, q := range c.QueryIDs {
			want := r.W[v].RowSum(q)
			got := c.W[v].RowSum(lq)
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("view %v query %d: compact row sum %v != full %v", View(v), q, got, want)
			}
		}
	}
}

func TestCompactExpansionPrefersNeighbors(t *testing.T) {
	// The expansion should pull in queries from the seed's facet before
	// unrelated ones: check that at least one direct neighbor (shares a
	// session/term/URL) of the seed is included.
	r := synthRep(t, CFIQF)
	seed := 0
	c := r.BuildCompact([]int{seed}, CompactConfig{Budget: 8})
	avg := r.AverageTransition()
	neighbors := make(map[int]bool)
	avg.Row(seed, func(cc int, v float64) {
		if v > 0 && cc != seed {
			neighbors[cc] = true
		}
	})
	if len(neighbors) == 0 {
		t.Skip("seed has no neighbors in this synthetic log")
	}
	found := false
	for _, q := range c.QueryIDs[1:] {
		if neighbors[q] {
			found = true
			break
		}
	}
	if !found {
		t.Error("compact contains no direct neighbor of the seed")
	}
}

func TestCompactNormalizedAffinityBounded(t *testing.T) {
	r := synthRep(t, CFIQF)
	c := r.BuildCompact([]int{1}, CompactConfig{Budget: 25})
	for v := 0; v < NumViews; v++ {
		l := c.NormalizedAffinity(View(v))
		if l.Rows() != c.Size() || l.Cols() != c.Size() {
			t.Fatalf("L shape %dx%d, want %dx%d", l.Rows(), l.Cols(), c.Size(), c.Size())
		}
		if l.MaxAbs() > 1+1e-9 {
			t.Errorf("view %v |L| max = %v", View(v), l.MaxAbs())
		}
	}
}

func TestCompactQueryNameRoundTrip(t *testing.T) {
	r := synthRep(t, Raw)
	c := r.BuildCompact([]int{0, 1}, CompactConfig{Budget: 10})
	for i := range c.QueryIDs {
		if c.QueryName(i) != r.Queries.Name(c.QueryIDs[i]) {
			t.Fatal("QueryName mismatch")
		}
	}
}

func TestCompactEmptySeeds(t *testing.T) {
	r := synthRep(t, Raw)
	c := r.BuildCompact(nil, CompactConfig{Budget: 10})
	if c.Size() != 0 {
		t.Fatalf("empty seeds produced %d queries", c.Size())
	}
}

// TestCompactDerivedMemo pins the derived-value memo contract: one
// build per key, shared result, distinct keys distinct builds, safe
// under concurrent first use.
func TestCompactDerivedMemo(t *testing.T) {
	r := synthRep(t, CFIQF)
	c := r.BuildCompact([]int{0}, CompactConfig{Budget: 20})

	type keyA struct{ x int }
	builds := 0
	build := func() any { builds++; return &struct{ n int }{builds} }
	v1 := c.Derived(keyA{1}, build)
	v2 := c.Derived(keyA{1}, build)
	if v1 != v2 {
		t.Fatal("same key returned distinct values")
	}
	if builds != 1 {
		t.Fatalf("build ran %d times for one key", builds)
	}
	if v3 := c.Derived(keyA{2}, build); v3 == v1 {
		t.Fatal("distinct keys shared a value")
	}
	if builds != 2 {
		t.Fatalf("build ran %d times for two keys", builds)
	}

	// Concurrent first use of a fresh key: exactly one build wins and
	// every goroutine sees it.
	c2 := r.BuildCompact([]int{1}, CompactConfig{Budget: 20})
	var wg sync.WaitGroup
	got := make([]any, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c2.Derived(keyA{7}, func() any { return new(int) })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Derived returned distinct values")
		}
	}
}
