package bipartite

import (
	"math"
	"sort"

	"repro/internal/sparse"
)

// Compact is a sub-representation induced on a budgeted set of queries
// around an input query and its search context (Section IV-A). It keeps
// a mapping back to the full representation's query IDs.
type Compact struct {
	// Full is the representation this compact view was carved from.
	Full *Representation
	// QueryIDs maps compact-local index → full query ID, in selection
	// order: index 0 is the input query, then its context, then expanded
	// neighbors by decreasing walk probability.
	QueryIDs []int
	// LocalOf maps full query ID → compact-local index.
	LocalOf map[int]int
	// W are the induced queries × objects matrices (objects restricted
	// to those touching a selected query).
	W [NumViews]*sparse.Matrix
}

// CompactConfig tunes compact-representation construction.
type CompactConfig struct {
	// Budget is the paper's ℚ: the number of queries kept (default 200).
	Budget int
	// WalkSteps is how many expansion rounds of the Markov random walk
	// are run before giving up on filling the budget (default 4).
	WalkSteps int
}

func (c CompactConfig) withDefaults() CompactConfig {
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.WalkSteps <= 0 {
		c.WalkSteps = 4
	}
	return c
}

// BuildCompact selects up to cfg.Budget queries around the seed set
// (input query first, then its search context) by expanding a Markov
// random walk over the averaged cross-view transition, then induces the
// three bipartites on the selection.
//
// seeds are full query IDs; the first seed is the input query. Unknown
// or duplicate seeds are ignored.
func (r *Representation) BuildCompact(seeds []int, cfg CompactConfig) *Compact {
	cfg = cfg.withDefaults()
	n := r.NumQueries()

	c := &Compact{Full: r, LocalOf: make(map[int]int)}
	add := func(q int) bool {
		if q < 0 || q >= n {
			return false
		}
		if _, dup := c.LocalOf[q]; dup {
			return false
		}
		c.LocalOf[q] = len(c.QueryIDs)
		c.QueryIDs = append(c.QueryIDs, q)
		return true
	}
	for _, s := range seeds {
		add(s)
		if len(c.QueryIDs) >= cfg.Budget {
			break
		}
	}
	if len(c.QueryIDs) == 0 {
		return c
	}

	// Expand: propagate probability mass from the seeds through the
	// averaged transition; after each step, admit the highest-mass new
	// queries until the budget is filled.
	if len(c.QueryIDs) < cfg.Budget {
		trans := r.AverageTransition()
		p := make([]float64, n)
		for _, q := range c.QueryIDs {
			p[q] = 1 / float64(len(c.QueryIDs))
		}
		next := make([]float64, n)
		for step := 0; step < cfg.WalkSteps && len(c.QueryIDs) < cfg.Budget; step++ {
			trans.MulVecT(p, next)
			// Accumulate so early-reached (closer) queries keep an edge.
			for i := range p {
				p[i] += next[i]
			}
			type cand struct {
				q    int
				mass float64
			}
			var cands []cand
			for q := 0; q < n; q++ {
				if _, in := c.LocalOf[q]; !in && p[q] > 0 {
					cands = append(cands, cand{q, p[q]})
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].mass != cands[j].mass {
					return cands[i].mass > cands[j].mass
				}
				return cands[i].q < cands[j].q
			})
			for _, cd := range cands {
				if len(c.QueryIDs) >= cfg.Budget {
					break
				}
				add(cd.q)
			}
		}
	}

	// Induce sub-bipartites: keep objects that touch ≥1 selected query,
	// re-indexing objects densely per view.
	for v := 0; v < NumViews; v++ {
		objMap := make(map[int]int)
		b := sparse.NewBuilder(len(c.QueryIDs), r.W[v].Cols())
		// First pass: discover objects (we need the local object count
		// before building, so collect triplets).
		type trip struct {
			lq, o int
			val   float64
		}
		var trips []trip
		for lq, q := range c.QueryIDs {
			r.W[v].Row(q, func(o int, val float64) {
				if _, ok := objMap[o]; !ok {
					objMap[o] = len(objMap)
				}
				trips = append(trips, trip{lq, objMap[o], val})
			})
		}
		b = sparse.NewBuilder(len(c.QueryIDs), len(objMap))
		for _, t := range trips {
			b.Add(t.lq, t.o, t.val)
		}
		c.W[v] = b.Build()
	}
	return c
}

// Size returns the number of selected queries.
func (c *Compact) Size() int { return len(c.QueryIDs) }

// QueryName returns the query string at compact-local index i.
func (c *Compact) QueryName(i int) string {
	return c.Full.Queries.Name(c.QueryIDs[i])
}

// NormalizedAffinity returns L^X of the compact view v (see
// Representation.NormalizedAffinity).
func (c *Compact) NormalizedAffinity(v View) *sparse.Matrix {
	return normalizedAffinityOf(c.W[v])
}

// QueryTransition returns the row-normalized two-step query→query
// transition of the compact view v.
func (c *Compact) QueryTransition(v View) *sparse.Matrix {
	w := c.W[v].RowNormalized()
	wt := c.W[v].Transpose().RowNormalized()
	return sparse.MulMat(w, wt)
}

// normalizedAffinityOf computes D^{-1/2} W Wᵀ D^{-1/2} for any bipartite
// weight matrix. The affinity's sparsity structure is reused: only the
// values are rescaled, so no re-sorting is needed.
func normalizedAffinityOf(w *sparse.Matrix) *sparse.Matrix {
	aff := sparse.MulMat(w, w.Transpose())
	n := aff.Rows()
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = aff.RowSum(i)
	}
	return aff.ScaleSym(func(i, j int) float64 {
		if d[i] == 0 || d[j] == 0 {
			return 0
		}
		return 1 / math.Sqrt(d[i]*d[j])
	})
}
