package bipartite

import (
	"math"
	"sort"
	"sync"

	"repro/internal/sparse"
)

// Compact is a sub-representation induced on a budgeted set of queries
// around an input query and its search context (Section IV-A). It keeps
// a mapping back to the full representation's query IDs.
type Compact struct {
	// Full is the representation this compact view was carved from.
	Full *Representation
	// QueryIDs maps compact-local index → full query ID, in selection
	// order: index 0 is the input query, then its context, then expanded
	// neighbors by decreasing walk probability.
	QueryIDs []int
	// LocalOf maps full query ID → compact-local index.
	LocalOf map[int]int
	// W are the induced queries × objects matrices (objects restricted
	// to those touching a selected query).
	W [NumViews]*sparse.Matrix

	// Derived per-view matrices are memoized: a Compact is immutable
	// once built, so the two-step transition and normalized affinity
	// are pure functions of it, and every consumer that touches the
	// same compact more than once (multi-strategy requests, the batched
	// solve path, the seed-stage benchmark's per-round rebuilds) would
	// otherwise redo the full SpGEMM chain — the dominant allocator of
	// the hitting stage before memoization.
	derived [NumViews]struct {
		transOnce, affOnce sync.Once
		trans, aff         *sparse.Matrix
	}

	// extra memoizes derived values whose keys the compact cannot
	// enumerate up front (the Eq. 15 system matrix per α vector, the
	// hitting-time walker per selector config). See Derived.
	extraMu sync.Mutex
	extra   map[any]any
}

// CompactConfig tunes compact-representation construction.
type CompactConfig struct {
	// Budget is the paper's ℚ: the number of queries kept (default 200).
	Budget int
	// WalkSteps is how many expansion rounds of the Markov random walk
	// are run before giving up on filling the budget (default 4).
	WalkSteps int
}

func (c CompactConfig) withDefaults() CompactConfig {
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.WalkSteps <= 0 {
		c.WalkSteps = 4
	}
	return c
}

// BuildCompact selects up to cfg.Budget queries around the seed set
// (input query first, then its search context) by expanding a Markov
// random walk over the averaged cross-view transition, then induces the
// three bipartites on the selection.
//
// seeds are full query IDs; the first seed is the input query. Unknown
// or duplicate seeds are ignored.
func (r *Representation) BuildCompact(seeds []int, cfg CompactConfig) *Compact {
	cfg = cfg.withDefaults()
	n := r.NumQueries()

	c := &Compact{Full: r, LocalOf: make(map[int]int)}
	add := func(q int) bool {
		if q < 0 || q >= n {
			return false
		}
		if _, dup := c.LocalOf[q]; dup {
			return false
		}
		c.LocalOf[q] = len(c.QueryIDs)
		c.QueryIDs = append(c.QueryIDs, q)
		return true
	}
	for _, s := range seeds {
		add(s)
		if len(c.QueryIDs) >= cfg.Budget {
			break
		}
	}
	if len(c.QueryIDs) == 0 {
		return c
	}

	// Expand: propagate probability mass from the seeds through the
	// averaged transition; after each step, admit the highest-mass new
	// queries until the budget is filled.
	if len(c.QueryIDs) < cfg.Budget {
		trans := r.AverageTransition()
		p := make([]float64, n)
		for _, q := range c.QueryIDs {
			p[q] = 1 / float64(len(c.QueryIDs))
		}
		next := make([]float64, n)
		for step := 0; step < cfg.WalkSteps && len(c.QueryIDs) < cfg.Budget; step++ {
			trans.MulVecT(p, next)
			// Accumulate so early-reached (closer) queries keep an edge.
			for i := range p {
				p[i] += next[i]
			}
			type cand struct {
				q    int
				mass float64
			}
			var cands []cand
			for q := 0; q < n; q++ {
				if _, in := c.LocalOf[q]; !in && p[q] > 0 {
					cands = append(cands, cand{q, p[q]})
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].mass != cands[j].mass {
					return cands[i].mass > cands[j].mass
				}
				return cands[i].q < cands[j].q
			})
			for _, cd := range cands {
				if len(c.QueryIDs) >= cfg.Budget {
					break
				}
				add(cd.q)
			}
		}
	}

	// Induce sub-bipartites: keep objects that touch ≥1 selected query,
	// re-indexing objects densely per view.
	for v := 0; v < NumViews; v++ {
		objMap := make(map[int]int)
		b := sparse.NewBuilder(len(c.QueryIDs), r.W[v].Cols())
		// First pass: discover objects (we need the local object count
		// before building, so collect triplets).
		type trip struct {
			lq, o int
			val   float64
		}
		var trips []trip
		for lq, q := range c.QueryIDs {
			r.W[v].Row(q, func(o int, val float64) {
				if _, ok := objMap[o]; !ok {
					objMap[o] = len(objMap)
				}
				trips = append(trips, trip{lq, objMap[o], val})
			})
		}
		b = sparse.NewBuilder(len(c.QueryIDs), len(objMap))
		for _, t := range trips {
			b.Add(t.lq, t.o, t.val)
		}
		c.W[v] = b.Build()
	}
	return c
}

// Size returns the number of selected queries.
func (c *Compact) Size() int { return len(c.QueryIDs) }

// QueryName returns the query string at compact-local index i.
func (c *Compact) QueryName(i int) string {
	return c.Full.Queries.Name(c.QueryIDs[i])
}

// NormalizedAffinity returns L^X of the compact view v (see
// Representation.NormalizedAffinity). The result is computed on first
// use and memoized — callers share the returned matrix and must treat
// it as immutable (which every sparse.Matrix already is).
func (c *Compact) NormalizedAffinity(v View) *sparse.Matrix {
	d := &c.derived[v]
	d.affOnce.Do(func() {
		d.aff = normalizedAffinityOf(c.W[v])
	})
	return d.aff
}

// Derived returns the memoized derived value for key, calling build on
// first use. It generalizes the per-view memos above to derived state
// whose key space the compact cannot know (a system matrix per α
// vector, a walker per selector config): anything that is a pure
// function of the immutable compact plus a comparable key qualifies.
// Once compacts are reused across requests (the engine's compact
// cache), every such derivation runs once per compact instead of once
// per request.
//
// build runs under the memo lock, so concurrent requests for the same
// key share a single construction; the built value must be immutable
// (or internally synchronized) because callers share it.
func (c *Compact) Derived(key any, build func() any) any {
	c.extraMu.Lock()
	defer c.extraMu.Unlock()
	if v, ok := c.extra[key]; ok {
		return v
	}
	v := build()
	if c.extra == nil {
		c.extra = make(map[any]any)
	}
	c.extra[key] = v
	return v
}

// QueryTransition returns the row-normalized two-step query→query
// transition of the compact view v, memoized like NormalizedAffinity.
func (c *Compact) QueryTransition(v View) *sparse.Matrix {
	d := &c.derived[v]
	d.transOnce.Do(func() {
		w := c.W[v].RowNormalized()
		wt := c.W[v].Transpose().RowNormalized()
		d.trans = sparse.MulMat(w, wt)
	})
	return d.trans
}

// normalizedAffinityOf computes D^{-1/2} W Wᵀ D^{-1/2} for any bipartite
// weight matrix. The affinity's sparsity structure is reused: only the
// values are rescaled, so no re-sorting is needed.
func normalizedAffinityOf(w *sparse.Matrix) *sparse.Matrix {
	aff := sparse.MulMat(w, w.Transpose())
	n := aff.Rows()
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = aff.RowSum(i)
	}
	return aff.ScaleSym(func(i, j int) float64 {
		if d[i] == 0 || d[j] == 0 {
			return 0
		}
		return 1 / math.Sqrt(d[i]*d[j])
	})
}
