package bipartite

import (
	"testing"

	"repro/internal/arena"
)

func arenaIndex(t *testing.T, names []string) *Index {
	t.Helper()
	off, blob, table := arena.BuildStrings(names)
	s, err := arena.NewStrings(off, blob, table)
	if err != nil {
		t.Fatal(err)
	}
	return IndexFromArena(s)
}

func TestIndexFromArenaParity(t *testing.T) {
	names := []string{"sun", "sun tan", "", "jvm download", "ünïcode"}
	flat := arenaIndex(t, names)
	mut := NewIndex()
	for _, n := range names {
		mut.Intern(n)
	}
	if flat.Len() != mut.Len() {
		t.Fatalf("Len: flat %d, map %d", flat.Len(), mut.Len())
	}
	for i, n := range names {
		if flat.Name(i) != mut.Name(i) {
			t.Fatalf("Name(%d): flat %q, map %q", i, flat.Name(i), mut.Name(i))
		}
		fid, fok := flat.Lookup(n)
		mid, mok := mut.Lookup(n)
		if fid != mid || fok != mok {
			t.Fatalf("Lookup(%q): flat %d,%v map %d,%v", n, fid, fok, mid, mok)
		}
	}
	if _, ok := flat.Lookup("never seen"); ok {
		t.Fatal("phantom hit in flat index")
	}
	got := flat.Names()
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], n)
		}
	}
}

func TestIndexThawOnIntern(t *testing.T) {
	names := []string{"a", "b", "c"}
	ix := arenaIndex(t, names)
	// Interning an existing name must keep its ID and not grow the index.
	if id := ix.Intern("b"); id != 1 {
		t.Fatalf("Intern(existing) = %d, want 1", id)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len after re-intern = %d", ix.Len())
	}
	// A fresh name gets the next dense ID.
	if id := ix.Intern("d"); id != 3 {
		t.Fatalf("Intern(new) = %d, want 3", id)
	}
	if ix.Len() != 4 || ix.Name(3) != "d" {
		t.Fatalf("post-thaw state: len %d, Name(3)=%q", ix.Len(), ix.Name(3))
	}
	// The original arena-backed contents survive the thaw.
	for i, n := range names {
		if ix.Name(i) != n {
			t.Fatalf("Name(%d) = %q after thaw, want %q", i, ix.Name(i), n)
		}
		if id, ok := ix.Lookup(n); !ok || id != i {
			t.Fatalf("Lookup(%q) = %d,%v after thaw", n, id, ok)
		}
	}
}

func TestIndexFlatZeroAllocServing(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	ix := arenaIndex(t, names)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := ix.Lookup("beta"); !ok {
			t.Fatal("miss")
		}
		if ix.Name(0) != "alpha" {
			t.Fatal("bad name")
		}
		_ = ix.Len()
	})
	if allocs != 0 {
		t.Fatalf("flat Lookup/Name allocated %v per run", allocs)
	}
}
