// Package profile implements the paper's online personalization stage
// (Section V-B): per-user preference scores for suggestion candidates
// (Eq. 31) computed from trained UPM profiles, and Borda rank
// aggregation of the diversification ranking with the preference
// ranking.
package profile

import (
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

// Store wraps a trained UPM and answers preference queries for its
// users.
type Store struct {
	upm *topicmodel.UPM
	// words resolves query terms to the UPM's vocabulary.
	words interface {
		Lookup(string) (int, bool)
	}
}

// NewStore builds a profile store from a trained UPM and the corpus it
// was trained on (for the shared word vocabulary).
func NewStore(upm *topicmodel.UPM, corpus *topicmodel.Corpus) *Store {
	return &Store{upm: upm, words: corpus.Words}
}

// NewStoreFromIndex builds a profile store from a trained UPM and the
// word index it was trained with — the deserialization path (the
// corpus itself is not persisted, only the vocabulary).
func NewStoreFromIndex(upm *topicmodel.UPM, words *bipartite.Index) *Store {
	return &Store{upm: upm, words: words}
}

// UPM exposes the underlying model.
func (s *Store) UPM() *topicmodel.UPM { return s.upm }

// WordID resolves a token against the UPM's training vocabulary,
// reporting whether it is known — the hook topic-aware diversification
// uses to infer a query's topics from the trained model.
func (s *Store) WordID(word string) (int, bool) { return s.words.Lookup(word) }

// Theta returns the topic profile of a user, or nil for unknown users.
func (s *Store) Theta(userID string) []float64 {
	d, ok := s.upm.DocOf(userID)
	if !ok {
		return nil
	}
	return s.upm.Theta(d)
}

// ScoreMode selects how word probabilities enter Eq. 31.
type ScoreMode int

const (
	// Posterior scores each word by the alignment of its per-user topic
	// posterior with the profile: Σ_k θ_dk·p(k|w,d), where
	// p(k|w,d) ∝ p(w|k,d). Normalizing over topics removes the raw
	// frequency of the word, so a globally common word ("sun") cannot
	// dominate a facet-discriminative one ("jvm"). This is the form the
	// PQS-DA pipeline uses; see DESIGN.md for the relation to the
	// literal Eq. 31.
	Posterior ScoreMode = iota
	// PriorMean uses the literal B(n+β)/B(β) factor of Eq. 31, which
	// for single-occurrence words reduces to the prior mean β_kw/Σβ_k,
	// mixed with θ_dk without normalization.
	PriorMean
)

// pkPool recycles the per-word topic-posterior buffer of the Posterior
// score: before pooling, scoring k candidates of w words each allocated
// k·w K-float slices on the serving path.
var pkPool = sync.Pool{New: func() any { return new([]float64) }}

// PreferenceScore computes the user's preference for a candidate query
// (the paper's Eq. 31): the average over the query's words of the
// per-mode word score. Unknown users and out-of-vocabulary words
// contribute nothing; a query with no known words scores 0.
func (s *Store) PreferenceScore(userID, query string, mode ScoreMode) float64 {
	return s.PreferenceScoreTokens(userID, querylog.Tokenize(query), mode)
}

// PreferenceScoreTokens is PreferenceScore for a pre-tokenized query —
// the symbol-table serving path, where the snapshot already holds every
// known query's token list and re-tokenizing per candidate per request
// would be pure waste. The token slice is read-only.
func (s *Store) PreferenceScoreTokens(userID string, words []string, mode ScoreMode) float64 {
	d, ok := s.upm.DocOf(userID)
	if !ok {
		return 0
	}
	theta := s.upm.Theta(d)
	if len(words) == 0 {
		return 0
	}
	pkp := pkPool.Get().(*[]float64)
	if cap(*pkp) < len(theta) {
		*pkp = make([]float64, len(theta))
	}
	pk := (*pkp)[:len(theta)]
	defer pkPool.Put(pkp)
	total := 0.0
	for _, word := range words {
		w, ok := s.words.Lookup(word)
		if !ok {
			continue
		}
		switch mode {
		case PriorMean:
			for k := range theta {
				total += s.upm.PriorWordProb(k, w) * theta[k]
			}
		default: // Posterior: topic-alignment score
			sum := 0.0
			for k := range theta {
				pk[k] = s.upm.WordProb(d, k, w)
				sum += pk[k]
			}
			if sum == 0 {
				continue
			}
			for k := range theta {
				total += theta[k] * pk[k] / sum
			}
		}
	}
	return total / float64(len(words))
}

// RankByPreference orders the candidate queries by descending
// preference score for the user, ties broken by the original order
// (which for PQS-DA is the diversification ranking).
func (s *Store) RankByPreference(userID string, candidates []string, mode ScoreMode) []string {
	type scored struct {
		q     string
		score float64
		pos   int
	}
	list := make([]scored, len(candidates))
	for i, q := range candidates {
		list[i] = scored{q, s.PreferenceScore(userID, q, mode), i}
	}
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].pos < list[j].pos
	})
	out := make([]string, len(list))
	for i, sc := range list {
		out[i] = sc.q
	}
	return out
}

// PreferencePerm returns the preference-order permutation over
// pre-tokenized candidates: out[r] is the candidate index ranked r-th by
// descending preference score, ties broken by original position. It is
// RankByPreference in index space — no candidate strings are hashed,
// copied or re-tokenized.
func (s *Store) PreferencePerm(userID string, tokens [][]string, mode ScoreMode) []int {
	scores := make([]float64, len(tokens))
	for i, toks := range tokens {
		scores[i] = s.PreferenceScoreTokens(userID, toks, mode)
	}
	perm := make([]int, len(tokens))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		if scores[perm[a]] != scores[perm[b]] {
			return scores[perm[a]] > scores[perm[b]]
		}
		return perm[a] < perm[b]
	})
	return perm
}

// BordaMergePerm merges the identity ranking 0..n-1 (for PQS-DA, the
// diversification order) with a preference permutation by Borda's
// method, entirely in index space. For two rankings over the same n
// items, an item at positions p₀ and p₁ scores (n−p₀)+(n−p₁) points, so
// descending points with ties to the first ranking is exactly ascending
// (p₀+p₁) with ties to p₀ — what this computes without the maps and
// string keys of the general BordaAggregate.
func BordaMergePerm(pref []int) []int {
	n := len(pref)
	prefPos := make([]int, n)
	for r, i := range pref {
		prefPos[i] = r
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		ka := out[a] + prefPos[out[a]]
		kb := out[b] + prefPos[out[b]]
		if ka != kb {
			return ka < kb
		}
		return out[a] < out[b]
	})
	return out
}

// BordaAggregate merges rankings of the same item set by Borda's method
// (the paper's [32]): each ranking awards an item (n − position) points;
// items absent from a ranking get 0 from it. The result is ordered by
// descending total points, with ties broken by position in the first
// ranking (for PQS-DA, the diversification order, so relevance wins
// ties).
func BordaAggregate(rankings ...[]string) []string {
	if len(rankings) == 0 {
		return nil
	}
	points := make(map[string]int)
	firstPos := make(map[string]int)
	order := []string{}
	for ri, ranking := range rankings {
		n := len(ranking)
		for pos, item := range ranking {
			if _, seen := points[item]; !seen {
				order = append(order, item)
				firstPos[item] = int(^uint(0) >> 1) // max int until ranked by first
			}
			points[item] += n - pos
			if ri == 0 {
				firstPos[item] = pos
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if points[a] != points[b] {
			return points[a] > points[b]
		}
		return firstPos[a] < firstPos[b]
	})
	return order
}
