package profile

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/querylog"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

func trainedStore(t *testing.T) (*synth.World, *Store) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 31, NumFacets: 5, NumUsers: 10, SessionsPerUser: 20})
	sessions := querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
	corpus := topicmodel.BuildCorpus(sessions, w.NormalizeTime)
	upm := topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{K: 5, Iterations: 40, Seed: 1, HyperRounds: 1, HyperIters: 8})
	return w, NewStore(upm, corpus)
}

func TestThetaKnownAndUnknown(t *testing.T) {
	w, s := trainedStore(t)
	theta := s.Theta(w.UserIDs()[0])
	if theta == nil {
		t.Fatal("known user has nil profile")
	}
	sum := 0.0
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("theta sums to %v", sum)
	}
	if s.Theta("stranger") != nil {
		t.Error("unknown user got a profile")
	}
}

func TestPreferenceScorePersonalized(t *testing.T) {
	// On average, a user's own queries must score higher for them than
	// multi-word queries from other users that share no vocabulary with
	// anything this user ever typed. Individual pairs are noisy (Gibbs
	// sampling), so we compare means over many queries.
	w, s := trainedStore(t)
	user := w.UserIDs()[0]
	ownWords := make(map[string]bool)
	ownFacets := make(map[int]bool)
	var ownQueries []string
	for _, e := range w.Log.ByUser(user) {
		ownQueries = append(ownQueries, e.Query)
		f, _ := w.FacetOf(e)
		ownFacets[f] = true
		for _, tok := range querylog.Tokenize(e.Query) {
			ownWords[tok] = true
		}
	}
	var foreignQueries []string
	for _, e := range w.Log.Entries {
		if e.UserID == user || len(foreignQueries) >= 30 {
			continue
		}
		f, _ := w.FacetOf(e)
		toks := querylog.Tokenize(e.Query)
		if ownFacets[f] || len(toks) < 2 {
			continue
		}
		clean := true
		for _, tok := range toks {
			if ownWords[tok] {
				clean = false
				break
			}
		}
		if clean {
			foreignQueries = append(foreignQueries, e.Query)
		}
	}
	if len(ownQueries) < 5 || len(foreignQueries) < 5 {
		t.Skip("fixture lacks contrast queries")
	}
	meanScore := func(qs []string) float64 {
		sum := 0.0
		for _, q := range qs {
			sum += s.PreferenceScore(user, q, Posterior)
		}
		return sum / float64(len(qs))
	}
	po, pf := meanScore(ownQueries), meanScore(foreignQueries)
	if po <= pf {
		t.Errorf("mean own score %v not above mean foreign score %v (%d vs %d queries)",
			po, pf, len(ownQueries), len(foreignQueries))
	}
}

func TestPreferenceScoreEdgeCases(t *testing.T) {
	_, s := trainedStore(t)
	if got := s.PreferenceScore("stranger", "anything", Posterior); got != 0 {
		t.Errorf("unknown user score = %v", got)
	}
	w, _ := trainedStore(t)
	user := w.UserIDs()[0]
	if got := s.PreferenceScore(user, "", Posterior); got != 0 {
		t.Errorf("empty query score = %v", got)
	}
	if got := s.PreferenceScore(user, "zzzunknownwordzzz", Posterior); got != 0 {
		t.Errorf("OOV query score = %v", got)
	}
}

func TestPriorMeanModeDiffers(t *testing.T) {
	w, s := trainedStore(t)
	user := w.UserIDs()[0]
	q := w.Log.ByUser(user)[0].Query
	post := s.PreferenceScore(user, q, Posterior)
	prior := s.PreferenceScore(user, q, PriorMean)
	if post <= 0 || prior <= 0 {
		t.Fatalf("scores: post=%v prior=%v", post, prior)
	}
	// The posterior mode personalizes: the user's own query should score
	// at least as high as under the shared prior.
	if post < prior*0.5 {
		t.Errorf("posterior %v much below prior %v for the user's own query", post, prior)
	}
}

func TestRankByPreferenceStable(t *testing.T) {
	w, s := trainedStore(t)
	user := w.UserIDs()[0]
	cands := []string{"zzzoov one", "zzzoov two", "zzzoov three"}
	// All score 0 → original order preserved.
	got := s.RankByPreference(user, cands, Posterior)
	if !reflect.DeepEqual(got, cands) {
		t.Errorf("tie order not preserved: %v", got)
	}
}

func TestBordaAggregate(t *testing.T) {
	r1 := []string{"a", "b", "c"} // a:3 b:2 c:1
	r2 := []string{"c", "a", "b"} // c:3 a:2 b:1
	got := BordaAggregate(r1, r2)
	want := []string{"a", "c", "b"} // a:5, c:4, b:3
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Borda = %v, want %v", got, want)
	}
}

func TestBordaAggregateTieBreaksByFirstRanking(t *testing.T) {
	r1 := []string{"a", "b"} // a:2 b:1
	r2 := []string{"b", "a"} // b:2 a:1 → tie at 3 points each
	got := BordaAggregate(r1, r2)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("tie should favor first ranking's order, got %v", got)
	}
}

func TestBordaAggregateDisjointItems(t *testing.T) {
	r1 := []string{"a", "b"}
	r2 := []string{"x"}
	got := BordaAggregate(r1, r2)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// x gets 1 point from r2; a gets 2 from r1; b gets 1; tie b/x broken
	// by first-ranking presence (b has pos 1, x unranked in r1).
	if got[0] != "a" || got[1] != "b" || got[2] != "x" {
		t.Errorf("got %v", got)
	}
}

func TestBordaAggregateEmpty(t *testing.T) {
	if got := BordaAggregate(); got != nil {
		t.Errorf("no rankings gave %v", got)
	}
	if got := BordaAggregate(nil, nil); len(got) != 0 {
		t.Errorf("empty rankings gave %v", got)
	}
}

// Property: Borda of identical rankings is that ranking.
func TestBordaIdempotent(t *testing.T) {
	r := []string{"q one", "q two", "q three", "q four"}
	if got := BordaAggregate(r, r, r); !reflect.DeepEqual(got, r) {
		t.Errorf("Borda of copies = %v", got)
	}
}
