package metrics

import (
	"math"
	"testing"

	"repro/internal/odp"
)

func constSim(v float64) PageSim {
	return func(p1, p2 string) float64 { return v }
}

func pagesFrom(m map[string][]string) PageSet {
	return func(q string) map[string]float64 {
		out := make(map[string]float64)
		for _, p := range m[q] {
			out[p] = 1
		}
		return out
	}
}

func TestPairDiversity(t *testing.T) {
	pages := pagesFrom(map[string][]string{
		"a": {"p1", "p2"},
		"b": {"p3"},
	})
	// sim = 0 everywhere → fully diverse.
	if got := PairDiversity("a", "b", pages, constSim(0)); got != 1 {
		t.Errorf("diversity = %v, want 1", got)
	}
	// sim = 1 everywhere → no diversity.
	if got := PairDiversity("a", "b", pages, constSim(1)); got != 0 {
		t.Errorf("diversity = %v, want 0", got)
	}
	// Clickless query counts as fully diverse.
	if got := PairDiversity("a", "nope", pages, constSim(1)); got != 1 {
		t.Errorf("clickless diversity = %v, want 1", got)
	}
}

func TestPairDiversityAveragesPairs(t *testing.T) {
	pages := pagesFrom(map[string][]string{
		"a": {"p1", "p2"},
		"b": {"p1", "p3"},
	})
	sim := func(p1, p2 string) float64 {
		if p1 == p2 {
			return 1
		}
		return 0
	}
	// 4 pairs, one identical → avg sim 0.25 → diversity 0.75.
	if got := PairDiversity("a", "b", pages, sim); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("diversity = %v, want 0.75", got)
	}
}

func TestListDiversity(t *testing.T) {
	pages := pagesFrom(map[string][]string{
		"a": {"p1"}, "b": {"p1"}, "c": {"p2"},
	})
	sim := func(p1, p2 string) float64 {
		if p1 == p2 {
			return 1
		}
		return 0
	}
	// Pairs: (a,b)=0, (a,c)=1, (b,c)=1 → mean = 2/3.
	if got := ListDiversity([]string{"a", "b", "c"}, pages, sim); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("D(L) = %v, want 2/3", got)
	}
	if got := ListDiversity([]string{"a"}, pages, sim); got != 0 {
		t.Errorf("singleton D(L) = %v", got)
	}
}

func TestMeanRelevanceAtK(t *testing.T) {
	cats := map[string]odp.Category{
		"in": odp.ParseCategory("x/y/z"),
		"s1": odp.ParseCategory("x/y/z"), // rel 1
		"s2": odp.ParseCategory("x/y/w"), // rel 2/3
		"s3": odp.ParseCategory("a/b/c"), // rel 0
	}
	cat := func(q string) odp.Category { return cats[q] }
	got := MeanRelevanceAtK("in", []string{"s1", "s2", "s3"}, cat, 4)
	want := []float64{1, (1 + 2.0/3) / 2, (1 + 2.0/3) / 3, (1 + 2.0/3) / 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("rel@%d = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestMeanRelevanceAtKEmpty(t *testing.T) {
	got := MeanRelevanceAtK("in", nil, func(string) odp.Category { return nil }, 3)
	for _, v := range got {
		if v != 0 {
			t.Errorf("empty list relevance = %v", got)
		}
	}
}

func TestMeanDiversityAtK(t *testing.T) {
	pages := pagesFrom(map[string][]string{
		"a": {"p1"}, "b": {"p1"}, "c": {"p2"},
	})
	sim := func(p1, p2 string) float64 {
		if p1 == p2 {
			return 1
		}
		return 0
	}
	got := MeanDiversityAtK([]string{"a", "b", "c"}, pages, sim, 4)
	if got[0] != 0 {
		t.Errorf("D@1 = %v, want 0", got[0])
	}
	if got[1] != 0 { // a,b share p1
		t.Errorf("D@2 = %v, want 0", got[1])
	}
	if math.Abs(got[2]-2.0/3) > 1e-12 {
		t.Errorf("D@3 = %v, want 2/3", got[2])
	}
	if got[3] != got[2] { // list exhausted
		t.Errorf("D@4 = %v, want %v", got[3], got[2])
	}
}

func TestPPR(t *testing.T) {
	titles := func(p string) map[string]float64 {
		if p == "page1" {
			return map[string]float64{"solar": 1, "energy": 1}
		}
		return map[string]float64{"java": 1}
	}
	// Suggestion matching the clicked page's title words scores high.
	high := PPR("solar energy", []string{"page1"}, titles)
	low := PPR("solar energy", []string{"page2"}, titles)
	if high <= low {
		t.Errorf("PPR high %v ≤ low %v", high, low)
	}
	if math.Abs(high-1) > 1e-12 {
		t.Errorf("exact match PPR = %v, want 1", high)
	}
	if got := PPR("solar", nil, titles); got != 0 {
		t.Errorf("no clicks PPR = %v, want 0", got)
	}
}

func TestMeanPPRAtK(t *testing.T) {
	titles := func(p string) map[string]float64 {
		return map[string]float64{"java": 1}
	}
	got := MeanPPRAtK([]string{"java", "solar"}, []string{"p"}, titles, 3)
	if math.Abs(got[0]-1) > 1e-12 {
		t.Errorf("PPR@1 = %v", got[0])
	}
	if math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("PPR@2 = %v", got[1])
	}
	if got[2] != got[1] {
		t.Errorf("PPR@3 = %v, want %v (exhausted list)", got[2], got[1])
	}
}

func TestSixPointScale(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {1, 1}, {0.5, 0.6}, {0.49, 0.4}, {-1, 0}, {2, 1}, {0.1, 0.2}, {0.09, 0},
	}
	for _, c := range cases {
		if got := SixPointScale(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SixPointScale(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanHPRAtK(t *testing.T) {
	grade := func(s string, facet int) float64 {
		if s == "good" {
			return 1
		}
		return 0.2
	}
	got := MeanHPRAtK([]string{"good", "meh"}, 0, grade, 2)
	if got[0] != 1 || math.Abs(got[1]-0.6) > 1e-12 {
		t.Errorf("HPR@k = %v", got)
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(2)
	if a.Mean() != nil {
		t.Error("empty accumulator mean not nil")
	}
	a.Add([]float64{1, 3})
	a.Add([]float64{3, 5})
	m := a.Mean()
	if m[0] != 2 || m[1] != 4 || a.Count() != 2 {
		t.Errorf("mean = %v, count = %d", m, a.Count())
	}
}
