package metrics

import (
	"math"
	"testing"
)

// Fixture: three items over two subtopics. "a" covers {0}, "b" covers
// {0} again (redundant), "c" covers {1}.
func evalSubtopics() SubtopicsOf {
	m := map[string][]int{
		"a": {0},
		"b": {0},
		"c": {1},
		"x": nil, // no ground truth
	}
	return func(q string) []int { return m[q] }
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %.12f, want %.12f", name, got, want)
	}
}

func TestAlphaDCGHandComputed(t *testing.T) {
	st := evalSubtopics()
	// [a b c] at α=0.5:
	//  r=0 "a": gain (1-α)^0 = 1,    discount log2(2)=1    → 1
	//  r=1 "b": gain (1-α)^1 = 0.5,  discount log2(3)      → 0.5/log2(3)
	//  r=2 "c": gain (1-α)^0 = 1,    discount log2(4)=2    → 0.5
	want := 1 + 0.5/math.Log2(3) + 0.5
	almost(t, "AlphaDCG([a b c])", AlphaDCG([]string{"a", "b", "c"}, st, 0.5), want)

	// [a c b] covers topic 1 earlier, so it must score strictly higher.
	better := AlphaDCG([]string{"a", "c", "b"}, st, 0.5)
	if better <= AlphaDCG([]string{"a", "b", "c"}, st, 0.5) {
		t.Errorf("diverse order %.6f not better than redundant order", better)
	}

	// α=0 removes the redundancy penalty entirely: per-subtopic DCG.
	want0 := 1 + 1/math.Log2(3) + 0.5
	almost(t, "AlphaDCG α=0", AlphaDCG([]string{"a", "b", "c"}, st, 0), want0)

	if got := AlphaDCG(nil, st, 0.5); got != 0 {
		t.Errorf("AlphaDCG(nil) = %v", got)
	}
}

func TestIdealAlphaDCGGreedy(t *testing.T) {
	st := evalSubtopics()
	// Greedy over pool {a b c}: picks a (or b) for gain 1, then c for
	// gain 1 (fresh topic), then the redundant one for gain 0.5.
	want := 1 + 1/math.Log2(3) + 0.25
	almost(t, "IdealAlphaDCG k=3", IdealAlphaDCG([]string{"a", "b", "c"}, st, 0.5, 3), want)

	// k truncates: only the two best picks count.
	want2 := 1 + 1/math.Log2(3)
	almost(t, "IdealAlphaDCG k=2", IdealAlphaDCG([]string{"a", "b", "c"}, st, 0.5, 2), want2)

	// k beyond the pool is clamped, not an error.
	almost(t, "IdealAlphaDCG k=99", IdealAlphaDCG([]string{"a", "b", "c"}, st, 0.5, 99), want)
}

func TestAlphaNDCG(t *testing.T) {
	st := evalSubtopics()
	pool := []string{"a", "b", "c"}
	// The greedy-ideal order normalizes to exactly 1.
	almost(t, "AlphaNDCG(ideal)", AlphaNDCG([]string{"a", "c", "b"}, pool, st, 0.5), 1)
	// A worse order lands strictly below 1, above 0.
	got := AlphaNDCG([]string{"a", "b", "c"}, pool, st, 0.5)
	if got <= 0 || got >= 1 {
		t.Errorf("AlphaNDCG(redundant order) = %v, want in (0,1)", got)
	}
	// No covered subtopics anywhere: defined as 0, not NaN.
	if got := AlphaNDCG([]string{"x"}, []string{"x"}, st, 0.5); got != 0 {
		t.Errorf("AlphaNDCG(no subtopics) = %v", got)
	}
}

func TestSubtopicRecall(t *testing.T) {
	st := evalSubtopics()
	almost(t, "full coverage", SubtopicRecall([]string{"a", "c"}, st, []int{0, 1}), 1)
	almost(t, "half coverage", SubtopicRecall([]string{"a", "b"}, st, []int{0, 1}), 0.5)
	// Covering irrelevant subtopics earns nothing.
	almost(t, "irrelevant only", SubtopicRecall([]string{"c"}, st, []int{7}), 0)
	// Empty relevant set: defined as 0, not NaN.
	almost(t, "empty relevant", SubtopicRecall([]string{"a"}, st, nil), 0)
}

func TestIntraListDistance(t *testing.T) {
	vecs := map[string][]float64{
		"e1":   {1, 0},
		"e2":   {0, 1},
		"same": {1, 0},
		"zero": {0, 0},
	}
	vec := func(q string) []float64 { return vecs[q] }

	// Orthogonal vectors: cosine 0, distance 1.
	almost(t, "orthogonal pair", IntraListDistance([]string{"e1", "e2"}, vec), 1)
	// Identical vectors: cosine 1, distance 0.
	almost(t, "identical pair", IntraListDistance([]string{"e1", "same"}, vec), 0)
	// Three items, one orthogonal: pairs (e1,same)=0, (e1,e2)=1,
	// (same,e2)=1 → mean 2/3.
	almost(t, "mixed triple", IntraListDistance([]string{"e1", "same", "e2"}, vec), 2.0/3.0)
	// Unknown/zero vectors count as maximally distant, never NaN.
	almost(t, "zero vector", IntraListDistance([]string{"e1", "zero"}, vec), 1)
	almost(t, "unknown item", IntraListDistance([]string{"e1", "nope"}, vec), 1)
	// Degenerate lists score 0.
	almost(t, "single item", IntraListDistance([]string{"e1"}, vec), 0)
	almost(t, "empty list", IntraListDistance(nil, vec), 0)
}
