package metrics

import (
	"math"

	"repro/internal/numeric"
)

// This file adds the standard diversity-evaluation measures the offline
// strategy-comparison harness (internal/experiments, cmd/evalab) scores
// suggestion lists with, complementing the paper's own Eqs. 32–34:
// α-nDCG (Clarke et al., SIGIR 2008), subtopic recall (Zhai et al.,
// SIGIR 2003) and intra-list distance. Subtopics are abstract int IDs —
// the synthetic world supplies its ground-truth facets.

// SubtopicsOf returns the subtopic (facet) IDs a suggestion covers.
type SubtopicsOf func(query string) []int

// AlphaDCG computes the α-discounted cumulative gain of a ranked list:
// position r (0-based) contributes Σ_t (1−α)^seen(t) / log2(r+2) over
// the subtopics t it covers, where seen(t) counts how many earlier
// items already covered t. α is the redundancy penalty (0 reduces to
// plain per-subtopic DCG; the conventional value is 0.5).
func AlphaDCG(list []string, subtopics SubtopicsOf, alpha float64) float64 {
	seen := map[int]int{}
	dcg := 0.0
	for r, q := range list {
		gain := 0.0
		for _, t := range subtopics(q) {
			gain += math.Pow(1-alpha, float64(seen[t]))
			seen[t]++
		}
		dcg += gain / math.Log2(float64(r)+2)
	}
	return dcg
}

// IdealAlphaDCG greedily reorders pool to maximize AlphaDCG over the
// first k positions and returns that value — the standard (greedy,
// since the exact ideal is NP-hard) normalizer of α-nDCG. The pool
// should be the union of every compared system's returned items
// (TREC-style pooling), so all systems are normalized against the same
// ideal.
func IdealAlphaDCG(pool []string, subtopics SubtopicsOf, alpha float64, k int) float64 {
	if k > len(pool) {
		k = len(pool)
	}
	remaining := append([]string(nil), pool...)
	seen := map[int]int{}
	dcg := 0.0
	for r := 0; r < k && len(remaining) > 0; r++ {
		bestIdx, bestGain := 0, -1.0
		for i, q := range remaining {
			gain := 0.0
			for _, t := range subtopics(q) {
				gain += math.Pow(1-alpha, float64(seen[t]))
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		for _, t := range subtopics(remaining[bestIdx]) {
			seen[t]++
		}
		dcg += bestGain / math.Log2(float64(r)+2)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return dcg
}

// AlphaNDCG normalizes AlphaDCG(list) by the greedy ideal over pool
// (which must contain the list's items for the ratio to be ≤ 1 in
// general). Returns 0 when the ideal is 0 — no item in the pool covers
// any subtopic, so every ranking is equally (un)diverse.
func AlphaNDCG(list, pool []string, subtopics SubtopicsOf, alpha float64) float64 {
	ideal := IdealAlphaDCG(pool, subtopics, alpha, len(list))
	if ideal == 0 {
		return 0
	}
	return AlphaDCG(list, subtopics, alpha) / ideal
}

// SubtopicRecall is the fraction of the relevant subtopics (the input
// query's generating facets) that at least one list item covers — the
// S-recall@k of Zhai et al. Returns 0 for an empty relevant set (a
// query with no known facets cannot have them covered).
func SubtopicRecall(list []string, subtopics SubtopicsOf, relevant []int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	want := make(map[int]bool, len(relevant))
	for _, t := range relevant {
		want[t] = true
	}
	covered := map[int]bool{}
	for _, q := range list {
		for _, t := range subtopics(q) {
			if want[t] {
				covered[t] = true
			}
		}
	}
	return float64(len(covered)) / float64(len(want))
}

// Vectorizer returns an item's representation vector (for ILD, the
// facet distribution of a suggestion).
type Vectorizer func(query string) []float64

// IntraListDistance is the mean pairwise cosine distance (1 − cos)
// over all unordered pairs of the list — higher means a more spread-out
// list. Items with nil/zero vectors count as maximally distant from
// everything (no evidence of overlap, mirroring PairDiversity's
// convention). Lists with fewer than two items score 0.
func IntraListDistance(list []string, vec Vectorizer) float64 {
	n := len(list)
	if n < 2 {
		return 0
	}
	vecs := make([][]float64, n)
	for i, q := range list {
		vecs[i] = vec(q)
	}
	total := 0.0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim := 0.0
			if len(vecs[i]) > 0 && len(vecs[j]) > 0 {
				sim = numeric.Cosine(vecs[i], vecs[j])
			}
			total += 1 - sim
			pairs++
		}
	}
	return total / float64(pairs)
}
