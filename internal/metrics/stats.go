package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a two-sided confidence interval for the mean of
// samples by the percentile bootstrap: resamples times with
// replacement, at confidence level (e.g. 0.95). It backs the
// "significantly outperforms" statements of the experiment write-ups.
// Degenerate inputs (fewer than two samples) return the sample mean as
// both bounds.
func BootstrapCI(samples []float64, resamples int, level float64, seed int64) (lo, mean, hi float64) {
	n := len(samples)
	mean = meanOf(samples)
	if n < 2 {
		return mean, mean, mean
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < n; i++ {
			s += samples[rng.Intn(n)]
		}
		means[r] = s / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo = quantile(means, alpha)
	hi = quantile(means, 1-alpha)
	return lo, mean, hi
}

// PairedBootstrapPValue estimates, by the paired bootstrap, the
// probability that method A's mean does NOT exceed method B's, given
// paired per-test-case scores (same cases, two methods). Small values
// support "A significantly outperforms B". Both slices must have equal
// length ≥ 2; otherwise 1 is returned (no evidence).
func PairedBootstrapPValue(a, b []float64, resamples int, seed int64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 1
	}
	if resamples <= 0 {
		resamples = 2000
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	rng := rand.New(rand.NewSource(seed))
	notBetter := 0
	for r := 0; r < resamples; r++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += diffs[rng.Intn(n)]
		}
		if s <= 0 {
			notBetter++
		}
	}
	return float64(notBetter) / float64(resamples)
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// quantile returns the q-quantile of a SORTED slice by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
