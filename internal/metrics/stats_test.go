package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapCIBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = 5 + rng.NormFloat64()
	}
	lo, mean, hi := BootstrapCI(samples, 1000, 0.95, 7)
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("CI not ordered: %v %v %v", lo, mean, hi)
	}
	if math.Abs(mean-5) > 0.3 {
		t.Errorf("mean = %v, want ≈5", mean)
	}
	// A 95% CI for n=200, σ=1 should be roughly ±0.14.
	if hi-lo > 0.5 || hi-lo < 0.05 {
		t.Errorf("CI width = %v, implausible", hi-lo)
	}
	// Deterministic in the seed.
	lo2, _, hi2 := BootstrapCI(samples, 1000, 0.95, 7)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic under fixed seed")
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	lo, mean, hi := BootstrapCI([]float64{3}, 100, 0.95, 1)
	if lo != 3 || mean != 3 || hi != 3 {
		t.Errorf("single sample CI = %v %v %v", lo, mean, hi)
	}
	_, mean, _ = BootstrapCI(nil, 100, 0.95, 1)
	if !math.IsNaN(mean) {
		t.Errorf("empty mean = %v, want NaN", mean)
	}
}

func TestPairedBootstrapPValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Float64()
		a[i] = base + 0.2 + 0.05*rng.NormFloat64() // clearly better
		b[i] = base
	}
	if p := PairedBootstrapPValue(a, b, 2000, 3); p > 0.01 {
		t.Errorf("clear win p = %v, want ≤ 0.01", p)
	}
	// Symmetric noise: no significance.
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if p := PairedBootstrapPValue(a, b, 2000, 3); p < 0.05 {
		t.Errorf("null case p = %v, suspiciously small", p)
	}
	// Mismatched lengths → no evidence.
	if p := PairedBootstrapPValue([]float64{1}, []float64{1, 2}, 100, 1); p != 1 {
		t.Errorf("mismatch p = %v", p)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}
