// Package metrics implements the paper's evaluation measures: the
// Diversity of a suggestion list (Eqs. 32–33), the ODP-based Relevance
// (Eq. 34), the Pseudo Personalized Relevance (PPR) and the oracle-
// graded Human Personalized Relevance (HPR). Held-out perplexity
// (Eq. 35) lives in the topicmodel package next to the models.
package metrics

import (
	"repro/internal/numeric"
	"repro/internal/odp"
	"repro/internal/querylog"
)

// PageSet returns the clicked web pages P(q) of a query with weights.
type PageSet func(query string) map[string]float64

// PageSim measures sim(p, p') between two pages.
type PageSim func(p1, p2 string) float64

// PairDiversity computes d(q_i, q_j) of Eq. 32:
// 1 − (Σ_m Σ_n sim(p_im, p_jn)) / (M·N). When either query has no
// clicked pages there is no evidence of overlap and the pair counts as
// fully diverse (d = 1), keeping the metric defined on clickless
// suggestions.
func PairDiversity(qi, qj string, pages PageSet, sim PageSim) float64 {
	pi := pages(qi)
	pj := pages(qj)
	if len(pi) == 0 || len(pj) == 0 {
		return 1
	}
	total := 0.0
	for p1 := range pi {
		for p2 := range pj {
			total += sim(p1, p2)
		}
	}
	return 1 - total/float64(len(pi)*len(pj))
}

// ListDiversity computes D(L) of Eq. 33: the mean pairwise diversity
// over all ordered pairs of distinct positions. Lists with fewer than
// two items have no pairs and score 0.
func ListDiversity(list []string, pages PageSet, sim PageSim) float64 {
	n := len(list)
	if n < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			total += PairDiversity(list[i], list[j], pages, sim)
		}
	}
	return total / float64(n*(n-1))
}

// Categorizer returns the ODP category of a query (nil when unknown).
type Categorizer func(query string) odp.Category

// Relevance computes Eq. 34 between two queries via their categories;
// unknown categories give 0.
func Relevance(qi, qj string, cat Categorizer) float64 {
	return odp.Relevance(cat(qi), cat(qj))
}

// MeanRelevanceAtK returns, for each cutoff k = 1..maxK, the mean
// Eq. 34 relevance between the input query and the top-k suggestions —
// the series of the paper's Fig. 3(c,d). Shorter lists repeat their
// final value.
func MeanRelevanceAtK(input string, list []string, cat Categorizer, maxK int) []float64 {
	out := make([]float64, maxK)
	sum := 0.0
	for k := 1; k <= maxK; k++ {
		if k <= len(list) {
			sum += Relevance(input, list[k-1], cat)
		} else if len(list) == 0 {
			out[k-1] = 0
			continue
		}
		n := k
		if n > len(list) {
			n = len(list)
		}
		if n > 0 {
			out[k-1] = sum / float64(n)
		}
	}
	return out
}

// MeanDiversityAtK returns D(L_k) for every prefix L_k (k = 2..maxK) —
// the series of Fig. 3(a,b) and Fig. 5(a,b). Index k−1 holds the value
// for cutoff k; cutoff 1 is 0 by definition.
func MeanDiversityAtK(list []string, pages PageSet, sim PageSim, maxK int) []float64 {
	out := make([]float64, maxK)
	for k := 2; k <= maxK; k++ {
		n := k
		if n > len(list) {
			n = len(list)
		}
		out[k-1] = ListDiversity(list[:n], pages, sim)
	}
	return out
}

// TitleVectors returns the word vectors of high-quality fields (titles)
// of a set of pages.
type TitleVectors func(page string) map[string]float64

// PPR computes the Pseudo Personalized Relevance of one suggested query
// against a test session: the cosine similarity between the
// suggestion's term vector and the aggregate title vector of the pages
// clicked in the session (Section VI-C.2).
func PPR(suggestion string, clickedPages []string, titles TitleVectors) float64 {
	qv := querylog.TermVector(suggestion)
	agg := make(map[string]float64)
	for _, p := range clickedPages {
		for w, v := range titles(p) {
			agg[w] += v
		}
	}
	return numeric.CosineSparse(qv, agg)
}

// MeanPPRAtK returns the mean PPR of the top-k suggestions for each
// cutoff k = 1..maxK — the series of Fig. 5(c,d).
func MeanPPRAtK(list []string, clickedPages []string, titles TitleVectors, maxK int) []float64 {
	out := make([]float64, maxK)
	sum := 0.0
	for k := 1; k <= maxK; k++ {
		if k <= len(list) {
			sum += PPR(list[k-1], clickedPages, titles)
		}
		n := k
		if n > len(list) {
			n = len(list)
		}
		if n > 0 {
			out[k-1] = sum / float64(n)
		}
	}
	return out
}

// HPRGrader grades a suggested query against the user's (ground-truth)
// intended facet on the paper's 6-point scale {0, 0.2, …, 1}. The
// synthetic oracle replaces the paper's human experts: it answers the
// same question — "does this suggestion match what I meant?" — from
// the generator's ground truth.
type HPRGrader func(suggestion string, intendedFacet int) float64

// SixPointScale discretizes a similarity in [0,1] to the paper's
// 6-point relevance scale.
func SixPointScale(sim float64) float64 {
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	steps := int(sim*5 + 0.5)
	return float64(steps) / 5
}

// MeanHPRAtK returns the mean oracle grade of the top-k suggestions
// for each cutoff k = 1..maxK — the series of Fig. 6.
func MeanHPRAtK(list []string, intendedFacet int, grade HPRGrader, maxK int) []float64 {
	out := make([]float64, maxK)
	sum := 0.0
	for k := 1; k <= maxK; k++ {
		if k <= len(list) {
			sum += grade(list[k-1], intendedFacet)
		}
		n := k
		if n > len(list) {
			n = len(list)
		}
		if n > 0 {
			out[k-1] = sum / float64(n)
		}
	}
	return out
}

// Accumulator averages per-test-case metric series element-wise.
type Accumulator struct {
	sums  []float64
	count int
}

// NewAccumulator creates an accumulator for series of length n.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{sums: make([]float64, n)}
}

// Add accumulates one series (must match the accumulator length).
func (a *Accumulator) Add(series []float64) {
	for i := range a.sums {
		a.sums[i] += series[i]
	}
	a.count++
}

// Mean returns the element-wise mean; nil when nothing was added.
func (a *Accumulator) Mean() []float64 {
	if a.count == 0 {
		return nil
	}
	out := make([]float64, len(a.sums))
	for i := range out {
		out[i] = a.sums[i] / float64(a.count)
	}
	return out
}

// Count returns how many series were accumulated.
func (a *Accumulator) Count() int { return a.count }
