package baselines

import (
	"context"
	"strings"

	"repro/internal/diversify"
)

// AsDiversifier adapts a click-graph Suggester (FRW, BRW, HT, DQS) to
// the diversify.Diversifier stage boundary, so the offline evaluation
// harness can score the paper's baselines through the exact pipeline
// the engine serves (compact build, relevance solve, personalization):
// register the adapter with core.Engine.AddDiversifier and request its
// name as the strategy.
//
// The adapter runs the wrapped suggester on the RAW input query over
// its own click graph and maps the returned queries into the request's
// compact representation. Suggestions the compact does not contain are
// dropped (the compact is built around the same seeds, so in practice
// the overlap is near-total); excluded seeds and duplicates are
// skipped. The wrapped method keeps its own ranking — including its
// own first pick — because the baseline IS the system under test; the
// relevance gate is deliberately not applied to it.
func AsDiversifier(s Suggester) diversify.Diversifier {
	return &suggesterDiversifier{name: strings.ToLower(s.Name()), suggest: s.Suggest}
}

// AsPersonalizedDiversifier adapts a PersonalizedSuggester (PHT, CM)
// for one fixed user. Because the suggestion cache stores lists across
// users, evaluation runs using these adapters must bypass the cache
// (SuggestRequest.NoCache) or use one adapter name per user.
func AsPersonalizedDiversifier(ps PersonalizedSuggester, userID string) diversify.Diversifier {
	return &suggesterDiversifier{
		name: strings.ToLower(ps.Name()),
		suggest: func(query string, k int) []Suggestion {
			return ps.SuggestFor(userID, query, k)
		},
	}
}

type suggesterDiversifier struct {
	name    string
	suggest func(query string, k int) []Suggestion
}

func (d *suggesterDiversifier) Name() string { return d.name }

func (d *suggesterDiversifier) Params() map[string]any {
	return map[string]any{"adapter": "baselines"}
}

func (d *suggesterDiversifier) Select(ctx context.Context, req Request) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	excluded := make(map[int]bool, len(req.Excluded))
	for _, e := range req.Excluded {
		excluded[e] = true
	}
	// Over-fetch: some of the suggester's picks will be unknown to the
	// compact or excluded as seeds.
	sugs := d.suggest(req.Query, req.K+len(req.Excluded)+req.K)
	rep := req.Compact.Full
	selected := make([]int, 0, req.K)
	seen := make(map[int]bool, req.K)
	for _, sug := range sugs {
		if len(selected) >= req.K {
			break
		}
		id, ok := rep.QueryID(sug.Query)
		if !ok {
			continue
		}
		local, ok := req.Compact.LocalOf[id]
		if !ok || excluded[local] || seen[local] {
			continue
		}
		seen[local] = true
		selected = append(selected, local)
	}
	return selected, nil
}

// Request aliases the stage-boundary request type so adapter call
// sites read naturally inside this package.
type Request = diversify.Request
