package baselines

import (
	"sort"

	"repro/internal/clickgraph"
	"repro/internal/numeric"
	"repro/internal/querylog"
	"repro/internal/randomwalk"
)

// PersonalizedSuggester produces suggestions tailored to a user.
type PersonalizedSuggester interface {
	Name() string
	SuggestFor(userID, query string, k int) []Suggestion
}

// PHT is Mei et al.'s personalized hitting time: the user's click
// history becomes a pseudo query node in the click graph, and
// candidates are ranked by ascending truncated hitting time to the set
// {input query, pseudo node} — close to the query AND to the user's
// past clicks.
type PHT struct {
	G   *clickgraph.Graph
	Cfg WalkConfig
	// history maps user → URL click weights from the log.
	history map[string]map[string]float64
}

// NewPHT prepares the personalized hitting-time suggester from the
// click graph and the per-user click history found in the log.
func NewPHT(g *clickgraph.Graph, l *querylog.Log, cfg WalkConfig) *PHT {
	hist := make(map[string]map[string]float64)
	for _, e := range l.Entries {
		if e.ClickedURL == "" {
			continue
		}
		m := hist[e.UserID]
		if m == nil {
			m = make(map[string]float64)
			hist[e.UserID] = m
		}
		m[e.ClickedURL]++
	}
	return &PHT{G: g, Cfg: cfg.withDefaults(), history: hist}
}

// Name implements PersonalizedSuggester.
func (p *PHT) Name() string { return "PHT" }

// SuggestFor implements PersonalizedSuggester.
func (p *PHT) SuggestFor(userID, query string, k int) []Suggestion {
	urls := p.history[userID]
	g := p.G
	pseudoID := -1
	if len(urls) > 0 {
		g, pseudoID = p.G.WithPseudoQuery(urls)
	}
	q, ok := g.QueryID(query)
	if !ok {
		return nil
	}
	target := map[int]bool{q: true}
	if pseudoID >= 0 {
		target[pseudoID] = true
	}
	trans := g.QueryTransition()
	times := randomwalk.HittingTimeToSet(trans, target, p.Cfg.HittingIterations)
	sat := float64(p.Cfg.HittingIterations)
	for i, t := range times {
		if t >= sat || i == pseudoID {
			times[i] = 0 // dropped below
		}
	}
	return rankedFromScores(g, times, q, k, true, false)
}

// CM is the concept-based personalized suggestion method of Leung et
// al.: queries are represented by CONCEPT vectors mined from co-click
// structure (terms of all queries sharing the query's clicked URLs);
// the user's profile is the accumulated concept vector of their past
// queries; candidates related to the input query are ranked by the
// cosine similarity of their concept vector to the user profile.
//
// CM deliberately scans its full concept space per suggestion — the
// source of its high latency in the paper's Fig. 7.
type CM struct {
	G *clickgraph.Graph
	// concepts[q] is the concept term vector of query node q.
	concepts []map[string]float64
	// profiles[user] is the accumulated concept vector.
	profiles map[string]map[string]float64
}

// NewCM mines concept vectors for every query node and builds user
// profiles from the log.
func NewCM(g *clickgraph.Graph, l *querylog.Log) *CM {
	cm := &CM{G: g, profiles: make(map[string]map[string]float64)}
	// Terms of each query node.
	nq := g.NumQueries()
	queryTerms := make([][]string, nq)
	for i := 0; i < nq; i++ {
		queryTerms[i] = querylog.Tokenize(g.Queries.Name(i))
	}
	// Concept vector: own terms + terms of co-clicked neighbor queries,
	// weighted by the two-step transition mass.
	trans := g.QueryTransition()
	cm.concepts = make([]map[string]float64, nq)
	for i := 0; i < nq; i++ {
		c := make(map[string]float64)
		for _, t := range queryTerms[i] {
			c[t] += 1
		}
		trans.Row(i, func(j int, v float64) {
			for _, t := range queryTerms[j] {
				c[t] += v
			}
		})
		cm.concepts[i] = c
	}
	// User profiles accumulate the concept vectors of issued queries.
	for _, e := range l.Entries {
		q, ok := g.QueryID(e.Query)
		if !ok {
			continue
		}
		prof := cm.profiles[e.UserID]
		if prof == nil {
			prof = make(map[string]float64)
			cm.profiles[e.UserID] = prof
		}
		for t, v := range cm.concepts[q] {
			prof[t] += v
		}
	}
	return cm
}

// Name implements PersonalizedSuggester.
func (c *CM) Name() string { return "CM" }

// SuggestFor implements PersonalizedSuggester.
func (c *CM) SuggestFor(userID, query string, k int) []Suggestion {
	q, ok := c.G.QueryID(query)
	if !ok {
		return nil
	}
	input := c.concepts[q]
	profile := c.profiles[userID]
	type cand struct {
		q int
		s float64
	}
	var cands []cand
	// Full scan of the concept space: relatedness to the input concept
	// gates candidacy, profile similarity ranks it.
	for i := range c.concepts {
		if i == q {
			continue
		}
		rel := numeric.CosineSparse(input, c.concepts[i])
		if rel <= 0 {
			continue
		}
		personal := 0.0
		if profile != nil {
			personal = numeric.CosineSparse(profile, c.concepts[i])
		}
		cands = append(cands, cand{i, rel * (0.5 + personal)})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].q < cands[j].q
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Suggestion, k)
	for i := 0; i < k; i++ {
		out[i] = Suggestion{Query: c.G.Queries.Name(cands[i].q), Score: cands[i].s}
	}
	return out
}
