// Package baselines implements the query-suggestion methods the paper
// evaluates PQS-DA against (Section VI): the forward and backward
// random walks FRW/BRW (Craswell & Szummer), hitting time HT (Mei et
// al.), the diversifying method DQS (Ma et al.), the personalized
// hitting time PHT (Mei et al.) and the concept-based method CM (Leung
// et al.). The graph baselines run on the classic click graph, raw or
// cf·iqf-weighted — exactly the configurations of Figs. 3 and 5.
package baselines

import (
	"sort"

	"repro/internal/clickgraph"
	"repro/internal/randomwalk"
	"repro/internal/sparse"
)

// Suggestion is one ranked query suggestion.
type Suggestion struct {
	Query string
	Score float64
}

// Suggester produces ranked suggestions for an input query.
type Suggester interface {
	Name() string
	Suggest(query string, k int) []Suggestion
}

// WalkConfig tunes the random-walk baselines.
type WalkConfig struct {
	// Steps is the walk length (default 3, as short walks work best on
	// click graphs).
	Steps int
	// SelfLoop is the per-step stay probability (default 0.1).
	SelfLoop float64
	// HittingIterations is the truncation depth for hitting-time
	// methods (default 10).
	HittingIterations int
}

func (c WalkConfig) withDefaults() WalkConfig {
	if c.Steps <= 0 {
		c.Steps = 3
	}
	if c.SelfLoop <= 0 {
		c.SelfLoop = 0.1
	}
	if c.HittingIterations <= 0 {
		c.HittingIterations = 10
	}
	return c
}

// rankedFromScores turns a score vector into the top-k suggestions,
// excluding the input node and zero scores. Ascending ranks when
// ascending is true (hitting-time style), else descending.
func rankedFromScores(g *clickgraph.Graph, scores []float64, input int, k int, ascending bool, keepZero bool) []Suggestion {
	type cand struct {
		q int
		s float64
	}
	var cands []cand
	for q, s := range scores {
		if q == input {
			continue
		}
		if !keepZero && s == 0 {
			continue
		}
		cands = append(cands, cand{q, s})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			if ascending {
				return cands[i].s < cands[j].s
			}
			return cands[i].s > cands[j].s
		}
		return cands[i].q < cands[j].q
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Suggestion, k)
	for i := 0; i < k; i++ {
		out[i] = Suggestion{Query: g.Queries.Name(cands[i].q), Score: cands[i].s}
	}
	return out
}

// FRW is the forward random walk baseline: rank candidates by the
// probability that a t-step walk from the input query visits them.
type FRW struct {
	G     *clickgraph.Graph
	Cfg   WalkConfig
	trans *sparse.Matrix
}

// NewFRW prepares the forward-walk suggester.
func NewFRW(g *clickgraph.Graph, cfg WalkConfig) *FRW {
	return &FRW{G: g, Cfg: cfg.withDefaults(), trans: g.QueryTransition()}
}

// Name implements Suggester.
func (f *FRW) Name() string { return "FRW" }

// Suggest implements Suggester.
func (f *FRW) Suggest(query string, k int) []Suggestion {
	q, ok := f.G.QueryID(query)
	if !ok {
		return nil
	}
	p := randomwalk.Forward(f.trans, randomwalk.Unit(f.G.NumQueries(), q), f.Cfg.Steps, f.Cfg.SelfLoop)
	return rankedFromScores(f.G, p, q, k, false, false)
}

// BRW is the backward random walk baseline: rank candidates by the
// probability that a t-step walk STARTED AT THE CANDIDATE reaches the
// input query.
type BRW struct {
	G     *clickgraph.Graph
	Cfg   WalkConfig
	trans *sparse.Matrix
}

// NewBRW prepares the backward-walk suggester.
func NewBRW(g *clickgraph.Graph, cfg WalkConfig) *BRW {
	return &BRW{G: g, Cfg: cfg.withDefaults(), trans: g.QueryTransition()}
}

// Name implements Suggester.
func (b *BRW) Name() string { return "BRW" }

// Suggest implements Suggester.
func (b *BRW) Suggest(query string, k int) []Suggestion {
	q, ok := b.G.QueryID(query)
	if !ok {
		return nil
	}
	s := randomwalk.Backward(b.trans, randomwalk.Unit(b.G.NumQueries(), q), b.Cfg.Steps, b.Cfg.SelfLoop)
	return rankedFromScores(b.G, s, q, k, false, false)
}

// HT is Mei et al.'s hitting-time suggester: rank candidates by
// ASCENDING truncated hitting time to the input query — the sooner a
// walk from the candidate hits the input, the more related it is.
type HT struct {
	G     *clickgraph.Graph
	Cfg   WalkConfig
	trans *sparse.Matrix
}

// NewHT prepares the hitting-time suggester.
func NewHT(g *clickgraph.Graph, cfg WalkConfig) *HT {
	return &HT{G: g, Cfg: cfg.withDefaults(), trans: g.QueryTransition()}
}

// Name implements Suggester.
func (h *HT) Name() string { return "HT" }

// Suggest implements Suggester.
func (h *HT) Suggest(query string, k int) []Suggestion {
	q, ok := h.G.QueryID(query)
	if !ok {
		return nil
	}
	times := randomwalk.HittingTimeToSet(h.trans, map[int]bool{q: true}, h.Cfg.HittingIterations)
	// Exclude queries that never reach the input inside the truncation
	// horizon (h saturates at the iteration count).
	sat := float64(h.Cfg.HittingIterations)
	reachable := make([]float64, len(times))
	copy(reachable, times)
	for i, t := range reachable {
		if t >= sat {
			reachable[i] = 0 // dropped by keepZero=false
		}
	}
	return rankedFromScores(h.G, reachable, q, k, true, false)
}

// DQS is Ma et al.'s diversifying query suggestion: the most related
// candidate by hitting time seeds the result, then candidates with the
// LARGEST hitting time to the selected set are added greedily — the
// same diversification principle as PQS-DA but confined to the click
// graph.
type DQS struct {
	ht *HT
}

// NewDQS prepares the diversifying suggester.
func NewDQS(g *clickgraph.Graph, cfg WalkConfig) *DQS {
	return &DQS{ht: NewHT(g, cfg)}
}

// Name implements Suggester.
func (d *DQS) Name() string { return "DQS" }

// Suggest implements Suggester.
func (d *DQS) Suggest(query string, k int) []Suggestion {
	g, cfg := d.ht.G, d.ht.Cfg
	q, ok := g.QueryID(query)
	if !ok || k <= 0 {
		return nil
	}
	// Seed: most related candidate (smallest hitting time to input).
	seedList := d.ht.Suggest(query, 1)
	if len(seedList) == 0 {
		return nil
	}
	first, _ := g.QueryID(seedList[0].Query)
	selected := []int{first}
	inS := map[int]bool{first: true}
	// Candidate pool: queries that can reach the input (finite hitting
	// time), so diversity never drags in unrelated noise.
	times := randomwalk.HittingTimeToSet(d.ht.trans, map[int]bool{q: true}, cfg.HittingIterations)
	pool := make([]int, 0, len(times))
	for i, t := range times {
		if i != q && !inS[i] && t < float64(cfg.HittingIterations) {
			pool = append(pool, i)
		}
	}
	for len(selected) < k && len(pool) > 0 {
		h := randomwalk.HittingTimeToSet(d.ht.trans, inS, cfg.HittingIterations)
		best, bestH := -1, -1.0
		for _, i := range pool {
			if inS[i] {
				continue
			}
			if h[i] > bestH {
				best, bestH = i, h[i]
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		inS[best] = true
	}
	out := make([]Suggestion, len(selected))
	for i, s := range selected {
		out[i] = Suggestion{Query: g.Queries.Name(s), Score: float64(len(selected) - i)}
	}
	return out
}
