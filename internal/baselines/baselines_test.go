package baselines

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/querylog"
	"repro/internal/synth"
)

func fixture(t *testing.T) (*synth.World, *clickgraph.Graph) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 41, NumFacets: 5, NumUsers: 15, SessionsPerUser: 15})
	g := clickgraph.Build(w.Log, bipartite.CFIQF)
	return w, g
}

// pickConnectedQuery returns a query with click-graph neighbors.
func pickConnectedQuery(t *testing.T, g *clickgraph.Graph) string {
	t.Helper()
	tr := g.QueryTransition()
	for q := 0; q < g.NumQueries(); q++ {
		count := 0
		tr.Row(q, func(c int, v float64) {
			if c != q && v > 0 {
				count++
			}
		})
		if count >= 5 {
			return g.Queries.Name(q)
		}
	}
	t.Fatal("no well-connected query in fixture")
	return ""
}

func TestAllGraphBaselinesProduceSuggestions(t *testing.T) {
	_, g := fixture(t)
	q := pickConnectedQuery(t, g)
	for _, s := range []Suggester{
		NewFRW(g, WalkConfig{}),
		NewBRW(g, WalkConfig{}),
		NewHT(g, WalkConfig{}),
		NewDQS(g, WalkConfig{}),
	} {
		got := s.Suggest(q, 5)
		if len(got) == 0 {
			t.Errorf("%s: no suggestions for %q", s.Name(), q)
			continue
		}
		seen := map[string]bool{q: true}
		for _, sg := range got {
			if seen[sg.Query] {
				t.Errorf("%s: duplicate or self suggestion %q", s.Name(), sg.Query)
			}
			seen[sg.Query] = true
		}
	}
}

func TestSuggestUnknownQuery(t *testing.T) {
	_, g := fixture(t)
	for _, s := range []Suggester{
		NewFRW(g, WalkConfig{}),
		NewBRW(g, WalkConfig{}),
		NewHT(g, WalkConfig{}),
		NewDQS(g, WalkConfig{}),
	} {
		if got := s.Suggest("never seen query zz", 5); got != nil {
			t.Errorf("%s: suggestions for unknown query: %v", s.Name(), got)
		}
	}
}

func TestFRWScoresDescending(t *testing.T) {
	_, g := fixture(t)
	q := pickConnectedQuery(t, g)
	got := NewFRW(g, WalkConfig{}).Suggest(q, 10)
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("FRW scores not descending at %d: %v", i, got)
		}
	}
}

func TestHTScoresAscending(t *testing.T) {
	_, g := fixture(t)
	q := pickConnectedQuery(t, g)
	got := NewHT(g, WalkConfig{}).Suggest(q, 10)
	for i := 1; i < len(got); i++ {
		if got[i].Score < got[i-1].Score {
			t.Fatalf("HT hitting times not ascending at %d: %v", i, got)
		}
	}
	// All hitting times finite (below truncation).
	for _, s := range got {
		if s.Score >= 10 {
			t.Errorf("unreachable candidate %v suggested", s)
		}
	}
}

func TestDQSFirstMatchesHT(t *testing.T) {
	_, g := fixture(t)
	q := pickConnectedQuery(t, g)
	ht := NewHT(g, WalkConfig{}).Suggest(q, 1)
	dqs := NewDQS(g, WalkConfig{}).Suggest(q, 5)
	if len(ht) == 0 || len(dqs) == 0 {
		t.Skip("no suggestions")
	}
	if dqs[0].Query != ht[0].Query {
		t.Errorf("DQS seed %q != HT top %q", dqs[0].Query, ht[0].Query)
	}
}

func TestDQSMoreDiverseThanHT(t *testing.T) {
	// DQS should cover at least as many facets as HT at the same k.
	w, g := fixture(t)
	facetsOf := func(sugs []Suggestion) map[int]bool {
		out := make(map[int]bool)
		for _, s := range sugs {
			if f := w.QueryFacet(querylog.NormalizeQuery(s.Query)); f >= 0 {
				out[f] = true
			}
		}
		return out
	}
	better := 0
	total := 0
	for q := 0; q < g.NumQueries() && total < 30; q++ {
		name := g.Queries.Name(q)
		ht := NewHT(g, WalkConfig{}).Suggest(name, 8)
		if len(ht) < 8 {
			continue
		}
		dqs := NewDQS(g, WalkConfig{}).Suggest(name, 8)
		total++
		if len(facetsOf(dqs)) >= len(facetsOf(ht)) {
			better++
		}
	}
	if total == 0 {
		t.Skip("no connected queries")
	}
	if frac := float64(better) / float64(total); frac < 0.7 {
		t.Errorf("DQS at least as diverse as HT in only %.0f%% of cases", frac*100)
	}
}

func TestPHTPersonalizes(t *testing.T) {
	w, g := fixture(t)
	pht := NewPHT(g, w.Log, WalkConfig{})
	q := pickConnectedQuery(t, g)
	users := w.UserIDs()
	got := pht.SuggestFor(users[0], q, 5)
	if len(got) == 0 {
		t.Skip("no PHT suggestions for this fixture")
	}
	for _, s := range got {
		if s.Query == q {
			t.Error("PHT suggested the input itself")
		}
	}
	// A user with no history still gets graph-only suggestions.
	if got := pht.SuggestFor("stranger", q, 5); len(got) == 0 {
		t.Error("PHT with empty history returned nothing")
	}
}

func TestCMSuggestAndProfiles(t *testing.T) {
	w, g := fixture(t)
	cm := NewCM(g, w.Log)
	q := pickConnectedQuery(t, g)
	user := w.UserIDs()[0]
	got := cm.SuggestFor(user, q, 5)
	if len(got) == 0 {
		t.Fatalf("CM produced nothing for %q", q)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("CM scores not descending: %v", got)
		}
	}
	// Unknown user: relatedness-only ranking still works.
	if got := cm.SuggestFor("stranger", q, 5); len(got) == 0 {
		t.Error("CM with unknown user returned nothing")
	}
	// Unknown query: nothing.
	if got := cm.SuggestFor(user, "never seen zz", 5); got != nil {
		t.Errorf("CM suggested for unknown query: %v", got)
	}
}

func TestWalkConfigDefaults(t *testing.T) {
	c := WalkConfig{}.withDefaults()
	if c.Steps != 3 || c.SelfLoop != 0.1 || c.HittingIterations != 10 {
		t.Errorf("defaults = %+v", c)
	}
}
