package snapshot

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
)

func buildEntries(rng *rand.Rand, n, users int, start time.Time) []querylog.Entry {
	words := []string{"sun", "java", "solar", "cell", "oracle", "panel"}
	out := make([]querylog.Entry, n)
	for i := range out {
		q := words[rng.Intn(len(words))]
		if rng.Intn(2) == 0 {
			q += " " + words[rng.Intn(len(words))]
		}
		out[i] = querylog.Entry{
			UserID: fmt.Sprintf("u%d", rng.Intn(users)),
			Query:  q,
			Time:   start.Add(time.Duration(rng.Intn(5000)) * time.Minute),
		}
		if rng.Intn(3) == 0 {
			out[i].ClickedURL = "example.com/" + q
		}
	}
	return out
}

// edgesByName flattens one view into (query name, object name) → weight.
func edgesByName(r *bipartite.Representation, view bipartite.View) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	v := r.W[view].View()
	for q := 0; q < r.Queries.Len(); q++ {
		for p := v.RowPtr[q]; p < v.RowPtr[q+1]; p++ {
			out[[2]string{r.Queries.Name(q), r.Objects[view].Name(v.ColIdx[p])}] = v.Val[p]
		}
	}
	return out
}

// TestDeltaMatchesFull: Builder.Delta over (base snapshot, fresh) must
// equal Builder.Full over the combined entries — same session count,
// same per-name edge weights — and stamp delta stats.
func TestDeltaMatchesFull(t *testing.T) {
	b := Builder{Weighting: bipartite.CFIQF}
	start := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := buildEntries(rng, 200, 10, start)
		fresh := buildEntries(rng, 20, 10, start.Add(4000*time.Minute))

		prev := b.Full(base, 1)
		if prev.Stats.Mode != ModeFull || prev.Stats.LogEntries != len(base) {
			t.Fatalf("full stats: %+v", prev.Stats)
		}

		got, err := b.Delta(prev, fresh, 2)
		if err != nil {
			t.Fatal(err)
		}
		combined := append(append([]querylog.Entry(nil), base...), fresh...)
		want := b.Full(combined, 2)

		if got.Stats.Mode != ModeDelta || got.Stats.DeltaEntries != len(fresh) {
			t.Fatalf("delta stats: %+v", got.Stats)
		}
		if got.Stats.LogEntries != len(combined) || got.Stats.Segments != 2 {
			t.Fatalf("delta coverage: %+v", got.Stats)
		}
		if len(got.Sessions) != len(want.Sessions) {
			t.Fatalf("seed %d: %d sessions, full %d", seed, len(got.Sessions), len(want.Sessions))
		}
		// Bit-identicality holds per NAMED edge (ids intern in a
		// different order on the delta path, so compare by name).
		for view := bipartite.View(0); view < bipartite.NumViews; view++ {
			fw := edgesByName(want.Rep, view)
			dw := edgesByName(got.Rep, view)
			if len(fw) != len(dw) {
				t.Fatalf("seed %d view %d: full %d edges, delta %d", seed, view, len(fw), len(dw))
			}
			for key, v := range fw {
				if dv, ok := dw[key]; !ok || dv != v {
					t.Fatalf("seed %d view %d edge %v: full %v delta %v", seed, view, key, v, dw[key])
				}
			}
		}
		// ByUser index and Sessions must agree.
		n := 0
		for _, ss := range got.ByUser {
			n += len(ss)
		}
		if n != len(got.Sessions) {
			t.Fatalf("ByUser indexes %d sessions, canonical list has %d", n, len(got.Sessions))
		}
	}
}

// TestDeltaRequiresState: a stateless previous snapshot (deserialized)
// must yield ErrNoState.
func TestDeltaRequiresState(t *testing.T) {
	b := Builder{}
	if _, err := b.Delta(nil, nil, 0); err != ErrNoState {
		t.Fatalf("nil prev: %v", err)
	}
	prev := &Snapshot{} // State nil, as after LoadEngine
	if _, err := b.Delta(prev, nil, 0); err != ErrNoState {
		t.Fatalf("stateless prev: %v", err)
	}
}

// TestDeltaDoesNotMutatePrev: the previous snapshot's session index and
// representation must be untouched by a delta build (immutability is
// the whole point of the snapshot store).
func TestDeltaDoesNotMutatePrev(t *testing.T) {
	b := Builder{Weighting: bipartite.CFIQF}
	start := time.Date(2013, 1, 7, 9, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(5))
	base := buildEntries(rng, 150, 8, start)
	prev := b.Full(base, 1)

	beforeSessions := len(prev.Sessions)
	beforeByUser := make(map[string]int, len(prev.ByUser))
	for u, ss := range prev.ByUser {
		beforeByUser[u] = len(ss)
	}
	beforeQueries := prev.Rep.NumQueries()

	fresh := buildEntries(rng, 30, 8, start.Add(4000*time.Minute))
	if _, err := b.Delta(prev, fresh, 2); err != nil {
		t.Fatal(err)
	}

	if len(prev.Sessions) != beforeSessions {
		t.Fatal("delta build mutated prev.Sessions")
	}
	for u, n := range beforeByUser {
		if len(prev.ByUser[u]) != n {
			t.Fatalf("delta build mutated prev.ByUser[%s]", u)
		}
	}
	if prev.Rep.NumQueries() != beforeQueries {
		t.Fatal("delta build mutated prev.Rep")
	}
}

// TestModeString pins the wire strings used by /v1/stats.
func TestModeString(t *testing.T) {
	if ModeFull.String() != "full" || ModeDelta.String() != "delta" {
		t.Fatalf("mode strings: %q %q", ModeFull, ModeDelta)
	}
}
