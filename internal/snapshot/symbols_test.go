package snapshot

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/querylog"
)

func builtSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	b := Builder{Weighting: bipartite.CFIQF}
	return b.Full(buildEntries(rng, 400, 8, time.Unix(1700000000, 0)), 1)
}

// The symbol table must cover exactly the representation's query nodes,
// with id == query node id, canonical name, and tokens matching a fresh
// Tokenize of the name. That identity is what lets the cache key, the
// personalization stage and the term-fallback seeder all share one
// resolution.
func TestSymbolTableMatchesRepresentation(t *testing.T) {
	snap := builtSnapshot(t)
	if snap.Symbols == nil {
		t.Fatal("built snapshot has no symbol table — constructor missed Finish")
	}
	st := snap.Symbols
	if st.Len() != snap.Rep.NumQueries() {
		t.Fatalf("symbols holds %d queries, representation %d", st.Len(), snap.Rep.NumQueries())
	}
	for i := 0; i < st.Len(); i++ {
		id := uint32(i)
		name := snap.Rep.Queries.Name(i)
		if st.Name(id) != name {
			t.Fatalf("id %d: name %q != representation %q", id, st.Name(id), name)
		}
		got, ok := st.Lookup(name)
		if !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v — want %d (id must equal query node id)", name, got, ok, id)
		}
		want := querylog.Tokenize(name)
		toks := st.Tokens(id)
		if fmt.Sprint(toks) != fmt.Sprint(want) {
			t.Fatalf("id %d tokens %v, want %v", id, toks, want)
		}
	}
	if _, ok := st.Lookup("zz never interned zz"); ok {
		t.Fatal("Lookup invented an id for an unknown query")
	}
}

// Finish on a bare snapshot (nil Rep — the hand-assembled test shape)
// must be a no-op, and clones of a finished snapshot share the same
// table rather than rebuilding it.
func TestFinishEdgeCases(t *testing.T) {
	bare := (&Snapshot{}).Finish()
	if bare.Symbols != nil {
		t.Fatal("Finish invented a symbol table for a snapshot with no representation")
	}

	snap := builtSnapshot(t)
	clone := *snap
	if clone.Symbols != snap.Symbols {
		t.Fatal("clone does not share the build-once symbol table")
	}
}

// flatSymbols round-trips a built symbol table through its flat form.
func flatSymbols(t *testing.T, st *SymbolTable) *SymbolTable {
	t.Helper()
	names := make([]string, st.Len())
	for i := range names {
		names[i] = st.Name(uint32(i))
	}
	no, nb, nt := arena.BuildStrings(names)
	nameIdx, err := arena.NewStrings(no, nb, nt)
	if err != nil {
		t.Fatal(err)
	}
	to, tb, tt, ptr, idx := st.FlatTokens()
	tokIdx, err := arena.NewStrings(to, tb, tt)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := SymbolsFromArena(nameIdx, tokIdx, ptr, idx)
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func TestSymbolsFlatRoundTrip(t *testing.T) {
	snap := builtSnapshot(t)
	st := snap.Symbols
	flat := flatSymbols(t, st)
	if flat.Len() != st.Len() {
		t.Fatalf("len %d vs %d", flat.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		id := uint32(i)
		if flat.Name(id) != st.Name(id) {
			t.Fatalf("id %d: name %q vs %q", i, flat.Name(id), st.Name(id))
		}
		got, ok := flat.Lookup(st.Name(id))
		if !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v", st.Name(id), got, ok)
		}
		a, b := flat.Tokens(id), st.Tokens(id)
		if len(a) != len(b) {
			t.Fatalf("id %d: %d tokens vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("id %d token %d: %q vs %q", i, j, a[j], b[j])
			}
		}
	}
	// Second flattening (now from the flat form) must be identical.
	flat2 := flatSymbols(t, flat)
	for i := 0; i < st.Len(); i++ {
		a, b := flat2.Tokens(uint32(i)), st.Tokens(uint32(i))
		if len(a) != len(b) {
			t.Fatalf("reflatten id %d: %d tokens vs %d", i, len(a), len(b))
		}
	}
}

func TestSymbolsFromArenaRejectsCorrupt(t *testing.T) {
	snap := builtSnapshot(t)
	st := snap.Symbols
	names := make([]string, st.Len())
	for i := range names {
		names[i] = st.Name(uint32(i))
	}
	no, nb, nt := arena.BuildStrings(names)
	nameIdx, _ := arena.NewStrings(no, nb, nt)
	to, tb, tt, ptr, idx := st.FlatTokens()
	tokIdx, _ := arena.NewStrings(to, tb, tt)

	cases := []struct {
		name string
		ptr  []int64
		idx  []int64
	}{
		{"short ptr", ptr[:2], idx},
		{"bad start", append([]int64{7}, ptr[1:]...), idx},
		{"non-monotone", func() []int64 {
			p := append([]int64(nil), ptr...)
			p[1] = p[len(p)-1] + 5
			return p
		}(), idx},
		{"idx out of range", ptr, func() []int64 {
			ix := append([]int64(nil), idx...)
			ix[0] = int64(tokIdx.Len()) + 3
			return ix
		}()},
		{"idx truncated", ptr, idx[:len(idx)-1]},
	}
	for _, tc := range cases {
		if _, err := SymbolsFromArena(nameIdx, tokIdx, tc.ptr, tc.idx); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
