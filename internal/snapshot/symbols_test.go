package snapshot

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
)

func builtSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	b := Builder{Weighting: bipartite.CFIQF}
	return b.Full(buildEntries(rng, 400, 8, time.Unix(1700000000, 0)), 1)
}

// The symbol table must cover exactly the representation's query nodes,
// with id == query node id, canonical name, and tokens matching a fresh
// Tokenize of the name. That identity is what lets the cache key, the
// personalization stage and the term-fallback seeder all share one
// resolution.
func TestSymbolTableMatchesRepresentation(t *testing.T) {
	snap := builtSnapshot(t)
	if snap.Symbols == nil {
		t.Fatal("built snapshot has no symbol table — constructor missed Finish")
	}
	st := snap.Symbols
	if st.Len() != snap.Rep.NumQueries() {
		t.Fatalf("symbols holds %d queries, representation %d", st.Len(), snap.Rep.NumQueries())
	}
	for i := 0; i < st.Len(); i++ {
		id := uint32(i)
		name := snap.Rep.Queries.Name(i)
		if st.Name(id) != name {
			t.Fatalf("id %d: name %q != representation %q", id, st.Name(id), name)
		}
		got, ok := st.Lookup(name)
		if !ok || got != id {
			t.Fatalf("Lookup(%q) = %d,%v — want %d (id must equal query node id)", name, got, ok, id)
		}
		want := querylog.Tokenize(name)
		toks := st.Tokens(id)
		if fmt.Sprint(toks) != fmt.Sprint(want) {
			t.Fatalf("id %d tokens %v, want %v", id, toks, want)
		}
	}
	if _, ok := st.Lookup("zz never interned zz"); ok {
		t.Fatal("Lookup invented an id for an unknown query")
	}
}

// Finish on a bare snapshot (nil Rep — the hand-assembled test shape)
// must be a no-op, and clones of a finished snapshot share the same
// table rather than rebuilding it.
func TestFinishEdgeCases(t *testing.T) {
	bare := (&Snapshot{}).Finish()
	if bare.Symbols != nil {
		t.Fatal("Finish invented a symbol table for a snapshot with no representation")
	}

	snap := builtSnapshot(t)
	clone := *snap
	if clone.Symbols != snap.Symbols {
		t.Fatal("clone does not share the build-once symbol table")
	}
}
