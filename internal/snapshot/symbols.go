package snapshot

import (
	"repro/internal/bipartite"
	"repro/internal/querylog"
)

// SymbolTable is the snapshot's interned query-symbol table: a dense
// uint32 id per known query (the id equals the representation's query
// node id), the canonical normalized string, and the precomputed token
// list. It is built once per snapshot build and shared by every clone
// of the snapshot, so hot paths — the suggestion cache key, candidate
// personalization, term-fallback seeding — resolve a query to an id
// once and then work in index space instead of re-normalizing,
// re-tokenizing and re-hashing raw query strings per hit.
//
// Like everything else in a snapshot it is immutable after build.
type SymbolTable struct {
	names  []string   // id → canonical query string (aliases Rep's interned names)
	tokens [][]string // id → querylog.Tokenize(name), precomputed
	byName map[string]uint32
}

// BuildSymbols derives the symbol table from a built representation.
// Cost is one Tokenize per distinct query — O(corpus), paid at build
// time, never on the serving path.
func BuildSymbols(rep *bipartite.Representation) *SymbolTable {
	n := rep.NumQueries()
	t := &SymbolTable{
		names:  make([]string, n),
		tokens: make([][]string, n),
		byName: make(map[string]uint32, n),
	}
	for i := 0; i < n; i++ {
		name := rep.Queries.Name(i)
		t.names[i] = name
		t.tokens[i] = querylog.Tokenize(name)
		t.byName[name] = uint32(i)
	}
	return t
}

// Len returns the number of interned queries.
func (t *SymbolTable) Len() int { return len(t.names) }

// Lookup resolves a normalized query string to its dense id.
func (t *SymbolTable) Lookup(normalized string) (uint32, bool) {
	id, ok := t.byName[normalized]
	return id, ok
}

// Name returns the canonical string for an id.
func (t *SymbolTable) Name(id uint32) string { return t.names[id] }

// Tokens returns the precomputed token list for an id. Callers must
// not modify the returned slice.
func (t *SymbolTable) Tokens(id uint32) []string { return t.tokens[id] }

// prewarm readies the per-view float32 value mirrors of the
// representation so reduced-precision kernels never pay the O(nnz)
// conversion on the serving path — "mirrored once per snapshot".
func prewarm(rep *bipartite.Representation) {
	for v := 0; v < bipartite.NumViews; v++ {
		if rep.W[v] != nil {
			rep.W[v].Prewarm32()
		}
	}
}

// Finish derives the build-once serving accelerators (symbol table,
// float32 mirrors) for a freshly constructed snapshot. Every snapshot
// constructor calls it before publication.
func (s *Snapshot) Finish() *Snapshot {
	if s.Rep != nil {
		s.Symbols = BuildSymbols(s.Rep)
		prewarm(s.Rep)
	}
	return s
}
