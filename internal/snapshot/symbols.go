package snapshot

import (
	"fmt"
	"sync"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/querylog"
)

// SymbolTable is the snapshot's interned query-symbol table: a dense
// uint32 id per known query (the id equals the representation's query
// node id), the canonical normalized string, and the precomputed token
// list. It is built once per snapshot build and shared by every clone
// of the snapshot, so hot paths — the suggestion cache key, candidate
// personalization, term-fallback seeding — resolve a query to an id
// once and then work in index space instead of re-normalizing,
// re-tokenizing and re-hashing raw query strings per hit.
//
// Like everything else in a snapshot it is immutable after build.
//
// A table is backed either by the map + slices BuildSymbols produces,
// or — for snapshots loaded in place from the wire format — by flat
// arena data (SymbolsFromArena): the name table is an arena string
// index shared with the representation's query index, and the token
// lists are a CSR over a distinct-token string table. The flat form
// materializes its [][]string token view lazily on first use (one
// amortized pass; every string still aliases the arena), keeping
// snapshot load allocations flat in entry count.
type SymbolTable struct {
	names  []string   // id → canonical query string (aliases Rep's interned names)
	tokens [][]string // id → querylog.Tokenize(name), precomputed
	byName map[string]uint32

	// Flat backing (nil for map-backed tables).
	flatNames *arena.Strings // id → name
	flatToks  *arena.Strings // distinct token strings
	tokPtr    []int64        // id → token list: tokIdx[tokPtr[id]:tokPtr[id+1]]
	tokIdx    []int64        // indexes into flatToks
	tokOnce   sync.Once      // guards lazy materialization of tokens
}

// BuildSymbols derives the symbol table from a built representation.
// Cost is one Tokenize per distinct query — O(corpus), paid at build
// time, never on the serving path.
func BuildSymbols(rep *bipartite.Representation) *SymbolTable {
	n := rep.NumQueries()
	t := &SymbolTable{
		names:  make([]string, n),
		tokens: make([][]string, n),
		byName: make(map[string]uint32, n),
	}
	for i := 0; i < n; i++ {
		name := rep.Queries.Name(i)
		t.names[i] = name
		t.tokens[i] = querylog.Tokenize(name)
		t.byName[name] = uint32(i)
	}
	return t
}

// SymbolsFromArena wraps flat symbol data as a read-only table: names
// is the query string index (typically shared with the
// representation's query index), toks the distinct-token string table,
// and ptr/idx the per-query token lists as a CSR. The CSR shape is
// fully validated here so accessors never panic on hostile input.
func SymbolsFromArena(names, toks *arena.Strings, ptr, idx []int64) (*SymbolTable, error) {
	n := names.Len()
	if len(ptr) != n+1 {
		return nil, fmt.Errorf("snapshot: symbol token table: %d row pointers, want %d", len(ptr), n+1)
	}
	if ptr[0] != 0 {
		return nil, fmt.Errorf("snapshot: symbol token table: ptr[0] = %d", ptr[0])
	}
	for i := 0; i < n; i++ {
		if ptr[i+1] < ptr[i] {
			return nil, fmt.Errorf("snapshot: symbol token table: row pointers not monotone at %d", i)
		}
	}
	if ptr[n] != int64(len(idx)) {
		return nil, fmt.Errorf("snapshot: symbol token table: %d token refs, want %d", len(idx), ptr[n])
	}
	for _, j := range idx {
		if j < 0 || j >= int64(toks.Len()) {
			return nil, fmt.Errorf("snapshot: symbol token table: token id %d out of %d", j, toks.Len())
		}
	}
	return &SymbolTable{flatNames: names, flatToks: toks, tokPtr: ptr, tokIdx: idx}, nil
}

// FlatTokens lays the table's token lists out flat: the distinct-token
// string table plus the per-query CSR that SymbolsFromArena accepts.
func (t *SymbolTable) FlatTokens() (tokOffsets []uint64, tokBlob []byte, tokTable []uint32, ptr, idx []int64) {
	if t.flatNames != nil {
		return t.flatToks.Offsets(), t.flatToks.Blob(), t.flatToks.Table(), t.tokPtr, t.tokIdx
	}
	distinct := make([]string, 0, 256)
	byTok := make(map[string]int64, 256)
	ptr = make([]int64, len(t.tokens)+1)
	for i, toks := range t.tokens {
		for _, tok := range toks {
			id, ok := byTok[tok]
			if !ok {
				id = int64(len(distinct))
				byTok[tok] = id
				distinct = append(distinct, tok)
			}
			idx = append(idx, id)
		}
		ptr[i+1] = int64(len(idx))
	}
	if idx == nil {
		idx = []int64{}
	}
	tokOffsets, tokBlob, tokTable = arena.BuildStrings(distinct)
	return tokOffsets, tokBlob, tokTable, ptr, idx
}

// materializeTokens builds the [][]string token view from the flat CSR
// (every string aliases the arena). Called at most once per table.
func (t *SymbolTable) materializeTokens() {
	n := t.flatNames.Len()
	tokens := make([][]string, n)
	for i := 0; i < n; i++ {
		lo, hi := t.tokPtr[i], t.tokPtr[i+1]
		row := make([]string, hi-lo)
		for p := lo; p < hi; p++ {
			row[p-lo] = t.flatToks.Name(int(t.tokIdx[p]))
		}
		tokens[i] = row
	}
	t.tokens = tokens
}

// Len returns the number of interned queries.
func (t *SymbolTable) Len() int {
	if t.flatNames != nil {
		return t.flatNames.Len()
	}
	return len(t.names)
}

// Lookup resolves a normalized query string to its dense id.
func (t *SymbolTable) Lookup(normalized string) (uint32, bool) {
	if t.flatNames != nil {
		id, ok := t.flatNames.Lookup(normalized)
		return uint32(id), ok
	}
	id, ok := t.byName[normalized]
	return id, ok
}

// Name returns the canonical string for an id.
func (t *SymbolTable) Name(id uint32) string {
	if t.flatNames != nil {
		return t.flatNames.Name(int(id))
	}
	return t.names[id]
}

// Tokens returns the precomputed token list for an id. Callers must
// not modify the returned slice.
func (t *SymbolTable) Tokens(id uint32) []string {
	if t.flatNames != nil {
		t.tokOnce.Do(t.materializeTokens)
	}
	return t.tokens[id]
}

// prewarm readies the per-view float32 value mirrors of the
// representation so reduced-precision kernels never pay the O(nnz)
// conversion on the serving path — "mirrored once per snapshot".
func prewarm(rep *bipartite.Representation) {
	for v := 0; v < bipartite.NumViews; v++ {
		if rep.W[v] != nil {
			rep.W[v].Prewarm32()
		}
	}
}

// Finish derives the build-once serving accelerators (symbol table,
// float32 mirrors) for a freshly constructed snapshot. Every snapshot
// constructor calls it before publication.
func (s *Snapshot) Finish() *Snapshot {
	if s.Rep != nil {
		s.Symbols = BuildSymbols(s.Rep)
		prewarm(s.Rep)
	}
	return s
}
