// Package snapshot defines the immutable serving state of the PQS-DA
// engine: everything a suggestion request reads — the multi-bipartite
// representation, the session index, the trained profiles — frozen into
// one value that is swapped atomically behind the engine's pointer.
//
// A snapshot is never mutated after publication. Mutation happens by
// building the NEXT snapshot (fully, or incrementally from the previous
// one via the builder in build.go) and swapping it in; requests that
// loaded the old snapshot finish on it. This is what makes refresh
// cheap and concurrent: the builder reads the previous snapshot's
// counting state without synchronization, and the serving path never
// observes a half-built representation.
package snapshot

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

// Mode records how a snapshot's representation was produced.
type Mode int

const (
	// ModeFull is a from-scratch rebuild over the whole log.
	ModeFull Mode = iota
	// ModeDelta is an incremental build: only affected users were
	// re-sessionized and only their count deltas merged.
	ModeDelta
)

// String names the build mode ("full"/"delta") as reported by the
// server's /v1/stats and refresh responses.
func (m Mode) String() string {
	if m == ModeDelta {
		return "delta"
	}
	return "full"
}

// Stats describes how a snapshot was built — surfaced through
// /v1/stats, the refresh response and the build-duration histograms.
type Stats struct {
	// Mode is the build path taken.
	Mode Mode
	// DeltaEntries is the number of fresh entries a delta build folded
	// in (0 for full builds).
	DeltaEntries int
	// AffectedUsers is the number of users whose session tails were
	// re-segmented by a delta build (0 for full builds).
	AffectedUsers int
	// Duration is the wall time of the build.
	Duration time.Duration
	// BuiltAt is when the build completed — the health scoreboard's
	// staleness reference.
	BuiltAt time.Time
	// LogEntries is the total number of log entries this snapshot
	// reflects.
	LogEntries int
	// Segments is the number of sealed log segments this snapshot
	// reflects — the engine's delta boundary for the next build.
	Segments int
	// NumSessions and NumQueries size the built representation.
	NumSessions int
	NumQueries  int
}

// Snapshot is one immutable serving state. All fields are read-only
// after the snapshot is published; "mutating" an engine means deriving
// a new snapshot and storing it.
type Snapshot struct {
	// Rep is the weighted multi-bipartite representation (Eqs. 1–6).
	Rep *bipartite.Representation
	// State is the raw counting state Rep was materialized from — the
	// base of the next delta build. Nil for snapshots deserialized from
	// disk (counts are not persisted), which forces the next refresh to
	// a full rebuild.
	State *bipartite.BuilderState
	// Sessions is the canonical session list (users ascending,
	// chronological within a user — the order a full Sessionize of the
	// sorted log produces).
	Sessions []querylog.Session
	// ByUser indexes Sessions per user, in chronological order. The
	// per-user positions double as the session object names in Rep
	// (bipartite.SessionObjectName), which is what lets a delta build
	// remove and re-add exactly one user's tail.
	ByUser map[string][]querylog.Session
	// Corpus and Profiles are the personalization state (nil when the
	// engine skips personalization).
	Corpus   *topicmodel.Corpus
	Profiles *profile.Store
	// Symbols is the interned query symbol table (see symbols.go):
	// dense uint32 id → canonical string + precomputed tokens, built
	// once at snapshot build and shared by Clone. Nil only for
	// hand-assembled snapshots in tests; production constructors always
	// fill it via Finish.
	Symbols *SymbolTable
	// Generation identifies this snapshot for suggestion-cache keying:
	// stamped at build, bumped by Engine.Clone, and strictly increasing
	// along the chain of hot-swapped serving snapshots.
	Generation uint64
	// Stats records how this snapshot was built.
	Stats Stats
}
