package snapshot

import (
	"errors"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
)

// Builder produces snapshots. It carries only configuration and is
// safe to copy; the heavy inputs travel per call.
type Builder struct {
	Sessionizer querylog.SessionizerConfig
	Weighting   bipartite.Weighting
}

// ErrNoState reports that a delta build was requested against a
// snapshot that has no counting state (deserialized from disk). The
// caller should fall back to a full build.
var ErrNoState = errors.New("snapshot: previous snapshot has no counting state; delta build impossible")

// FromSessions builds a snapshot from pre-segmented sessions (the
// full-build path when the caller already sessionized, e.g. engine
// construction). entries and segments describe the log coverage for
// the stats/delta boundary. Corpus, Profiles and Generation are left
// for the caller to fill before publication.
func (b Builder) FromSessions(sessions []querylog.Session, entries, segments int) *Snapshot {
	start := time.Now()
	state := bipartite.StateFromSessions(sessions)
	rep := state.Materialize(b.Weighting)
	rep.Sessions = sessions
	return (&Snapshot{
		Rep:      rep,
		State:    state,
		Sessions: sessions,
		ByUser:   querylog.SessionsByUser(sessions),
		Stats: Stats{
			Mode:        ModeFull,
			Duration:    time.Since(start),
			BuiltAt:     time.Now(),
			LogEntries:  entries,
			Segments:    segments,
			NumSessions: len(sessions),
			NumQueries:  rep.NumQueries(),
		},
	}).Finish()
}

// Full rebuilds from the complete entry list: sessionize everything,
// count everything. entries is copied before sorting.
func (b Builder) Full(entries []querylog.Entry, segments int) *Snapshot {
	start := time.Now()
	l := &querylog.Log{Entries: append([]querylog.Entry(nil), entries...)}
	sessions := querylog.Sessionize(l, b.Sessionizer)
	s := b.FromSessions(sessions, len(entries), segments)
	s.Stats.Duration = time.Since(start)
	return s
}

// Delta derives the next snapshot from prev by folding in fresh
// entries: only the affected users' session tails are re-segmented
// (querylog.SessionizeDelta) and only their count deltas are merged
// into the counting state; every iqf column is then recomputed from the
// merged counts, so the resulting representation is bit-identical —
// same (query, object) → weight mapping — to a full rebuild over the
// combined log. segments is the new total segment coverage. Corpus,
// Profiles and Generation are left for the caller.
func (b Builder) Delta(prev *Snapshot, fresh []querylog.Entry, segments int) (*Snapshot, error) {
	if prev == nil || prev.State == nil {
		return nil, ErrNoState
	}
	start := time.Now()

	byUser := make(map[string][]querylog.Entry)
	for _, e := range fresh {
		byUser[e.UserID] = append(byUser[e.UserID], e)
	}
	affected := make([]string, 0, len(byUser))
	for u := range byUser {
		affected = append(affected, u)
	}
	sort.Strings(affected)

	d := prev.State.Delta()
	newByUser := make(map[string][]querylog.Session, len(prev.ByUser)+len(affected))
	for u, ss := range prev.ByUser {
		newByUser[u] = ss
	}
	for _, u := range affected {
		old := prev.ByUser[u]
		keep, rebuilt := querylog.SessionizeDelta(old, byUser[u], b.Sessionizer)
		for i := keep; i < len(old); i++ {
			d.RemoveSession(bipartite.SessionObjectName(u, i), old[i])
		}
		for i, s := range rebuilt {
			d.AddSession(bipartite.SessionObjectName(u, keep+i), s)
		}
		merged := make([]querylog.Session, 0, keep+len(rebuilt))
		merged = append(merged, old[:keep]...)
		merged = append(merged, rebuilt...)
		newByUser[u] = merged
	}

	state, err := d.Apply()
	if err != nil {
		return nil, err
	}
	rep := state.Materialize(b.Weighting)

	// Rebuild the canonical session list (users ascending — the order a
	// full Sessionize of the sorted log yields).
	users := make([]string, 0, len(newByUser))
	for u := range newByUser {
		users = append(users, u)
	}
	sort.Strings(users)
	var total int
	for _, u := range users {
		total += len(newByUser[u])
	}
	sessions := make([]querylog.Session, 0, total)
	for _, u := range users {
		sessions = append(sessions, newByUser[u]...)
	}
	rep.Sessions = sessions

	return (&Snapshot{
		Rep:      rep,
		State:    state,
		Sessions: sessions,
		ByUser:   newByUser,
		Stats: Stats{
			Mode:          ModeDelta,
			DeltaEntries:  len(fresh),
			AffectedUsers: len(affected),
			Duration:      time.Since(start),
			BuiltAt:       time.Now(),
			LogEntries:    prev.Stats.LogEntries + len(fresh),
			Segments:      segments,
			NumSessions:   len(sessions),
			NumQueries:    rep.NumQueries(),
		},
	}).Finish(), nil
}
