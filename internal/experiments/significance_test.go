package experiments

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/querylog"
)

// The paper's "significantly outperforms" language, made precise: over
// paired per-query scores, PQS-DA's relevance advantage over DQS (the
// other diversifier) is statistically significant by the paired
// bootstrap.
func TestPQSDABeatsDQSRelevanceSignificantly(t *testing.T) {
	s := setup(t)
	engine, err := core.NewEngine(s.Log, core.Config{
		Weighting:           bipartite.CFIQF,
		Compact:             bipartite.CompactConfig{Budget: 80},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dqs := baselines.NewDQS(s.GraphWtd, baselines.WalkConfig{})
	cat := s.Categorizer()
	now := time.Now()

	var pqsScores, dqsScores []float64
	for _, q := range s.SampleTestQueries(30, 107) {
		res, err := engine.SuggestDiversified(q, nil, now, s.Scale.MaxK)
		if err != nil || len(res.Diversified) == 0 {
			continue
		}
		ds := dqs.Suggest(q, s.Scale.MaxK)
		if len(ds) == 0 {
			continue
		}
		dlist := make([]string, len(ds))
		for i, sg := range ds {
			dlist[i] = sg.Query
		}
		in := querylog.NormalizeQuery(q)
		pqsScores = append(pqsScores,
			metrics.MeanRelevanceAtK(in, res.Diversified, cat, s.Scale.MaxK)[s.Scale.MaxK-1])
		dqsScores = append(dqsScores,
			metrics.MeanRelevanceAtK(in, dlist, cat, s.Scale.MaxK)[s.Scale.MaxK-1])
	}
	if len(pqsScores) < 10 {
		t.Skip("too few paired cases")
	}
	p := metrics.PairedBootstrapPValue(pqsScores, dqsScores, 2000, 11)
	if p > 0.05 {
		t.Errorf("PQS-DA vs DQS relevance: p = %v over %d paired queries, want ≤ 0.05", p, len(pqsScores))
	}
	// And report the CI of the advantage for the record.
	diffs := make([]float64, len(pqsScores))
	for i := range diffs {
		diffs[i] = pqsScores[i] - dqsScores[i]
	}
	lo, mean, hi := metrics.BootstrapCI(diffs, 1000, 0.95, 12)
	t.Logf("relevance advantage over DQS: %.3f [%.3f, %.3f] over %d queries", mean, lo, hi, len(diffs))
}
