// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VI) on the synthetic world: Fig. 3
// (diversity/relevance of the diversification stage, raw and weighted),
// Fig. 4 (model perplexity), Fig. 5 (diversity/PPR after
// personalization), Fig. 6 (oracle HPR) and Fig. 7 (efficiency).
// Each driver returns plottable series; cmd/benchfigs renders them.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/metrics"
	"repro/internal/odp"
	"repro/internal/querylog"
	"repro/internal/synth"
)

// Scale sizes an experiment run. Test-suite runs use Small; the
// benchmark harness uses Paper for shapes closer to the publication.
type Scale struct {
	World       synth.Config
	TestQueries int // queries sampled for Fig. 3
	TestUsers   int // users sampled for Figs. 5–6
	MaxK        int // suggestion list length (the paper uses 10)
	TopicK      int // topic count for the models
	ModelIters  int // Gibbs sweeps
}

// SmallScale returns a fast configuration for tests.
func SmallScale(seed int64) Scale {
	return Scale{
		World: synth.Config{
			Seed: seed, NumFacets: 6, NumUsers: 20, SessionsPerUser: 40,
			VocabPerFacet: 30, URLsPerFacet: 60, SharedTerms: 4,
			ClickProb: 0.4, NoiseClickProb: 0.15,
		},
		TestQueries: 20,
		TestUsers:   8,
		MaxK:        10,
		TopicK:      6,
		ModelIters:  30,
	}
}

// PaperScale returns the configuration the benchmark harness uses: far
// smaller than the paper's 12,085-user log but large enough for the
// reported shapes to emerge.
func PaperScale(seed int64) Scale {
	return Scale{
		World: synth.Config{
			Seed: seed, NumFacets: 12, NumUsers: 60, SessionsPerUser: 40,
			VocabPerFacet: 40, URLsPerFacet: 80, SharedTerms: 8,
			ClickProb: 0.4, NoiseClickProb: 0.15,
		},
		TestQueries: 60,
		TestUsers:   20,
		MaxK:        10,
		TopicK:      10,
		ModelIters:  40,
	}
}

// Series is one labelled line of a figure, indexed by k−1.
type Series struct {
	Name   string
	Values []float64
}

// Figure is one regenerated figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render prints the figure as an aligned text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	n := len(f.Series[0].Values)
	for k := 1; k <= n; k++ {
		fmt.Fprintf(&b, "%8d", k)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-12s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%8.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Setup holds everything the figure drivers share: the world, the
// cleaned log, its sessions, and the click graphs in both weightings.
type Setup struct {
	Scale    Scale
	World    *synth.World
	Log      *querylog.Log
	Sessions []querylog.Session
	GraphRaw *clickgraph.Graph
	GraphWtd *clickgraph.Graph

	// persFixtures caches the history-trained personalization systems
	// per weighting (built lazily by the Fig. 5/6 drivers).
	persFixtures map[bipartite.Weighting]*persFixture
}

// NewSetup generates the world and prepares shared structures.
func NewSetup(sc Scale) *Setup {
	w := synth.Generate(sc.World)
	clean, _ := querylog.Clean(w.Log, querylog.CleanerConfig{})
	return &Setup{
		Scale:    sc,
		World:    w,
		Log:      clean,
		Sessions: querylog.Sessionize(clean, querylog.SessionizerConfig{}),
		GraphRaw: clickgraph.Build(clean, bipartite.Raw),
		GraphWtd: clickgraph.Build(clean, bipartite.CFIQF),
	}
}

// PageSet returns the clicked pages of a query as observed in the log —
// the P(q) of Eq. 32.
func (s *Setup) PageSet() metrics.PageSet {
	g := s.GraphWtd
	return func(query string) map[string]float64 {
		q, ok := g.QueryID(query)
		if !ok {
			return nil
		}
		return g.ClickedURLs(q)
	}
}

// PageSim returns the ground-truth page similarity.
func (s *Setup) PageSim() metrics.PageSim { return s.World.PageSim }

// Categorizer returns the ODP category oracle for queries.
func (s *Setup) Categorizer() metrics.Categorizer {
	return func(q string) odp.Category {
		return s.World.QueryCategory(querylog.NormalizeQuery(q))
	}
}

// Titles returns the high-quality-field oracle for PPR.
func (s *Setup) Titles() metrics.TitleVectors {
	return func(page string) map[string]float64 {
		info, ok := s.World.URL(page)
		if !ok {
			return nil
		}
		return info.Title
	}
}

// SampleTestQueries picks n distinct queries that are connected in the
// click graph (so every baseline can serve them), favoring frequent
// queries the way random log sampling does.
func (s *Setup) SampleTestQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	freq := s.Log.QueryFrequency()
	type qf struct {
		q string
		f int
	}
	var all []qf
	tr := s.GraphRaw.QueryTransition()
	for q, f := range freq {
		id, ok := s.GraphRaw.QueryID(q)
		if !ok {
			continue
		}
		neighbors := 0
		tr.Row(id, func(c int, v float64) {
			if c != id && v > 0 {
				neighbors++
			}
		})
		if neighbors >= 2 {
			all = append(all, qf{q, f})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].q < all[j].q
	})
	// Frequency-weighted sample without replacement.
	out := make([]string, 0, n)
	for len(out) < n && len(all) > 0 {
		total := 0
		for _, e := range all {
			total += e.f
		}
		r := rng.Intn(total)
		idx := 0
		for i, e := range all {
			r -= e.f
			if r < 0 {
				idx = i
				break
			}
		}
		out = append(out, all[idx].q)
		all = append(all[:idx], all[idx+1:]...)
	}
	return out
}
