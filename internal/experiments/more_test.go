package experiments

import (
	"strings"
	"testing"
)

func TestAblationSessionizer(t *testing.T) {
	s := setup(t)
	fig, err := s.AblationSessionizer()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("variants = %d", len(fig.Series))
	}
	for _, srs := range fig.Series {
		if len(srs.Values) != 3 {
			t.Fatalf("%s: %d values", srs.Name, len(srs.Values))
		}
		if srs.Values[0] <= 0 {
			t.Errorf("%s produced no sessions", srs.Name)
		}
		for _, v := range srs.Values[1:] {
			if v < 0 || v > 1 {
				t.Errorf("%s relevance %v outside [0,1]", srs.Name, v)
			}
		}
	}
}

func TestAblationQueryClass(t *testing.T) {
	s := setup(t)
	fig, err := s.AblationQueryClass()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 3 methods × 2 classes", len(fig.Series))
	}
	get := func(name string) []float64 { return seriesByName(fig, name) }
	// The diversity payoff concentrates on ambiguous inputs for the
	// relevance-oriented baseline: HT's diversity on ambiguous queries
	// should exceed its diversity on specific ones (more facets exist
	// to stumble into), while PQS-DA keeps relevance within reach of HT
	// on ambiguous inputs while being far more diverse.
	pqsAmb, htAmb := get("PQS-DA/ambiguous"), get("HT/ambiguous")
	if pqsAmb == nil || htAmb == nil {
		t.Fatal("missing series")
	}
	if pqsAmb[1] <= htAmb[1] {
		t.Errorf("PQS-DA ambiguous diversity %.3f not above HT %.3f", pqsAmb[1], htAmb[1])
	}
	if pqsAmb[0] < 0.7*htAmb[0] {
		t.Errorf("PQS-DA ambiguous relevance %.3f collapsed vs HT %.3f", pqsAmb[0], htAmb[0])
	}
}

func TestFig7EfficiencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world build")
	}
	s := setup(t)
	fig, err := s.Fig7Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("methods = %d", len(fig.Series))
	}
	for _, srs := range fig.Series {
		if len(srs.Values) != 4 {
			t.Fatalf("%s has %d sizes", srs.Name, len(srs.Values))
		}
		for _, v := range srs.Values {
			if v <= 0 {
				t.Errorf("%s has non-positive relative time %v", srs.Name, v)
			}
		}
	}
}

func TestRenderChart(t *testing.T) {
	fig := Figure{
		ID:    "X",
		Title: "test",
		Series: []Series{
			{Name: "a", Values: []float64{0, 0.5, 1}},
			{Name: "b", Values: []float64{1, 0.5, 0}},
		},
	}
	out := fig.RenderChart()
	if !strings.Contains(out, "Fig. X") || !strings.Contains(out, "a") {
		t.Errorf("chart output:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("no spark blocks in:\n%s", out)
	}
	// Bar mode for single-value series.
	bar := Figure{ID: "Y", Series: []Series{{Name: "m", Values: []float64{3}}, {Name: "n", Values: []float64{7}}}}
	bout := bar.RenderChart()
	if !strings.Contains(bout, "█") {
		t.Errorf("no bars in:\n%s", bout)
	}
	// Degenerate figures render without panicking.
	if out := (Figure{ID: "Z"}).RenderChart(); !strings.Contains(out, "Fig. Z") {
		t.Errorf("empty figure chart: %q", out)
	}
}

func TestAblationTopicK(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 18 models")
	}
	s := setup(t)
	fig, err := s.AblationTopicK()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("models = %d", len(fig.Series))
	}
	for _, srs := range fig.Series {
		if len(srs.Values) != 6 {
			t.Fatalf("%s has %d K points", srs.Name, len(srs.Values))
		}
		for _, v := range srs.Values {
			if v <= 1 {
				t.Errorf("%s perplexity %v implausible", srs.Name, v)
			}
		}
	}
	// The UPM's K-robustness claim: its worst-K perplexity should be
	// within a modest factor of its best-K one.
	upm := seriesByName(fig, "UPM")
	lo, hi := upm[0], upm[0]
	for _, v := range upm {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1.5*lo {
		t.Errorf("UPM perplexity varies %0.1f–%0.1f across K — not K-robust", lo, hi)
	}
}
