package experiments

import (
	"testing"
)

func TestAblationViews(t *testing.T) {
	s := setup(t)
	fig, err := s.AblationViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("variants = %d, want 4", len(fig.Series))
	}
	all := seriesByName(fig, "all-views")
	if all == nil || len(all) != 3 {
		t.Fatalf("all-views series = %v", all)
	}
	// The combined representation must find more relevant first
	// candidates than the click graph alone — the Section III claim.
	urlOnly := seriesByName(fig, "URL-only")
	if all[0] < urlOnly[0]-1e-9 {
		t.Errorf("all-views top-1 relevance %.3f below URL-only %.3f", all[0], urlOnly[0])
	}
	for _, srs := range fig.Series {
		for i, v := range srs.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s[%d] = %v outside [0,1]", srs.Name, i, v)
			}
		}
	}
}

func TestAblationContext(t *testing.T) {
	s := setup(t)
	fig, err := s.AblationContext()
	if err != nil {
		t.Fatal(err)
	}
	w := seriesByName(fig, "with-context")
	wo := seriesByName(fig, "no-context")
	if w == nil || wo == nil {
		t.Fatal("missing series")
	}
	// Context must not hurt: the with-context top-1 relevance should be
	// at least ~95% of the context-free one (it usually helps).
	if w[0] < 0.95*wo[0] {
		t.Errorf("context hurt top-1 relevance: %.3f vs %.3f", w[0], wo[0])
	}
}

func TestAblationPool(t *testing.T) {
	s := setup(t)
	fig, err := s.AblationPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("settings = %d, want 4", len(fig.Series))
	}
	// The dial must actually dial: the widest pool should be at least
	// as diverse as the narrowest, and the narrowest at least as
	// relevant as the widest.
	narrow := fig.Series[0].Values // pf=2: [rel@10, div@10]
	wide := fig.Series[len(fig.Series)-1].Values
	if wide[1]+1e-9 < narrow[1]-0.05 {
		t.Errorf("wider pool lost diversity: %.3f vs %.3f", wide[1], narrow[1])
	}
	if narrow[0]+1e-9 < wide[0]-0.05 {
		t.Errorf("narrower pool lost relevance: %.3f vs %.3f", narrow[0], wide[0])
	}
}

func TestRunFigureAblationDispatch(t *testing.T) {
	s := setup(t)
	for _, id := range []string{"A2"} {
		if _, err := s.RunFigure(id); err != nil {
			t.Errorf("fig %s: %v", id, err)
		}
	}
}
