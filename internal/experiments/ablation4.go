package experiments

import (
	"repro/internal/topicmodel"
)

// AblationTopicK sweeps the topic count K for the three structurally
// distinct profiling models (token-level LDA, query-level PTM2,
// session-level-with-personal-emissions UPM) and reports held-out
// perplexity per K. It substantiates the Fig. 4 sensitivity note in
// EXPERIMENTS.md: pooled models need K near the true facet count, the
// UPM's per-user emissions keep it flat across K.
func (s *Setup) AblationTopicK() (Figure, error) {
	corpus := topicmodel.BuildCorpus(s.Sessions, s.World.NormalizeTime)
	obs, held := corpus.SplitPrefix(0.7)
	ks := []int{4, 6, 8, 10, 12, 16}
	fig := Figure{
		ID:     "A6",
		Title:  "Ablation: perplexity vs topic count K (values per K = " + ksLabel(ks) + ")",
		XLabel: "model",
		YLabel: "Perplexity",
	}
	ldaVals := make([]float64, len(ks))
	ptmVals := make([]float64, len(ks))
	upmVals := make([]float64, len(ks))
	for i, k := range ks {
		cfg := topicmodel.TrainConfig{
			K: k, Iterations: s.Scale.ModelIters, Beta: 0.1, Delta: 0.1, Seed: 7,
		}
		ldaVals[i] = topicmodel.HeldOutPerplexity(topicmodel.TrainLDA(obs, cfg), held, len(obs.Docs))
		ptmVals[i] = topicmodel.HeldOutPerplexity(topicmodel.TrainPTM2(obs, cfg), held, len(obs.Docs))
		upm := topicmodel.TrainUPM(obs, topicmodel.UPMConfig{
			K: k, Iterations: s.Scale.ModelIters, Seed: 7, HyperRounds: 2, HyperIters: 15,
		})
		upmVals[i] = topicmodel.HeldOutPerplexity(upm, held, len(obs.Docs))
	}
	fig.Series = append(fig.Series,
		Series{Name: "LDA", Values: ldaVals},
		Series{Name: "PTM2", Values: ptmVals},
		Series{Name: "UPM", Values: upmVals},
	)
	return fig, nil
}

func ksLabel(ks []int) string {
	out := ""
	for i, k := range ks {
		if i > 0 {
			out += ","
		}
		out += itoa(k)
	}
	return out
}
