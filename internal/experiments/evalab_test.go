package experiments

import (
	"reflect"
	"testing"
)

// One small A/B run must produce the documented report shape: all three
// scenario classes present, every requested strategy scored in each,
// and every score within its defined range.
func TestRunEvalABShape(t *testing.T) {
	report, err := RunEvalAB(EvalConfig{
		Scale:            SmallScale(3),
		K:                6,
		MaxQueries:       3,
		IncludeBaselines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{ScenarioAmbiguous, ScenarioNavigational, ScenarioColdStart} {
		scores, ok := report.Scenarios[sc]
		if !ok {
			t.Fatalf("scenario %q missing from report", sc)
		}
		if len(scores) != len(report.Strategies) {
			t.Fatalf("%s: %d scores for %d strategies", sc, len(scores), len(report.Strategies))
		}
		for _, s := range scores {
			if s.AlphaNDCG < 0 || s.AlphaNDCG > 1+1e-9 {
				t.Errorf("%s/%s: alphaNDCG %v out of [0,1]", sc, s.Strategy, s.AlphaNDCG)
			}
			if s.SubtopicRecall < 0 || s.SubtopicRecall > 1+1e-9 {
				t.Errorf("%s/%s: subtopicRecall %v out of [0,1]", sc, s.Strategy, s.SubtopicRecall)
			}
			if s.IntraListDistance < 0 || s.IntraListDistance > 2+1e-9 {
				t.Errorf("%s/%s: ILD %v out of [0,2]", sc, s.Strategy, s.IntraListDistance)
			}
			if s.Queries > 0 && s.MeanListLen <= 0 {
				t.Errorf("%s/%s: %d queries but zero mean list length", sc, s.Strategy, s.Queries)
			}
		}
	}
	// The registry strategies must be among those scored; with
	// IncludeBaselines the adapter adds the paper's four baselines.
	names := map[string]bool{}
	for _, n := range report.Strategies {
		names[n] = true
	}
	for _, want := range []string{"hitting", "mmr", "pfar", "relevance", "frw", "brw", "ht", "dqs"} {
		if !names[want] {
			t.Errorf("strategy %q missing from report (got %v)", want, report.Strategies)
		}
	}
	// The harness must actually have scored something: the engine serves
	// registry strategies on every world this size.
	total := 0
	for _, scores := range report.Scenarios {
		for _, s := range scores {
			total += s.Queries
		}
	}
	if total == 0 {
		t.Fatal("no query was scored in any scenario")
	}
}

// The run is deterministic in the scale seed: the same config twice
// must produce byte-identical scores (the eval artifact is diffable).
func TestRunEvalABDeterministic(t *testing.T) {
	cfg := EvalConfig{Scale: SmallScale(5), K: 5, MaxQueries: 2}
	a, err := RunEvalAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvalAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Select timing is wall clock and legitimately varies; everything
	// else must match exactly.
	for _, r := range []*EvalReport{a, b} {
		for sc := range r.Scenarios {
			for i := range r.Scenarios[sc] {
				r.Scenarios[sc][i].MeanSelectMs = 0
			}
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic eval report:\n%+v\n%+v", a, b)
	}
}
