package experiments

import (
	"fmt"
	"math"
	"strings"
)

// RenderChart draws the figure as a Unicode line/bar chart for terminal
// inspection: one row per series, values scaled into a fixed-width
// band, with the shared y-range in the header. Single-value series
// (Fig. 4 style) render as horizontal bars.
func (f Figure) RenderChart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. %s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range f.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if math.IsInf(lo, 1) {
		return b.String() + "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(&b, "y ∈ [%.3g, %.3g]\n", lo, hi)

	if maxLen == 1 {
		// Bar chart, widest name first for alignment.
		const width = 50
		for _, s := range f.Series {
			v := s.Values[0]
			n := int((v - lo) / (hi - lo) * width)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "%-12s %8.3f %s\n", s.Name, v, strings.Repeat("█", n))
		}
		return b.String()
	}

	// Sparkline per series over the k axis.
	blocks := []rune("▁▂▃▄▅▆▇█")
	for _, s := range f.Series {
		var line strings.Builder
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				line.WriteByte('?')
				continue
			}
			idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(blocks) {
				idx = len(blocks) - 1
			}
			line.WriteRune(blocks[idx])
		}
		last := s.Values[len(s.Values)-1]
		fmt.Fprintf(&b, "%-12s %s  (last %.3f)\n", s.Name, line.String(), last)
	}
	return b.String()
}
