package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/querylog"
)

// diversificationMethods builds the Fig. 3 contenders on one weighting:
// the PQS-DA diversification stage plus the four click-graph baselines.
type divMethod struct {
	name    string
	suggest func(query string, k int) []string
}

func (s *Setup) diversificationMethods(wt bipartite.Weighting) ([]divMethod, error) {
	var g *clickgraph.Graph
	if wt == bipartite.Raw {
		g = s.GraphRaw
	} else {
		g = s.GraphWtd
	}
	engine, err := core.NewEngine(s.Log, core.Config{
		Weighting:           wt,
		Compact:             bipartite.CompactConfig{Budget: 80},
		SkipPersonalization: true,
	})
	if err != nil {
		return nil, err
	}
	now := time.Now()
	fromSuggester := func(sg baselines.Suggester) func(string, int) []string {
		return func(q string, k int) []string {
			sugs := sg.Suggest(q, k)
			out := make([]string, len(sugs))
			for i, sug := range sugs {
				out[i] = sug.Query
			}
			return out
		}
	}
	return []divMethod{
		{"PQS-DA", func(q string, k int) []string {
			res, err := engine.SuggestDiversified(q, nil, now, k)
			if err != nil {
				return nil
			}
			return res.Diversified
		}},
		{"FRW", fromSuggester(baselines.NewFRW(g, baselines.WalkConfig{}))},
		{"BRW", fromSuggester(baselines.NewBRW(g, baselines.WalkConfig{}))},
		{"HT", fromSuggester(baselines.NewHT(g, baselines.WalkConfig{}))},
		{"DQS", fromSuggester(baselines.NewDQS(g, baselines.WalkConfig{}))},
	}, nil
}

// Fig3Diversity regenerates Fig. 3(a) (raw) or 3(b) (weighted): mean
// diversity of the top-k suggestions of the diversification stage over
// the sampled test queries.
func (s *Setup) Fig3Diversity(wt bipartite.Weighting) (Figure, error) {
	methods, err := s.diversificationMethods(wt)
	if err != nil {
		return Figure{}, err
	}
	queries := s.SampleTestQueries(s.Scale.TestQueries, 101)
	pages, sim := s.PageSet(), s.PageSim()
	fig := Figure{
		ID:     map[bipartite.Weighting]string{bipartite.Raw: "3a", bipartite.CFIQF: "3b"}[wt],
		Title:  "Diversity of query suggestion after diversification (" + weightingName(wt) + ")",
		XLabel: "top-k",
		YLabel: "Diversity",
	}
	for _, m := range methods {
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, q := range queries {
			list := m.suggest(q, s.Scale.MaxK)
			if len(list) == 0 {
				continue
			}
			acc.Add(metrics.MeanDiversityAtK(list, pages, sim, s.Scale.MaxK))
		}
		fig.Series = append(fig.Series, Series{Name: m.name, Values: acc.Mean()})
	}
	return fig, nil
}

// Fig3Relevance regenerates Fig. 3(c) (raw) or 3(d) (weighted): mean
// ODP relevance (Eq. 34) of the top-k suggestions.
func (s *Setup) Fig3Relevance(wt bipartite.Weighting) (Figure, error) {
	methods, err := s.diversificationMethods(wt)
	if err != nil {
		return Figure{}, err
	}
	queries := s.SampleTestQueries(s.Scale.TestQueries, 101)
	cat := s.Categorizer()
	fig := Figure{
		ID:     map[bipartite.Weighting]string{bipartite.Raw: "3c", bipartite.CFIQF: "3d"}[wt],
		Title:  "Relevance of query suggestion after diversification (" + weightingName(wt) + ")",
		XLabel: "top-k",
		YLabel: "Relevance",
	}
	for _, m := range methods {
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, q := range queries {
			list := m.suggest(q, s.Scale.MaxK)
			if len(list) == 0 {
				continue
			}
			acc.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), list, cat, s.Scale.MaxK))
		}
		fig.Series = append(fig.Series, Series{Name: m.name, Values: acc.Mean()})
	}
	return fig, nil
}

func weightingName(wt bipartite.Weighting) string {
	if wt == bipartite.Raw {
		return "raw"
	}
	return "weighted"
}
