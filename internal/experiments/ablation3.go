package experiments

import (
	"repro/internal/bipartite"
	"repro/internal/metrics"
	"repro/internal/querylog"
)

// AblationQueryClass splits the test queries into AMBIGUOUS (containing
// one of the world's shared head terms — the "sun" class the paper's
// introduction is about) and SPECIFIC, and reports per class how
// PQS-DA and the two strongest baselines trade relevance and
// diversity. Expected: on specific queries every decent method is
// relevant and diversity matters little; on ambiguous queries the gap
// PQS-DA was designed for opens up.
func (s *Setup) AblationQueryClass() (Figure, error) {
	methods, err := s.diversificationMethods(bipartite.CFIQF)
	if err != nil {
		return Figure{}, err
	}
	// Keep PQS-DA, HT, DQS (the interesting contrast).
	keep := map[string]bool{"PQS-DA": true, "HT": true, "DQS": true}

	heads := make(map[string]bool)
	for _, fc := range s.World.Facets {
		for _, h := range fc.HeadTerms {
			heads[h] = true
		}
	}
	isAmbiguous := func(q string) bool {
		for _, tok := range querylog.Tokenize(q) {
			if heads[tok] {
				return true
			}
		}
		return false
	}

	queries := s.SampleTestQueries(2*s.Scale.TestQueries, 106)
	pages, sim, cat := s.PageSet(), s.PageSim(), s.Categorizer()
	fig := Figure{
		ID:     "A5",
		Title:  "Ablation: ambiguous vs specific inputs (rel@10, div@10 per class)",
		XLabel: "method/class",
		YLabel: "metric",
	}
	for _, m := range methods {
		if !keep[m.name] {
			continue
		}
		for _, class := range []string{"ambiguous", "specific"} {
			accR := metrics.NewAccumulator(s.Scale.MaxK)
			accD := metrics.NewAccumulator(s.Scale.MaxK)
			for _, q := range queries {
				if (class == "ambiguous") != isAmbiguous(q) {
					continue
				}
				list := m.suggest(q, s.Scale.MaxK)
				if len(list) == 0 {
					continue
				}
				accR.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), list, cat, s.Scale.MaxK))
				accD.Add(metrics.MeanDiversityAtK(list, pages, sim, s.Scale.MaxK))
			}
			r, d := accR.Mean(), accD.Mean()
			if r == nil {
				r = make([]float64, s.Scale.MaxK)
				d = make([]float64, s.Scale.MaxK)
			}
			fig.Series = append(fig.Series, Series{
				Name:   m.name + "/" + class,
				Values: []float64{r[s.Scale.MaxK-1], d[s.Scale.MaxK-1]},
			})
		}
	}
	return fig, nil
}
