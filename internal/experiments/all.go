package experiments

import (
	"fmt"

	"repro/internal/bipartite"
)

// FigureIDs lists every regenerable figure in paper order, followed by
// this reproduction's own ablations (A1: bipartite views, A2: search
// context, A3: relevance-gate pool, A4: sessionizer policy, A5: ambiguous-vs-specific inputs, A6: perplexity-vs-K).
var FigureIDs = []string{"3a", "3b", "3c", "3d", "4", "5a", "5b", "5c", "5d", "6", "7", "A1", "A2", "A3", "A4", "A5", "A6"}

// RunFigure dispatches a figure by ID.
func (s *Setup) RunFigure(id string) (Figure, error) {
	switch id {
	case "3a":
		return s.Fig3Diversity(bipartite.Raw)
	case "3b":
		return s.Fig3Diversity(bipartite.CFIQF)
	case "3c":
		return s.Fig3Relevance(bipartite.Raw)
	case "3d":
		return s.Fig3Relevance(bipartite.CFIQF)
	case "4":
		return s.Fig4Perplexity()
	case "5a":
		return s.Fig5Diversity(bipartite.Raw)
	case "5b":
		return s.Fig5Diversity(bipartite.CFIQF)
	case "5c":
		return s.Fig5PPR(bipartite.Raw)
	case "5d":
		return s.Fig5PPR(bipartite.CFIQF)
	case "6":
		return s.Fig6HPR()
	case "7":
		return s.Fig7Efficiency()
	case "A1":
		return s.AblationViews()
	case "A2":
		return s.AblationContext()
	case "A3":
		return s.AblationPool()
	case "A4":
		return s.AblationSessionizer()
	case "A5":
		return s.AblationQueryClass()
	case "A6":
		return s.AblationTopicK()
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (known: %v)", id, FigureIDs)
}
