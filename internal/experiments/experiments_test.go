package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bipartite"
)

// sharedSetup is built once: experiment fixtures are the priciest in
// the suite.
var sharedSetup *Setup

func setup(t *testing.T) *Setup {
	t.Helper()
	if sharedSetup == nil {
		sharedSetup = NewSetup(SmallScale(77))
	}
	return sharedSetup
}

func seriesByName(f Figure, name string) []float64 {
	for _, s := range f.Series {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestSampleTestQueries(t *testing.T) {
	s := setup(t)
	qs := s.SampleTestQueries(10, 1)
	if len(qs) != 10 {
		t.Fatalf("sampled %d queries", len(qs))
	}
	seen := make(map[string]bool)
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate sample %q", q)
		}
		seen[q] = true
		if _, ok := s.GraphRaw.QueryID(q); !ok {
			t.Fatalf("sampled query %q not in click graph", q)
		}
	}
}

func TestFig3DiversityShape(t *testing.T) {
	s := setup(t)
	fig, err := s.Fig3Diversity(bipartite.CFIQF)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5 methods", len(fig.Series))
	}
	pqs := seriesByName(fig, "PQS-DA")
	if pqs == nil {
		t.Fatal("no PQS-DA series")
	}
	// Values in [0, 1].
	for _, srs := range fig.Series {
		for k, v := range srs.Values {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s diversity@%d = %v outside [0,1]", srs.Name, k+1, v)
			}
		}
	}
	// The headline shape: PQS-DA's diversity beats every relevance-
	// oriented baseline decisively, and stays in DQS's league (DQS buys
	// its diversity with the relevance collapse checked below — the
	// paper's criticism of pure diversification).
	for _, name := range []string{"FRW", "BRW", "HT"} {
		base := seriesByName(fig, name)
		if mean(pqs[1:]) <= mean(base[1:]) {
			t.Errorf("PQS-DA mean diversity %.3f not above %s %.3f", mean(pqs[1:]), name, mean(base[1:]))
		}
	}
	if dqs := seriesByName(fig, "DQS"); mean(pqs[1:]) < 0.75*mean(dqs[1:]) {
		t.Errorf("PQS-DA mean diversity %.3f far below DQS %.3f", mean(pqs[1:]), mean(dqs[1:]))
	}
}

func TestFig3RelevanceShape(t *testing.T) {
	s := setup(t)
	fig, err := s.Fig3Relevance(bipartite.CFIQF)
	if err != nil {
		t.Fatal(err)
	}
	pqs := seriesByName(fig, "PQS-DA")
	if pqs == nil || len(pqs) != s.Scale.MaxK {
		t.Fatalf("bad PQS-DA series %v", pqs)
	}
	for _, srs := range fig.Series {
		for k, v := range srs.Values {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s relevance@%d = %v outside [0,1]", srs.Name, k+1, v)
			}
		}
	}
	// Top-1 relevance: the regularization framework's first candidate
	// must be the best of all methods (the paper's Section VI-B claim).
	for _, srs := range fig.Series {
		if srs.Name != "PQS-DA" && srs.Values[0] > pqs[0]+1e-9 {
			t.Errorf("%s top-1 relevance %.3f beats PQS-DA %.3f", srs.Name, srs.Values[0], pqs[0])
		}
	}
	// Across ranks PQS-DA must dominate the other diversifier (DQS) and
	// FRW, and stay within striking distance of the relevance-only
	// walks, whose high relevance comes with the near-zero diversity
	// checked in the diversity figure.
	for _, name := range []string{"DQS", "FRW"} {
		if b := seriesByName(fig, name); mean(pqs) <= mean(b) {
			t.Errorf("PQS-DA mean relevance %.3f not above %s %.3f", mean(pqs), name, mean(b))
		}
	}
	for _, name := range []string{"BRW", "HT"} {
		if b := seriesByName(fig, name); mean(pqs) < 0.8*mean(b) {
			t.Errorf("PQS-DA mean relevance %.3f below 80%% of %s %.3f", mean(pqs), name, mean(b))
		}
	}
}

func TestFig3WeightedBeatsRawForPQSDA(t *testing.T) {
	s := setup(t)
	raw, err := s.Fig3Diversity(bipartite.Raw)
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := s.Fig3Diversity(bipartite.CFIQF)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim is that weighting improves overall performance;
	// on diversity the two should at least be in the same ballpark (the
	// main gain shows on relevance).
	r, w := mean(seriesByName(raw, "PQS-DA")[1:]), mean(seriesByName(wtd, "PQS-DA")[1:])
	if math.Abs(r-w) > 0.5 {
		t.Errorf("raw vs weighted diversity wildly different: %.3f vs %.3f", r, w)
	}
}

func TestFig4Shape(t *testing.T) {
	s := setup(t)
	fig, err := s.Fig4Perplexity()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 9 {
		t.Fatalf("models = %d, want 9", len(fig.Series))
	}
	upm := seriesByName(fig, "UPM")
	if upm == nil || len(upm) != 1 {
		t.Fatal("no UPM value")
	}
	beaten := 0
	for _, srs := range fig.Series {
		if math.IsNaN(srs.Values[0]) || math.IsInf(srs.Values[0], 0) || srs.Values[0] <= 1 {
			t.Errorf("%s perplexity = %v", srs.Name, srs.Values[0])
		}
		if srs.Name != "UPM" && srs.Values[0] < upm[0] {
			beaten++
		}
	}
	// The paper's headline: UPM lowest. Allow at most one baseline to
	// edge it out at this tiny test scale.
	if beaten > 1 {
		t.Errorf("UPM (%.1f) beaten by %d of 8 baselines: %+v", upm[0], beaten, fig.Series)
	}
}

func TestFig5And6Shapes(t *testing.T) {
	s := setup(t)
	div, err := s.Fig5Diversity(bipartite.CFIQF)
	if err != nil {
		t.Fatal(err)
	}
	ppr, err := s.Fig5PPR(bipartite.CFIQF)
	if err != nil {
		t.Fatal(err)
	}
	hpr, err := s.Fig6HPR()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{div, ppr, hpr} {
		if len(fig.Series) != 7 {
			t.Fatalf("fig %s has %d series, want 7", fig.ID, len(fig.Series))
		}
		for _, srs := range fig.Series {
			if srs.Values == nil {
				t.Fatalf("fig %s: %s produced no data", fig.ID, srs.Name)
			}
			for k, v := range srs.Values {
				if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
					t.Errorf("fig %s %s@%d = %v", fig.ID, srs.Name, k+1, v)
				}
			}
		}
	}
	// Headline shapes: PQS-DA keeps the highest diversity after
	// personalization...
	pqsDiv := mean(seriesByName(div, "PQS-DA")[1:])
	for _, name := range []string{"PHT", "CM"} {
		if b := mean(seriesByName(div, name)[1:]); pqsDiv <= b {
			t.Errorf("PQS-DA diversity %.3f not above %s %.3f after personalization", pqsDiv, name, b)
		}
	}
	// ...while staying competitive on PPR (top-2 among the 7 methods).
	pqsPPR := mean(seriesByName(ppr, "PQS-DA"))
	better := 0
	for _, srs := range ppr.Series {
		if srs.Name != "PQS-DA" && mean(srs.Values) > pqsPPR {
			better++
		}
	}
	if better > 1 {
		t.Errorf("PQS-DA PPR %.3f beaten by %d methods", pqsPPR, better)
	}
}

func TestRunFigureDispatchAndRender(t *testing.T) {
	s := setup(t)
	fig, err := s.RunFigure("3a")
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	if !strings.Contains(out, "PQS-DA") || !strings.Contains(out, "Fig. 3a") {
		t.Errorf("render output:\n%s", out)
	}
	if _, err := s.RunFigure("99"); err == nil {
		t.Error("unknown figure accepted")
	}
}
