package experiments

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/querylog"
)

// AblationSessionizer compares session-segmentation policies (the
// paper's references [24][25]) by their downstream effect on the
// diversification stage: a pure 30-minute-timeout splitter vs. the
// context-aware splitter with the lexical-similarity rescue used
// throughout this reproduction. Reported per variant: number of
// sessions produced, top-1 relevance and relevance@10.
func (s *Setup) AblationSessionizer() (Figure, error) {
	variants := []struct {
		name string
		cfg  querylog.SessionizerConfig
	}{
		// Similarity rescue disabled: any gap over the soft timeout
		// splits, regardless of lexical overlap.
		{"time-only", querylog.SessionizerConfig{
			Timeout: 30 * time.Minute, SoftTimeout: 30 * time.Minute, MinSimilarity: 0.2,
		}},
		{"context-aware", querylog.SessionizerConfig{}},
	}
	queries := s.SampleTestQueries(s.Scale.TestQueries, 105)
	cat := s.Categorizer()
	fig := Figure{
		ID:     "A4",
		Title:  "Ablation: session segmentation policy (sessions/1000, top1-rel, rel@10)",
		XLabel: "variant",
		YLabel: "metric",
	}
	now := time.Now()
	for _, v := range variants {
		engine, err := core.NewEngine(s.Log, core.Config{
			Weighting:           bipartite.CFIQF,
			Sessionizer:         v.cfg,
			Compact:             bipartite.CompactConfig{Budget: 80},
			SkipPersonalization: true,
		})
		if err != nil {
			return Figure{}, err
		}
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, q := range queries {
			res, err := engine.SuggestDiversified(q, nil, now, s.Scale.MaxK)
			if err != nil || len(res.Diversified) == 0 {
				continue
			}
			acc.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), res.Diversified, cat, s.Scale.MaxK))
		}
		r := acc.Mean()
		if r == nil {
			r = make([]float64, s.Scale.MaxK)
		}
		fig.Series = append(fig.Series, Series{
			Name:   v.name,
			Values: []float64{float64(len(engine.Sessions())) / 1000, r[0], r[s.Scale.MaxK-1]},
		})
	}
	return fig, nil
}
