package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/core"
	"repro/internal/querylog"
	"repro/internal/synth"
)

// Fig7Efficiency regenerates Fig. 7: mean per-suggestion latency of
// PQS-DA, DQS, HT, FRW and CM as the number of utilized queries grows.
// Larger query sets come from generating larger worlds; PQS-DA's
// compact budget grows proportionally, mirroring how the paper scales
// the utilized-query count. Values are reported relative to the
// fastest method at the smallest size (the paper reports relative
// consumed time).
func (s *Setup) Fig7Efficiency() (Figure, error) {
	sizes := []int{1, 2, 4, 8} // world-size multipliers
	methodNames := []string{"PQS-DA", "DQS", "HT", "FRW", "CM"}
	values := make(map[string][]float64, len(methodNames))

	for _, mult := range sizes {
		wcfg := s.Scale.World
		wcfg.NumUsers *= mult
		w := synth.Generate(wcfg)
		clean, _ := querylog.Clean(w.Log, querylog.CleanerConfig{})
		g := clickgraph.Build(clean, bipartite.CFIQF)
		engine, err := core.NewEngine(clean, core.Config{
			Weighting:           bipartite.CFIQF,
			Compact:             bipartite.CompactConfig{Budget: 40 * mult},
			SkipPersonalization: true,
		})
		if err != nil {
			return Figure{}, err
		}
		frw := baselines.NewFRW(g, baselines.WalkConfig{})
		ht := baselines.NewHT(g, baselines.WalkConfig{})
		dqs := baselines.NewDQS(g, baselines.WalkConfig{})
		cm := baselines.NewCM(g, clean)

		sub := &Setup{Scale: s.Scale, World: w, Log: clean, GraphRaw: g, GraphWtd: g}
		queries := sub.SampleTestQueries(10, 103)
		now := time.Now()
		run := map[string]func(string){
			"PQS-DA": func(q string) { _, _ = engine.SuggestDiversified(q, nil, now, s.Scale.MaxK) },
			"DQS":    func(q string) { dqs.Suggest(q, s.Scale.MaxK) },
			"HT":     func(q string) { ht.Suggest(q, s.Scale.MaxK) },
			"FRW":    func(q string) { frw.Suggest(q, s.Scale.MaxK) },
			"CM":     func(q string) { cm.SuggestFor("u0000", q, s.Scale.MaxK) },
		}
		for _, name := range methodNames {
			start := time.Now()
			for _, q := range queries {
				run[name](q)
			}
			perQuery := time.Since(start).Seconds() / float64(len(queries))
			values[name] = append(values[name], perQuery)
		}
	}

	// Normalize to the fastest method at the smallest size.
	base := values[methodNames[0]][0]
	for _, name := range methodNames {
		if values[name][0] < base {
			base = values[name][0]
		}
	}
	if base <= 0 {
		base = 1e-9
	}
	fig := Figure{
		ID:     "7",
		Title:  "Relative suggestion latency vs number of utilized queries",
		XLabel: "size-step",
		YLabel: "Relative time",
	}
	for _, name := range methodNames {
		rel := make([]float64, len(values[name]))
		for i, v := range values[name] {
			rel[i] = v / base
		}
		fig.Series = append(fig.Series, Series{Name: name, Values: rel})
	}
	return fig, nil
}
