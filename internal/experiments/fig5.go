package experiments

import (
	"context"
	"time"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/clickgraph"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/querylog"
	"repro/internal/topicmodel"
)

// persMethod is one contender of Figs. 5–6: a personalized suggester.
type persMethod struct {
	name    string
	suggest func(user, query string, at time.Time, k int) []string
}

// persTest is one evaluation case: the first query of a held-out
// session, with the session's clicks and ground-truth intent.
type persTest struct {
	user          string
	query         string
	at            time.Time
	clickedPages  []string
	intendedFacet int
}

// persFixture bundles the history-trained systems for one weighting.
type persFixture struct {
	engine  *core.Engine
	methods []persMethod
	tests   []persTest
}

// testSessionsPerUser is the paper's hold-out: the 10 most recent
// sessions per user (capped at half the user's history for small
// worlds).
func testSessionsPerUser(total int) int {
	n := 10
	if total/2 < n {
		n = total / 2
	}
	if n < 1 {
		n = 1
	}
	return n
}

// personalizationFixture splits each user's sessions into history and
// test, trains every personalized method on the history, and collects
// the test cases.
func (s *Setup) personalizationFixture(wt bipartite.Weighting) (*persFixture, error) {
	byUser := querylog.SessionsByUser(s.Sessions)
	users := s.World.UserIDs()
	if len(users) > s.Scale.TestUsers {
		users = users[:s.Scale.TestUsers]
	}
	testUsers := make(map[string]bool, len(users))
	for _, u := range users {
		testUsers[u] = true
	}

	var historyLog querylog.Log
	var tests []persTest
	for user, sessions := range byUser {
		history := sessions
		if testUsers[user] {
			var test []querylog.Session
			history, test = querylog.SplitRecent(sessions, testSessionsPerUser(len(sessions)))
			for _, ts := range test {
				first := ts.Entries[0]
				facet, _ := s.World.FacetOf(first)
				var clicks []string
				for _, e := range ts.Entries {
					if e.ClickedURL != "" {
						clicks = append(clicks, e.ClickedURL)
					}
				}
				tests = append(tests, persTest{
					user: user, query: first.Query, at: first.Time,
					clickedPages: clicks, intendedFacet: facet,
				})
			}
		}
		for _, hs := range history {
			for _, e := range hs.Entries {
				historyLog.Append(e)
			}
		}
	}

	engine, err := core.NewEngine(&historyLog, core.Config{
		Weighting: wt,
		Compact:   bipartite.CompactConfig{Budget: 80},
		UPM: topicmodel.UPMConfig{
			K: s.Scale.TopicK, Iterations: s.Scale.ModelIters, Seed: 7,
			HyperRounds: 1, HyperIters: 8,
		},
	})
	if err != nil {
		return nil, err
	}

	g := clickgraph.Build(&historyLog, wt)
	wcfg := baselines.WalkConfig{}
	personalized := func(sg baselines.Suggester) func(string, string, time.Time, int) []string {
		return func(user, query string, at time.Time, k int) []string {
			sugs := sg.Suggest(query, k)
			list := make([]string, len(sugs))
			for i, sug := range sugs {
				list[i] = sug.Query
			}
			return engine.Personalize(user, list)
		}
	}
	pht := baselines.NewPHT(g, &historyLog, wcfg)
	cm := baselines.NewCM(g, &historyLog)
	fx := &persFixture{
		engine: engine,
		tests:  tests,
		methods: []persMethod{
			{"PQS-DA", func(user, query string, at time.Time, k int) []string {
				res, err := engine.Do(context.Background(), core.SuggestRequest{
					User: user, Query: query, At: at, K: k,
				})
				if err != nil {
					return nil
				}
				return res.Suggestions
			}},
			{"FRW(P)", personalized(baselines.NewFRW(g, wcfg))},
			{"BRW(P)", personalized(baselines.NewBRW(g, wcfg))},
			{"HT(P)", personalized(baselines.NewHT(g, wcfg))},
			{"DQS(P)", personalized(baselines.NewDQS(g, wcfg))},
			{"PHT", func(user, query string, at time.Time, k int) []string {
				sugs := pht.SuggestFor(user, query, k)
				list := make([]string, len(sugs))
				for i, sug := range sugs {
					list[i] = sug.Query
				}
				return list
			}},
			{"CM", func(user, query string, at time.Time, k int) []string {
				sugs := cm.SuggestFor(user, query, k)
				list := make([]string, len(sugs))
				for i, sug := range sugs {
					list[i] = sug.Query
				}
				return list
			}},
		},
	}
	return fx, nil
}

// fixtureFor caches the expensive personalization fixtures per
// weighting.
func (s *Setup) fixtureFor(wt bipartite.Weighting) (*persFixture, error) {
	if s.persFixtures == nil {
		s.persFixtures = make(map[bipartite.Weighting]*persFixture)
	}
	if fx, ok := s.persFixtures[wt]; ok {
		return fx, nil
	}
	fx, err := s.personalizationFixture(wt)
	if err != nil {
		return nil, err
	}
	s.persFixtures[wt] = fx
	return fx, nil
}

// Fig5Diversity regenerates Fig. 5(a) (raw) / 5(b) (weighted): mean
// diversity of the top-k personalized suggestions over the held-out
// sessions.
func (s *Setup) Fig5Diversity(wt bipartite.Weighting) (Figure, error) {
	fx, err := s.fixtureFor(wt)
	if err != nil {
		return Figure{}, err
	}
	pages, sim := s.PageSet(), s.PageSim()
	fig := Figure{
		ID:     map[bipartite.Weighting]string{bipartite.Raw: "5a", bipartite.CFIQF: "5b"}[wt],
		Title:  "Diversity after diversification and personalization (" + weightingName(wt) + ")",
		XLabel: "top-k",
		YLabel: "Diversity",
	}
	for _, m := range fx.methods {
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, tc := range fx.tests {
			list := m.suggest(tc.user, tc.query, tc.at, s.Scale.MaxK)
			if len(list) == 0 {
				continue
			}
			acc.Add(metrics.MeanDiversityAtK(list, pages, sim, s.Scale.MaxK))
		}
		fig.Series = append(fig.Series, Series{Name: m.name, Values: acc.Mean()})
	}
	return fig, nil
}

// Fig5PPR regenerates Fig. 5(c) (raw) / 5(d) (weighted): mean Pseudo
// Personalized Relevance of the top-k suggestions against the clicked
// pages of each held-out session.
func (s *Setup) Fig5PPR(wt bipartite.Weighting) (Figure, error) {
	fx, err := s.fixtureFor(wt)
	if err != nil {
		return Figure{}, err
	}
	titles := s.Titles()
	fig := Figure{
		ID:     map[bipartite.Weighting]string{bipartite.Raw: "5c", bipartite.CFIQF: "5d"}[wt],
		Title:  "PPR after diversification and personalization (" + weightingName(wt) + ")",
		XLabel: "top-k",
		YLabel: "PPR",
	}
	for _, m := range fx.methods {
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, tc := range fx.tests {
			if len(tc.clickedPages) == 0 {
				continue
			}
			list := m.suggest(tc.user, tc.query, tc.at, s.Scale.MaxK)
			if len(list) == 0 {
				continue
			}
			acc.Add(metrics.MeanPPRAtK(list, tc.clickedPages, titles, s.Scale.MaxK))
		}
		fig.Series = append(fig.Series, Series{Name: m.name, Values: acc.Mean()})
	}
	return fig, nil
}

// Fig6HPR regenerates Fig. 6: the oracle-graded Human Personalized
// Relevance on the paper's 6-point scale, on the weighted
// configuration.
func (s *Setup) Fig6HPR() (Figure, error) {
	fx, err := s.fixtureFor(bipartite.CFIQF)
	if err != nil {
		return Figure{}, err
	}
	grade := func(suggestion string, intendedFacet int) float64 {
		f := s.World.QueryFacet(querylog.NormalizeQuery(suggestion))
		if f < 0 || intendedFacet < 0 {
			return 0
		}
		if f == intendedFacet {
			return 1
		}
		return metrics.SixPointScale(0.6 * s.World.FacetRelevance(f, intendedFacet))
	}
	fig := Figure{
		ID:     "6",
		Title:  "Human Personalized Relevance (oracle-graded, 6-point scale)",
		XLabel: "top-k",
		YLabel: "HPR",
	}
	for _, m := range fx.methods {
		acc := metrics.NewAccumulator(s.Scale.MaxK)
		for _, tc := range fx.tests {
			list := m.suggest(tc.user, tc.query, tc.at, s.Scale.MaxK)
			if len(list) == 0 {
				continue
			}
			acc.Add(metrics.MeanHPRAtK(list, tc.intendedFacet, grade, s.Scale.MaxK))
		}
		fig.Series = append(fig.Series, Series{Name: m.name, Values: acc.Mean()})
	}
	return fig, nil
}
