package experiments

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/hittingtime"
	"repro/internal/metrics"
	"repro/internal/querylog"
	"repro/internal/regularize"
)

// This file holds the ablations DESIGN.md calls out beyond the paper's
// own figures: how much each bipartite view contributes, what the
// search context buys, and how the relevance-gate pool factor trades
// relevance for diversity.

// AblationViews compares the full multi-bipartite diversification with
// single-view variants (URL-only = click graph, session-only,
// term-only): mean top-1 relevance, relevance@10 and diversity@10 over
// the sampled test queries. It quantifies the paper's Section III
// claim that the three views together beat any one alone.
func (s *Setup) AblationViews() (Figure, error) {
	type variant struct {
		name  string
		alpha [bipartite.NumViews]float64
		cross [bipartite.NumViews]float64
	}
	variants := []variant{
		{"all-views", [3]float64{0.1, 0.1, 0.1}, [3]float64{1, 1, 1}},
		{"URL-only", [3]float64{0.3, 0, 0}, [3]float64{1, 0, 0}},
		{"session-only", [3]float64{0, 0.3, 0}, [3]float64{0, 1, 0}},
		{"term-only", [3]float64{0, 0, 0.3}, [3]float64{0, 0, 1}},
	}
	queries := s.SampleTestQueries(s.Scale.TestQueries, 102)
	pages, sim, cat := s.PageSet(), s.PageSim(), s.Categorizer()
	fig := Figure{
		ID:     "A1",
		Title:  "Ablation: contribution of the three bipartite views (top1-rel, rel@10, div@10)",
		XLabel: "variant",
		YLabel: "metric",
	}
	now := time.Now()
	for _, v := range variants {
		engine, err := core.NewEngine(s.Log, core.Config{
			Weighting:           bipartite.CFIQF,
			Compact:             bipartite.CompactConfig{Budget: 80},
			Regularize:          regularize.Config{Alpha: v.alpha, Mu: 2},
			Hitting:             hittingtime.Config{CrossView: v.cross},
			SkipPersonalization: true,
		})
		if err != nil {
			return Figure{}, err
		}
		accR := metrics.NewAccumulator(s.Scale.MaxK)
		accD := metrics.NewAccumulator(s.Scale.MaxK)
		for _, q := range queries {
			res, err := engine.SuggestDiversified(q, nil, now, s.Scale.MaxK)
			if err != nil || len(res.Diversified) == 0 {
				continue
			}
			accR.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), res.Diversified, cat, s.Scale.MaxK))
			accD.Add(metrics.MeanDiversityAtK(res.Diversified, pages, sim, s.Scale.MaxK))
		}
		r, d := accR.Mean(), accD.Mean()
		if r == nil {
			r = make([]float64, s.Scale.MaxK)
			d = make([]float64, s.Scale.MaxK)
		}
		fig.Series = append(fig.Series, Series{
			Name:   v.name,
			Values: []float64{r[0], r[s.Scale.MaxK-1], d[s.Scale.MaxK-1]},
		})
	}
	return fig, nil
}

// AblationContext measures what the Eq. 7 search context buys, in the
// paper's own motivating scenario: the input query is an AMBIGUOUS
// head term, the search context is a specific query from the same
// session, and success is alignment of the top suggestion with the
// session's ground-truth facet (the user's actual intent). Without
// context the engine can only follow the head's dominant sense.
func (s *Setup) AblationContext() (Figure, error) {
	engine, err := core.NewEngine(s.Log, core.Config{
		Weighting:           bipartite.CFIQF,
		Compact:             bipartite.CompactConfig{Budget: 80},
		SkipPersonalization: true,
	})
	if err != nil {
		return Figure{}, err
	}
	// Ambiguous head terms of the world.
	heads := make(map[string]bool)
	for _, fc := range s.World.Facets {
		for _, h := range fc.HeadTerms {
			heads[h] = true
		}
	}
	intentRel := func(sugg string, facet int) float64 {
		f := s.World.QueryFacet(querylog.NormalizeQuery(sugg))
		if f < 0 || facet < 0 {
			return 0
		}
		return s.World.FacetRelevance(f, facet)
	}
	withCtx := metrics.NewAccumulator(1)
	withoutCtx := metrics.NewAccumulator(1)
	cases := 0
	for _, sess := range s.Sessions {
		if len(sess.Entries) < 2 || cases >= 2*s.Scale.TestQueries {
			continue
		}
		// Sessions that OPEN with a bare ambiguous head term: the user
		// then refines (entry 1), and re-issuing the head with that
		// refinement as context should resolve toward the session facet.
		head := querylog.NormalizeQuery(sess.Entries[0].Query)
		if !heads[head] {
			continue
		}
		facet, ok := s.World.FacetOf(sess.Entries[0])
		if !ok {
			continue
		}
		at := sess.Entries[1].Time.Add(30 * time.Second)
		ctx := []querylog.Entry{sess.Entries[1]}
		r1, err1 := engine.SuggestDiversified(head, ctx, at, 1)
		r2, err2 := engine.SuggestDiversified(head, nil, at, 1)
		if err1 != nil || err2 != nil || len(r1.Diversified) == 0 || len(r2.Diversified) == 0 {
			continue
		}
		withCtx.Add([]float64{intentRel(r1.Diversified[0], facet)})
		withoutCtx.Add([]float64{intentRel(r2.Diversified[0], facet)})
		cases++
	}
	fig := Figure{
		ID:     "A2",
		Title:  "Ablation: Eq. 7 search context resolving ambiguous inputs (top-1 intent alignment)",
		XLabel: "variant",
		YLabel: "top-1 intent relevance",
	}
	fig.Series = append(fig.Series,
		Series{Name: "with-context", Values: withCtx.Mean()},
		Series{Name: "no-context", Values: withoutCtx.Mean()},
	)
	return fig, nil
}

// AblationPool sweeps the relevance-gate pool factor, reporting
// (rel@10, div@10) per setting — the diversity/relevance dial of the
// reproduction (see DESIGN.md §5).
func (s *Setup) AblationPool() (Figure, error) {
	queries := s.SampleTestQueries(s.Scale.TestQueries, 104)
	pages, sim, cat := s.PageSet(), s.PageSim(), s.Categorizer()
	fig := Figure{
		ID:     "A3",
		Title:  "Ablation: relevance-gate pool factor (rel@10, div@10)",
		XLabel: "pool-factor",
		YLabel: "metric",
	}
	now := time.Now()
	for _, pf := range []int{2, 3, 5, 8} {
		engine, err := core.NewEngine(s.Log, core.Config{
			Weighting:           bipartite.CFIQF,
			Compact:             bipartite.CompactConfig{Budget: 80},
			SkipPersonalization: true,
			PoolFactor:          pf,
		})
		if err != nil {
			return Figure{}, err
		}
		accR := metrics.NewAccumulator(s.Scale.MaxK)
		accD := metrics.NewAccumulator(s.Scale.MaxK)
		for _, q := range queries {
			res, err := engine.SuggestDiversified(q, nil, now, s.Scale.MaxK)
			if err != nil || len(res.Diversified) == 0 {
				continue
			}
			accR.Add(metrics.MeanRelevanceAtK(querylog.NormalizeQuery(q), res.Diversified, cat, s.Scale.MaxK))
			accD.Add(metrics.MeanDiversityAtK(res.Diversified, pages, sim, s.Scale.MaxK))
		}
		r, d := accR.Mean(), accD.Mean()
		fig.Series = append(fig.Series, Series{
			Name:   "pf=" + itoa(pf),
			Values: []float64{r[s.Scale.MaxK-1], d[s.Scale.MaxK-1]},
		})
	}
	return fig, nil
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
