package experiments

import (
	"repro/internal/topicmodel"
)

// Fig4Perplexity regenerates Fig. 4: held-out perplexity (Eq. 35) of
// the UPM against LDA, PTM1, PTM2, TOT, MWM, TUM, CTM and SSTM. Each
// model observes the first 70% of every user's sessions and predicts
// the remaining query words.
func (s *Setup) Fig4Perplexity() (Figure, error) {
	corpus := topicmodel.BuildCorpus(s.Sessions, s.World.NormalizeTime)
	obs, held := corpus.SplitPrefix(0.7)
	cfg := topicmodel.TrainConfig{
		K: s.Scale.TopicK, Iterations: s.Scale.ModelIters, Beta: 0.1, Delta: 0.1, Seed: 7,
	}
	models := []topicmodel.Model{
		topicmodel.TrainLDA(obs, cfg),
		topicmodel.TrainPTM1(obs, cfg),
		topicmodel.TrainPTM2(obs, cfg),
		topicmodel.TrainTOT(obs, cfg),
		topicmodel.TrainMWM(obs, cfg),
		topicmodel.TrainTUM(obs, cfg),
		topicmodel.TrainCTM(obs, cfg),
		topicmodel.TrainSSTM(obs, cfg),
		topicmodel.TrainUPM(obs, topicmodel.UPMConfig{
			K: s.Scale.TopicK, Iterations: s.Scale.ModelIters, Seed: 7,
			HyperRounds: 3, HyperIters: 15,
		}),
	}
	fig := Figure{
		ID:     "4",
		Title:  "Perplexity of search engine query log (lower is better)",
		XLabel: "model",
		YLabel: "Perplexity",
	}
	for _, m := range models {
		p := topicmodel.HeldOutPerplexity(m, held, len(obs.Docs))
		fig.Series = append(fig.Series, Series{Name: m.Name(), Values: []float64{p}})
	}
	return fig, nil
}
