//go:build !((amd64 || arm64 || riscv64 || ppc64le || loong64) && !snapwire_copy)

package snapwire

import (
	"encoding/binary"
	"math"
)

// Portable fallback: decode/encode numeric sections by copying, element
// by element, in explicit little-endian order. Correct everywhere
// (including 32-bit and big-endian platforms), at the cost of an O(n)
// copy per section at load — the aliasing fast path in alias_64le.go is
// what production servers run.
const aliasing = false

func viewF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func viewI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func viewInt(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return out
}

func viewU64(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func viewU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func bytesOfF64(v []float64) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

func bytesOfI64(v []int64) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

func bytesOfInt(v []int) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(int64(x)))
	}
	return out
}

func bytesOfU64(v []uint64) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}

func bytesOfU32(v []uint32) []byte {
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], x)
	}
	return out
}
