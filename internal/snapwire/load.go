package snapwire

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/profile"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/sparse"
	"repro/internal/topicmodel"
)

// Loaded is the result of Load: an assembled, flat-backed snapshot plus
// the image metadata the engine and server layers surface.
type Loaded struct {
	// Snap is the serving snapshot. Its hot arrays alias buf (on
	// aliasing platforms): the buffer must stay immutable — and mapped,
	// for mmap sources — for the snapshot's lifetime. Sessions/ByUser
	// are left nil (see DecodeSessions) and State is nil by design:
	// disk-loaded snapshots full-rebuild on refresh.
	Snap *snapshot.Snapshot
	// Config is the opaque engine-config JSON stored in the image (nil
	// when absent).
	Config []byte
	// Words is the trained vocabulary index when profiles are present.
	Words *bipartite.Index
	// Version is the image's format version.
	Version uint16
	// Size is the total image size in bytes.
	Size int64
	// Sections lists every section (name → byte length), for the
	// pqsda_snapshot_bytes{section} gauge and snaptool inspect.
	Sections []Section
	// Meta is the decoded meta section.
	Meta Meta
	// Mapped reports that the backing buffer is an mmap'd file (set by
	// LoadFile). Mapped images must stay mapped for the process
	// lifetime once the snapshot is adopted.
	Mapped bool

	// Image is the complete validated image buffer the snapshot aliases.
	// Re-serving it verbatim (a snapshot download, a save-after-load) is
	// always correct — the format is canonical — and costs no encode.
	Image []byte

	sessions []byte // raw session section, decoded lazily
}

// sec returns the payload of section (kind, inst), or nil when absent.
func payload(buf []byte, h *Header, kind, inst uint16) []byte {
	for _, s := range h.Sections {
		if s.Kind == kind && s.Inst == inst {
			return buf[s.Offset : s.Offset+s.Length]
		}
	}
	return nil
}

func loadStrings(buf []byte, h *Header, inst uint16) (*arena.Strings, error) {
	off := payload(buf, h, kindStrOffsets, inst)
	blob := payload(buf, h, kindStrBlob, inst)
	table := payload(buf, h, kindStrTable, inst)
	if off == nil || table == nil {
		return nil, fmt.Errorf("%w: string index %s incomplete", ErrFormat, instNames[inst])
	}
	if len(off)%8 != 0 || len(table)%4 != 0 {
		return nil, fmt.Errorf("%w: string index %s has ragged section lengths", ErrFormat, instNames[inst])
	}
	s, err := arena.NewStrings(viewU64(off), blob, viewU32(table))
	if err != nil {
		return nil, fmt.Errorf("%w: string index %s: %v", ErrFormat, instNames[inst], err)
	}
	return s, nil
}

func loadMatrix(buf []byte, h *Header, v int, dims MatDims) (*sparse.Matrix, error) {
	rp := payload(buf, h, kindMatRowPtr, uint16(v))
	ci := payload(buf, h, kindMatColIdx, uint16(v))
	val := payload(buf, h, kindMatVal, uint16(v))
	if rp == nil || ci == nil || val == nil {
		return nil, fmt.Errorf("%w: view %d matrix incomplete", ErrFormat, v)
	}
	if len(rp)%8 != 0 || len(ci)%8 != 0 || len(val)%8 != 0 {
		return nil, fmt.Errorf("%w: view %d matrix has ragged section lengths", ErrFormat, v)
	}
	m, err := sparse.FromCSRChecked(dims.Rows, dims.Cols, viewInt(rp), viewInt(ci), viewF64(val))
	if err != nil {
		return nil, fmt.Errorf("%w: view %d matrix: %v", ErrFormat, v, err)
	}
	return m, nil
}

func f64Sec(buf []byte, h *Header, kind uint16) ([]float64, error) {
	b := payload(buf, h, kind, 0)
	if b == nil {
		return nil, fmt.Errorf("%w: missing section %s", ErrFormat, KindName(kind, 0))
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: section %s has ragged length %d", ErrFormat, KindName(kind, 0), len(b))
	}
	return viewF64(b), nil
}

func i64Sec(buf []byte, h *Header, kind uint16) ([]int64, error) {
	b := payload(buf, h, kind, 0)
	if b == nil {
		return nil, fmt.Errorf("%w: missing section %s", ErrFormat, KindName(kind, 0))
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: section %s has ragged length %d", ErrFormat, KindName(kind, 0), len(b))
	}
	return viewI64(b), nil
}

// Load validates buf (header, section table, every checksum) and
// assembles the flat-backed snapshot. Allocation cost is flat in entry
// count — slice headers and small wrappers only; the arrays themselves
// alias buf on aliasing platforms. buf must stay immutable (and mapped)
// for the life of the returned snapshot.
func Load(buf []byte) (*Loaded, error) {
	h, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	l := &Loaded{Version: h.Version, Size: int64(len(buf)), Sections: h.Sections, Image: buf}

	metaJSON := payload(buf, h, kindMeta, 0)
	if metaJSON == nil {
		return nil, fmt.Errorf("%w: missing meta section", ErrFormat)
	}
	if err := json.Unmarshal(metaJSON, &l.Meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrFormat, err)
	}
	l.Config = payload(buf, h, kindConfig, 0)

	// Representation.
	queries, err := loadStrings(buf, h, instQueries)
	if err != nil {
		return nil, err
	}
	rep := &bipartite.Representation{
		Queries:   bipartite.IndexFromArena(queries),
		Weighting: bipartite.Weighting(l.Meta.Weighting),
	}
	for v := 0; v < bipartite.NumViews; v++ {
		objs, err := loadStrings(buf, h, instObjURL+uint16(v))
		if err != nil {
			return nil, err
		}
		rep.Objects[v] = bipartite.IndexFromArena(objs)
		m, err := loadMatrix(buf, h, v, l.Meta.Views[v])
		if err != nil {
			return nil, err
		}
		if m.Rows() != queries.Len() || m.Cols() != objs.Len() {
			return nil, fmt.Errorf("%w: view %d matrix is %dx%d but indexes are %dx%d",
				ErrFormat, v, m.Rows(), m.Cols(), queries.Len(), objs.Len())
		}
		rep.W[v] = m
	}

	snap := &snapshot.Snapshot{
		Rep:        rep,
		Generation: 1,
		Stats: snapshot.Stats{
			Mode:        snapshot.ModeFull,
			NumQueries:  rep.NumQueries(),
			NumSessions: l.Meta.NumSessions,
			LogEntries:  l.Meta.LogEntries,
			BuiltAt:     time.Unix(0, l.Meta.BuiltAtNano),
		},
	}

	// Symbol table (names shared with the query index).
	if payload(buf, h, kindSymTokPtr, 0) != nil {
		toks, err := loadStrings(buf, h, instSymToks)
		if err != nil {
			return nil, err
		}
		ptr, err := i64Sec(buf, h, kindSymTokPtr)
		if err != nil {
			return nil, err
		}
		idx, err := i64Sec(buf, h, kindSymTokIdx)
		if err != nil {
			return nil, err
		}
		syms, err := snapshot.SymbolsFromArena(queries, toks, ptr, idx)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		snap.Symbols = syms
	}

	// Profile/topic state.
	if l.Meta.HasUPM {
		st := &topicmodel.UPMState{}
		cfgJSON := payload(buf, h, kindUPMConfig, 0)
		if cfgJSON == nil {
			return nil, fmt.Errorf("%w: missing upm-config section", ErrFormat)
		}
		if err := json.Unmarshal(cfgJSON, &st.Cfg); err != nil {
			return nil, fmt.Errorf("%w: upm-config: %v", ErrFormat, err)
		}
		words, err := loadStrings(buf, h, instWords)
		if err != nil {
			return nil, err
		}
		docs, err := loadStrings(buf, h, instUPMDocs)
		if err != nil {
			return nil, err
		}
		st.DocOffsets, st.DocBlob, st.DocTable = docs.Offsets(), docs.Blob(), docs.Table()
		st.V, st.U, st.D = l.Meta.UPMVocab, l.Meta.UPMURLs, docs.Len()
		if st.V != words.Len() {
			return nil, fmt.Errorf("%w: UPM vocabulary is %d words, word index has %d", ErrFormat, st.V, words.Len())
		}
		for _, f := range []struct {
			dst  *[]float64
			kind uint16
		}{
			{&st.Alpha, kindUPMAlpha}, {&st.BetaPrior, kindUPMBetaPrior}, {&st.DeltaPrior, kindUPMDeltaPrior},
			{&st.BetaSum, kindUPMBetaSum}, {&st.DeltaSum, kindUPMDeltaSum}, {&st.Tau, kindUPMTau},
			{&st.Ndk, kindUPMNdk}, {&st.NdkSum, kindUPMNdkSum},
			{&st.NkwdSum, kindUPMNkwdSum}, {&st.NkudSum, kindUPMNkudSum},
			{&st.NkwdVal, kindUPMNkwdVal}, {&st.NkudVal, kindUPMNkudVal},
		} {
			if *f.dst, err = f64Sec(buf, h, f.kind); err != nil {
				return nil, err
			}
		}
		for _, f := range []struct {
			dst  *[]int64
			kind uint16
		}{
			{&st.NkwdPtr, kindUPMNkwdPtr}, {&st.NkwdIdx, kindUPMNkwdIdx},
			{&st.NkudPtr, kindUPMNkudPtr}, {&st.NkudIdx, kindUPMNkudIdx},
		} {
			if *f.dst, err = i64Sec(buf, h, f.kind); err != nil {
				return nil, err
			}
		}
		upm, err := topicmodel.UPMFromState(st)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		l.Words = bipartite.IndexFromArena(words)
		snap.Profiles = profile.NewStoreFromIndex(upm, l.Words)
		snap.Corpus = &topicmodel.Corpus{Words: l.Words, URLs: bipartite.NewIndex()}
	}

	l.sessions = payload(buf, h, kindSessions, 0)
	l.Snap = snap
	return l, nil
}

// DecodeSessions materializes the session index. It is deliberately NOT
// done at Load: nothing on the serving path reads sessions (disk-loaded
// snapshots full-rebuild on refresh), and decoding would break the
// flat-allocation load guarantee. Returns nil when the image carries no
// session section.
func (l *Loaded) DecodeSessions() ([]querylog.Session, error) {
	if l.sessions == nil {
		return nil, nil
	}
	return decodeSessions(l.sessions)
}

// Verify re-validates the whole image — header shape, every section
// checksum and the trailing file checksum — without assembling a
// snapshot.
func Verify(buf []byte) error {
	_, err := parseHeader(buf)
	return err
}

// Inspect parses and fully checksums the image and returns its header
// (version, size, section table) for tooling.
func Inspect(buf []byte) (*Header, error) {
	return parseHeader(buf)
}

// LoadFile maps (linux) or reads path and loads it. The returned
// Loaded.Mapped reports whether the image is an mmap'd file — such
// images must stay mapped for the process lifetime (see mapFile).
func LoadFile(path string) (*Loaded, error) {
	buf, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	l, err := Load(buf)
	if err != nil {
		if mapped {
			// Nothing aliases the mapping on the error path; release it.
			unmap(buf)
		}
		return nil, fmt.Errorf("snapwire: %s: %w", path, err)
	}
	l.Mapped = mapped
	return l, nil
}
