package snapwire

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/querylog"
)

// The session index is the one section that is NOT flat-readable: it
// holds variable-length records (user IDs, query strings, timestamps)
// and nothing on the serving path reads it — disk-loaded snapshots
// full-rebuild on refresh, so the counting state that WOULD need
// sessions is rebuilt from the log, not from the snapshot. It is
// therefore length-prefixed binary, decoded lazily by
// Loaded.DecodeSessions (snaptool inspect, tests), never at Load.
//
// Record layout (little-endian): u32 session count, then per session
// u32 userID length + bytes, u32 entry count, and per entry u32+bytes
// query, u32+bytes clicked URL, i64 unix-nano timestamp.

func encodeSessions(sessions []querylog.Session) []byte {
	size := 4
	for _, s := range sessions {
		size += 4 + len(s.UserID) + 4
		for _, e := range s.Entries {
			size += 4 + len(e.Query) + 4 + len(e.ClickedURL) + 8
		}
	}
	out := make([]byte, 0, size)
	var tmp [8]byte
	pu32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	pi64 := func(v int64) {
		binary.LittleEndian.PutUint64(tmp[:8], uint64(v))
		out = append(out, tmp[:8]...)
	}
	pu32(uint32(len(sessions)))
	for _, s := range sessions {
		pu32(uint32(len(s.UserID)))
		out = append(out, s.UserID...)
		pu32(uint32(len(s.Entries)))
		for _, e := range s.Entries {
			pu32(uint32(len(e.Query)))
			out = append(out, e.Query...)
			pu32(uint32(len(e.ClickedURL)))
			out = append(out, e.ClickedURL...)
			pi64(e.Time.UnixNano())
		}
	}
	return out
}

type sessionReader struct {
	b   []byte
	off int
}

func (r *sessionReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("%w: session index truncated at byte %d", ErrFormat, r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *sessionReader) i64() (int64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("%w: session index truncated at byte %d", ErrFormat, r.off)
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *sessionReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint64(r.off)+uint64(n) > uint64(len(r.b)) {
		return "", fmt.Errorf("%w: session index string overruns section", ErrFormat)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func decodeSessions(b []byte) ([]querylog.Session, error) {
	r := &sessionReader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each session needs ≥ 8 bytes; reject counts a truncated buffer
	// cannot hold before allocating for them.
	if uint64(n) > uint64(len(b))/8 {
		return nil, fmt.Errorf("%w: session index claims %d sessions in %d bytes", ErrFormat, n, len(b))
	}
	out := make([]querylog.Session, 0, n)
	for i := uint32(0); i < n; i++ {
		var s querylog.Session
		if s.UserID, err = r.str(); err != nil {
			return nil, err
		}
		ne, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(ne) > uint64(len(b)-r.off)/16 {
			return nil, fmt.Errorf("%w: session %d claims %d entries in %d bytes", ErrFormat, i, ne, len(b)-r.off)
		}
		s.Entries = make([]querylog.Entry, 0, ne)
		for j := uint32(0); j < ne; j++ {
			var e querylog.Entry
			e.UserID = s.UserID
			if e.Query, err = r.str(); err != nil {
				return nil, err
			}
			if e.ClickedURL, err = r.str(); err != nil {
				return nil, err
			}
			ns, err := r.i64()
			if err != nil {
				return nil, err
			}
			e.Time = time.Unix(0, ns)
			s.Entries = append(s.Entries, e)
		}
		out = append(out, s)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: session index has %d trailing bytes", ErrFormat, len(b)-r.off)
	}
	return out, nil
}
