//go:build linux

package snapwire

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile mmaps path read-only and returns the mapping. The mapping is
// intentionally never unmapped once the snapshot is adopted: strings
// and arrays handed out by the snapshot alias it, so unmapping while
// any of them is reachable would be a use-after-free. Snapshots live
// for the process lifetime (refresh builds new heap state); leaking one
// file-sized mapping per loaded file is the documented trade.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("snapwire: %s is empty", path)
	}
	if int64(int(size)) != size {
		return nil, false, fmt.Errorf("snapwire: %s is too large to map", path)
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Fall back to a heap read (e.g. filesystems without mmap).
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, false, fmt.Errorf("snapwire: mmap %s: %v (heap fallback: %w)", path, err, rerr)
		}
		return data, false, nil
	}
	return buf, true, nil
}

func unmap(buf []byte) { _ = syscall.Munmap(buf) }
