package snapwire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/snapwire"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

// buildWorld constructs a full serving state the way core.NewEngine
// does — synthetic log, CF-IQF representation, trained UPM — without
// importing core (snapwire must stay below it in the dependency graph).
func buildWorld(t testing.TB) (*snapwire.Source, []querylog.Session) {
	t.Helper()
	return buildWorldSized(t, 10, 12)
}

// buildWorldSized is buildWorld with a controllable user/session count,
// for the load benchmarks that compare allocation behavior across
// world sizes.
func buildWorldSized(t testing.TB, users, sessionsPerUser int) (*snapwire.Source, []querylog.Session) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 51, NumFacets: 6, NumUsers: users, SessionsPerUser: sessionsPerUser})
	sessions := querylog.Sessionize(w.Log, querylog.SessionizerConfig{})
	b := snapshot.Builder{Weighting: bipartite.CFIQF}
	snap := b.FromSessions(sessions, w.Log.Len(), 1)
	corpus := topicmodel.BuildCorpus(sessions, nil)
	upm := topicmodel.TrainUPM(corpus, topicmodel.UPMConfig{K: 5, Iterations: 15, Seed: 1, HyperRounds: 1, HyperIters: 3})
	src := &snapwire.Source{
		Config:   []byte(`{"budget":60}`),
		Rep:      snap.Rep,
		Symbols:  snap.Symbols,
		UPM:      upm,
		Words:    corpus.Words,
		Sessions: sessions,
		Meta:     snapwire.Meta{LogEntries: w.Log.Len(), BuiltAtNano: 1234567890},
	}
	return src, sessions
}

func encodeWorld(t testing.TB) ([]byte, *snapwire.Source, []querylog.Session) {
	t.Helper()
	src, sessions := buildWorld(t)
	buf, err := snapwire.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	return buf, src, sessions
}

func sameF64(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("%s[%d]: %g vs %g", what, i, a[i], b[i])
		}
	}
}

func assertIndexEqual(t *testing.T, what string, a, b *bipartite.Index) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d names vs %d", what, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Name(i) != b.Name(i) {
			t.Fatalf("%s: name %d %q vs %q", what, i, a.Name(i), b.Name(i))
		}
		if id, ok := b.Lookup(a.Name(i)); !ok || id != i {
			t.Fatalf("%s: lookup %q = (%d,%v), want (%d,true)", what, a.Name(i), id, ok, i)
		}
	}
}

func assertLoadedMatches(t *testing.T, l *snapwire.Loaded, src *snapwire.Source, sessions []querylog.Session) {
	t.Helper()
	rep := l.Snap.Rep
	if rep.Weighting != src.Rep.Weighting {
		t.Fatalf("weighting %d vs %d", rep.Weighting, src.Rep.Weighting)
	}
	assertIndexEqual(t, "queries", src.Rep.Queries, rep.Queries)
	for v := 0; v < bipartite.NumViews; v++ {
		assertIndexEqual(t, "objects", src.Rep.Objects[v], rep.Objects[v])
		want, got := src.Rep.W[v].View(), rep.W[v].View()
		if len(want.RowPtr) != len(got.RowPtr) || len(want.ColIdx) != len(got.ColIdx) {
			t.Fatalf("view %d: CSR shape differs", v)
		}
		for i := range want.RowPtr {
			if want.RowPtr[i] != got.RowPtr[i] {
				t.Fatalf("view %d rowptr[%d]: %d vs %d", v, i, want.RowPtr[i], got.RowPtr[i])
			}
		}
		for i := range want.ColIdx {
			if want.ColIdx[i] != got.ColIdx[i] {
				t.Fatalf("view %d colidx[%d]: %d vs %d", v, i, want.ColIdx[i], got.ColIdx[i])
			}
		}
		sameF64(t, "view val", want.Val, got.Val)
	}

	// Symbols: token lists must match query by query.
	if (l.Snap.Symbols == nil) != (src.Symbols == nil) {
		t.Fatalf("symbol table presence: %v vs %v", l.Snap.Symbols != nil, src.Symbols != nil)
	}
	if src.Symbols != nil {
		if l.Snap.Symbols.Len() != src.Symbols.Len() {
			t.Fatalf("symbols: %d vs %d", l.Snap.Symbols.Len(), src.Symbols.Len())
		}
		for id := uint32(0); int(id) < src.Symbols.Len(); id++ {
			a, b := src.Symbols.Tokens(id), l.Snap.Symbols.Tokens(id)
			if len(a) != len(b) {
				t.Fatalf("symbols %d: %d tokens vs %d", id, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("symbols %d token %d: %q vs %q", id, i, a[i], b[i])
				}
			}
		}
	}

	// UPM parity across every accessor the serve path uses.
	if src.UPM != nil {
		if l.Snap.Profiles == nil {
			t.Fatal("profiles lost")
		}
		got := l.Snap.Profiles.UPM()
		want := src.UPM
		if got.K() != want.K() || got.NumDocs() != want.NumDocs() {
			t.Fatalf("UPM dims: K %d/%d docs %d/%d", got.K(), want.K(), got.NumDocs(), want.NumDocs())
		}
		sameF64(t, "alpha", want.Alpha(), got.Alpha())
		for k := 0; k < want.K(); k++ {
			wa, wb := want.Tau(k)
			ga, gb := got.Tau(k)
			if wa != ga || wb != gb {
				t.Fatalf("tau[%d]: (%g,%g) vs (%g,%g)", k, wa, wb, ga, gb)
			}
		}
		for d := 0; d < want.NumDocs(); d++ {
			sameF64(t, "theta", want.Theta(d), got.Theta(d))
			for k := 0; k < want.K(); k++ {
				for w := 0; w < src.Words.Len(); w += 7 {
					a, b := want.WordProb(d, k, w), got.WordProb(d, k, w)
					if math.Abs(a-b) > 1e-12 {
						t.Fatalf("wordprob(%d,%d,%d): %g vs %g", d, k, w, a, b)
					}
				}
			}
		}
		assertIndexEqual(t, "words", src.Words, l.Words)
		if l.Snap.Corpus == nil || l.Snap.Corpus.Words != l.Words {
			t.Fatal("corpus word index not wired to loaded index")
		}
	}

	// Session index round trip (lazy decode).
	dec, err := l.DecodeSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(sessions) {
		t.Fatalf("sessions: %d vs %d", len(dec), len(sessions))
	}
	for i := range sessions {
		if dec[i].UserID != sessions[i].UserID || len(dec[i].Entries) != len(sessions[i].Entries) {
			t.Fatalf("session %d differs", i)
		}
		for j := range sessions[i].Entries {
			a, b := sessions[i].Entries[j], dec[i].Entries[j]
			if a.UserID != b.UserID || a.Query != b.Query || a.ClickedURL != b.ClickedURL || !a.Time.Equal(b.Time) {
				t.Fatalf("session %d entry %d: %+v vs %+v", i, j, a, b)
			}
		}
	}

	// Config blob and stats.
	if !bytes.Equal(l.Config, src.Config) {
		t.Fatalf("config blob: %q vs %q", l.Config, src.Config)
	}
	st := l.Snap.Stats
	if st.NumQueries != src.Rep.NumQueries() || st.NumSessions != len(sessions) ||
		st.LogEntries != src.Meta.LogEntries || st.BuiltAt.UnixNano() != src.Meta.BuiltAtNano {
		t.Fatalf("stats: %+v", st)
	}
	if l.Snap.Generation == 0 {
		t.Fatal("generation unset")
	}
}

func TestEncodeLoadRoundTrip(t *testing.T) {
	buf, src, sessions := encodeWorld(t)
	l, err := snapwire.Load(buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Version != snapwire.Version {
		t.Fatalf("version %d", l.Version)
	}
	if l.Size != int64(len(buf)) {
		t.Fatalf("size %d vs %d", l.Size, len(buf))
	}
	if len(l.Sections) == 0 {
		t.Fatal("no sections")
	}
	assertLoadedMatches(t, l, src, sessions)
}

func TestLoadFileRoundTrip(t *testing.T) {
	buf, src, sessions := encodeWorld(t)
	path := filepath.Join(t.TempDir(), "snap.pqsw")

	var fileBuf bytes.Buffer
	if _, err := src.WriteTo(&fileBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileBuf.Bytes(), buf) {
		t.Fatal("WriteTo image differs from Encode image")
	}
	if err := os.WriteFile(path, fileBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := snapwire.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mapped=%v size=%d sections=%d", l.Mapped, l.Size, len(l.Sections))
	assertLoadedMatches(t, l, src, sessions)
}

func TestEncodeWithoutProfiles(t *testing.T) {
	src, sessions := buildWorld(t)
	src.UPM, src.Words = nil, nil
	buf, err := snapwire.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	l, err := snapwire.Load(buf)
	if err != nil {
		t.Fatal(err)
	}
	if l.Snap.Profiles != nil || l.Words != nil {
		t.Fatal("profiles materialized from nothing")
	}
	assertLoadedMatches(t, l, src, sessions)
}

func TestVerifyAndInspect(t *testing.T) {
	buf, _, _ := encodeWorld(t)
	if err := snapwire.Verify(buf); err != nil {
		t.Fatal(err)
	}
	h, err := snapwire.Inspect(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != snapwire.Version || h.FileSize != uint64(len(buf)) {
		t.Fatalf("header: %+v", h)
	}
	seen := map[string]bool{}
	for _, s := range h.Sections {
		if seen[s.Name()] {
			t.Fatalf("duplicate section %s", s.Name())
		}
		seen[s.Name()] = true
	}
	for _, name := range []string{"meta", "config", "str-blob/queries", "mat-val/0", "upm-alpha", "sessions"} {
		if !seen[name] {
			t.Fatalf("section %s missing from table (have %v)", name, h.Sections)
		}
	}
}

// refix recomputes the trailing whole-file checksum after a deliberate
// mutation, so corruption tests exercise the *inner* validation layers
// (section table bounds, per-section checksums) rather than tripping the
// file-level crc every time.
func refix(buf []byte) {
	binary.LittleEndian.PutUint32(buf[len(buf)-4:],
		crc32.Checksum(buf[:len(buf)-4], crc32.MakeTable(crc32.Castagnoli)))
}

func TestLoadRejectsCorrupt(t *testing.T) {
	valid, _, _ := encodeWorld(t)

	// Locate the first section entry past meta to corrupt (table starts
	// at byte 24; entry = kind u16, inst u16, rsvd u32, offset u64,
	// length u64, crc u32, rsvd u32).
	secOff := func(i int) int { return 24 + i*32 }

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, snapwire.ErrFormat},
		{"three bytes", func(b []byte) []byte { return b[:3] }, snapwire.ErrFormat},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, snapwire.ErrFormat},
		{"magic only", func(b []byte) []byte { return b[:4] }, snapwire.ErrFormat},
		{"version skew", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return b
		}, snapwire.ErrFormat},
		{"truncated half", func(b []byte) []byte { return b[:len(b)/2] }, snapwire.ErrFormat},
		{"truncated one byte", func(b []byte) []byte { return b[:len(b)-1] }, snapwire.ErrFormat},
		{"file size lies", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], uint64(len(b))+64)
			return b
		}, snapwire.ErrFormat},
		{"section count bomb", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 1<<31)
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"section table overrun", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 4000)
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"payload bit flip", func(b []byte) []byte {
			b[len(b)-64] ^= 0x40 // inside the last section's payload
			return b
		}, snapwire.ErrChecksum},
		{"trailing crc flip", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}, snapwire.ErrChecksum},
		{"section offset past end", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[secOff(1)+8:], uint64(len(b)))
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"section offset into header", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[secOff(1)+8:], 0)
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"section offset misaligned", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[secOff(1)+8:])
			binary.LittleEndian.PutUint64(b[secOff(1)+8:], off+1)
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"section length overflow", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[secOff(1)+16:], math.MaxUint64-8)
			refix(b)
			return b
		}, snapwire.ErrFormat},
		{"section payload moved", func(b []byte) []byte {
			// Point one section at another's bytes: bounds stay legal,
			// so only the per-section checksum can catch it.
			off2 := binary.LittleEndian.Uint64(b[secOff(2)+8:])
			ln2 := binary.LittleEndian.Uint64(b[secOff(2)+16:])
			binary.LittleEndian.PutUint64(b[secOff(1)+8:], off2)
			binary.LittleEndian.PutUint64(b[secOff(1)+16:], ln2)
			refix(b)
			return b
		}, snapwire.ErrChecksum},
		{"legacy gob", func(b []byte) []byte {
			return []byte("\x1f\xff\x81\x03\x01\x01\nengineWire\x01\xff\x82\x00")
		}, snapwire.ErrLegacyGob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := append([]byte(nil), valid...)
			_, err := snapwire.Load(tc.mutate(buf))
			if err == nil {
				t.Fatal("corrupt image accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			t.Logf("rejected: %v", err)
		})
	}
}

// TestLoadRejectsLegacyGobFixture feeds a real pre-wire gob engine file
// (the snaptool testdata fixture) through Load and demands the stable
// migration error.
func TestLoadRejectsLegacyGobFixture(t *testing.T) {
	b, err := os.ReadFile("../../cmd/snaptool/testdata/legacy_engine.gob")
	if err != nil {
		t.Skipf("fixture unavailable: %v", err)
	}
	if _, err := snapwire.Load(b); !errors.Is(err, snapwire.ErrLegacyGob) {
		t.Fatalf("error %v, want ErrLegacyGob", err)
	}
}

func TestSectionTamperEveryByteOfTable(t *testing.T) {
	valid, _, _ := encodeWorld(t)
	h, err := snapwire.Inspect(valid)
	if err != nil {
		t.Fatal(err)
	}
	tableEnd := 24 + len(h.Sections)*32
	// Flip one byte per 8-byte stride across the whole section table.
	// Every mutation must be handled without panicking, and anything
	// Verify rejects Load must reject too (Load may additionally fail
	// on assembly — e.g. a kind flip makes a required section vanish).
	for off := 24; off < tableEnd; off += 8 {
		buf := append([]byte(nil), valid...)
		buf[off] ^= 0xa5
		refix(buf)
		_, err := snapwire.Load(buf)
		if verr := snapwire.Verify(buf); verr != nil && err == nil {
			t.Fatalf("offset %d: Verify rejects (%v) but Load accepted", off, verr)
		}
	}
}
