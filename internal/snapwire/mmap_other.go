//go:build !linux

package snapwire

import "os"

// mapFile on non-linux platforms reads the file into the heap. A heap
// []byte contains no pointers, so the GC-scan win of the flat layout is
// preserved; only the page-cache sharing of a true mmap is lost.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmap([]byte) {}
