//go:build (amd64 || arm64 || riscv64 || ppc64le || loong64) && !snapwire_copy

package snapwire

import "unsafe"

// On 64-bit little-endian platforms the wire layout IS the in-memory
// layout: numeric sections alias the buffer directly via unsafe.Slice.
// The loader guarantees 8-byte-aligned section offsets before these run,
// and buffers come from mmap (page aligned) or large heap allocations
// (8-byte aligned), so &b[0] is always suitably aligned for the element
// type. The snapwire_copy build tag forces the portable copy path for
// differential testing.
const aliasing = true

func viewF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// viewInt reinterprets a wire []int64 as []int (int is 64-bit here).
func viewInt(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// Writer-side inverses: expose a numeric slice's bytes without copying.

func bytesOfF64(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfI64(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfInt(v []int) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfU64(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func bytesOfU32(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}
