package snapwire_test

import (
	"testing"

	"repro/internal/snapwire"
)

// FuzzLoadSnapshot drives Load with hostile images: truncations,
// bit flips, and fuzzer-invented section tables must produce an error —
// never a panic, and never an allocation proportional to a lying header
// field (the length guards in parseHeader and decodeSessions are what
// this corpus is aimed at).
func FuzzLoadSnapshot(f *testing.F) {
	valid, _, _ := encodeWorld(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:24])
	f.Add([]byte("PQSW"))
	f.Add([]byte("\x1f\xff\x81\x03\x01\x01\nengineWire\x01\xff\x82\x00"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := snapwire.Load(data)
		if err != nil {
			return
		}
		// A structurally valid image must also survive full use of the
		// lazy paths without panicking.
		if _, err := l.DecodeSessions(); err != nil {
			return
		}
		rep := l.Snap.Rep
		for i := 0; i < rep.NumQueries(); i++ {
			_ = rep.Queries.Name(i)
			if l.Snap.Symbols != nil {
				_ = l.Snap.Symbols.Tokens(uint32(i))
			}
		}
	})
}
