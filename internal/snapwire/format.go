// Package snapwire defines the engine's versioned binary snapshot
// format: a sectioned, checksummed, mmap-friendly layout in which every
// hot serving array — CSR matrices, string indexes, symbol tokens,
// profile state — is stored exactly as it is read, so loading is
// section-table validation plus slice aliasing instead of per-element
// decoding.
//
// File layout (all integers little-endian):
//
//	[0,  4)  magic "PQSW"
//	[4,  6)  format version (uint16)
//	[6,  8)  reserved
//	[8, 16)  total file size (uint64) — cheap truncation check
//	[16, 20) section count (uint32)
//	[20, 24) reserved
//	[24, 24+32n) section table, 32 bytes per entry:
//	           kind uint16 | inst uint16 | reserved uint32 |
//	           offset uint64 | length uint64 | crc32c uint32 | reserved
//	...        section payloads, each offset 64-byte aligned
//	[size-4, size) crc32c (Castagnoli) of bytes [0, size-4)
//
// Checksum discipline: every section carries its own crc32c and the
// file carries a trailing whole-file crc32c. Load verifies both before
// any payload byte is interpreted; Verify re-checks them on demand.
//
// Aliasing rules: on 64-bit little-endian platforms the numeric arrays
// returned by Load alias the input buffer directly (zero copy); other
// platforms fall back to copying. Either way the caller must treat the
// buffer as immutable for the life of the snapshot, and an mmap'd
// buffer must stay mapped for the life of the process once adopted —
// strings handed out by the snapshot alias it. Mutation of a loaded
// snapshot is impossible by construction: every wrapper type
// (arena.Strings, flat Index/SymbolTable/UPM, sparse.Matrix) exposes
// read-only accessors, and the mutation paths that do exist
// (Intern, Clone, FoldIn) thaw into fresh heap state first.
package snapwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the current wire format version.
const Version = 1

const (
	magic       = "PQSW"
	headerSize  = 24
	sectionSize = 32
	align       = 64
	trailerSize = 4

	// maxSections bounds the section table so a hostile header cannot
	// make the loader over-allocate: the real format uses ~60 sections.
	maxSections = 4096
)

// castagnoli is the crc32c table used for every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFormat is wrapped by every structural decode error.
var ErrFormat = errors.New("snapwire: invalid snapshot image")

// ErrChecksum is wrapped by checksum mismatches (file- or section-level).
var ErrChecksum = errors.New("snapwire: checksum mismatch")

// ErrLegacyGob reports a pre-wire-format engine file (encoding/gob).
var ErrLegacyGob = errors.New("legacy gob engine file; run `snaptool convert <old> <new>` to migrate")

// Section kinds. The (kind, inst) pair identifies one stored array.
const (
	kindMeta      uint16 = 1 // JSON: dimensions, weighting, stats
	kindConfig    uint16 = 2 // opaque JSON: engine config (core.Config)
	kindUPMConfig uint16 = 3 // JSON: topicmodel.UPMConfig

	// String indexes (inst: see inst* constants below).
	kindStrOffsets uint16 = 10 // []uint64
	kindStrBlob    uint16 = 11 // raw bytes
	kindStrTable   uint16 = 12 // []uint32

	// CSR matrices of the representation (inst = bipartite.View).
	kindMatRowPtr uint16 = 20 // []int64
	kindMatColIdx uint16 = 21 // []int64
	kindMatVal    uint16 = 22 // []float64

	// Symbol-table token lists.
	kindSymTokPtr uint16 = 30 // []int64
	kindSymTokIdx uint16 = 31 // []int64

	// Session index (lazily decoded; see sessions.go).
	kindSessions uint16 = 40

	// UPM flat state (topicmodel.UPMState).
	kindUPMAlpha      uint16 = 50 // []float64
	kindUPMBetaPrior  uint16 = 51
	kindUPMDeltaPrior uint16 = 52
	kindUPMBetaSum    uint16 = 53
	kindUPMDeltaSum   uint16 = 54
	kindUPMTau        uint16 = 55
	kindUPMNdk        uint16 = 56
	kindUPMNdkSum     uint16 = 57
	kindUPMNkwdSum    uint16 = 58
	kindUPMNkudSum    uint16 = 59
	kindUPMNkwdPtr    uint16 = 60 // []int64
	kindUPMNkwdIdx    uint16 = 61 // []int64
	kindUPMNkwdVal    uint16 = 62 // []float64
	kindUPMNkudPtr    uint16 = 63
	kindUPMNkudIdx    uint16 = 64
	kindUPMNkudVal    uint16 = 65
)

// String-index instances.
const (
	instQueries    uint16 = 0
	instObjURL     uint16 = 1
	instObjSession uint16 = 2
	instObjTerm    uint16 = 3
	instWords      uint16 = 4
	instSymToks    uint16 = 5
	instUPMDocs    uint16 = 6
)

var kindNames = map[uint16]string{
	kindMeta: "meta", kindConfig: "config", kindUPMConfig: "upm-config",
	kindStrOffsets: "str-offsets", kindStrBlob: "str-blob", kindStrTable: "str-table",
	kindMatRowPtr: "mat-rowptr", kindMatColIdx: "mat-colidx", kindMatVal: "mat-val",
	kindSymTokPtr: "sym-tokptr", kindSymTokIdx: "sym-tokidx",
	kindSessions: "sessions",
	kindUPMAlpha: "upm-alpha", kindUPMBetaPrior: "upm-beta-prior", kindUPMDeltaPrior: "upm-delta-prior",
	kindUPMBetaSum: "upm-beta-sum", kindUPMDeltaSum: "upm-delta-sum", kindUPMTau: "upm-tau",
	kindUPMNdk: "upm-ndk", kindUPMNdkSum: "upm-ndk-sum",
	kindUPMNkwdSum: "upm-nkwd-sum", kindUPMNkudSum: "upm-nkud-sum",
	kindUPMNkwdPtr: "upm-nkwd-ptr", kindUPMNkwdIdx: "upm-nkwd-idx", kindUPMNkwdVal: "upm-nkwd-val",
	kindUPMNkudPtr: "upm-nkud-ptr", kindUPMNkudIdx: "upm-nkud-idx", kindUPMNkudVal: "upm-nkud-val",
}

var instNames = map[uint16]string{
	instQueries: "queries", instObjURL: "url-objects", instObjSession: "session-objects",
	instObjTerm: "term-objects", instWords: "words", instSymToks: "sym-tokens", instUPMDocs: "upm-docs",
}

// KindName renders a (kind, inst) pair for diagnostics and inspect
// output, e.g. "str-blob/queries" or "mat-val/1".
func KindName(kind, inst uint16) string {
	k, ok := kindNames[kind]
	if !ok {
		k = fmt.Sprintf("kind-%d", kind)
	}
	switch kind {
	case kindStrOffsets, kindStrBlob, kindStrTable:
		if in, ok := instNames[inst]; ok {
			return k + "/" + in
		}
	case kindMatRowPtr, kindMatColIdx, kindMatVal:
		return fmt.Sprintf("%s/%d", k, inst)
	}
	if inst != 0 {
		return fmt.Sprintf("%s/%d", k, inst)
	}
	return k
}

// SectionNames returns the canonical name of every section the current
// format version can emit, in a stable order — the label universe for
// the pqsda_snapshot_bytes{section} gauge (absent sections read 0).
func SectionNames() []string {
	var out []string
	out = append(out, KindName(kindMeta, 0), KindName(kindConfig, 0), KindName(kindUPMConfig, 0))
	for _, inst := range []uint16{instQueries, instObjURL, instObjSession, instObjTerm, instWords, instSymToks, instUPMDocs} {
		for _, kind := range []uint16{kindStrOffsets, kindStrBlob, kindStrTable} {
			out = append(out, KindName(kind, inst))
		}
	}
	for v := uint16(0); v < 3; v++ {
		for _, kind := range []uint16{kindMatRowPtr, kindMatColIdx, kindMatVal} {
			out = append(out, KindName(kind, v))
		}
	}
	out = append(out, KindName(kindSymTokPtr, 0), KindName(kindSymTokIdx, 0), KindName(kindSessions, 0))
	for kind := kindUPMAlpha; kind <= kindUPMNkudVal; kind++ {
		out = append(out, KindName(kind, 0))
	}
	return out
}

// Section describes one entry of the section table.
type Section struct {
	Kind, Inst uint16
	Offset     uint64
	Length     uint64
	CRC        uint32
}

// Name renders the section's (kind, inst) pair.
func (s Section) Name() string { return KindName(s.Kind, s.Inst) }

// Header is the decoded fixed-size file header.
type Header struct {
	Version  uint16
	FileSize uint64
	Sections []Section
}

// sniffLegacyGob reports whether buf looks like the pre-wire gob
// format: gob streams open with a varint-length-prefixed type record
// whose name ("engineWire") appears in the first few dozen bytes.
func sniffLegacyGob(buf []byte) bool {
	n := len(buf)
	if n > 64 {
		n = 64
	}
	for i := 0; i+len("engineWire") <= n; i++ {
		if string(buf[i:i+len("engineWire")]) == "engineWire" {
			return true
		}
	}
	return false
}

// parseHeader decodes and validates the header, the section table, and
// every checksum (file trailer first, then per-section). On success the
// returned sections are in file order with offsets/lengths proven
// in-bounds and 8-byte aligned.
func parseHeader(buf []byte) (*Header, error) {
	if len(buf) < 4 || string(buf[:4]) != magic {
		if sniffLegacyGob(buf) {
			return nil, ErrLegacyGob
		}
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: %d bytes is shorter than any valid image", ErrFormat, len(buf))
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, buf[:4])
	}
	if len(buf) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid image", ErrFormat, len(buf))
	}
	h := &Header{Version: binary.LittleEndian.Uint16(buf[4:6])}
	if h.Version != Version {
		return nil, fmt.Errorf("%w: format version %d, this build reads version %d", ErrFormat, h.Version, Version)
	}
	h.FileSize = binary.LittleEndian.Uint64(buf[8:16])
	if h.FileSize != uint64(len(buf)) {
		return nil, fmt.Errorf("%w: header says %d bytes, image is %d (truncated?)", ErrFormat, h.FileSize, len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[16:20])
	if n > maxSections {
		return nil, fmt.Errorf("%w: %d sections (max %d)", ErrFormat, n, maxSections)
	}
	tableEnd := headerSize + int(n)*sectionSize
	if tableEnd > len(buf)-trailerSize {
		return nil, fmt.Errorf("%w: section table overruns image", ErrFormat)
	}

	// Whole-file checksum before interpreting anything else.
	want := binary.LittleEndian.Uint32(buf[len(buf)-trailerSize:])
	if got := crc32.Checksum(buf[:len(buf)-trailerSize], castagnoli); got != want {
		return nil, fmt.Errorf("%w: file crc32c %08x, header says %08x", ErrChecksum, got, want)
	}

	h.Sections = make([]Section, n)
	for i := range h.Sections {
		e := buf[headerSize+i*sectionSize:]
		s := Section{
			Kind:   binary.LittleEndian.Uint16(e[0:2]),
			Inst:   binary.LittleEndian.Uint16(e[2:4]),
			Offset: binary.LittleEndian.Uint64(e[8:16]),
			Length: binary.LittleEndian.Uint64(e[16:24]),
			CRC:    binary.LittleEndian.Uint32(e[24:28]),
		}
		end := s.Offset + s.Length
		if end < s.Offset || s.Offset < uint64(tableEnd) || end > uint64(len(buf)-trailerSize) {
			return nil, fmt.Errorf("%w: section %s [%d,%d) outside payload area", ErrFormat, s.Name(), s.Offset, end)
		}
		if s.Offset%8 != 0 {
			return nil, fmt.Errorf("%w: section %s offset %d not 8-byte aligned", ErrFormat, s.Name(), s.Offset)
		}
		if got := crc32.Checksum(buf[s.Offset:end], castagnoli); got != s.CRC {
			return nil, fmt.Errorf("%w: section %s crc32c %08x, table says %08x", ErrChecksum, s.Name(), got, s.CRC)
		}
		h.Sections[i] = s
	}
	return h, nil
}
