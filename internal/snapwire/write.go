package snapwire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/arena"
	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/snapshot"
	"repro/internal/topicmodel"
)

// Meta is the small JSON section that carries dimensions and build
// provenance — everything the loader needs to cross-validate the flat
// arrays, plus the stats surfaced by /v1/stats for a loaded snapshot.
type Meta struct {
	Weighting   int        `json:"weighting"`
	Views       [3]MatDims `json:"views"`
	HasUPM      bool       `json:"has_upm"`
	UPMVocab    int        `json:"upm_vocab,omitempty"` // UPM word-vocabulary size V
	UPMURLs     int        `json:"upm_urls,omitempty"`  // UPM URL-vocabulary size U
	NumSessions int        `json:"num_sessions"`
	LogEntries  int        `json:"log_entries"`
	BuiltAtNano int64      `json:"built_at_nano"`
}

// MatDims records one view matrix's shape.
type MatDims struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// Source is the writer's input: a built serving state plus the opaque
// engine-config blob (snapwire does not interpret it — the engine layer
// marshals and unmarshals its own config, keeping this package free of
// a core dependency).
type Source struct {
	Config   []byte // opaque engine config JSON (may be nil)
	Rep      *bipartite.Representation
	Symbols  *snapshot.SymbolTable
	UPM      *topicmodel.UPM  // nil when personalization is off
	Words    *bipartite.Index // required with UPM: the trained vocabulary
	Sessions []querylog.Session
	Meta     Meta // Weighting/Views/HasUPM are filled in by Encode
}

type section struct {
	kind, inst uint16
	payload    []byte
}

// Encode lays the source out as a complete wire image: header, section
// table, 64-byte-aligned sections with per-section crc32c, trailing
// whole-file crc32c. The returned buffer is ready for WriteTo, an HTTP
// response body, or an immediate Load.
func Encode(src *Source) ([]byte, error) {
	if src.Rep == nil {
		return nil, fmt.Errorf("snapwire: encode: nil representation")
	}
	if src.UPM != nil && src.Words == nil {
		return nil, fmt.Errorf("snapwire: encode: UPM present but word index missing")
	}
	var secs []section
	add := func(kind, inst uint16, payload []byte) {
		secs = append(secs, section{kind, inst, payload})
	}
	addStrings := func(inst uint16, names []string) {
		off, blob, table := arena.BuildStrings(names)
		add(kindStrOffsets, inst, bytesOfU64(off))
		add(kindStrBlob, inst, blob)
		add(kindStrTable, inst, bytesOfU32(table))
	}

	meta := src.Meta
	meta.Weighting = int(src.Rep.Weighting)
	meta.HasUPM = src.UPM != nil

	// Representation: string indexes + CSR matrices.
	addStrings(instQueries, src.Rep.Queries.Names())
	for v := 0; v < bipartite.NumViews; v++ {
		addStrings(instObjURL+uint16(v), src.Rep.Objects[v].Names())
		m := src.Rep.W[v]
		if m == nil {
			return nil, fmt.Errorf("snapwire: encode: view %d has no matrix", v)
		}
		meta.Views[v] = MatDims{Rows: m.Rows(), Cols: m.Cols()}
		cv := m.View()
		add(kindMatRowPtr, uint16(v), bytesOfInt(cv.RowPtr))
		add(kindMatColIdx, uint16(v), bytesOfInt(cv.ColIdx))
		add(kindMatVal, uint16(v), bytesOfF64(cv.Val))
	}

	// Symbol-table token lists (names are shared with the query index).
	if src.Symbols != nil {
		if src.Symbols.Len() != src.Rep.NumQueries() {
			return nil, fmt.Errorf("snapwire: encode: symbol table covers %d queries, representation has %d",
				src.Symbols.Len(), src.Rep.NumQueries())
		}
		tokOff, tokBlob, tokTable, ptr, idx := src.Symbols.FlatTokens()
		add(kindStrOffsets, instSymToks, bytesOfU64(tokOff))
		add(kindStrBlob, instSymToks, tokBlob)
		add(kindStrTable, instSymToks, bytesOfU32(tokTable))
		add(kindSymTokPtr, 0, bytesOfI64(ptr))
		add(kindSymTokIdx, 0, bytesOfI64(idx))
	}

	// Session index (lazy on load).
	if len(src.Sessions) > 0 {
		add(kindSessions, 0, encodeSessions(src.Sessions))
		meta.NumSessions = len(src.Sessions)
	}

	// Profile/topic state.
	if src.UPM != nil {
		st := src.UPM.State()
		meta.UPMVocab, meta.UPMURLs = st.V, st.U
		cfgJSON, err := json.Marshal(st.Cfg)
		if err != nil {
			return nil, fmt.Errorf("snapwire: encode: UPM config: %w", err)
		}
		add(kindUPMConfig, 0, cfgJSON)
		addStrings(instWords, src.Words.Names())
		add(kindUPMAlpha, 0, bytesOfF64(st.Alpha))
		add(kindUPMBetaPrior, 0, bytesOfF64(st.BetaPrior))
		add(kindUPMDeltaPrior, 0, bytesOfF64(st.DeltaPrior))
		add(kindUPMBetaSum, 0, bytesOfF64(st.BetaSum))
		add(kindUPMDeltaSum, 0, bytesOfF64(st.DeltaSum))
		add(kindUPMTau, 0, bytesOfF64(st.Tau))
		add(kindUPMNdk, 0, bytesOfF64(st.Ndk))
		add(kindUPMNdkSum, 0, bytesOfF64(st.NdkSum))
		add(kindUPMNkwdSum, 0, bytesOfF64(st.NkwdSum))
		add(kindUPMNkudSum, 0, bytesOfF64(st.NkudSum))
		add(kindUPMNkwdPtr, 0, bytesOfI64(st.NkwdPtr))
		add(kindUPMNkwdIdx, 0, bytesOfI64(st.NkwdIdx))
		add(kindUPMNkwdVal, 0, bytesOfF64(st.NkwdVal))
		add(kindUPMNkudPtr, 0, bytesOfI64(st.NkudPtr))
		add(kindUPMNkudIdx, 0, bytesOfI64(st.NkudIdx))
		add(kindUPMNkudVal, 0, bytesOfF64(st.NkudVal))
		add(kindStrOffsets, instUPMDocs, bytesOfU64(st.DocOffsets))
		add(kindStrBlob, instUPMDocs, st.DocBlob)
		add(kindStrTable, instUPMDocs, bytesOfU32(st.DocTable))
	}

	if src.Config != nil {
		add(kindConfig, 0, src.Config)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("snapwire: encode: meta: %w", err)
	}
	// Meta goes first in the table so Inspect reads it cheaply.
	secs = append([]section{{kindMeta, 0, metaJSON}}, secs...)

	// Layout: header, table, aligned payloads, trailer.
	offset := uint64(headerSize + len(secs)*sectionSize)
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		offset = (offset + align - 1) / align * align
		offsets[i] = offset
		offset += uint64(len(s.payload))
	}
	total := (offset+7)/8*8 + trailerSize
	buf := make([]byte, total)

	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], Version)
	binary.LittleEndian.PutUint64(buf[8:16], total)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(secs)))
	for i, s := range secs {
		e := buf[headerSize+i*sectionSize:]
		binary.LittleEndian.PutUint16(e[0:2], s.kind)
		binary.LittleEndian.PutUint16(e[2:4], s.inst)
		binary.LittleEndian.PutUint64(e[8:16], offsets[i])
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.payload)))
		copy(buf[offsets[i]:], s.payload)
		binary.LittleEndian.PutUint32(e[24:28], crc32.Checksum(s.payload, castagnoli))
	}
	binary.LittleEndian.PutUint32(buf[total-trailerSize:], crc32.Checksum(buf[:total-trailerSize], castagnoli))
	return buf, nil
}

// WriteTo encodes the source and writes the image to w, returning the
// byte count — the io.WriterTo-shaped entry point for files and HTTP.
func (src *Source) WriteTo(w io.Writer) (int64, error) {
	buf, err := Encode(src)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}
