package snapwire_test

import (
	"sync"
	"testing"

	"repro/internal/snapwire"
)

// The load benchmarks measure the tentpole claim: Load is validation
// plus slice aliasing, so its cost is dominated by the checksum pass
// (bytes, not entries) and its allocation count is flat in world size.

var (
	benchImgOnce  sync.Once
	benchImgSmall []byte
	benchImgLarge []byte
)

func benchImages(tb testing.TB) (small, large []byte) {
	benchImgOnce.Do(func() {
		encode := func(users, sessions int) []byte {
			src, _ := buildWorldSized(tb, users, sessions)
			img, err := snapwire.Encode(src)
			if err != nil {
				tb.Fatal(err)
			}
			return img
		}
		benchImgSmall = encode(10, 12)
		benchImgLarge = encode(40, 30)
	})
	return benchImgSmall, benchImgLarge
}

func benchmarkLoad(b *testing.B, img []byte) {
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapwire.Load(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad loads the standard test world.
func BenchmarkSnapshotLoad(b *testing.B) {
	small, _ := benchImages(b)
	benchmarkLoad(b, small)
}

// BenchmarkSnapshotLoadLarge loads a ~10x-entry world; ns/op grows
// with bytes (the crc32c pass) while allocs/op stays where the small
// world put it.
func BenchmarkSnapshotLoadLarge(b *testing.B) {
	_, large := benchImages(b)
	benchmarkLoad(b, large)
}

// TestSnapshotLoadAllocsFlat pins the zero-decode property: loading a
// world with ~10x the entries may not allocate more than a handful of
// extra objects (slice headers and wrappers are fixed-count; the
// arrays alias the buffer).
func TestSnapshotLoadAllocsFlat(t *testing.T) {
	small, large := benchImages(t)
	allocs := func(img []byte) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := snapwire.Load(img); err != nil {
				t.Fatal(err)
			}
		})
	}
	as, al := allocs(small), allocs(large)
	t.Logf("allocs/op: small=%.0f large=%.0f (image %d -> %d bytes)", as, al, len(small), len(large))
	if al > as+16 {
		t.Fatalf("Load allocations grew with world size: %.0f -> %.0f", as, al)
	}
}
