package hittingtime

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/randomwalk"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchCompact(tb testing.TB) *bipartite.Compact {
	tb.Helper()
	w := synth.Generate(synth.Config{Seed: 1, NumUsers: 50, SessionsPerUser: 25})
	rep := bipartite.Build(w.Log, querylog.SessionizerConfig{}, bipartite.CFIQF)
	return rep.BuildCompact([]int{0}, bipartite.CompactConfig{Budget: 200})
}

// seedNewWalker replicates the pre-PR walker construction.
func seedNewWalker(c *bipartite.Compact, cfg Config) *sparse.Matrix {
	cfg = cfg.withDefaults()
	n := c.Size()
	var per [bipartite.NumViews]*sparse.Matrix
	for v := 0; v < bipartite.NumViews; v++ {
		per[v] = c.QueryTransition(bipartite.View(v))
	}
	avail := make([]float64, n)
	for i := 0; i < n; i++ {
		for v := 0; v < bipartite.NumViews; v++ {
			if per[v].RowNNZ(i) > 0 {
				avail[i] += cfg.CrossView[v]
			}
		}
	}
	var acc *sparse.Matrix
	for v := 0; v < bipartite.NumViews; v++ {
		w := cfg.CrossView[v]
		scaled := per[v].ScaleSym(func(i, j int) float64 {
			if avail[i] == 0 {
				return 0
			}
			return w / avail[i]
		})
		if acc == nil {
			acc = scaled
		} else {
			acc = sparse.Add(acc, scaled, 1)
		}
	}
	return acc
}

// seedSelect replicates the pre-PR greedy loop (map-based membership,
// closure kernel, per-round rowSum and allocations).
func seedSelect(trans *sparse.Matrix, l int, first, k int, excluded []int) []int {
	banned := make(map[int]bool, len(excluded))
	for _, e := range excluded {
		banned[e] = true
	}
	n := trans.Rows()
	selected := []int{first}
	inS := map[int]bool{first: true}
	for len(selected) < k {
		h := randomwalk.HittingTimeToSet(trans, inS, l)
		best, bestH := -1, -1.0
		for i := 0; i < n; i++ {
			if inS[i] || banned[i] {
				continue
			}
			if h[i] > bestH {
				best, bestH = i, h[i]
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		inS[best] = true
	}
	return selected
}

// BenchmarkHittingStageSeed is the full pre-PR hitting stage: walker
// construction through intermediate matrices plus the map/closure
// greedy selection.
func BenchmarkHittingStageSeed(b *testing.B) {
	c := benchCompact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trans := seedNewWalker(c, Config{})
		seedSelect(trans, 10, 1, 10, []int{0})
	}
}

func benchmarkHittingStage(b *testing.B, workers int) {
	c := benchCompact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWalker(c, Config{Workers: workers, Tolerance: -1})
		w.SelectDiverse(1, 10, []int{0}, nil)
	}
}

// BenchmarkHittingStage* run the rewritten stage (fused construction +
// flat kernel) at various worker counts, early exit disabled so the
// sweep count matches the seed exactly.
func BenchmarkHittingStage(b *testing.B)         { benchmarkHittingStage(b, 1) }
func BenchmarkHittingStageWorkers4(b *testing.B) { benchmarkHittingStage(b, 4) }
func BenchmarkHittingStageWorkers8(b *testing.B) { benchmarkHittingStage(b, 8) }

// BenchmarkNewWalker isolates walker construction.
func BenchmarkNewWalker(b *testing.B) {
	c := benchCompact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewWalker(c, Config{})
	}
}

// BenchmarkNewWalkerSeed isolates the pre-PR construction.
func BenchmarkNewWalkerSeed(b *testing.B) {
	c := benchCompact(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedNewWalker(c, Config{})
	}
}

// BenchmarkSelectDiverse isolates the greedy selection on a prepared
// walker.
func BenchmarkSelectDiverse(b *testing.B) {
	c := benchCompact(b)
	w := NewWalker(c, Config{Tolerance: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SelectDiverse(1, 10, []int{0}, nil)
	}
}

// BenchmarkSelectDiverseSeed isolates the pre-PR selection on the same
// prepared transition.
func BenchmarkSelectDiverseSeed(b *testing.B) {
	c := benchCompact(b)
	w := NewWalker(c, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedSelect(w.Transition(), 10, 1, 10, []int{0})
	}
}
