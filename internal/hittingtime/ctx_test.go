package hittingtime

import (
	"context"
	"errors"
	"testing"
)

// Cancellation between greedy rounds must return the partial selection
// together with ctx.Err().
func TestSelectDiverseCtxCancelled(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sel, err := wk.SelectDiverseCtx(ctx, 0, 5, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pre-chosen first candidate is returned as the partial list.
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("partial selection = %v, want [0]", sel)
	}
}

// The context-free wrapper must match the background-context variant.
func TestSelectDiverseCtxBackgroundMatches(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	plain := wk.SelectDiverse(0, 6, nil, nil)
	withCtx, err := wk.SelectDiverseCtx(context.Background(), 0, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(withCtx))
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("selections differ at %d: %v vs %v", i, plain, withCtx)
		}
	}
}
