// Package hittingtime implements the paper's cross-bipartite hitting
// time (Section IV-C, Eqs. 16–17, Algorithm 1): a random walker on the
// compact multi-bipartite representation that, at each step, either
// moves within its current bipartite or teleports to another bipartite
// before moving. Candidates are selected greedily by LARGEST truncated
// hitting time to the already-selected set — queries far (in walk
// distance) from everything chosen so far cover new facets, which is
// what produces diversity.
package hittingtime

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/obs"
	"repro/internal/randomwalk"
	"repro/internal/sparse"
)

// Config tunes candidate selection.
type Config struct {
	// Iterations is the paper's l: the truncation depth of the hitting
	// time recursion (default 10).
	Iterations int
	// Tolerance is the early-convergence threshold of each hitting-time
	// sweep: a round stops before l steps once no node's hitting time
	// moved by more than Tolerance in the last step (the recursion has
	// reached its fixed point to working precision, so further sweeps
	// cannot change the greedy argmax by more than Tolerance). Zero
	// selects the default 1e-9; negative runs the paper's fixed-l
	// recursion exactly.
	Tolerance float64
	// CrossView holds the teleport distribution over the three
	// bipartites. The paper uses equal weights absent prior knowledge;
	// the zero value means uniform 1/3 each.
	CrossView [bipartite.NumViews]float64
	// Workers partitions every hitting-time sweep across this many
	// goroutines (≤ 1 sequential). Selections are bit-identical for any
	// worker count — see randomwalk.TruncatedHittingTimeFlat.
	Workers int
	// Precision selects the sweep kernel's arithmetic width. Float32
	// halves the memory traffic of each sweep (the kernel is bandwidth
	// bound); hitting times drive a greedy argmax, so ~1e-7 relative
	// error is far below the gaps the selection discriminates on.
	// Defaults to float64.
	Precision sparse.Precision
}

// defaultTolerance is the Config.Tolerance zero-value default: far
// below any hitting-time gap the greedy argmax discriminates on, so
// early-exited selections match fixed-l selections in practice, while
// saturated recursions (everything reachable, short mixing time) stop
// paying for sweeps that no longer move anything.
const defaultTolerance = 1e-9

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.Tolerance == 0 {
		c.Tolerance = defaultTolerance
	}
	sum := 0.0
	for _, w := range c.CrossView {
		sum += w
	}
	if sum == 0 {
		for v := range c.CrossView {
			c.CrossView[v] = 1.0 / bipartite.NumViews
		}
	} else {
		for v := range c.CrossView {
			c.CrossView[v] /= sum
		}
	}
	return c
}

// Walker is the prepared cross-bipartite walk on one compact
// representation: the effective query→query transition after averaging
// the per-view intra-bipartite transitions P^X under the cross-view
// teleport distribution N (Eq. 16 with uniform N), plus the
// walk-invariant state the sweep kernel needs — per-row sums and
// dangling mass are a pure function of the immutable transition, so
// they are computed once here instead of once per greedy round.
type Walker struct {
	cfg      Config
	trans    *sparse.Matrix
	rowSum   []float64
	dangling []float64
}

// NewWalker builds the effective transition for the compact
// representation. Queries lacking edges in some view have their
// cross-view mass renormalized over the views where they do have edges,
// so no probability leaks.
//
// The construction is fused: Eq. 16's averaged transition
//
//	T[i,j] = Σ_X (N^X/avail_i) Σ_o W^X[i,o]·W^X[j,o] / (rowsum_i·colsum_o)
//
// is assembled in ONE Gustavson pass per row, scattering every view's
// normalized contribution into a shared dense accumulator. The previous
// pipeline materialized eight intermediate matrices per request (two
// row-normalized copies and one SpGEMM per view, then scale and merge
// passes) — on the per-request serving path the intermediates cost more
// than the arithmetic. Since compact columns are bounded by the budget,
// rows are emitted by scanning the accumulator (ascending order for
// free, no per-row sort).
func NewWalker(c *bipartite.Compact, cfg Config) *Walker {
	cfg = cfg.withDefaults()
	n := c.Size()
	// Per-view normalization state: the raw bipartite W, its transpose
	// (structure only — normalization happens on the fly), and the
	// row/column sums that QueryTransition's RowNormalized copies used
	// to bake into matrix values.
	type viewState struct {
		weight         float64
		w, wt          sparse.CSRView
		rowSum, colSum []float64
	}
	views := make([]viewState, 0, bipartite.NumViews)
	avail := make([]float64, n)
	for v := 0; v < bipartite.NumViews; v++ {
		wm := c.W[v]
		for i := 0; i < n; i++ {
			if wm.RowNNZ(i) > 0 {
				avail[i] += cfg.CrossView[v]
			}
		}
		if cfg.CrossView[v] == 0 {
			continue // contributes neither mass nor structure
		}
		wt := wm.Transpose()
		m := wm.Cols()
		vs := viewState{
			weight: cfg.CrossView[v],
			w:      wm.View(),
			wt:     wt.View(),
			rowSum: make([]float64, n),
			colSum: make([]float64, m),
		}
		for i := 0; i < n; i++ {
			vs.rowSum[i] = wm.RowSum(i)
		}
		for o := 0; o < m; o++ {
			vs.colSum[o] = wt.RowSum(o)
		}
		views = append(views, vs)
	}

	// Rows come out in ascending order and the accumulator scan emits
	// columns sorted, so the CSR arrays are assembled directly —
	// profiling showed the Builder's triplet buffering and sort costing
	// more than the scatter arithmetic itself. The scatter's flop count
	// bounds the output nnz, so one pass over the structure sizes the
	// arrays up front and append never reallocates.
	bound := 0
	for _, vs := range views {
		for _, o := range vs.w.ColIdx {
			bound += vs.wt.RowPtr[o+1] - vs.wt.RowPtr[o]
		}
	}
	if max := n * n; bound > max {
		bound = max
	}
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, bound)
	vals := make([]float64, 0, bound)
	acc := make([]float64, n)
	rowSum := make([]float64, n)
	dangling := make([]float64, n)
	for i := 0; i < n; i++ {
		if avail[i] != 0 {
			for _, vs := range views {
				if vs.rowSum[i] == 0 {
					continue
				}
				teleport := vs.weight / avail[i]
				for p := vs.w.RowPtr[i]; p < vs.w.RowPtr[i+1]; p++ {
					o := vs.w.ColIdx[p]
					if vs.colSum[o] == 0 {
						continue
					}
					a := teleport * vs.w.Val[p] / vs.rowSum[i] / vs.colSum[o]
					wtCol := vs.wt.ColIdx[vs.wt.RowPtr[o]:vs.wt.RowPtr[o+1]]
					wtVal := vs.wt.Val[vs.wt.RowPtr[o]:vs.wt.RowPtr[o+1]]
					// Pairwise unroll: each acc update stays a sequential
					// load-add-store, so results are bit-identical to the
					// rolled loop; only the loop overhead halves.
					q := 0
					for ; q+2 <= len(wtVal); q += 2 {
						acc[wtCol[q]] += a * wtVal[q]
						acc[wtCol[q+1]] += a * wtVal[q+1]
					}
					if q < len(wtVal) {
						acc[wtCol[q]] += a * wtVal[q]
					}
				}
			}
			// Emit the row and fold in the walk-invariant per-row state:
			// summing in emit order matches Matrix.RowSum's loop exactly,
			// so rowSum and dangling are bit-identical to the previous
			// post-hoc RowSum/DanglingMass passes.
			rs := 0.0
			for j := 0; j < n; j++ {
				if acc[j] != 0 {
					colIdx = append(colIdx, j)
					vals = append(vals, acc[j])
					rs += acc[j]
					acc[j] = 0
				}
			}
			rowSum[i] = rs
		}
		if d := 1 - rowSum[i]; d > 1e-12 {
			dangling[i] = d
		}
		rowPtr[i+1] = len(colIdx)
	}
	trans := sparse.FromCSR(n, n, rowPtr, colIdx, vals)
	return &Walker{cfg: cfg, trans: trans, rowSum: rowSum, dangling: dangling}
}

// walkerKey identifies one prepared walker in a compact's derived-value
// memo: the walker is a pure function of the compact and the (defaulted)
// selector config.
type walkerKey struct {
	cfg Config
}

// WalkerFor returns the compact's memoized walker for cfg, building it
// on first use. A Walker is immutable after construction (per-selection
// scratch lives in a package pool, not on the walker), so concurrent
// requests on a cached compact share one instance — and the fused
// Eq. 16 construction in NewWalker runs once per compact instead of
// once per request.
func WalkerFor(c *bipartite.Compact, cfg Config) *Walker {
	cfg = cfg.withDefaults()
	return c.Derived(walkerKey{cfg: cfg}, func() any {
		return NewWalker(c, cfg)
	}).(*Walker)
}

// Transition exposes the effective transition matrix (row-stochastic on
// non-isolated queries).
func (w *Walker) Transition() *sparse.Matrix { return w.trans }

// RowSums exposes the precomputed per-row transition mass (read-only).
func (w *Walker) RowSums() []float64 { return w.rowSum }

// selectScratch is the per-request working set of one greedy selection:
// the sweep's two n-vectors plus the membership and exclusion masks.
// Walkers are built per request (over each request's compact
// representation), so the pool is package-level — scratch outlives any
// one Walker and is recycled across concurrent requests. Sized for the
// compact budget (a few hundred queries), so a pooled entry is a few KB.
type selectScratch struct {
	sweep  randomwalk.SweepScratch
	inS    []bool
	banned []bool
}

var selectPool = sync.Pool{New: func() any { return new(selectScratch) }}

// reset readies the scratch for an n-query selection with empty masks.
func (sc *selectScratch) reset(n int) {
	sc.sweep.Resize(n)
	if cap(sc.inS) < n {
		sc.inS = make([]bool, n)
		sc.banned = make([]bool, n)
	}
	sc.inS = sc.inS[:n]
	sc.banned = sc.banned[:n]
	for i := range sc.inS {
		sc.inS[i] = false
		sc.banned[i] = false
	}
}

// HittingTime returns the truncated expected hitting time of every
// query to the set S (compact-local indices). The returned slice is
// freshly allocated (it does not alias pooled scratch).
func (w *Walker) HittingTime(s map[int]bool) []float64 {
	n := w.trans.Rows()
	sc := selectPool.Get().(*selectScratch)
	defer selectPool.Put(sc)
	sc.reset(n)
	for i, in := range s {
		if in && i >= 0 && i < n {
			sc.inS[i] = true
		}
	}
	h, _ := w.hit(sc)
	return append([]float64(nil), h...)
}

// effectiveWorkers clamps the configured sweep parallelism to the
// runtime's usable CPUs: goroutines beyond GOMAXPROCS only add
// scheduling overhead, and the kernel's determinism contract makes the
// results bit-identical at any count, so the clamp is unobservable in
// the output. (The randomwalk kernel itself honors explicit counts —
// its parity tests force oversubscribed partitions on purpose.)
func (w *Walker) effectiveWorkers() int {
	if max := runtime.GOMAXPROCS(0); w.cfg.Workers > max {
		return max
	}
	return w.cfg.Workers
}

// hit runs one truncated hitting-time sweep with the walker's
// precomputed dangling mass and the scratch's membership mask,
// returning the (scratch-aliased) hitting times and the sweeps run.
func (w *Walker) hit(sc *selectScratch) ([]float64, int) {
	return randomwalk.TruncatedHittingTimeFlat(w.trans, sc.inS, randomwalk.HittingTimeOpts{
		Steps:     w.cfg.Iterations,
		Tol:       w.cfg.Tolerance,
		Workers:   w.effectiveWorkers(),
		Dangling:  w.dangling,
		Scratch:   &sc.sweep,
		Precision: w.cfg.Precision,
	})
}

// SelectDiverse runs Algorithm 1's greedy loop: starting from the
// already-chosen first candidate, repeatedly add the query with the
// largest truncated hitting time to the selected set until k candidates
// are chosen (or no eligible query remains). excluded lists
// compact-local indices that may never be suggested (the input query
// and its search context). pool, when non-nil, restricts candidacy to
// the given compact-local indices — PQS-DA passes the top queries by
// regularization relevance F*, so diversification spreads over facets
// WITHOUT drifting into barely-related queries (the relevance gate that
// keeps Fig. 3(c,d)'s relevance high). The returned slice is in
// discovery order — the ranked candidate list of the diversification
// component.
func (w *Walker) SelectDiverse(first int, k int, excluded []int, pool []int) []int {
	sel, _ := w.SelectDiverseCtx(context.Background(), first, k, excluded, pool)
	return sel
}

// SelectDiverseCtx is SelectDiverse with request-scoped cancellation:
// the context is checked before every greedy round (each round is one
// truncated hitting-time computation over the compact graph). On
// cancellation it returns the candidates selected so far together with
// ctx.Err(), so a serving deadline yields a usable partial list.
//
// The greedy loop is observable: with an obs trace on the context it
// records a "greedy_select" span (rounds, selected, executed walk
// steps, workers, pool size), and with a metric sink it feeds the
// hitting-round and walk-step depth histograms. Walk steps are the
// sweeps actually executed — with the early-convergence exit enabled
// this is at most, not exactly, rounds × l. Both no-op otherwise.
func (w *Walker) SelectDiverseCtx(ctx context.Context, first int, k int, excluded []int, pool []int) (selected []int, err error) {
	n := w.trans.Rows()
	if k <= 0 || first < 0 || first >= n {
		return nil, nil
	}
	sp := obs.StartSpan(ctx, "greedy_select")
	rounds, walkSteps := 0, 0
	defer func() {
		obs.Observe(ctx, obs.MetricHittingRounds, float64(rounds))
		obs.Observe(ctx, obs.MetricHittingWalkSteps, float64(walkSteps))
		if sp != nil {
			sp.SetAttr("rounds", rounds)
			sp.SetAttr("selected", len(selected))
			sp.SetAttr("walkDepth", w.cfg.Iterations)
			sp.SetAttr("walkSteps", walkSteps)
			sp.SetAttr("workers", w.cfg.Workers)
			sp.SetAttr("poolSize", len(pool))
			sp.SetAttr("cancelled", err != nil)
			sp.End()
		}
	}()
	sc := selectPool.Get().(*selectScratch)
	defer selectPool.Put(sc)
	sc.reset(n)
	for _, e := range excluded {
		if e >= 0 && e < n {
			sc.banned[e] = true
		}
	}
	candidates := make([]int, 0, n)
	if pool != nil {
		seen := make(map[int]bool, len(pool))
		for _, p := range pool {
			if p >= 0 && p < n && !seen[p] {
				seen[p] = true
				candidates = append(candidates, p)
			}
		}
		if !seen[first] {
			candidates = append(candidates, first)
		}
	} else {
		for i := 0; i < n; i++ {
			candidates = append(candidates, i)
		}
	}
	selected = []int{first}
	sc.inS[first] = true
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		h, iters := w.hit(sc)
		rounds++
		walkSteps += iters
		best, bestH := -1, -1.0
		for _, i := range candidates {
			if sc.inS[i] || sc.banned[i] {
				continue
			}
			if h[i] > bestH { // ties resolve to the first candidate listed
				best, bestH = i, h[i]
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		sc.inS[best] = true
	}
	return selected, nil
}
