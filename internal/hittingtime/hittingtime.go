// Package hittingtime implements the paper's cross-bipartite hitting
// time (Section IV-C, Eqs. 16–17, Algorithm 1): a random walker on the
// compact multi-bipartite representation that, at each step, either
// moves within its current bipartite or teleports to another bipartite
// before moving. Candidates are selected greedily by LARGEST truncated
// hitting time to the already-selected set — queries far (in walk
// distance) from everything chosen so far cover new facets, which is
// what produces diversity.
package hittingtime

import (
	"context"

	"repro/internal/bipartite"
	"repro/internal/obs"
	"repro/internal/randomwalk"
	"repro/internal/sparse"
)

// Config tunes candidate selection.
type Config struct {
	// Iterations is the paper's l: the truncation depth of the hitting
	// time recursion (default 10).
	Iterations int
	// CrossView holds the teleport distribution over the three
	// bipartites. The paper uses equal weights absent prior knowledge;
	// the zero value means uniform 1/3 each.
	CrossView [bipartite.NumViews]float64
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	sum := 0.0
	for _, w := range c.CrossView {
		sum += w
	}
	if sum == 0 {
		for v := range c.CrossView {
			c.CrossView[v] = 1.0 / bipartite.NumViews
		}
	} else {
		for v := range c.CrossView {
			c.CrossView[v] /= sum
		}
	}
	return c
}

// Walker is the prepared cross-bipartite walk on one compact
// representation: the effective query→query transition after averaging
// the per-view intra-bipartite transitions P^X under the cross-view
// teleport distribution N (Eq. 16 with uniform N).
type Walker struct {
	cfg   Config
	trans *sparse.Matrix
}

// NewWalker builds the effective transition for the compact
// representation. Queries lacking edges in some view have their
// cross-view mass renormalized over the views where they do have edges,
// so no probability leaks.
func NewWalker(c *bipartite.Compact, cfg Config) *Walker {
	cfg = cfg.withDefaults()
	n := c.Size()
	var per [bipartite.NumViews]*sparse.Matrix
	for v := 0; v < bipartite.NumViews; v++ {
		per[v] = c.QueryTransition(bipartite.View(v))
	}
	// Availability-weighted teleport: views with an empty row for a
	// query are excluded and the rest rescaled, so no probability
	// leaks. Each view is row-rescaled in place (structure reuse), then
	// the three are merged.
	avail := make([]float64, n)
	for i := 0; i < n; i++ {
		for v := 0; v < bipartite.NumViews; v++ {
			if per[v].RowNNZ(i) > 0 {
				avail[i] += cfg.CrossView[v]
			}
		}
	}
	var acc *sparse.Matrix
	for v := 0; v < bipartite.NumViews; v++ {
		w := cfg.CrossView[v]
		scaled := per[v].ScaleSym(func(i, j int) float64 {
			if avail[i] == 0 {
				return 0
			}
			return w / avail[i]
		})
		if acc == nil {
			acc = scaled
		} else {
			acc = sparse.Add(acc, scaled, 1)
		}
	}
	return &Walker{cfg: cfg, trans: acc}
}

// Transition exposes the effective transition matrix (row-stochastic on
// non-isolated queries).
func (w *Walker) Transition() *sparse.Matrix { return w.trans }

// HittingTime returns the truncated expected hitting time of every
// query to the set S (compact-local indices).
func (w *Walker) HittingTime(s map[int]bool) []float64 {
	return randomwalk.HittingTimeToSet(w.trans, s, w.cfg.Iterations)
}

// SelectDiverse runs Algorithm 1's greedy loop: starting from the
// already-chosen first candidate, repeatedly add the query with the
// largest truncated hitting time to the selected set until k candidates
// are chosen (or no eligible query remains). excluded lists
// compact-local indices that may never be suggested (the input query
// and its search context). pool, when non-nil, restricts candidacy to
// the given compact-local indices — PQS-DA passes the top queries by
// regularization relevance F*, so diversification spreads over facets
// WITHOUT drifting into barely-related queries (the relevance gate that
// keeps Fig. 3(c,d)'s relevance high). The returned slice is in
// discovery order — the ranked candidate list of the diversification
// component.
func (w *Walker) SelectDiverse(first int, k int, excluded []int, pool []int) []int {
	sel, _ := w.SelectDiverseCtx(context.Background(), first, k, excluded, pool)
	return sel
}

// SelectDiverseCtx is SelectDiverse with request-scoped cancellation:
// the context is checked before every greedy round (each round is one
// l-step truncated hitting-time computation over the compact graph).
// On cancellation it returns the candidates selected so far together
// with ctx.Err(), so a serving deadline yields a usable partial list.
//
// The greedy loop is observable: with an obs trace on the context it
// records a "greedy_select" span (rounds, selected, pool size), and
// with a metric sink it feeds the hitting-round and walk-step depth
// histograms (walk steps = rounds × truncation depth l). Both no-op
// otherwise.
func (w *Walker) SelectDiverseCtx(ctx context.Context, first int, k int, excluded []int, pool []int) (selected []int, err error) {
	n := w.trans.Rows()
	if k <= 0 || first < 0 || first >= n {
		return nil, nil
	}
	sp := obs.StartSpan(ctx, "greedy_select")
	rounds := 0
	defer func() {
		obs.Observe(ctx, obs.MetricHittingRounds, float64(rounds))
		obs.Observe(ctx, obs.MetricHittingWalkSteps, float64(rounds*w.cfg.Iterations))
		if sp != nil {
			sp.SetAttr("rounds", rounds)
			sp.SetAttr("selected", len(selected))
			sp.SetAttr("walkDepth", w.cfg.Iterations)
			sp.SetAttr("poolSize", len(pool))
			sp.SetAttr("cancelled", err != nil)
			sp.End()
		}
	}()
	banned := make(map[int]bool, len(excluded))
	for _, e := range excluded {
		banned[e] = true
	}
	candidates := make([]int, 0, n)
	if pool != nil {
		seen := make(map[int]bool, len(pool))
		for _, p := range pool {
			if p >= 0 && p < n && !seen[p] {
				seen[p] = true
				candidates = append(candidates, p)
			}
		}
		if !seen[first] {
			candidates = append(candidates, first)
		}
	} else {
		for i := 0; i < n; i++ {
			candidates = append(candidates, i)
		}
	}
	selected = []int{first}
	inS := map[int]bool{first: true}
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return selected, err
		}
		h := w.HittingTime(inS)
		rounds++
		best, bestH := -1, -1.0
		for _, i := range candidates {
			if inS[i] || banned[i] {
				continue
			}
			if h[i] > bestH { // ties resolve to the first candidate listed
				best, bestH = i, h[i]
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		inS[best] = true
	}
	return selected, nil
}
