package hittingtime

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
)

func compactFixture(t *testing.T) (*synth.World, *bipartite.Representation, *bipartite.Compact) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 17, NumFacets: 6, NumUsers: 15, SessionsPerUser: 10})
	rep := bipartite.Build(w.Log, querylog.SessionizerConfig{}, bipartite.CFIQF)
	c := rep.BuildCompact([]int{0}, bipartite.CompactConfig{Budget: 40})
	return w, rep, c
}

func TestWalkerTransitionStochastic(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	tr := wk.Transition()
	if tr.Rows() != c.Size() {
		t.Fatalf("transition rows %d != %d", tr.Rows(), c.Size())
	}
	for i := 0; i < tr.Rows(); i++ {
		s := tr.RowSum(i)
		if s != 0 && math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
}

func TestWalkerCrossViewWeights(t *testing.T) {
	_, _, c := compactFixture(t)
	// Degenerate teleport: everything through the term view only.
	only := Config{CrossView: [bipartite.NumViews]float64{0, 0, 1}}
	wk := NewWalker(c, only)
	term := c.QueryTransition(bipartite.ViewTerm)
	tr := wk.Transition()
	for i := 0; i < tr.Rows(); i++ {
		if term.RowNNZ(i) == 0 {
			// With zero weight on available views, mass renormalizes to
			// the views with edges — here only term view counts, so the
			// row must be empty.
			if tr.RowNNZ(i) != 0 {
				t.Errorf("row %d should be empty", i)
			}
			continue
		}
		term.Row(i, func(j int, v float64) {
			if math.Abs(tr.At(i, j)-v) > 1e-9 {
				t.Errorf("(%d,%d): %v != %v", i, j, tr.At(i, j), v)
			}
		})
	}
}

func TestHittingTimeZeroOnSelected(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	h := wk.HittingTime(map[int]bool{0: true, 3: true})
	if h[0] != 0 || h[3] != 0 {
		t.Errorf("h on S = %v, %v; want 0", h[0], h[3])
	}
	for i, v := range h {
		if i != 0 && i != 3 && v < 1 {
			t.Errorf("h[%d] = %v < 1 off S", i, v)
		}
	}
}

func TestSelectDiverseBasics(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	k := 5
	sel := wk.SelectDiverse(1, k, []int{0}, nil)
	if len(sel) != k {
		t.Fatalf("selected %d, want %d", len(sel), k)
	}
	if sel[0] != 1 {
		t.Error("first candidate not preserved")
	}
	seen := make(map[int]bool)
	for _, s := range sel {
		if seen[s] {
			t.Fatal("duplicate selection")
		}
		if s == 0 {
			t.Fatal("excluded query selected")
		}
		seen[s] = true
	}
}

func TestSelectDiverseBudgetExhaustion(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	// Ask for more than exist: should stop at the available count.
	sel := wk.SelectDiverse(1, c.Size()+10, []int{0}, nil)
	if len(sel) > c.Size()-1 {
		t.Fatalf("selected %d out of %d possible", len(sel), c.Size()-1)
	}
}

func TestSelectDiverseInvalidArgs(t *testing.T) {
	_, _, c := compactFixture(t)
	wk := NewWalker(c, Config{})
	if got := wk.SelectDiverse(-1, 3, nil, nil); got != nil {
		t.Errorf("negative first gave %v", got)
	}
	if got := wk.SelectDiverse(0, 0, nil, nil); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
}

func TestSelectDiverseSpreadsAcrossFacets(t *testing.T) {
	// The greedy max-hitting-time rule should cover more facets than a
	// pure relevance ranking around one facet. We check it reaches at
	// least 2 distinct facets among 6 when the compact holds several.
	w, rep, c := compactFixture(t)
	facetsInCompact := make(map[int]bool)
	for _, q := range c.QueryIDs {
		if f := w.QueryFacet(rep.Queries.Name(q)); f >= 0 {
			facetsInCompact[f] = true
		}
	}
	if len(facetsInCompact) < 2 {
		t.Skip("compact covers a single facet; nothing to diversify")
	}
	wk := NewWalker(c, Config{})
	sel := wk.SelectDiverse(1, 6, []int{0}, nil)
	got := make(map[int]bool)
	for _, s := range sel {
		if f := w.QueryFacet(c.QueryName(s)); f >= 0 {
			got[f] = true
		}
	}
	if len(got) < 2 {
		t.Errorf("diversified selection covers %d facet(s), want ≥ 2 (compact had %d)", len(got), len(facetsInCompact))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Iterations != 10 {
		t.Errorf("Iterations = %d", c.Iterations)
	}
	sum := 0.0
	for _, w := range c.CrossView {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("CrossView sums to %v", sum)
	}
	// Custom weights are normalized.
	c2 := Config{CrossView: [bipartite.NumViews]float64{2, 2, 4}}.withDefaults()
	if math.Abs(c2.CrossView[2]-0.5) > 1e-12 {
		t.Errorf("normalized CrossView = %v", c2.CrossView)
	}
}

// TestWalkerForMemoized pins the walker memo: repeated WalkerFor calls
// on one compact share an instance, a different config builds its own,
// and the memoized walker selects exactly what a fresh NewWalker does.
func TestWalkerForMemoized(t *testing.T) {
	_, _, c := compactFixture(t)
	cfg := Config{Iterations: 8}
	w1 := WalkerFor(c, cfg)
	if w2 := WalkerFor(c, cfg); w2 != w1 {
		t.Fatal("same config rebuilt the walker")
	}
	if w3 := WalkerFor(c, Config{Iterations: 3}); w3 == w1 {
		t.Fatal("different config shared a walker")
	}

	fresh := NewWalker(c, cfg)
	pool := make([]int, c.Size())
	for i := range pool {
		pool[i] = i
	}
	got := w1.SelectDiverse(0, 5, nil, pool)
	want := fresh.SelectDiverse(0, 5, nil, pool)
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}
