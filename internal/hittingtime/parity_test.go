package hittingtime

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/obs"
	"repro/internal/randomwalk"
	"repro/internal/sparse"
)

// TestFusedConstructionMatchesReference pins the fused one-pass walker
// construction against the reference pipeline built from the public
// bipartite/sparse APIs (per-view QueryTransition, ScaleSym by the
// renormalized cross-view weight, Add): identical structure and values
// to 1e-12, plus bit-identical precomputed row sums and dangling mass
// versus the post-hoc RowSum/DanglingMass derivations they replaced.
func TestFusedConstructionMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{}},
		{"skewed", Config{CrossView: [bipartite.NumViews]float64{3, 1, 2}}},
		{"single-view", Config{CrossView: [bipartite.NumViews]float64{0, 0, 1}}},
	}
	_, _, small := compactFixture(t)
	big := benchCompact(t)
	for _, fix := range []struct {
		name string
		c    *bipartite.Compact
	}{{"small", small}, {"big", big}} {
		for _, tc := range cases {
			t.Run(fix.name+"/"+tc.name, func(t *testing.T) {
				want := seedNewWalker(fix.c, tc.cfg)
				wk := NewWalker(fix.c, tc.cfg)
				got := wk.Transition()
				if !sparse.Equal(got, want, 1e-12) {
					t.Fatal("fused transition differs from reference pipeline")
				}
				for i := 0; i < got.Rows(); i++ {
					if rs := got.RowSum(i); wk.RowSums()[i] != rs {
						t.Fatalf("rowSum[%d] = %v, RowSum %v", i, wk.RowSums()[i], rs)
					}
				}
				dangling := randomwalk.DanglingMass(got)
				for i, d := range dangling {
					if wk.dangling[i] != d {
						t.Fatalf("dangling[%d] = %v, DanglingMass %v", i, wk.dangling[i], d)
					}
				}
			})
		}
	}
}

// TestSelectDiverseWorkersBitIdentical is the stage-level determinism
// contract: the greedy selection is byte-identical for every worker
// count, with and without the early-convergence exit.
func TestSelectDiverseWorkersBitIdentical(t *testing.T) {
	c := benchCompact(t)
	for _, tol := range []float64{-1, 0} { // fixed-l and default early exit
		ref := NewWalker(c, Config{Tolerance: tol}).SelectDiverse(1, 10, []int{0}, nil)
		for _, workers := range []int{0, 1, 2, 7, 64} {
			got := NewWalker(c, Config{Tolerance: tol, Workers: workers}).SelectDiverse(1, 10, []int{0}, nil)
			if len(got) != len(ref) {
				t.Fatalf("tol %v workers %d: selected %d, want %d", tol, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("tol %v workers %d: selection differs at %d: %v vs %v",
						tol, workers, i, got, ref)
				}
			}
		}
	}
}

// TestSelectDiverseMatchesSeedGreedy pins the rewritten stage against
// the seed implementation end to end: the reference greedy loop (map
// membership, closure kernel, fresh vectors) over the reference
// transition must produce the exact selection the flat pooled kernel
// produces, on both fixtures.
func TestSelectDiverseMatchesSeedGreedy(t *testing.T) {
	_, _, small := compactFixture(t)
	for _, fix := range []struct {
		name string
		c    *bipartite.Compact
	}{{"small", small}, {"big", benchCompact(t)}} {
		t.Run(fix.name, func(t *testing.T) {
			wk := NewWalker(fix.c, Config{Tolerance: -1}) // seed has no early exit
			want := seedSelect(seedNewWalker(fix.c, Config{}), 10, 1, 10, []int{0})
			got := wk.SelectDiverse(1, 10, []int{0}, nil)
			if len(got) != len(want) {
				t.Fatalf("selected %d, seed selected %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("selection differs at %d: %v vs seed %v", i, got, want)
				}
			}
		})
	}
}

// TestSelectDiverseConcurrentPooledScratch hammers one walker from many
// goroutines (run under -race in CI): the package-level scratch pool
// must never bleed state between concurrent selections, so every result
// matches the sequential reference exactly.
func TestSelectDiverseConcurrentPooledScratch(t *testing.T) {
	c := benchCompact(t)
	wk := NewWalker(c, Config{Workers: 2})
	ref := wk.SelectDiverse(1, 8, []int{0}, nil)
	refH := wk.HittingTime(map[int]bool{1: true})
	const goroutines, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sel := wk.SelectDiverse(1, 8, []int{0}, nil)
				for i := range ref {
					if sel[i] != ref[i] {
						errs <- "selection diverged under concurrency"
						return
					}
				}
				h := wk.HittingTime(map[int]bool{1: true})
				for i := range refH {
					if h[i] != refH[i] {
						errs <- "hitting times diverged under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// captureSink records the last observation per metric name.
type captureSink struct {
	mu   sync.Mutex
	last map[string]float64
}

func (s *captureSink) Observe(name string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		s.last = map[string]float64{}
	}
	s.last[name] = v
}

// TestWalkStepsMetricCountsExecutedSweeps checks the telemetry
// contract: the walk-steps histogram receives the sweeps actually
// executed. With a deep truncation horizon and the default tolerance
// the early exit fires, so walkSteps must land strictly between rounds
// (≥ 1 sweep each) and rounds × l — and the early-exited selection must
// still match the fixed-l one.
func TestWalkStepsMetricCountsExecutedSweeps(t *testing.T) {
	c := benchCompact(t)
	const l = 2000
	fixed := NewWalker(c, Config{Iterations: l, Tolerance: -1}).SelectDiverse(1, 6, []int{0}, nil)

	sink := &captureSink{}
	ctx := obs.WithSink(t.Context(), sink)
	wk := NewWalker(c, Config{Iterations: l}) // default tolerance: early exit armed
	sel, err := wk.SelectDiverseCtx(ctx, 1, 6, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fixed {
		if sel[i] != fixed[i] {
			t.Fatalf("early-exited selection %v differs from fixed-l %v", sel, fixed)
		}
	}
	rounds := sink.last[obs.MetricHittingRounds]
	steps := sink.last[obs.MetricHittingWalkSteps]
	if rounds != 5 {
		t.Fatalf("rounds = %v, want 5 (k−1 greedy rounds)", rounds)
	}
	if steps < rounds || steps >= rounds*l {
		t.Fatalf("walkSteps = %v, want in [rounds, rounds*l) = [%v, %v)", steps, rounds, rounds*l)
	}
	if math.Mod(steps, 1) != 0 {
		t.Fatalf("walkSteps %v not integral", steps)
	}
}
