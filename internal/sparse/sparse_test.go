package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 5)
	b.Add(0, 1, 3) // duplicate, must sum
	m := b.Build()
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5 (duplicates summed)", got)
	}
	if got := m.At(2, 3); got != 5 {
		t.Errorf("At(2,3) = %v, want 5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderDropsExactZeros(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Add(1, 1, 3)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled entry dropped)", m.NNZ())
	}
}

func TestBuilderReusable(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 1)
	m1 := b.Build()
	m2 := b.Build()
	if !Equal(m1, m2, 0) {
		t.Error("two Builds of the same builder differ")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := m.MulVec(x, nil)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x mismatch at %d: %v != %v", i, y[i], x[i])
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := Diagonal([]float64{2, 0, 3})
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(2, 2) != 3 || m.At(1, 1) != 0 {
		t.Error("Diagonal entries wrong")
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	b := NewBuilder(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				b.Add(r, c, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomMatrix(rng, rows, cols, 0.4)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x, nil)
		for r := 0; r < rows; r++ {
			want := 0.0
			for c := 0; c < cols; c++ {
				want += m.At(r, c) * x[c]
			}
			if !almostEq(got[r], want, 1e-12) {
				t.Fatalf("trial %d row %d: got %v want %v", trial, r, got[r], want)
			}
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		m := randomMatrix(rng, rows, cols, 0.5)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVecT(x, nil)
		want := m.Transpose().MulVec(x, nil)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("trial %d idx %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 7, 5, 0.5)
	if !Equal(m, m.Transpose().Transpose(), 0) {
		t.Error("transpose twice is not identity")
	}
}

func TestRowNormalizedStochastic(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(0, 2, 6)
	b.Add(2, 1, 5)
	m := b.Build().RowNormalized()
	if !almostEq(m.RowSum(0), 1, 1e-12) {
		t.Errorf("row 0 sum = %v, want 1", m.RowSum(0))
	}
	if m.RowSum(1) != 0 {
		t.Errorf("empty row sum = %v, want 0", m.RowSum(1))
	}
	if !almostEq(m.At(0, 2), 0.75, 1e-12) {
		t.Errorf("At(0,2) = %v, want 0.75", m.At(0, 2))
	}
}

func TestAddMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 6, 6, 0.3)
	b := randomMatrix(rng, 6, 6, 0.3)
	s := Add(a, b, -2)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			want := a.At(r, c) - 2*b.At(r, c)
			if !almostEq(s.At(r, c), want, 1e-12) {
				t.Fatalf("(%d,%d): got %v want %v", r, c, s.At(r, c), want)
			}
		}
	}
}

func TestMulMatAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n, k, p := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(rng, n, k, 0.5)
		b := randomMatrix(rng, k, p, 0.5)
		c := MulMat(a, b)
		for r := 0; r < n; r++ {
			for cc := 0; cc < p; cc++ {
				want := 0.0
				for j := 0; j < k; j++ {
					want += a.At(r, j) * b.At(j, cc)
				}
				if !almostEq(c.At(r, cc), want, 1e-10) {
					t.Fatalf("trial %d (%d,%d): got %v want %v", trial, r, cc, c.At(r, cc), want)
				}
			}
		}
	}
}

func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 5, 5, 0.5)
	s := m.Scale(3)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if !almostEq(s.At(r, c), 3*m.At(r, c), 1e-12) {
				t.Fatalf("scale mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestDiagAndMaxAbs(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, -7)
	b.Add(1, 2, 4)
	m := b.Build()
	d := m.Diag()
	if d[0] != -7 || d[1] != 0 || d[2] != 0 {
		t.Errorf("Diag = %v", d)
	}
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", m.MaxAbs())
	}
}

// Property: (A+B)x == Ax + Bx for random same-shaped matrices.
func TestPropertyAddDistributes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n, 0.4)
		b := randomMatrix(rng, n, n, 0.4)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := Add(a, b, 1).MulVec(x, nil)
		ax := a.MulVec(x, nil)
		bx := b.MulVec(x, nil)
		for i := range lhs {
			if !almostEq(lhs[i], ax[i]+bx[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: row sums of a row-normalized nonnegative matrix are 0 or 1.
func TestPropertyRowNormalized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		b := NewBuilder(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if rng.Float64() < 0.3 {
					b.Add(r, c, rng.Float64()+0.01)
				}
			}
		}
		m := b.Build().RowNormalized()
		for r := 0; r < n; r++ {
			s := m.RowSum(r)
			if s != 0 && !almostEq(s, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
