// Package sparse provides compressed sparse row (CSR) matrices and the
// small set of sparse linear-algebra operations the PQS-DA pipeline needs:
// matrix-vector products, transposition, row normalization, scaling and
// element-wise combination. It also houses the iterative solvers used for
// the regularization framework's linear system (Eq. 15 of the paper).
//
// Everything is dense-free and allocation-conscious: matrices are built
// through a COO Builder and then frozen into immutable CSR form.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Matrix is an immutable sparse matrix in compressed sparse row form.
// The zero value is an empty 0x0 matrix.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // length rows+1
	colIdx     []int     // length nnz
	val        []float64 // length nnz

	// val32 is a lazily-built float32 mirror of val for the reduced-
	// precision kernels (SolveOptions.Precision). Because the matrix is
	// immutable the mirror is computed at most once per matrix in
	// practice; a racing double-build stores identical values, so the
	// last-writer-wins semantics of Store are safe. The atomic.Pointer
	// also makes the struct non-copyable by value, which `go vet`
	// enforces — all construction in this package goes through &Matrix{}
	// literals.
	val32 atomic.Pointer[[]float32]
}

// Builder accumulates (row, col, value) triplets and produces a CSR Matrix.
// Duplicate entries for the same coordinate are summed when Build is called.
type Builder struct {
	rows, cols int
	entries    []triplet
}

type triplet struct {
	r, c int
	v    float64
}

// NewBuilder returns a Builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (r, c). Adding to the same coordinate repeatedly
// sums the contributions. Zero values are kept until Build, which drops
// coordinates whose accumulated sum is exactly zero.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, triplet{r, c, v})
}

// NNZBound returns the number of accumulated triplets (an upper bound on
// the nnz of the built matrix).
func (b *Builder) NNZBound() int { return len(b.entries) }

// tripletSorter orders triplets by (row, col) without reflection —
// Build dominates several hot paths, and sort.Slice's reflective swaps
// are measurably slower.
type tripletSorter []triplet

func (t tripletSorter) Len() int      { return len(t) }
func (t tripletSorter) Swap(i, j int) { t[i], t[j] = t[j], t[i] }
func (t tripletSorter) Less(i, j int) bool {
	if t[i].r != t[j].r {
		return t[i].r < t[j].r
	}
	return t[i].c < t[j].c
}

// Build freezes the accumulated triplets into a CSR matrix. The Builder
// may be reused afterwards; its contents are not consumed.
func (b *Builder) Build() *Matrix {
	ents := make([]triplet, len(b.entries))
	copy(ents, b.entries)
	sort.Sort(tripletSorter(ents))
	// Merge duplicates.
	out := ents[:0]
	for _, e := range ents {
		if n := len(out); n > 0 && out[n-1].r == e.r && out[n-1].c == e.c {
			out[n-1].v += e.v
		} else {
			out = append(out, e)
		}
	}
	// Drop exact zeros.
	kept := out[:0]
	for _, e := range out {
		if e.v != 0 {
			kept = append(kept, e)
		}
	}
	m := &Matrix{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int, b.rows+1),
		colIdx: make([]int, len(kept)),
		val:    make([]float64, len(kept)),
	}
	for i, e := range kept {
		m.rowPtr[e.r+1]++
		m.colIdx[i] = e.c
		m.val[i] = e.v
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := &Matrix{
		rows:   n,
		cols:   n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, n),
		val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] = i + 1
		m.colIdx[i] = i
		m.val[i] = 1
	}
	return m
}

// ScaledIdentity returns s·I directly, saving the copy Identity(n).Scale(s)
// would make — the Eq. 15 system assembly starts from (1+Σα)I on every
// uncached request.
func ScaledIdentity(n int, s float64) *Matrix {
	m := &Matrix{
		rows:   n,
		cols:   n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, n),
		val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] = i + 1
		m.colIdx[i] = i
		m.val[i] = s
	}
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d []float64) *Matrix {
	n := len(d)
	b := NewBuilder(n, n)
	for i, v := range d {
		if v != 0 {
			b.Add(i, i, v)
		}
	}
	return b.Build()
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// At returns the value at (r, c), zero when the coordinate is not stored.
// It is O(log nnz(row)) and intended for tests and small matrices; hot
// paths should iterate rows instead.
func (m *Matrix) At(r, c int) float64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	i := sort.SearchInts(m.colIdx[lo:hi], c) + lo
	if i < hi && m.colIdx[i] == c {
		return m.val[i]
	}
	return 0
}

// Row calls fn for each stored entry (col, value) in row r, in ascending
// column order.
func (m *Matrix) Row(r int, fn func(c int, v float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		fn(m.colIdx[i], m.val[i])
	}
}

// CSRView is a read-only view of a Matrix's CSR arrays, for flat kernels
// that cannot afford a dynamic call per nonzero (the hitting-time sweep
// in internal/randomwalk iterates the whole matrix l times per greedy
// round — a closure callback there is the dominant cost). The slices
// alias the matrix's backing arrays: callers MUST NOT modify them, and
// must not retain them past the matrix's lifetime. Row r's entries live
// at indices RowPtr[r] ≤ i < RowPtr[r+1] of ColIdx/Val, columns
// ascending.
type CSRView struct {
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// View returns the matrix's CSR arrays as a read-only view.
func (m *Matrix) View() CSRView {
	return CSRView{RowPtr: m.rowPtr, ColIdx: m.colIdx, Val: m.val}
}

// CSRView32 is CSRView with the values narrowed to float32, for the
// reduced-precision kernels. RowPtr and ColIdx alias the float64
// matrix; Val is the float32 mirror. The same aliasing rules as
// CSRView apply.
type CSRView32 struct {
	RowPtr []int
	ColIdx []int
	Val    []float32
}

// View32 returns the matrix's CSR arrays with a float32 value mirror,
// building the mirror on first use. Snapshot construction calls
// Prewarm32 so serving-path calls never pay the O(nnz) conversion.
func (m *Matrix) View32() CSRView32 {
	if p := m.val32.Load(); p != nil {
		return CSRView32{RowPtr: m.rowPtr, ColIdx: m.colIdx, Val: *p}
	}
	v := make([]float32, len(m.val))
	for i, x := range m.val {
		v[i] = float32(x)
	}
	m.val32.Store(&v)
	return CSRView32{RowPtr: m.rowPtr, ColIdx: m.colIdx, Val: v}
}

// Prewarm32 eagerly builds the float32 value mirror (idempotent).
func (m *Matrix) Prewarm32() { m.View32() }

// FromCSR freezes already-assembled CSR arrays into a Matrix, taking
// ownership of the slices (callers must not retain or modify them).
// It is the fast path for kernels that emit rows in ascending order
// with sorted, duplicate-free columns — for those the Builder's triplet
// buffering and sort are pure overhead. Requirements, checked in one
// O(nnz) pass: rowPtr has length rows+1, starts at 0, is monotonically
// non-decreasing and ends at len(colIdx) == len(val); within each row
// column indices are strictly increasing and inside [0, cols).
func FromCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *Matrix {
	m, err := FromCSRChecked(rows, cols, rowPtr, colIdx, val)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// FromCSRChecked is FromCSR with an error return instead of a panic:
// the construction path for CSR arrays read from an untrusted buffer
// (the snapshot wire format), where malformed input must surface as a
// load error, never a crash. The arrays are adopted, not copied, so
// kernels run directly on arena (possibly mmap'd) data.
func FromCSRChecked(rows, cols int, rowPtr, colIdx []int, val []float64) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) || len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: inconsistent CSR arrays (rowPtr %d, colIdx %d, val %d for %d rows)",
			len(rowPtr), len(colIdx), len(val), rows)
	}
	for r := 0; r < rows; r++ {
		if rowPtr[r+1] < rowPtr[r] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", r)
		}
		for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
			if c := colIdx[p]; c < 0 || c >= cols {
				return nil, fmt.Errorf("sparse: column %d out of range %dx%d", c, rows, cols)
			} else if p > rowPtr[r] && c <= colIdx[p-1] {
				return nil, fmt.Errorf("sparse: row %d columns not strictly increasing", r)
			}
		}
	}
	return &Matrix{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// RowSum returns the sum of the stored values in row r.
func (m *Matrix) RowSum(r int) float64 {
	s := 0.0
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		s += m.val[i]
	}
	return s
}

// MulVec computes y = M x. It panics when dimensions disagree. The dst
// slice is used when it has the right length, otherwise a new slice is
// allocated.
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: matrix %dx%d, vector %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		dst = make([]float64, m.rows)
	}
	for r := 0; r < m.rows; r++ {
		s := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.val[i] * x[m.colIdx[i]]
		}
		dst[r] = s
	}
	return dst
}

// MulVecParallel computes y = M x with rows partitioned across
// workers. Each worker owns a contiguous row range, so no
// synchronization is needed beyond the final join; results are
// bit-identical to MulVec. It falls back to the sequential kernel for
// small matrices or workers ≤ 1.
func (m *Matrix) MulVecParallel(x, dst []float64, workers int) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVecParallel dimension mismatch: matrix %dx%d, vector %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		dst = make([]float64, m.rows)
	}
	if workers <= 1 || m.rows < 4*workers || m.NNZ() < 4096 {
		return m.MulVec(x, dst)
	}
	m.mulVecWorkers(x, dst, workers)
	return dst
}

// mulVecWorkers is MulVecParallel's fan-out body. It lives in its own
// function so the goroutine closure's captured variables are only
// heap-allocated when the parallel path actually runs — inlined into
// MulVecParallel, the capture made every sequential-fallback call (one
// per CG iteration) allocate at function entry.
func (m *Matrix) mulVecWorkers(x, dst []float64, workers int) {
	var wg sync.WaitGroup
	chunk := (m.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				s := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					s += m.val[i] * x[m.colIdx[i]]
				}
				dst[r] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MulVecT computes y = Mᵀ x without materializing the transpose.
func (m *Matrix) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT dimension mismatch: matrix %dx%d, vector %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.cols {
		dst = make([]float64, m.cols)
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += m.val[i] * xr
		}
	}
	return dst
}

// Transpose returns Mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.val)),
		val:    make([]float64, len(m.val)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	next := make([]int, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			p := next[c]
			t.colIdx[p] = r
			t.val[p] = m.val[i]
			next[c]++
		}
	}
	return t
}

// Scale returns s * M as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val)),
	}
	for i, v := range m.val {
		out.val[i] = s * v
	}
	return out
}

// RowNormalized returns a copy of M with every nonempty row scaled so its
// values sum to 1 (a row-stochastic matrix when all values are
// nonnegative). Rows whose sum is zero are left untouched.
func (m *Matrix) RowNormalized() *Matrix {
	out := m.Scale(1)
	for r := 0; r < m.rows; r++ {
		s := 0.0
		for i := out.rowPtr[r]; i < out.rowPtr[r+1]; i++ {
			s += out.val[i]
		}
		if s == 0 {
			continue
		}
		for i := out.rowPtr[r]; i < out.rowPtr[r+1]; i++ {
			out.val[i] /= s
		}
	}
	return out
}

// Add returns A + s*B for same-shaped matrices, by merging the two
// sorted row structures directly (no re-sorting).
func Add(a, b *Matrix, s float64) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	m := &Matrix{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: make([]int, a.rows+1),
		colIdx: make([]int, 0, len(a.val)+len(b.val)),
		val:    make([]float64, 0, len(a.val)+len(b.val)),
	}
	push := func(c int, v float64) {
		if v != 0 {
			m.colIdx = append(m.colIdx, c)
			m.val = append(m.val, v)
		}
	}
	for r := 0; r < a.rows; r++ {
		ia, ea := a.rowPtr[r], a.rowPtr[r+1]
		ib, eb := b.rowPtr[r], b.rowPtr[r+1]
		for ia < ea || ib < eb {
			switch {
			case ib >= eb || (ia < ea && a.colIdx[ia] < b.colIdx[ib]):
				push(a.colIdx[ia], a.val[ia])
				ia++
			case ia >= ea || b.colIdx[ib] < a.colIdx[ia]:
				push(b.colIdx[ib], s*b.val[ib])
				ib++
			default:
				push(a.colIdx[ia], a.val[ia]+s*b.val[ib])
				ia++
				ib++
			}
		}
		m.rowPtr[r+1] = len(m.colIdx)
	}
	return m
}

// MulMat returns A · B. Used to form W Wᵀ style products on compact
// representations; complexity is O(Σ_r nnz(A_r) · avg nnz(B_row)). The
// result is assembled row-by-row directly into CSR form (rows are
// produced in order, so no global sort is needed).
func MulMat(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("sparse: MulMat dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	m := &Matrix{
		rows:   a.rows,
		cols:   b.cols,
		rowPtr: make([]int, a.rows+1),
	}
	// Dense scatter accumulator with a touched-column list: classic
	// Gustavson SpGEMM.
	acc := make([]float64, b.cols)
	touched := make([]int, 0, 64)
	seen := make([]bool, b.cols)
	for r := 0; r < a.rows; r++ {
		touched = touched[:0]
		for i := a.rowPtr[r]; i < a.rowPtr[r+1]; i++ {
			k := a.colIdx[i]
			av := a.val[i]
			for j := b.rowPtr[k]; j < b.rowPtr[k+1]; j++ {
				c := b.colIdx[j]
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
				acc[c] += av * b.val[j]
			}
		}
		sort.Ints(touched)
		for _, c := range touched {
			if acc[c] != 0 {
				m.colIdx = append(m.colIdx, c)
				m.val = append(m.val, acc[c])
			}
			acc[c] = 0
			seen[c] = false
		}
		m.rowPtr[r+1] = len(m.colIdx)
	}
	return m
}

// ScaleSym returns a copy of M with every stored entry (i, j)
// multiplied by f(i, j). Entries scaled to exactly zero are kept as
// explicit zeros (the sparsity structure is reused unchanged, which is
// what makes this cheaper than rebuilding).
func (m *Matrix) ScaleSym(f func(i, j int) float64) *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    make([]float64, len(m.val)),
	}
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			out.val[i] = m.val[i] * f(r, m.colIdx[i])
		}
	}
	return out
}

// Diag returns the main diagonal of a square matrix.
func (m *Matrix) Diag() []float64 {
	if m.rows != m.cols {
		panic("sparse: Diag on non-square matrix")
	}
	d := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		d[r] = m.At(r, r)
	}
	return d
}

// MaxAbs returns the largest absolute stored value, zero for an empty
// matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.val {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether two matrices have the same shape and the same
// entries within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for r := 0; r < a.rows; r++ {
		ia, ea := a.rowPtr[r], a.rowPtr[r+1]
		ib, eb := b.rowPtr[r], b.rowPtr[r+1]
		for ia < ea || ib < eb {
			switch {
			case ib >= eb || (ia < ea && a.colIdx[ia] < b.colIdx[ib]):
				if math.Abs(a.val[ia]) > tol {
					return false
				}
				ia++
			case ia >= ea || b.colIdx[ib] < a.colIdx[ia]:
				if math.Abs(b.val[ib]) > tol {
					return false
				}
				ib++
			default:
				if math.Abs(a.val[ia]-b.val[ib]) > tol {
					return false
				}
				ia++
				ib++
			}
		}
	}
	return true
}
