package sparse

import (
	"math/rand"
	"testing"
)

func TestScaleSym(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 3)
	b.Add(2, 0, 4)
	m := b.Build()
	s := m.ScaleSym(func(i, j int) float64 { return float64(i + j) })
	if got := s.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2·1", got)
	}
	if got := s.At(1, 2); got != 9 {
		t.Errorf("At(1,2) = %v, want 3·3", got)
	}
	if got := s.At(2, 0); got != 8 {
		t.Errorf("At(2,0) = %v, want 4·2", got)
	}
	// Structure is preserved even for zero factors.
	z := m.ScaleSym(func(i, j int) float64 { return 0 })
	if z.NNZ() != m.NNZ() {
		t.Errorf("ScaleSym changed structure: %d vs %d stored", z.NNZ(), m.NNZ())
	}
	if z.At(0, 1) != 0 {
		t.Error("zero factor not applied")
	}
	// Source untouched.
	if m.At(0, 1) != 2 {
		t.Error("ScaleSym mutated its receiver")
	}
}

func TestScaleSymMatchesScale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, 6, 7, 0.4)
	a := m.Scale(2.5)
	b := m.ScaleSym(func(i, j int) float64 { return 2.5 })
	if !Equal(a, b, 1e-12) {
		t.Error("ScaleSym with constant factor disagrees with Scale")
	}
}

func TestAddKeepsSortedStructure(t *testing.T) {
	// The merge-based Add must produce strictly increasing columns per
	// row (the CSR invariant every other operation relies on).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n, 0.4)
		b := randomMatrix(rng, n, n, 0.4)
		s := Add(a, b, rng.NormFloat64())
		for r := 0; r < n; r++ {
			prev := -1
			s.Row(r, func(c int, v float64) {
				if c <= prev {
					t.Fatalf("row %d columns not strictly increasing", r)
				}
				prev = c
			})
		}
	}
}

func TestAddCancellationDropsEntry(t *testing.T) {
	b1 := NewBuilder(1, 2)
	b1.Add(0, 0, 5)
	b1.Add(0, 1, 1)
	b2 := NewBuilder(1, 2)
	b2.Add(0, 0, 5)
	m := Add(b1.Build(), b2.Build(), -1)
	if m.NNZ() != 1 || m.At(0, 1) != 1 {
		t.Errorf("cancelled entry kept: nnz=%d", m.NNZ())
	}
}
