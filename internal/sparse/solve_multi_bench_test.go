package sparse

import (
	"math/rand"
	"testing"
)

// The multi-RHS benchmarks share the regularization-sized system of
// BenchmarkSolveCG so ns/op are directly comparable: the batched
// numbers divided by k against the single-solve number is the tentpole
// speedup claim.
func multiBenchFixture(k int) (*Matrix, [][]float64) {
	rng := rand.New(rand.NewSource(42))
	n := 400
	a := spdMatrix(rng, n)
	b := make([][]float64, k)
	for j := range b {
		b[j] = make([]float64, n)
		for i := range b[j] {
			b[j][i] = rng.NormFloat64()
		}
	}
	return a, b
}

// benchmarkSolveCGSeq is the per-item baseline the blocked solver
// replaces: k independent SolveCG calls, k full SpMV streams per
// iteration.
func benchmarkSolveCGSeq(b *testing.B, k int) {
	a, rhs := multiBenchFixture(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < k; j++ {
			if _, _, err := SolveCG(a, rhs[j], nil, SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSolveCGSeq64(b *testing.B) { benchmarkSolveCGSeq(b, 64) }

func benchmarkSolveCGMulti(b *testing.B, k int, opts SolveOptions) {
	a, rhs := multiBenchFixture(k)
	dst := make([][]float64, k)
	for j := range dst {
		dst[j] = make([]float64, a.Rows())
	}
	if _, _, err := SolveCGMulti(a, rhs, dst, opts); err != nil {
		b.Fatal(err) // warm the block-scratch pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveCGMulti(a, rhs, dst, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCGMulti4(b *testing.B)  { benchmarkSolveCGMulti(b, 4, SolveOptions{}) }
func BenchmarkSolveCGMulti16(b *testing.B) { benchmarkSolveCGMulti(b, 16, SolveOptions{}) }
func BenchmarkSolveCGMulti64(b *testing.B) { benchmarkSolveCGMulti(b, 64, SolveOptions{}) }

// The float32 variant of the 64-lane solve: same fixture, half the
// kernel memory traffic, plus the float64 verification pass.
func BenchmarkSolveCGMulti64Float32(b *testing.B) {
	benchmarkSolveCGMulti(b, 64, SolveOptions{Precision: PrecisionFloat32})
}
