package sparse

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/obs"
)

// This file holds the batched multi-RHS CG solver. A k-item suggest
// batch whose items share a compact representation shares the Eq. 15
// coefficient matrix and differs only in the right-hand side, so the k
// solves can run as ONE blocked sweep: every CG iteration does a single
// shared SpMM over the CSR structure (one pass over rowPtr/colIdx/val
// feeding k accumulator lanes) instead of k independent SpMVs that each
// re-stream the matrix. Vectors are packed lane-major — lane j of
// logical vector v lives at v[i*k+j] — so the k lanes of one row are
// contiguous and the matrix entry loaded once serves all of them.
//
// Each lane keeps its own CG scalars (rz, alpha, beta) and residual and
// converges independently: a converged (or broken-down) lane is
// swap-removed to the tail of the block and the active width m shrinks,
// so finished columns stop contributing inner-loop work while the
// stragglers iterate on. Per lane, the arithmetic sequence is exactly
// solveCG's — same Jacobi preconditioner, same update order, dots
// accumulated ascending — so float64 results are bit-identical to
// SolveCG column by column (asserted by TestSolveCGMultiBitIdentical).

// element is the arithmetic width of a blocked kernel instantiation.
type element interface {
	~float32 | ~float64
}

// laneResult is one lane's convergence outcome, indexed by original
// right-hand-side position.
type laneResult struct {
	iters     int
	rel       float64
	converged bool
}

// blockScratch holds one blocked solve's packed work vectors (pooled).
// The five n×k blocks mirror cgScratch's five n-vectors; the k-length
// arrays are per-lane scalars. ax/r64 serve the float32 wrapper's
// float64 true-residual checks.
type blockScratch[T element] struct {
	minv           []T // n: shared Jacobi preconditioner
	x, r, z, p, ap []T // n·k packed blocks

	nb, rz, rel, pap, alpha []float64 // k per-lane scalars
	lane                    []int     // block position → original RHS index
	res                     []laneResult
	ax, r64                 []float64 // n: float64 residual scratch (f32 path)

	// Blocked-refinement state (f32 path only; sized by solveMulti32
	// itself because prevRel/scale must keep full-k length while the
	// block shrinks to the live lanes).
	live, fall     []int
	scale, prevRel []float64
}

var (
	multiPool64 = sync.Pool{New: func() any { return new(blockScratch[float64]) }}
	multiPool32 = sync.Pool{New: func() any { return new(blockScratch[float32]) }}
)

func (sc *blockScratch[T]) resize(n, k int) {
	nk := n * k
	if cap(sc.x) < nk {
		sc.x = make([]T, nk)
		sc.r = make([]T, nk)
		sc.z = make([]T, nk)
		sc.p = make([]T, nk)
		sc.ap = make([]T, nk)
	} else {
		sc.x = sc.x[:nk]
		sc.r = sc.r[:nk]
		sc.z = sc.z[:nk]
		sc.p = sc.p[:nk]
		sc.ap = sc.ap[:nk]
	}
	if cap(sc.minv) < n {
		sc.minv = make([]T, n)
		sc.ax = make([]float64, n)
		sc.r64 = make([]float64, n)
	} else {
		sc.minv = sc.minv[:n]
		sc.ax = sc.ax[:n]
		sc.r64 = sc.r64[:n]
	}
	if cap(sc.nb) < k {
		sc.nb = make([]float64, k)
		sc.rz = make([]float64, k)
		sc.rel = make([]float64, k)
		sc.pap = make([]float64, k)
		sc.alpha = make([]float64, k)
		sc.lane = make([]int, k)
		sc.res = make([]laneResult, k)
	} else {
		sc.nb = sc.nb[:k]
		sc.rz = sc.rz[:k]
		sc.rel = sc.rel[:k]
		sc.pap = sc.pap[:k]
		sc.alpha = sc.alpha[:k]
		sc.lane = sc.lane[:k]
		sc.res = sc.res[:k]
	}
}

// swap exchanges lanes j1 and j2 across every packed block and per-lane
// scalar. O(n) — paid once per lane retirement, not per iteration.
func (sc *blockScratch[T]) swap(j1, j2, n, k int) {
	if j1 == j2 {
		return
	}
	for i := 0; i < n; i++ {
		base := i * k
		sc.x[base+j1], sc.x[base+j2] = sc.x[base+j2], sc.x[base+j1]
		sc.r[base+j1], sc.r[base+j2] = sc.r[base+j2], sc.r[base+j1]
		sc.z[base+j1], sc.z[base+j2] = sc.z[base+j2], sc.z[base+j1]
		sc.p[base+j1], sc.p[base+j2] = sc.p[base+j2], sc.p[base+j1]
		sc.ap[base+j1], sc.ap[base+j2] = sc.ap[base+j2], sc.ap[base+j1]
	}
	sc.nb[j1], sc.nb[j2] = sc.nb[j2], sc.nb[j1]
	sc.rz[j1], sc.rz[j2] = sc.rz[j2], sc.rz[j1]
	sc.rel[j1], sc.rel[j2] = sc.rel[j2], sc.rel[j1]
	sc.pap[j1], sc.pap[j2] = sc.pap[j2], sc.pap[j1]
	sc.alpha[j1], sc.alpha[j2] = sc.alpha[j2], sc.alpha[j1]
	sc.lane[j1], sc.lane[j2] = sc.lane[j2], sc.lane[j1]
	sc.res[j1], sc.res[j2] = sc.res[j2], sc.res[j1]
}

// SolveCGMulti solves A·x_j = b_j for all right-hand sides in one
// blocked CG sweep (see the file comment). dst, when it has the right
// shape (len(b) slices of length n), receives the solutions in place —
// the steady-state path then allocates only the returned stats slice,
// independent of the RHS count. Pass nil to have it allocated.
//
// The returned error is nil when every lane converged; ErrNoConvergence
// when any lane missed the tolerance within the iteration budget (see
// the per-lane SolveStats for which); or the context error on
// cancellation, with each lane holding its best iterate so far.
func SolveCGMulti(a *Matrix, b, dst [][]float64, opts SolveOptions) ([][]float64, []SolveStats, error) {
	return SolveCGMultiCtx(context.Background(), a, b, dst, opts)
}

// SolveCGMultiCtx is SolveCGMulti with request-scoped cancellation and
// observability (a "cg_solve_multi" span; per-lane iteration/residual
// histogram samples, matching what k independent SolveCG calls would
// have recorded).
func SolveCGMultiCtx(ctx context.Context, a *Matrix, b, dst [][]float64, opts SolveOptions) ([][]float64, []SolveStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic(fmt.Sprintf("sparse: SolveCGMulti needs a square matrix, got %dx%d", a.Rows(), a.Cols()))
	}
	k := len(b)
	for j, bj := range b {
		if len(bj) != n {
			panic(fmt.Sprintf("sparse: SolveCGMulti rhs %d length %d != %d", j, len(bj), n))
		}
	}
	if len(dst) != k {
		dst = make([][]float64, k)
	}
	for j := range dst {
		if len(dst[j]) != n {
			dst[j] = make([]float64, n)
		}
	}
	stats := make([]SolveStats, k)
	if k == 0 {
		return dst, stats, nil
	}
	opts = opts.withDefaults(n)

	sp := obs.StartSpan(ctx, "cg_solve_multi")
	var err error
	if opts.Precision == PrecisionFloat32 {
		err = solveMulti32(ctx, a, b, dst, opts, stats)
	} else {
		err = solveMulti64(ctx, a, b, dst, opts, stats)
	}
	maxIters, allConv := 0, true
	for j := range stats {
		if stats[j].Iterations > maxIters {
			maxIters = stats[j].Iterations
		}
		allConv = allConv && stats[j].Converged
		obs.Observe(ctx, obs.MetricCGIterations, float64(stats[j].Iterations))
		obs.Observe(ctx, obs.MetricCGResidual, stats[j].Residual)
	}
	if sp != nil {
		sp.SetAttr("n", n)
		sp.SetAttr("rhs", k)
		sp.SetAttr("iterations", maxIters)
		sp.SetAttr("precision", opts.Precision.String())
		sp.SetAttr("converged", allConv)
		sp.End()
	}
	if err == nil && !allConv {
		err = ErrNoConvergence
	}
	return dst, stats, err
}

// solveMulti64 is the float64 blocked path: bit-identical to per-column
// SolveCG.
func solveMulti64(ctx context.Context, a *Matrix, b, dst [][]float64, opts SolveOptions, stats []SolveStats) error {
	n, k := a.Rows(), len(b)
	sc := multiPool64.Get().(*blockScratch[float64])
	defer multiPool64.Put(sc)
	sc.resize(n, k)
	packBlock(sc, a, b)
	err := solveBlocked(ctx, a.rowPtr, a.colIdx, a.val, n, k, sc, opts.Tol, opts.MaxIter, opts.Workers)
	for s := 0; s < k; s++ {
		j := sc.lane[s]
		for i := 0; i < n; i++ {
			dst[j][i] = sc.x[i*k+s]
		}
		r := sc.res[s]
		stats[j] = SolveStats{Iterations: r.iters, Residual: r.rel, Converged: r.converged}
	}
	return err
}

// solveMulti32 runs the blocked sweep on the float32 mirror to the
// relaxed inner tolerance, then checks every lane's true float64
// residual. Lanes still above Tol are finished by BLOCKED iterative
// refinement: each round solves A·d = r/‖r‖ for every live lane in one
// float32 blocked pass — the corrections share the matrix exactly like
// the original right-hand sides, so the lane count never multiplies the
// SpMM traffic (the earlier per-lane solveRefined32 loop degenerated to
// k sequential solves, forfeiting the whole batching win). A lane that
// stalls (residual not halved by a round) or exhausts the refinement
// budget falls back to a warm-started float64 CG — the same per-lane
// contract as solveRefined32.
func solveMulti32(ctx context.Context, a *Matrix, b, dst [][]float64, opts SolveOptions, stats []SolveStats) error {
	n, k := a.Rows(), len(b)
	view := a.View32()
	sc := multiPool32.Get().(*blockScratch[float32])
	defer multiPool32.Put(sc)
	sc.resize(n, k)
	if cap(sc.scale) < k {
		sc.scale = make([]float64, k)
		sc.prevRel = make([]float64, k)
	}
	packBlock(sc, a, b)
	innerTol := opts.Tol
	if innerTol < innerTol32 {
		innerTol = innerTol32
	}
	err := solveBlocked(ctx, view.RowPtr, view.ColIdx, view.Val, n, k, sc, innerTol, opts.MaxIter, opts.Workers)
	for s := 0; s < k; s++ {
		j := sc.lane[s]
		for i := 0; i < n; i++ {
			dst[j][i] = float64(sc.x[i*k+s])
		}
		stats[j] = SolveStats{Iterations: sc.res[s].iters, Residual: sc.res[s].rel}
	}
	if err != nil {
		return err // cancelled: best iterates are already unpacked
	}

	// trueRel is the float64 relative residual — the blocked pass only
	// certified the relaxed float32 tolerance, so convergence, stall and
	// fallback are all judged on this.
	trueRel := func(j int, nb float64) float64 {
		a.MulVec(dst[j], sc.ax)
		for i := range sc.r64 {
			sc.r64[i] = b[j][i] - sc.ax[i]
		}
		return norm2(sc.r64) / nb
	}

	live, fall := sc.live[:0], sc.fall[:0]
	defer func() { sc.live, sc.fall = live, fall }()
	for j := 0; j < k; j++ {
		nb := norm2(b[j])
		if nb == 0 {
			stats[j].Residual, stats[j].Converged = 0, true
			continue
		}
		rel := trueRel(j, nb)
		stats[j].Residual = rel
		if rel <= opts.Tol {
			stats[j].Converged = true
			continue
		}
		sc.prevRel[j] = rel
		live = append(live, j)
	}

	for round := 1; len(live) > 0; round++ {
		if round > maxRefinements {
			fall = append(fall, live...)
			break
		}
		m := len(live)
		sc.resize(n, m)
		for i := range sc.x {
			sc.x[i] = 0
		}
		for s, j := range live {
			// Correction RHS normalized by ‖r‖ so each lane uses the full
			// float32 dynamic range (as in solveRefined32).
			a.MulVec(dst[j], sc.ax)
			for i := range sc.r64 {
				sc.r64[i] = b[j][i] - sc.ax[i]
			}
			rnorm := norm2(sc.r64)
			sc.scale[s] = rnorm
			for i := 0; i < n; i++ {
				sc.r[i*m+s] = float32(sc.r64[i] / rnorm)
			}
			sc.lane[s] = s
			sc.res[s] = laneResult{}
		}
		if err := solveBlocked(ctx, view.RowPtr, view.ColIdx, view.Val, n, m, sc, innerTol, opts.MaxIter, opts.Workers); err != nil {
			return err
		}
		for s := 0; s < m; s++ {
			ls := sc.lane[s]
			j := live[ls]
			scale := sc.scale[ls]
			for i := 0; i < n; i++ {
				dst[j][i] += scale * float64(sc.x[i*m+s])
			}
			stats[j].Iterations += sc.res[s].iters
			stats[j].Refinements++
		}
		next := live[:0]
		for _, j := range live {
			rel := trueRel(j, norm2(b[j]))
			stats[j].Residual = rel
			switch {
			case rel <= opts.Tol:
				stats[j].Converged = true
			case rel > 0.5*sc.prevRel[j]:
				fall = append(fall, j) // stalled: float32 stopped helping
			default:
				sc.prevRel[j] = rel
				next = append(next, j)
			}
		}
		live = next
	}

	for _, j := range fall {
		stats[j].FellBack = true
		fx, fit, frel, ferr := solveCG(ctx, a, b[j], dst[j], opts)
		copy(dst[j], fx)
		stats[j].Iterations += fit
		stats[j].Residual = frel
		stats[j].Converged = ferr == nil
		if ferr != nil && ferr != ErrNoConvergence {
			return ferr
		}
	}
	return nil
}

// packBlock loads the right-hand sides into the residual block (x = 0
// so r = b), zeroes the solution block and resets the lane map.
func packBlock[T element](sc *blockScratch[T], a *Matrix, b [][]float64) {
	n, k := a.Rows(), len(b)
	for i := range sc.x {
		sc.x[i] = 0
	}
	for j, bj := range b {
		for i := 0; i < n; i++ {
			sc.r[i*k+j] = T(bj[i])
		}
	}
	for j := 0; j < k; j++ {
		sc.lane[j] = j
		sc.res[j] = laneResult{}
	}
	// Shared Jacobi preconditioner (same zero-diagonal guard as solveCG).
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			d = 1
		}
		sc.minv[i] = T(1 / d)
	}
}

// solveBlocked is the blocked CG core. On entry sc.r holds the packed
// right-hand sides, sc.x is zero, sc.minv the preconditioner and
// sc.lane the identity map. It retires lanes as they converge (or break
// down) by swapping them past the active width m, records every lane's
// outcome in sc.res (indexed by block position — translate through
// sc.lane), and returns only a context error; convergence is judged per
// lane by the caller.
func solveBlocked[T element](ctx context.Context, rowPtr, colIdx []int, vals []T, n, k int, sc *blockScratch[T], tol float64, maxIter, workers int) error {
	m := k
	// Zero right-hand sides are solved by x = 0 immediately. nb is
	// recomputed at the top of each pass so a lane swapped into slot j
	// by a retirement is measured too.
	for j := 0; j < m; {
		sc.nb[j] = normLane(sc.r, j, k, n)
		if sc.nb[j] == 0 {
			sc.res[j] = laneResult{converged: true}
			sc.swap(j, m-1, n, k)
			m--
			continue
		}
		j++
	}
	if m == 0 {
		return nil
	}

	for i := 0; i < n; i++ {
		base := i * k
		mi := sc.minv[i]
		for j := 0; j < m; j++ {
			sc.z[base+j] = mi * sc.r[base+j]
		}
	}
	copy(sc.p, sc.z)
	dotLanes(sc.r, sc.z, sc.rz, k, m, n)
	dotLanes(sc.r, sc.r, sc.rel, k, m, n)
	for j := 0; j < m; j++ {
		sc.rel[j] = math.Sqrt(sc.rel[j]) / sc.nb[j]
	}

	it := 1
	for ; it <= maxIter && m > 0; it++ {
		if err := ctx.Err(); err != nil {
			for j := 0; j < m; j++ {
				sc.res[j] = laneResult{iters: it - 1, rel: sc.rel[j]}
			}
			return err
		}
		spmmBlocked(rowPtr, colIdx, vals, sc.p, sc.ap, n, k, m, workers)
		dotLanes(sc.p, sc.ap, sc.pap, k, m, n)
		// Breakdown check before the x update, matching solveCG's order.
		for j := 0; j < m; {
			if sc.pap[j] == 0 {
				sc.res[j] = laneResult{iters: it, rel: sc.rel[j]}
				sc.swap(j, m-1, n, k)
				m--
				continue
			}
			j++
		}
		if m == 0 {
			break
		}
		for j := 0; j < m; j++ {
			sc.alpha[j] = sc.rz[j] / sc.pap[j]
		}
		for i := 0; i < n; i++ {
			base := i * k
			for j := 0; j < m; j++ {
				al := T(sc.alpha[j])
				sc.x[base+j] += al * sc.p[base+j]
				sc.r[base+j] -= al * sc.ap[base+j]
			}
		}
		dotLanes(sc.r, sc.r, sc.rel, k, m, n)
		for j := 0; j < m; j++ {
			sc.rel[j] = math.Sqrt(sc.rel[j]) / sc.nb[j]
		}
		for j := 0; j < m; {
			if sc.rel[j] <= tol {
				sc.res[j] = laneResult{iters: it, rel: sc.rel[j], converged: true}
				sc.swap(j, m-1, n, k)
				m--
				continue
			}
			j++
		}
		if m == 0 {
			break
		}
		for i := 0; i < n; i++ {
			base := i * k
			mi := sc.minv[i]
			for j := 0; j < m; j++ {
				sc.z[base+j] = mi * sc.r[base+j]
			}
		}
		// pap is dead until the next iteration's spmm — reuse it to hold
		// the new r·z so the fused reduction has a landing pad.
		dotLanes(sc.r, sc.z, sc.pap, k, m, n)
		for j := 0; j < m; j++ {
			sc.alpha[j] = sc.pap[j] / sc.rz[j] // alpha doubles as beta here
			sc.rz[j] = sc.pap[j]
		}
		for i := 0; i < n; i++ {
			base := i * k
			for j := 0; j < m; j++ {
				sc.p[base+j] = sc.z[base+j] + T(sc.alpha[j])*sc.p[base+j]
			}
		}
	}
	for j := 0; j < m; j++ {
		sc.res[j] = laneResult{iters: maxIter, rel: sc.rel[j]}
	}
	return nil
}

// spmmBlocked computes ap = A·p over m active lanes of a k-stride
// block: one pass over the CSR arrays, the entry value loaded once and
// broadcast into the m contiguous lane accumulators. Row ranges are
// partitioned across workers like MulVecParallel; per lane the
// accumulation order equals MulVec's, so results are bit-identical to m
// independent mat-vecs.
func spmmBlocked[T element](rowPtr, colIdx []int, vals []T, p, ap []T, rows, k, m, workers int) {
	if workers <= 1 || rows < 4*workers || len(vals)*m < 4096 {
		spmmRange(rowPtr, colIdx, vals, p, ap, 0, rows, k, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			spmmRange(rowPtr, colIdx, vals, p, ap, lo, hi, k, m)
		}(lo, hi)
	}
	wg.Wait()
}

// spmmRange processes each row in lane tiles of 8 (then 4, then 1)
// with the tile's partial sums held in registers across the row's
// nonzeros. The naive nonzero-outer loop stores and reloads every lane
// accumulator once per nonzero — three memory ops per multiply-add
// where MulVec needs one — and measures ~2× slower per lane than the
// single-RHS kernel it is supposed to beat. Tiling re-reads the row's
// colIdx/vals once per tile, but those are a few hundred cache-hot
// bytes; the accumulators never leave registers until the single store
// per tile. Per lane the sum still runs ascending over the row's
// nonzeros, so results stay bit-identical to MulVec.
func spmmRange[T element](rowPtr, colIdx []int, vals []T, p, ap []T, lo, hi, k, m int) {
	for r := lo; r < hi; r++ {
		start, end := rowPtr[r], rowPtr[r+1]
		arow := ap[r*k : r*k+m]
		j := 0
		for ; j+8 <= m; j += 8 {
			var a0, a1, a2, a3, a4, a5, a6, a7 T
			for i := start; i < end; i++ {
				v := vals[i]
				pc := p[colIdx[i]*k+j:]
				pc = pc[:8:8]
				a0 += v * pc[0]
				a1 += v * pc[1]
				a2 += v * pc[2]
				a3 += v * pc[3]
				a4 += v * pc[4]
				a5 += v * pc[5]
				a6 += v * pc[6]
				a7 += v * pc[7]
			}
			av := arow[j:]
			av = av[:8:8]
			av[0], av[1], av[2], av[3] = a0, a1, a2, a3
			av[4], av[5], av[6], av[7] = a4, a5, a6, a7
		}
		for ; j+4 <= m; j += 4 {
			var a0, a1, a2, a3 T
			for i := start; i < end; i++ {
				v := vals[i]
				pc := p[colIdx[i]*k+j:]
				pc = pc[:4:4]
				a0 += v * pc[0]
				a1 += v * pc[1]
				a2 += v * pc[2]
				a3 += v * pc[3]
			}
			av := arow[j:]
			av = av[:4:4]
			av[0], av[1], av[2], av[3] = a0, a1, a2, a3
		}
		for ; j < m; j++ {
			var acc T
			for i := start; i < end; i++ {
				acc += vals[i] * p[colIdx[i]*k+j]
			}
			arow[j] = acc
		}
	}
}

// dotLane is dot() over lane j of two k-stride blocks, accumulated in
// float64 ascending — the same order as the single-RHS kernels.
func dotLane[T element](a, b []T, j, k, n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += float64(a[i*k+j]) * float64(b[i*k+j])
	}
	return s
}

func normLane[T element](a []T, j, k, n int) float64 {
	return math.Sqrt(dotLane(a, a, j, k, n))
}

// dotLanes fills out[j] = dotLane(a, b, j) for every active lane in
// ONE contiguous pass over the blocks. With k lanes a per-lane dotLane
// walks the block at a k·sizeof(T) stride — a cache-line miss per
// element once k is batch-sized — and the solver needs three such
// reductions per iteration. Fusing them keeps the reduction traffic at
// one block read regardless of m. Per lane the accumulation is still
// float64 ascending in i, so the result is bit-identical to dotLane.
func dotLanes[T element](a, b []T, out []float64, k, m, n int) {
	for j := 0; j < m; j++ {
		out[j] = 0
	}
	for i := 0; i < n; i++ {
		base := i * k
		av := a[base : base+m]
		bv := b[base : base+m]
		for j, x := range av {
			out[j] += float64(x) * float64(bv[j])
		}
	}
}
