package sparse

import "fmt"

// Precision selects the arithmetic width of the iterative-solver and
// sweep inner loops. Float64 is the default and is bit-identical to the
// historical kernels. Float32 halves the memory traffic of the
// bandwidth-bound SpMV/SpMM loops; accuracy is restored by iterative
// refinement in float64 (see solveRefined32), with a full float64
// fallback when the relative residual stalls above the configured
// tolerance — so results are always within SolveOptions.Tol of the
// float64 answer regardless of precision.
type Precision uint8

const (
	// PrecisionFloat64 runs every kernel in float64 (default).
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 runs SpMV/SpMM inner loops in float32 with
	// float64 correction.
	PrecisionFloat32
)

// String returns the flag-style name ("float64" / "float32").
func (p Precision) String() string {
	switch p {
	case PrecisionFloat32:
		return "float32"
	default:
		return "float64"
	}
}

// ParsePrecision parses a flag-style precision name. The empty string
// means float64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "f64", "double":
		return PrecisionFloat64, nil
	case "float32", "f32", "single":
		return PrecisionFloat32, nil
	}
	return PrecisionFloat64, fmt.Errorf("sparse: unknown precision %q (want float64 or float32)", s)
}
