package sparse

import (
	"context"
	"math"
	"sync"
)

// This file holds the float32 solver path. The inner CG loop — the
// memory-bandwidth-bound part — runs on the float32 value mirror
// (View32) with float64 dot accumulation for stability. The answer is
// then corrected in float64 by iterative refinement: solve A·d = r in
// float32, apply x += d, recompute the true float64 residual, repeat.
// Refinement converges as long as the float32 inner solve makes
// progress; when the relative residual stalls above SolveOptions.Tol
// (or the refinement budget is exhausted) the solve falls back to a
// warm-started float64 CG, so the caller's residual contract holds at
// either precision.

// maxRefinements bounds the float32 correction rounds before the
// float64 fallback kicks in. Each round costs one float32 CG solve;
// well-conditioned Eq. 15 systems converge in one round, so two is
// already generous.
const maxRefinements = 2

// innerTol32 floors the inner float32 solve's tolerance: float32
// arithmetic cannot meaningfully resolve relative residuals much below
// 1e-6, and refinement only needs each round to reduce the error, not
// to hit the final target.
const innerTol32 = 1e-6

// scratch32 holds one float32 solve's work vectors (pooled, like
// cgScratch).
type scratch32 struct {
	minv, r, z, p, ap, rhs, d []float32
	ax, r64                   []float64
}

var pool32 = sync.Pool{New: func() any { return new(scratch32) }}

func (s *scratch32) resize(n int) {
	if cap(s.minv) < n {
		s.minv = make([]float32, n)
		s.r = make([]float32, n)
		s.z = make([]float32, n)
		s.p = make([]float32, n)
		s.ap = make([]float32, n)
		s.rhs = make([]float32, n)
		s.d = make([]float32, n)
		s.ax = make([]float64, n)
		s.r64 = make([]float64, n)
		return
	}
	s.minv = s.minv[:n]
	s.r = s.r[:n]
	s.z = s.z[:n]
	s.p = s.p[:n]
	s.ap = s.ap[:n]
	s.rhs = s.rhs[:n]
	s.d = s.d[:n]
	s.ax = s.ax[:n]
	s.r64 = s.r64[:n]
}

// solveRefined32 is the float32 counterpart of solveCG: float32 CG
// rounds corrected by float64 iterative refinement, with a float64
// fallback on stall. Reported iterations include every inner float32
// iteration plus any fallback float64 iterations.
func solveRefined32(ctx context.Context, a *Matrix, b, x0 []float64, opts SolveOptions) ([]float64, int, float64, refineStats, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic("sparse: SolveCG needs a square matrix")
	}
	if len(b) != n {
		panic("sparse: SolveCG rhs length mismatch")
	}
	opts = opts.withDefaults(n)
	var rs refineStats

	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	nb := norm2(b)
	if nb == 0 {
		return x, 0, 0, rs, nil
	}

	view := a.View32()
	sc := pool32.Get().(*scratch32)
	defer pool32.Put(sc)
	sc.resize(n)

	// Jacobi preconditioner, shared by every inner round.
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			d = 1
		}
		sc.minv[i] = float32(1 / d)
	}
	innerTol := opts.Tol
	if innerTol < innerTol32 {
		innerTol = innerTol32
	}

	totalIters := 0
	innerSolves := 0
	prevRel := math.Inf(1)
	rel := math.Inf(1)
	for {
		// True residual in float64 decides convergence and stall.
		a.MulVec(x, sc.ax)
		for i := range sc.r64 {
			sc.r64[i] = b[i] - sc.ax[i]
		}
		rel = norm2(sc.r64) / nb
		rs.innerSolves = innerSolves
		if innerSolves > 1 {
			rs.refinements = innerSolves - 1
		}
		if rel <= opts.Tol {
			return x, totalIters, rel, rs, nil
		}
		stalled := innerSolves > 0 && rel > 0.5*prevRel
		if stalled || innerSolves > maxRefinements {
			rs.fellBack = true
			fx, fit, frel, ferr := solveCG(ctx, a, b, x, opts)
			return fx, totalIters + fit, frel, rs, ferr
		}
		prevRel = rel

		// Inner float32 solve of A·d = r/‖r‖ (normalized so the float32
		// dynamic range is used fully), then x += ‖r‖·d.
		rnorm := norm2(sc.r64)
		for i := range sc.rhs {
			sc.rhs[i] = float32(sc.r64[i] / rnorm)
		}
		it, err := cg32(ctx, view, sc.rhs, sc.d, sc, innerTol, opts.MaxIter, opts.Workers)
		totalIters += it
		innerSolves++
		if err != nil && err != ErrNoConvergence {
			// Context cancellation: report the iterate reached so far.
			rs.innerSolves = innerSolves
			if innerSolves > 1 {
				rs.refinements = innerSolves - 1
			}
			return x, totalIters, rel, rs, err
		}
		// ErrNoConvergence from the inner solve is not fatal — the
		// stall detector above judges whether the round helped.
		for i := range x {
			x[i] += rnorm * float64(sc.d[i])
		}
	}
}

// cg32 runs Jacobi-preconditioned CG entirely in float32 (dots
// accumulated in float64), writing the solution into x (overwritten,
// started from zero). It uses the preconditioner and work vectors from
// sc and returns the iteration count.
func cg32(ctx context.Context, a CSRView32, b, x []float32, sc *scratch32, tol float64, maxIter, workers int) (int, error) {
	for i := range x {
		x[i] = 0
	}
	r, z, p, ap := sc.r, sc.z, sc.p, sc.ap
	copy(r, b) // x = 0 → r = b
	for i := range z {
		z[i] = sc.minv[i] * r[i]
	}
	copy(p, z)

	nb := norm232(b)
	if nb == 0 {
		return 0, nil
	}
	rz := dot32(r, z)
	for it := 1; it <= maxIter; it++ {
		if err := ctx.Err(); err != nil {
			return it - 1, err
		}
		mulVec32(a, p, ap, workers)
		pap := dot32(p, ap)
		if pap == 0 {
			return it, ErrNoConvergence
		}
		alpha := float32(rz / pap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if norm232(r)/nb <= tol {
			return it, nil
		}
		for i := range z {
			z[i] = sc.minv[i] * r[i]
		}
		rzNew := dot32(r, z)
		beta := float32(rzNew / rz)
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, ErrNoConvergence
}

// mulVec32 computes dst = A·x on the float32 mirror, partitioning rows
// across workers exactly like MulVecParallel.
func mulVec32(a CSRView32, x, dst []float32, workers int) {
	rows := len(a.RowPtr) - 1
	if workers <= 1 || rows < 4*workers || len(a.Val) < 4096 {
		mulVec32Range(a, x, dst, 0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulVec32Range(a, x, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func mulVec32Range(a CSRView32, x, dst []float32, lo, hi int) {
	for r := lo; r < hi; r++ {
		var s float32
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			s += a.Val[i] * x[a.ColIdx[i]]
		}
		dst[r] = s
	}
}

// dot32 accumulates a float32 dot product in float64 — the extra
// mantissa costs nothing on modern FPUs and keeps the CG scalars
// (alpha, beta) from drifting on long vectors.
func dot32(a, b []float32) float64 {
	s := 0.0
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func norm232(a []float32) float64 {
	return math.Sqrt(dot32(a, a))
}
