package sparse

import (
	"math/rand"
	"testing"
)

func TestMulVecParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{5, 50, 500} {
		m := randomMatrix(rng, n, n, 0.2)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := m.MulVec(x, nil)
		for _, workers := range []int{0, 1, 2, 7, 64} {
			got := m.MulVecParallel(x, nil, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d row %d: %v != %v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSolveCGParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 400
	a := spdMatrix(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, it1, err1 := SolveCG(a, b, nil, SolveOptions{Tol: 1e-10})
	x2, it2, err2 := SolveCG(a, b, nil, SolveOptions{Tol: 1e-10, Workers: 4})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ: %d vs %d (parallel must be bit-identical)", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solutions differ at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func BenchmarkMulVecSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	m := randomMatrix(rng, 3000, 3000, 0.02)
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, dst)
	}
}

func BenchmarkMulVecParallel4(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	m := randomMatrix(rng, 3000, 3000, 0.02)
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecParallel(x, dst, 4)
	}
}
