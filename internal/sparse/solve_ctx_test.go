package sparse

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// A pre-cancelled context must abort before the first iteration and
// return the starting iterate.
func TestSolveCGCtxCancelledBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := spdMatrix(rng, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, iters, err := SolveCGCtx(ctx, a, b, nil, SolveOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if iters != 0 {
		t.Errorf("iterations = %d before cancellation was noticed, want 0", iters)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want the zero starting iterate", i, v)
		}
	}
}

// SolveCG (no context) must stay the uncancellable baseline: identical
// results to SolveCGCtx with a background context.
func TestSolveCGCtxBackgroundMatchesSolveCG(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := spdMatrix(rng, 30)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, it1, err1 := SolveCG(a, b, nil, SolveOptions{})
	x2, it2, err2 := SolveCGCtx(context.Background(), a, b, nil, SolveOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ: %d vs %d", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solutions differ at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}
