package sparse

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSolveCGConcurrentPooledScratch hammers concurrent solves over the
// package-level CG scratch pool (run under -race in CI): pooled work
// vectors must never bleed between simultaneous solves, so every
// concurrent solution and iteration count must match the sequential
// reference exactly.
func TestSolveCGConcurrentPooledScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type system struct {
		a *Matrix
		b []float64
		x []float64
		n int
	}
	// Mixed sizes so pooled entries are handed between solves of
	// different n, exercising the resize path.
	systems := make([]system, 3)
	for s, n := range []int{60, 150, 90} {
		a := spdMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := SolveCG(a, b, nil, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		systems[s] = system{a: a, b: b, x: x, n: n}
	}
	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sys := systems[(g+r)%len(systems)]
				x, _, err := SolveCG(sys.a, sys.b, nil, SolveOptions{Workers: 1 + g%3})
				if err != nil {
					errs <- err.Error()
					return
				}
				for i := range sys.x {
					if x[i] != sys.x[i] {
						errs <- "solution diverged under concurrent pooled solves"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// BenchmarkSolveCG measures the per-solve cost on a regularization-sized
// SPD system; with the scratch pool the steady-state allocations are
// the returned solution vector plus Stats bookkeeping, not the six work
// vectors the solver used to allocate per call.
func BenchmarkSolveCG(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	n := 400
	a := spdMatrix(rng, n)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveCG(a, rhs, nil, SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
