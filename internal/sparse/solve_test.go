package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random symmetric positive-definite sparse matrix as
// D + A Aᵀ scaled, where D has a strictly positive diagonal.
func spdMatrix(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n, 0.3)
	aat := MulMat(a, a.Transpose())
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + rng.Float64()
	}
	return Add(aat, Diagonal(d), 1)
}

func residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x, nil)
	s := 0.0
	for i := range b {
		diff := ax[i] - b[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

func TestSolveCGExact(t *testing.T) {
	// 2x2 system with known solution: [[4,1],[1,3]] x = [1,2] → x = [1/11, 7/11].
	bld := NewBuilder(2, 2)
	bld.Add(0, 0, 4)
	bld.Add(0, 1, 1)
	bld.Add(1, 0, 1)
	bld.Add(1, 1, 3)
	a := bld.Build()
	x, _, err := SolveCG(a, []float64{1, 2}, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1.0/11, 1e-8) || !almostEq(x[1], 7.0/11, 1e-8) {
		t.Errorf("x = %v, want [1/11 7/11]", x)
	}
}

func TestSolveCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		a := spdMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, iters, err := SolveCG(a, b, nil, SolveOptions{Tol: 1e-10})
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v after %d iters", trial, n, err, iters)
		}
		if r := residual(a, x, b); r > 1e-6 {
			t.Errorf("trial %d: residual %v too large", trial, r)
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	a := Identity(5)
	x, iters, err := SolveCG(a, make([]float64, 5), nil, SolveOptions{})
	if err != nil || iters != 0 {
		t.Fatalf("err=%v iters=%d", err, iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 20
	a := spdMatrix(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, _, err := SolveCG(a, b, nil, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from the solution should converge immediately (few iters).
	_, iters, err := SolveCG(a, b, x, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iters > 2 {
		t.Errorf("warm start took %d iters, want ≤2", iters)
	}
}

func TestSolveJacobiDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 25
	bld := NewBuilder(n, n)
	for r := 0; r < n; r++ {
		off := 0.0
		for c := 0; c < n; c++ {
			if c != r && rng.Float64() < 0.2 {
				v := rng.NormFloat64()
				bld.Add(r, c, v)
				off += math.Abs(v)
			}
		}
		bld.Add(r, r, off+1+rng.Float64())
	}
	a := bld.Build()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, _, err := SolveJacobi(a, b, SolveOptions{Tol: 1e-9, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-6 {
		t.Errorf("residual %v too large", r)
	}
}

func TestSolveJacobiZeroDiagonalErrors(t *testing.T) {
	bld := NewBuilder(2, 2)
	bld.Add(0, 1, 1)
	bld.Add(1, 0, 1)
	a := bld.Build()
	if _, _, err := SolveJacobi(a, []float64{1, 1}, SolveOptions{}); err == nil {
		t.Error("expected error for zero diagonal")
	}
}

func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 15
	// Diagonally dominant SPD so both solvers apply.
	bld := NewBuilder(n, n)
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			if rng.Float64() < 0.2 {
				v := rng.Float64() * 0.1
				bld.Add(r, c, v)
				bld.Add(c, r, v)
			}
		}
		bld.Add(r, r, 2+rng.Float64())
	}
	a := bld.Build()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, _, err1 := SolveCG(a, b, nil, SolveOptions{Tol: 1e-12})
	x2, _, err2 := SolveJacobi(a, b, SolveOptions{Tol: 1e-12, MaxIter: 5000})
	if err1 != nil || err2 != nil {
		t.Fatalf("err1=%v err2=%v", err1, err2)
	}
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-6) {
			t.Fatalf("solvers disagree at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestSolveCGNoConvergenceBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 40
	a := spdMatrix(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, _, err := SolveCG(a, b, nil, SolveOptions{Tol: 1e-14, MaxIter: 1})
	if err == nil {
		t.Skip("converged in one iteration; acceptable but unusual")
	}
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

// Property: CG solves Eq.15-shaped systems (1+Σα)I − Σα L with L = row/col
// scaled W Wᵀ, the exact structure the regularization framework produces.
func TestPropertyCGOnRegularizationSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		// Nonnegative affinity W.
		wb := NewBuilder(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if rng.Float64() < 0.3 {
					wb.Add(r, c, rng.Float64())
				}
			}
		}
		w := wb.Build()
		wwT := MulMat(w, w.Transpose())
		// Symmetric normalization S = D^{-1/2} W Wᵀ D^{-1/2}.
		d := make([]float64, n)
		for r := 0; r < n; r++ {
			d[r] = wwT.RowSum(r)
			if d[r] == 0 {
				d[r] = 1
			}
		}
		nb := NewBuilder(n, n)
		for r := 0; r < n; r++ {
			wwT.Row(r, func(c int, v float64) {
				nb.Add(r, c, v/math.Sqrt(d[r]*d[c]))
			})
		}
		s := nb.Build()
		alpha := rng.Float64() * 2
		// A = (1+α)I − α·S: SPD because eigenvalues of S lie in [−1, 1].
		aMat := Add(Identity(n).Scale(1+alpha), s, -alpha)
		b := make([]float64, n)
		b[rng.Intn(n)] = 1
		x, _, err := SolveCG(aMat, b, nil, SolveOptions{Tol: 1e-10})
		if err != nil {
			return false
		}
		return residual(aMat, x, b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
