package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// rhsFor builds k right-hand sides for an n-dim system, including a
// zero vector and a duplicate so the lane-retirement and shared-SpMM
// paths see degenerate lanes.
func rhsFor(rng *rand.Rand, n, k int) [][]float64 {
	b := make([][]float64, k)
	for j := range b {
		b[j] = make([]float64, n)
		for i := range b[j] {
			b[j][i] = rng.NormFloat64()
		}
	}
	if k >= 3 {
		for i := range b[1] {
			b[1][i] = 0 // zero RHS: retired before the first iteration
		}
		copy(b[2], b[0]) // duplicate lane
	}
	return b
}

// The float64 blocked solver must be BIT-identical to per-column
// SolveCG: same preconditioner, same update order, dots accumulated in
// the same order. This is the contract that lets the batch path replace
// the single path without any behavioral drift.
func TestSolveCGMultiBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 3, 8} {
		for trial := 0; trial < 5; trial++ {
			n := 5 + rng.Intn(40)
			a := spdMatrix(rng, n)
			b := rhsFor(rng, n, k)
			opts := SolveOptions{Tol: 1e-10}

			xs, stats, err := SolveCGMulti(a, b, nil, opts)
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			for j := range b {
				var st SolveStats
				sopts := opts
				sopts.Stats = &st
				ref, iters, serr := SolveCG(a, b[j], nil, sopts)
				if serr != nil {
					t.Fatalf("reference solve %d failed: %v", j, serr)
				}
				if stats[j].Iterations != iters {
					t.Errorf("k=%d lane %d: %d iterations, SolveCG took %d", k, j, stats[j].Iterations, iters)
				}
				for i := range ref {
					if math.Float64bits(xs[j][i]) != math.Float64bits(ref[i]) {
						t.Fatalf("k=%d lane %d x[%d]: %x (%v) != SolveCG %x (%v)",
							k, j, i, math.Float64bits(xs[j][i]), xs[j][i], math.Float64bits(ref[i]), ref[i])
					}
				}
				if stats[j].Residual != st.Residual {
					t.Errorf("k=%d lane %d residual %v != %v", k, j, stats[j].Residual, st.Residual)
				}
			}
		}
	}
}

// Caller-provided dst of the right shape must be reused, not replaced —
// the steady-state allocation contract of the batch serving path.
func TestSolveCGMultiReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	a := spdMatrix(rng, n)
	b := rhsFor(rng, n, 4)
	dst := make([][]float64, len(b))
	for j := range dst {
		dst[j] = make([]float64, n)
	}
	heads := make([]*float64, len(dst))
	for j := range dst {
		heads[j] = &dst[j][0]
	}
	out, _, err := SolveCGMulti(a, b, dst, SolveOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for j := range dst {
		if &out[j][0] != heads[j] {
			t.Fatalf("lane %d: dst was reallocated", j)
		}
	}
}

// Both float32 paths (blocked multi-RHS and single-RHS) must satisfy
// the same residual contract as float64 — Converged means the TRUE
// float64 relative residual is within Tol — and land within a few
// condition-number-amplified ulps of the float64 solution.
func TestSolveCGFloat32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	opts64 := SolveOptions{Tol: 1e-10}
	opts32 := SolveOptions{Tol: 1e-10, Precision: PrecisionFloat32}
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(60)
		a := spdMatrix(rng, n)
		b := rhsFor(rng, n, 5)

		ref, _, err := SolveCGMulti(a, b, nil, opts64)
		if err != nil {
			t.Fatalf("trial %d: float64 reference failed: %v", trial, err)
		}
		x32, stats, err := SolveCGMulti(a, b, nil, opts32)
		if err != nil {
			t.Fatalf("trial %d: float32 multi failed: %v", trial, err)
		}
		check := func(path string, j int, x []float64, st SolveStats) {
			t.Helper()
			if !st.Converged {
				t.Fatalf("trial %d %s lane %d did not converge (rel %v)", trial, path, j, st.Residual)
			}
			nb := norm2(b[j])
			if nb == 0 {
				return
			}
			if rel := residual(a, x, b[j]) / nb; rel > opts32.Tol*1.01 {
				t.Fatalf("trial %d %s lane %d: true residual %v over Tol", trial, path, j, rel)
			}
			num, den := 0.0, 0.0
			for i := range x {
				d := x[i] - ref[j][i]
				num += d * d
				den += ref[j][i] * ref[j][i]
			}
			if den > 0 && math.Sqrt(num/den) > 1e-6 {
				t.Fatalf("trial %d %s lane %d: relative error %v vs float64", trial, path, j, math.Sqrt(num/den))
			}
		}
		for j := range b {
			check("multi", j, x32[j], stats[j])

			var st SolveStats
			sopts := opts32
			sopts.Stats = &st
			x, _, serr := SolveCG(a, b[j], nil, sopts)
			if serr != nil {
				t.Fatalf("trial %d single lane %d: %v", trial, j, serr)
			}
			check("single", j, x, st)
		}
	}
}

// illConditioned builds the 2x2 system [[1,a],[a,1]] with a → 1: its
// condition number (1+a)/(1-a) is set high enough that float32
// refinement cannot reach Tol within its budget, while float64 CG still
// can — exactly the case the fallback exists for.
func illConditioned() *Matrix {
	const a = 1 - 1e-5 // κ ≈ 2e5
	bld := NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	bld.Add(0, 1, a)
	bld.Add(1, 0, a)
	bld.Add(1, 1, 1)
	return bld.Build()
}

// When float32 refinement stalls above Tol, the solver must fall back
// to float64 and still satisfy the caller's tolerance — and say so in
// the stats. Covers the single path and every lane of the blocked path.
func TestSolveCGFloat32FallsBackWhenStalled(t *testing.T) {
	a := illConditioned()
	b := []float64{1, -0.5}
	opts := SolveOptions{Tol: 1e-12, Precision: PrecisionFloat32}

	var st SolveStats
	sopts := opts
	sopts.Stats = &st
	x, _, err := SolveCG(a, b, nil, sopts)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	if !st.FellBack {
		t.Fatal("single: float32 path did not fall back on an ill-conditioned system")
	}
	if !st.Converged {
		t.Fatal("single: fallback did not converge")
	}
	// The fallback's contract is SolveCG's: its recurrence residual meets
	// Tol; the TRUE residual drifts by O(κ·u64) ≈ 2e-11 here. Asserting
	// float64-class accuracy still proves the fallback ran — float32
	// alone bottoms out around κ·u32 ≈ 1e-2 on this system.
	if rel := residual(a, x, b) / norm2(b); rel > 1e-9 {
		t.Fatalf("single: residual %v not float64-class after fallback", rel)
	}

	bs := [][]float64{b, {0.25, 1}}
	xs, stats, err := SolveCGMulti(a, bs, nil, opts)
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	for j := range bs {
		if !stats[j].FellBack {
			t.Errorf("multi lane %d: did not fall back", j)
		}
		if !stats[j].Converged {
			t.Errorf("multi lane %d: not converged", j)
		}
		if rel := residual(a, xs[j], bs[j]) / norm2(bs[j]); rel > 1e-9 {
			t.Errorf("multi lane %d: residual %v not float64-class", j, rel)
		}
	}
}

// The blocked kernel must be deterministic in the worker count, like
// MulVecParallel: row partitioning never reorders per-row accumulation.
func TestSolveCGMultiWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 120
	a := spdMatrix(rng, n)
	b := rhsFor(rng, n, 6)
	seq, _, err := SolveCGMulti(a, b, nil, SolveOptions{Tol: 1e-10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := SolveCGMulti(a, b, nil, SolveOptions{Tol: 1e-10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := range b {
		for i := range seq[j] {
			if math.Float64bits(seq[j][i]) != math.Float64bits(par[j][i]) {
				t.Fatalf("lane %d x[%d]: workers=4 diverged from workers=1", j, i)
			}
		}
	}
}
