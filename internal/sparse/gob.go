package sparse

import (
	"bytes"
	"encoding/gob"
)

// matrixWire is the gob wire form of a Matrix (the in-memory fields
// are unexported by design; serialization goes through this mirror).
type matrixWire struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(matrixWire{
		Rows: m.rows, Cols: m.cols,
		RowPtr: m.rowPtr, ColIdx: m.colIdx, Val: m.val,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(data []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	m.rows, m.cols = w.Rows, w.Cols
	m.rowPtr, m.colIdx, m.val = w.RowPtr, w.ColIdx, w.Val
	if m.rowPtr == nil {
		m.rowPtr = make([]int, m.rows+1)
	}
	return nil
}
