package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/obs"
)

// ErrNoConvergence is returned by the iterative solvers when the residual
// target is not reached within the iteration budget.
var ErrNoConvergence = errors.New("sparse: solver did not converge")

// SolveOptions tunes the iterative solvers.
type SolveOptions struct {
	// Tol is the relative residual target ‖Ax−b‖₂/‖b‖₂. Zero means 1e-10.
	Tol float64
	// MaxIter bounds the number of iterations. Zero means 4·n.
	MaxIter int
	// Workers parallelizes the per-iteration mat-vec across row ranges
	// (≤1 means sequential) — the paper's "parallelized ... scales to
	// much larger datasets" remark for the Eq. 15 solver. Results are
	// bit-identical to the sequential solve.
	Workers int
	// Precision selects the inner-loop arithmetic width. Float32 runs
	// the SpMV loops at half the memory traffic and corrects the answer
	// by float64 iterative refinement; when refinement stalls above Tol
	// the solve falls back to a warm-started float64 CG, so the final
	// residual contract is independent of this knob.
	Precision Precision
	// Stats, when non-nil, is filled with the solve's convergence
	// telemetry on return (iterations, final relative residual,
	// convergence). It exists so callers can surface solver internals
	// without widening the return signature.
	Stats *SolveStats
}

// SolveStats is one solve's convergence telemetry.
type SolveStats struct {
	// Iterations is the number of CG iterations run.
	Iterations int
	// Residual is the final RELATIVE residual ‖Ax−b‖₂/‖b‖₂ (0 for a
	// zero right-hand side).
	Residual float64
	// Converged reports the residual target was reached within the
	// iteration budget.
	Converged bool
	// Refinements counts float64 iterative-refinement rounds run after
	// the initial float32 solve (0 for pure float64 solves).
	Refinements int
	// FellBack reports the float32 path stalled above Tol and the
	// answer was finished by a warm-started float64 CG.
	FellBack bool
}

func (o SolveOptions) withDefaults(n int) SolveOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4 * n
		if o.MaxIter < 64 {
			o.MaxIter = 64
		}
	}
	return o
}

// SolveCG solves A x = b for a symmetric positive-definite A using the
// conjugate-gradient method with Jacobi (diagonal) preconditioning. This
// is the workhorse behind the paper's Eq. 15: the coefficient matrix
// (1+Σα)I − Σα·L^X is SPD for the α ranges PQS-DA uses, and CG's cost per
// iteration is linear in nnz, matching the Spielman–Teng "nearly-linear"
// bound the paper cites in spirit.
//
// x0 may be nil (start from zero). It returns the solution and the number
// of iterations used.
func SolveCG(a *Matrix, b, x0 []float64, opts SolveOptions) ([]float64, int, error) {
	return SolveCGCtx(context.Background(), a, b, x0, opts)
}

// SolveCGCtx is SolveCG with request-scoped cancellation: the context is
// checked once per iteration (each iteration is one mat-vec, so the
// check granularity is O(nnz) work). On cancellation it returns the
// iterate reached so far together with ctx.Err(), so callers can report
// partial progress — this is what bounds a slow Eq. 15 solve under a
// serving deadline.
//
// The solve is observable: when the context carries an obs trace it
// records a "cg_solve" span with iteration count, final relative
// residual and convergence as attributes, and when it carries a metric
// sink it feeds the iteration-depth and residual histograms. Both are
// no-ops otherwise.
func SolveCGCtx(ctx context.Context, a *Matrix, b, x0 []float64, opts SolveOptions) ([]float64, int, error) {
	sp := obs.StartSpan(ctx, "cg_solve")
	var (
		x     []float64
		iters int
		rel   float64
		err   error
		extra refineStats
	)
	if opts.Precision == PrecisionFloat32 {
		x, iters, rel, extra, err = solveRefined32(ctx, a, b, x0, opts)
	} else {
		x, iters, rel, err = solveCG(ctx, a, b, x0, opts)
	}
	if sp != nil {
		sp.SetAttr("n", a.Rows())
		sp.SetAttr("iterations", iters)
		sp.SetAttr("residual", rel)
		sp.SetAttr("converged", err == nil)
		sp.End()
	}
	obs.Observe(ctx, obs.MetricCGIterations, float64(iters))
	obs.Observe(ctx, obs.MetricCGResidual, rel)
	if opts.Stats != nil {
		*opts.Stats = SolveStats{
			Iterations:  iters,
			Residual:    rel,
			Converged:   err == nil,
			Refinements: extra.refinements,
			FellBack:    extra.fellBack,
		}
	}
	return x, iters, err
}

// refineStats carries the float32 path's extra telemetry through the
// shared wrapper above. innerSolves is the raw float32 CG solve count
// (refinements is innerSolves-1 when the first solve counts as the
// initial pass; the multi-RHS wrapper counts every one as a correction
// of its blocked iterate).
type refineStats struct {
	refinements int
	innerSolves int
	fellBack    bool
}

// cgScratch holds one solve's work vectors. A cache-miss suggestion
// request runs exactly one Eq. 15 solve, which used to allocate six
// n-vectors; pooling them turns that into per-process, not per-request,
// garbage. The solution vector x is NOT pooled — it is returned to the
// caller.
type cgScratch struct {
	minv, r, z, p, ap []float64
}

var cgPool = sync.Pool{New: func() any { return new(cgScratch) }}

// resize readies every work vector for an n×n solve, reallocating only
// when the pooled capacity is insufficient.
func (s *cgScratch) resize(n int) {
	if cap(s.minv) < n {
		s.minv = make([]float64, n)
		s.r = make([]float64, n)
		s.z = make([]float64, n)
		s.p = make([]float64, n)
		s.ap = make([]float64, n)
		return
	}
	s.minv = s.minv[:n]
	s.r = s.r[:n]
	s.z = s.z[:n]
	s.p = s.p[:n]
	s.ap = s.ap[:n]
}

// solveCG is the CG core; it additionally reports the final relative
// residual for the telemetry wrapper above.
func solveCG(ctx context.Context, a *Matrix, b, x0 []float64, opts SolveOptions) ([]float64, int, float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic(fmt.Sprintf("sparse: SolveCG needs a square matrix, got %dx%d", a.Rows(), a.Cols()))
	}
	if len(b) != n {
		panic(fmt.Sprintf("sparse: SolveCG rhs length %d != %d", len(b), n))
	}
	opts = opts.withDefaults(n)

	scratch := cgPool.Get().(*cgScratch)
	defer cgPool.Put(scratch)
	scratch.resize(n)

	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	// Jacobi preconditioner: inverse diagonal (guard zero diagonals).
	minv := scratch.minv
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			d = 1
		}
		minv[i] = 1 / d
	}

	r := scratch.r // residual b − A x
	ax := a.MulVec(x, scratch.ap)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	z := scratch.z
	for i := range z {
		z[i] = minv[i] * r[i]
	}
	p := scratch.p
	copy(p, z)
	ap := scratch.ap

	nb := norm2(b)
	if nb == 0 {
		return x, 0, 0, nil // b = 0 → x = 0 (with x0 correction below)
	}
	rel := norm2(r) / nb // running relative residual, reported on every exit
	rz := dot(r, z)
	for it := 1; it <= opts.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return x, it - 1, rel, err
		}
		a.MulVecParallel(p, ap, opts.Workers)
		pap := dot(p, ap)
		if pap == 0 {
			return x, it, rel, ErrNoConvergence
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rel = norm2(r) / nb
		if rel <= opts.Tol {
			return x, it, rel, nil
		}
		for i := range z {
			z[i] = minv[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, opts.MaxIter, rel, ErrNoConvergence
}

// SolveJacobi solves A x = b with Jacobi iteration. It converges for
// strictly diagonally dominant systems and serves as an independent
// cross-check of SolveCG in tests.
func SolveJacobi(a *Matrix, b []float64, opts SolveOptions) ([]float64, int, error) {
	n := a.Rows()
	if a.Cols() != n {
		panic("sparse: SolveJacobi needs a square matrix")
	}
	if len(b) != n {
		panic("sparse: SolveJacobi rhs length mismatch")
	}
	opts = opts.withDefaults(n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
		if d[i] == 0 {
			return nil, 0, fmt.Errorf("sparse: SolveJacobi zero diagonal at %d", i)
		}
	}
	x := make([]float64, n)
	next := make([]float64, n)
	nb := norm2(b)
	if nb == 0 {
		return x, 0, nil
	}
	for it := 1; it <= opts.MaxIter; it++ {
		for r := 0; r < n; r++ {
			s := b[r]
			for i := a.rowPtr[r]; i < a.rowPtr[r+1]; i++ {
				c := a.colIdx[i]
				if c != r {
					s -= a.val[i] * x[c]
				}
			}
			next[r] = s / d[r]
		}
		x, next = next, x
		// Residual check.
		ax := a.MulVec(x, next)
		res := 0.0
		for i := range ax {
			diff := ax[i] - b[i]
			res += diff * diff
		}
		if math.Sqrt(res)/nb <= opts.Tol {
			return x, it, nil
		}
	}
	return x, opts.MaxIter, ErrNoConvergence
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
