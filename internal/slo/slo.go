// Package slo turns the repo's telemetry (internal/obs) into
// *judgment*: whether the suggestion service is meeting its objectives,
// how fast it is burning its error budget, and — via the flight
// recorder in flightrecorder.go — what every request looked like in the
// seconds before an incident.
//
// The model is the SRE-workbook multi-window burn rate. An objective is
// a good-ratio target ("99.9% of requests succeed", "99% of requests
// finish under 40ms" — a latency percentile objective is just an
// availability objective whose good-event predicate is "latency ≤
// budget"). The error budget is 1−goal; the burn rate over a window is
// (bad/total)/(1−goal): burn 1 means the budget is being consumed
// exactly at the sustainable rate, burn 14.4 means a 30-day budget is
// gone in 2 days. Alerting pairs a long window (is the burn real?) with
// a short window (is it still happening?) so alerts both fire fast on a
// cliff and clear fast on recovery:
//
//	fast burn:  burn(1h) ≥ 14.4  AND  burn(5m)  ≥ 14.4   → page now
//	slow burn:  burn(6h) ≥ 6     AND  burn(30m) ≥ 6      → ticket
//
// Counters are per-bucket atomic rings on an injectable clock, so the
// record path is lock-free and the whole lifecycle is testable with a
// fake clock.
package slo

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is one objective's alert state, ordered by severity.
type State int32

const (
	// Healthy: both burn conditions clear.
	Healthy State = iota
	// SlowBurn: the slow pair fired — the budget is eroding at a rate
	// that exhausts it well before the period ends; worth a ticket, not
	// a page.
	SlowBurn
	// FastBurn: the fast pair fired — at this rate the whole budget is
	// gone within hours; /v1/health reports unhealthy and the flight
	// recorder dumps the lead-up.
	FastBurn
)

func (s State) String() string {
	switch s {
	case FastBurn:
		return "fast_burn"
	case SlowBurn:
		return "slow_burn"
	default:
		return "healthy"
	}
}

// BurnWindow is one window pair of the multi-window alert rule.
type BurnWindow struct {
	// Long is the window that establishes the burn is real.
	Long time.Duration
	// Short is the window that establishes it is still happening.
	Short time.Duration
	// Factor is the burn-rate threshold both windows must exceed.
	Factor float64
}

// Config tunes an Engine. The zero value applies the SRE-workbook
// defaults below.
type Config struct {
	// Fast and Slow are the two alert pairs.
	Fast BurnWindow
	Slow BurnWindow
	// Resolution is the counter bucket width; windows shorter than one
	// bucket are rounded up to it.
	Resolution time.Duration
	// Now is the clock (nil: time.Now). Injected by tests so the whole
	// fast-burn → recovery lifecycle runs in microseconds.
	Now func() time.Time
}

// Defaults (documented in DESIGN.md).
var (
	DefaultFast       = BurnWindow{Long: time.Hour, Short: 5 * time.Minute, Factor: 14.4}
	DefaultSlow       = BurnWindow{Long: 6 * time.Hour, Short: 30 * time.Minute, Factor: 6}
	DefaultResolution = 10 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Fast == (BurnWindow{}) {
		c.Fast = DefaultFast
	}
	if c.Slow == (BurnWindow{}) {
		c.Slow = DefaultSlow
	}
	if c.Resolution <= 0 {
		c.Resolution = DefaultResolution
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Objective is one declarative service-level objective.
type Objective struct {
	// Name identifies the objective ("availability",
	// "latency_p99_total", …) in /v1/health and /v1/stats.
	Name string
	// Help is the operator-facing description.
	Help string
	// Goal is the target good-ratio in (0, 1): 0.999 availability, 0.99
	// for a p99 latency objective.
	Goal float64
	// LatencyBudget, when positive, makes this a latency objective:
	// ObserveLatency classifies an observation good iff it is ≤ the
	// budget. Pure good/bad objectives leave it zero and call Record.
	LatencyBudget time.Duration
}

// Status is one objective's evaluated state.
type Status struct {
	Name string  `json:"name"`
	Goal float64 `json:"goal"`
	// BudgetMs echoes LatencyBudget in milliseconds (0 for non-latency
	// objectives).
	BudgetMs float64 `json:"budgetMs,omitempty"`
	// State is the alert state at the last Evaluate.
	State string `json:"state"`
	// FastLong/FastShort/SlowLong/SlowShort are the measured burn rates
	// per window at the last Evaluate.
	FastLong  float64 `json:"fastBurnLong"`
	FastShort float64 `json:"fastBurnShort"`
	SlowLong  float64 `json:"slowBurnLong"`
	SlowShort float64 `json:"slowBurnShort"`
	// Good/Bad are the event totals over the slow long window.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// BudgetRemaining is the fraction of the error budget left over the
	// slow long window: 1 − badRatio/(1−goal), floored at 0.
	BudgetRemaining float64 `json:"budgetRemaining"`
}

// bucket is one time slice of an objective's counters. epoch is the
// absolute bucket number the counts belong to; a writer landing on a
// recycled slot CASes the epoch forward and zeroes the counts.
type bucket struct {
	epoch atomic.Int64
	good  atomic.Uint64
	bad   atomic.Uint64
}

// Tracker accumulates good/bad events for one objective.
type Tracker struct {
	obj     Objective
	cfg     Config
	buckets []bucket
	state   atomic.Int32
}

// Objective returns the tracked objective.
func (t *Tracker) Objective() Objective { return t.obj }

// State returns the tracker's state as of the last Engine.Evaluate.
func (t *Tracker) State() State { return State(t.state.Load()) }

// Record counts one event. Lock-free: an epoch CAS plus two atomic
// adds.
func (t *Tracker) Record(good bool) {
	e := t.cfg.Now().UnixNano() / int64(t.cfg.Resolution)
	b := &t.buckets[int(e%int64(len(t.buckets)))]
	for {
		cur := b.epoch.Load()
		if cur == e {
			break
		}
		if cur > e {
			// Clock skew between concurrent writers: drop into the
			// newer bucket rather than resurrecting an old one.
			break
		}
		if b.epoch.CompareAndSwap(cur, e) {
			// The CAS winner zeroes the recycled slot. A concurrent
			// add racing the zeroing can lose one event — bounded,
			// monitoring-grade accuracy.
			b.good.Store(0)
			b.bad.Store(0)
			break
		}
	}
	if good {
		b.good.Add(1)
	} else {
		b.bad.Add(1)
	}
}

// ObserveLatency records one latency observation against the
// objective's budget (good iff d ≤ LatencyBudget).
func (t *Tracker) ObserveLatency(d time.Duration) {
	t.Record(d <= t.obj.LatencyBudget)
}

// window sums the counters of the last w of wall time ending at now.
func (t *Tracker) window(now time.Time, w time.Duration) (good, bad uint64) {
	nowE := now.UnixNano() / int64(t.cfg.Resolution)
	n := int64(w / t.cfg.Resolution)
	if n < 1 {
		n = 1
	}
	minE := nowE - n + 1
	for i := range t.buckets {
		b := &t.buckets[i]
		e := b.epoch.Load()
		if e >= minE && e <= nowE {
			good += b.good.Load()
			bad += b.bad.Load()
		}
	}
	return good, bad
}

// burn computes the burn rate over one window: the bad ratio divided by
// the error budget. Empty windows burn nothing.
func (t *Tracker) burn(now time.Time, w time.Duration) float64 {
	good, bad := t.window(now, w)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - t.obj.Goal
	if budget <= 0 {
		budget = 1e-9 // a 100% goal burns at the bad count itself
	}
	return (float64(bad) / float64(total)) / budget
}

// evaluate computes the tracker's status at now.
func (t *Tracker) evaluate(now time.Time) Status {
	st := Status{
		Name:      t.obj.Name,
		Goal:      t.obj.Goal,
		BudgetMs:  float64(t.obj.LatencyBudget.Microseconds()) / 1000,
		FastLong:  t.burn(now, t.cfg.Fast.Long),
		FastShort: t.burn(now, t.cfg.Fast.Short),
		SlowLong:  t.burn(now, t.cfg.Slow.Long),
		SlowShort: t.burn(now, t.cfg.Slow.Short),
	}
	st.Good, st.Bad = t.window(now, t.cfg.Slow.Long)
	state := Healthy
	switch {
	case st.FastLong >= t.cfg.Fast.Factor && st.FastShort >= t.cfg.Fast.Factor:
		state = FastBurn
	case st.SlowLong >= t.cfg.Slow.Factor && st.SlowShort >= t.cfg.Slow.Factor:
		state = SlowBurn
	}
	st.State = state.String()
	if total := st.Good + st.Bad; total > 0 {
		budget := 1 - t.obj.Goal
		if budget > 0 {
			used := (float64(st.Bad) / float64(total)) / budget
			st.BudgetRemaining = 1 - used
			if st.BudgetRemaining < 0 {
				st.BudgetRemaining = 0
			}
		}
	} else {
		st.BudgetRemaining = 1
	}
	t.state.Store(int32(state))
	return st
}

// Engine evaluates a set of objectives. Register objectives up front,
// Record/ObserveLatency from the serving path, and call Evaluate
// periodically (the server runs it on a ticker; tests call it directly
// after advancing their fake clock).
type Engine struct {
	cfg      Config
	mu       sync.Mutex
	trackers []*Tracker
	onFast   []func(Status)
	// last holds the most recent Evaluate result for cheap reads by
	// /v1/health and /v1/stats.
	last atomic.Pointer[[]Status]
}

// NewEngine builds an engine over cfg (zero value: workbook defaults).
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	empty := []Status{}
	e.last.Store(&empty)
	return e
}

// Register adds an objective and returns its tracker. Registration is
// not synchronized against Evaluate; register before serving.
func (e *Engine) Register(obj Objective) *Tracker {
	cfg := e.cfg
	n := int(cfg.Slow.Long/cfg.Resolution) + 2
	if n < 4 {
		n = 4
	}
	t := &Tracker{obj: obj, cfg: cfg, buckets: make([]bucket, n)}
	e.mu.Lock()
	e.trackers = append(e.trackers, t)
	e.mu.Unlock()
	return t
}

// Trackers returns the registered trackers in registration order.
func (e *Engine) Trackers() []*Tracker {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Tracker(nil), e.trackers...)
}

// OnFastBurn registers a callback fired (from within Evaluate) each
// time an objective TRANSITIONS into FastBurn — the hook the server
// uses to dump the flight recorder while the lead-up is still in the
// ring.
func (e *Engine) OnFastBurn(fn func(Status)) {
	e.mu.Lock()
	e.onFast = append(e.onFast, fn)
	e.mu.Unlock()
}

// Evaluate computes every objective's status at the engine's current
// clock, fires fast-burn transition callbacks, and caches the result
// for Statuses.
func (e *Engine) Evaluate() []Status {
	now := e.cfg.Now()
	e.mu.Lock()
	trackers := append([]*Tracker(nil), e.trackers...)
	callbacks := append([]func(Status){}, e.onFast...)
	e.mu.Unlock()
	out := make([]Status, 0, len(trackers))
	for _, t := range trackers {
		prev := t.State()
		st := t.evaluate(now)
		out = append(out, st)
		if t.State() == FastBurn && prev != FastBurn {
			for _, fn := range callbacks {
				fn(st)
			}
		}
	}
	e.last.Store(&out)
	return out
}

// Statuses returns the objectives' statuses as of the last Evaluate
// (empty before the first evaluation). Lock-free.
func (e *Engine) Statuses() []Status { return *e.last.Load() }

// State returns the worst state across all objectives as of the last
// Evaluate.
func (e *Engine) State() State {
	worst := Healthy
	e.mu.Lock()
	trackers := e.trackers
	e.mu.Unlock()
	for _, t := range trackers {
		if s := t.State(); s > worst {
			worst = s
		}
	}
	return worst
}
