package slo

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testEvent(i int) WideEvent {
	ev := WideEvent{
		UnixNano:      time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano() + int64(i)*1e6,
		Outcome:       OutcomeOK,
		Status:        200,
		K:             10,
		Generation:    7,
		TotalNs:       int64(i+1) * 1e6,
		CompactNs:     2e5,
		SolveNs:       3e5,
		HittingNs:     4e5,
		PersonalizeNs: 1e5,
	}
	ev.SetRequestID("req0000000000001")
	ev.SetTraceID("trc0000000000001")
	ev.SetStrategy("hitting")
	return ev
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(16) // minimum size
	const total = 40
	for i := 0; i < total; i++ {
		ev := testEvent(i)
		r.Record(&ev)
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	events := r.Events()
	if len(events) != r.Size() {
		t.Fatalf("len(Events()) = %d, want ring size %d", len(events), r.Size())
	}
	// The ring must retain exactly the LAST Size() events, oldest first.
	for i, ev := range events {
		want := uint64(total - r.Size() + i + 1)
		if ev.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderSizing(t *testing.T) {
	if got := NewFlightRecorder(0).Size(); got != DefaultFlightRecorderSize {
		t.Fatalf("size 0 → %d, want default %d", got, DefaultFlightRecorderSize)
	}
	if got := NewFlightRecorder(3).Size(); got != 16 {
		t.Fatalf("size 3 → %d, want floor 16", got)
	}
	// A nil recorder must absorb records silently (SLO disabled).
	var nilRec *FlightRecorder
	ev := testEvent(0)
	nilRec.Record(&ev)
	if nilRec.Events() != nil {
		t.Fatal("nil recorder Events() should be nil")
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 3; i++ {
		ev := testEvent(i)
		ev.CacheHit = i == 1
		ev.Degraded = i == 2
		if i == 2 {
			ev.Outcome = OutcomeDegraded
		}
		r.Record(&ev)
	}
	var buf bytes.Buffer
	n, err := r.WriteJSONL(&buf)
	if err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n != 3 {
		t.Fatalf("WriteJSONL wrote %d events, want 3", n)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Every line must be valid standalone JSON with the wide-event schema.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{
			"seq", "at", "requestId", "traceId", "outcome", "status",
			"strategy", "k", "generation", "cacheHit", "degraded",
			"brownout", "breakerState", "gateDepth", "totalMs",
			"compactMs", "solveMs", "hittingMs", "personalizeMs",
		} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing key %q: %s", i, key, line)
			}
		}
		if m["requestId"] != "req0000000000001" {
			t.Fatalf("line %d requestId = %v", i, m["requestId"])
		}
		if m["strategy"] != "hitting" {
			t.Fatalf("line %d strategy = %v", i, m["strategy"])
		}
		if _, err := time.Parse(time.RFC3339Nano, m["at"].(string)); err != nil {
			t.Fatalf("line %d timestamp %v unparseable: %v", i, m["at"], err)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last["outcome"] != "degraded" || last["degraded"] != true {
		t.Fatalf("last line disposition wrong: %s", lines[2])
	}
}

func TestFlightRecorderDumpToDir(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		ev := testEvent(i)
		r.Record(&ev)
	}
	dir := t.TempDir()
	path, err := r.DumpToDir(dir)
	if err != nil {
		t.Fatalf("DumpToDir: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump path %q not in %q", path, dir)
	}
	if !strings.HasPrefix(filepath.Base(path), "flightrecorder-5-") {
		t.Fatalf("dump name %q should start with flightrecorder-<seq>-", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 5 {
		t.Fatalf("dump has %d lines, want 5", lines)
	}
	if got := r.Dumps(); got != 1 {
		t.Fatalf("Dumps() = %d, want 1", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	// Race-detector coverage of the seqlock: writers hammering the ring
	// while readers dump it. Every event a reader returns must be
	// internally consistent (Seq matches the payload the writer stored).
	r := NewFlightRecorder(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev := testEvent(i)
				ev.Generation = uint64(w)
				r.Record(&ev)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		events := r.Events()
		for j := 1; j < len(events); j++ {
			if events[j].Seq <= events[j-1].Seq {
				t.Errorf("Events() not strictly ordered: %d then %d", events[j-1].Seq, events[j].Seq)
			}
		}
		var sink bytes.Buffer
		if _, err := r.WriteJSONL(&sink); err != nil {
			t.Errorf("WriteJSONL under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkFlightRecorderEmit is the CI alloc guard: recording one wide
// event must not touch the heap (make bench-guard enforces 0 allocs/op).
func BenchmarkFlightRecorderEmit(b *testing.B) {
	r := NewFlightRecorder(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := WideEvent{
			UnixNano:   int64(i),
			Outcome:    OutcomeOK,
			Status:     200,
			K:          10,
			Generation: 3,
			TotalNs:    1e6,
		}
		ev.SetRequestID("0123456789abcdef")
		ev.SetTraceID("fedcba9876543210")
		ev.SetStrategy("hitting")
		r.Record(&ev)
	}
}
