package slo

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for driving the burn-rate lifecycle
// without real time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testConfig compresses the workbook windows so the full lifecycle runs
// in fake-clock seconds: fast pair {60s, 5s, ×10}, slow pair
// {300s, 30s, ×2}, 1s resolution.
func testConfig(c *fakeClock) Config {
	return Config{
		Fast:       BurnWindow{Long: 60 * time.Second, Short: 5 * time.Second, Factor: 10},
		Slow:       BurnWindow{Long: 300 * time.Second, Short: 30 * time.Second, Factor: 2},
		Resolution: time.Second,
		Now:        c.Now,
	}
}

// feed records good/bad events spread over a span of fake time, one
// batch per resolution tick.
func feed(c *fakeClock, t *Tracker, span time.Duration, goodPerSec, badPerSec int) {
	ticks := int(span / time.Second)
	for i := 0; i < ticks; i++ {
		for g := 0; g < goodPerSec; g++ {
			t.Record(true)
		}
		for b := 0; b < badPerSec; b++ {
			t.Record(false)
		}
		c.Advance(time.Second)
	}
}

func TestBurnRateLifecycle(t *testing.T) {
	// One objective at 99% goal → error budget 1%. The table drives the
	// canonical lifecycle: healthy baseline → total failure (fast burn
	// fires) → partial recovery (fast clears, slow holds) → full
	// recovery (all clear once the short windows flush).
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "avail", Goal: 0.99})

	steps := []struct {
		name      string
		span      time.Duration
		good, bad int // events per second
		want      State
	}{
		// 1% bad = burn 1: sustainable, healthy.
		{"baseline", 60 * time.Second, 99, 1, Healthy},
		// 100% bad = burn 100 ≥ 10 on both fast windows: page.
		{"cliff", 10 * time.Second, 0, 100, FastBurn},
		// 3% bad = burn 3: below the fast factor; the long fast window
		// still holds cliff damage but the 5s short window recovers →
		// fast clears. Burn 3 ≥ 2 on both slow windows → slow burn.
		{"simmer", 40 * time.Second, 97, 3, SlowBurn},
		// Back to 1% bad: the 30s slow short window flushes → healthy,
		// even though the 300s long window still remembers the cliff.
		{"recovered", 40 * time.Second, 99, 1, Healthy},
	}
	for _, step := range steps {
		feed(clock, tr, step.span, step.good, step.bad)
		eng.Evaluate()
		if got := tr.State(); got != step.want {
			st := eng.Statuses()[0]
			t.Fatalf("%s: state = %v, want %v (fast %.1f/%.1f slow %.1f/%.1f)",
				step.name, got, step.want, st.FastLong, st.FastShort, st.SlowLong, st.SlowShort)
		}
	}
}

func TestLatencyObjective(t *testing.T) {
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "lat", Goal: 0.99, LatencyBudget: 40 * time.Millisecond})

	// All within budget: healthy.
	for i := 0; i < 30; i++ {
		tr.ObserveLatency(10 * time.Millisecond)
		clock.Advance(time.Second)
	}
	eng.Evaluate()
	if got := tr.State(); got != Healthy {
		t.Fatalf("within budget: state = %v, want Healthy", got)
	}
	// Latency regression: everything over budget → fast burn.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			tr.ObserveLatency(400 * time.Millisecond)
		}
		clock.Advance(time.Second)
	}
	eng.Evaluate()
	if got := tr.State(); got != FastBurn {
		t.Fatalf("regression: state = %v, want FastBurn", got)
	}
}

func TestOnFastBurnFiresOnTransitionOnly(t *testing.T) {
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "avail", Goal: 0.99})
	fired := 0
	eng.OnFastBurn(func(st Status) { fired++ })

	feed(clock, tr, 10*time.Second, 0, 100)
	eng.Evaluate()
	eng.Evaluate() // still burning: no second callback
	if fired != 1 {
		t.Fatalf("callback fired %d times while burning, want exactly 1", fired)
	}
	// Recover, then burn again: a NEW transition fires again.
	feed(clock, tr, 120*time.Second, 100, 0)
	eng.Evaluate()
	if got := tr.State(); got != Healthy {
		t.Fatalf("after recovery: state = %v, want Healthy", got)
	}
	feed(clock, tr, 10*time.Second, 0, 100)
	eng.Evaluate()
	if fired != 2 {
		t.Fatalf("callback fired %d times after second cliff, want 2", fired)
	}
}

func TestBudgetRemaining(t *testing.T) {
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "avail", Goal: 0.99})
	// Empty tracker: full budget.
	st := eng.Evaluate()[0]
	if st.BudgetRemaining != 1 {
		t.Fatalf("empty budgetRemaining = %v, want 1", st.BudgetRemaining)
	}
	// 0.5% bad over the window = half the 1% budget burning rate.
	feed(clock, tr, 200*time.Second, 199, 1)
	st = eng.Evaluate()[0]
	if st.BudgetRemaining < 0.4 || st.BudgetRemaining > 0.6 {
		t.Fatalf("budgetRemaining = %v, want ≈0.5", st.BudgetRemaining)
	}
	if st.Good == 0 || st.Bad == 0 {
		t.Fatalf("window totals good=%d bad=%d, want both > 0", st.Good, st.Bad)
	}
}

func TestWindowExpiry(t *testing.T) {
	// Events older than a window must stop counting toward it.
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "avail", Goal: 0.99})
	feed(clock, tr, 10*time.Second, 0, 10) // all bad
	clock.Advance(400 * time.Second)       // past even the slow long window
	st := eng.Evaluate()[0]
	if st.Good != 0 || st.Bad != 0 {
		t.Fatalf("after expiry: good=%d bad=%d, want 0/0", st.Good, st.Bad)
	}
	if got := tr.State(); got != Healthy {
		t.Fatalf("after expiry: state = %v, want Healthy", got)
	}
}

func TestEngineStateWorstAcrossObjectives(t *testing.T) {
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	ok := eng.Register(Objective{Name: "a", Goal: 0.99})
	bad := eng.Register(Objective{Name: "b", Goal: 0.99})
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			ok.Record(true)
			bad.Record(false)
		}
		clock.Advance(time.Second)
	}
	eng.Evaluate()
	if got := eng.State(); got != FastBurn {
		t.Fatalf("worst state = %v, want FastBurn", got)
	}
}

func TestTrackerConcurrentRecord(t *testing.T) {
	// Race-detector coverage for the epoch-CAS ring: concurrent
	// recorders racing the clock's bucket rotation.
	clock := newFakeClock()
	eng := NewEngine(testConfig(clock))
	tr := eng.Register(Objective{Name: "avail", Goal: 0.99})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Record(i%10 != 0)
				if w == 0 && i%100 == 0 {
					clock.Advance(time.Second)
				}
				if i%500 == 0 {
					eng.Evaluate()
				}
			}
		}(w)
	}
	wg.Wait()
	eng.Evaluate()
}
