package slo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// The flight recorder is the "what did the process look like just
// before the incident" answer: an always-on, fixed-size ring of one
// compact wide event per request. Unlike the trace ring (deep but
// narrow: last 64 span trees), the recorder is shallow but wide — every
// request, every disposition, a few thousand deep — and is dumped as
// JSONL on demand (/debug/flightrecorder) or automatically when an SLO
// enters fast burn, so the dump captures the lead-up rather than the
// aftermath.
//
// Recording must cost nothing on the hot path: a slot is claimed with
// one atomic add, the event is copied in under a per-slot seqlock (two
// more atomic adds), and the event struct is all fixed-size fields —
// IDs and the strategy name are inlined byte arrays, not strings — so
// Record performs zero heap allocations (BenchmarkFlightRecorderEmit
// guards this in CI).

// Outcome classifies one request's disposition.
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeError
	OutcomeTimeout
	OutcomeUnknownQuery
	OutcomeBadRequest
	OutcomeShedRate
	OutcomeShedGate
	OutcomeDegraded
	OutcomeDegradedMiss
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeUnknownQuery:
		return "unknown_query"
	case OutcomeBadRequest:
		return "bad_request"
	case OutcomeShedRate:
		return "shed_rate_limited"
	case OutcomeShedGate:
		return "shed_overloaded"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeDegradedMiss:
		return "degraded_miss"
	default:
		return "unknown"
	}
}

// idLen and strategyLen size the inline identifier fields. Request and
// trace IDs are 16 hex chars (server-generated); longer client-supplied
// IDs are truncated, which is acceptable for a debugging artifact.
const (
	idLen       = 16
	strategyLen = 12
)

// WideEvent is one request's compact record: identity, disposition,
// stage-timing breakdown and the serving context (strategy, generation,
// cache/admission/breaker state). All fields are fixed-size so the ring
// is one flat allocation and recording never touches the heap.
type WideEvent struct {
	// Seq is the global record sequence number (assigned by Record).
	Seq uint64
	// UnixNano is the event time.
	UnixNano int64
	// RequestID and TraceID are inlined, NUL-padded.
	RequestID [idLen]byte
	TraceID   [idLen]byte
	// Strategy is the canonical diversification strategy, NUL-padded.
	Strategy [strategyLen]byte
	// Outcome is the request disposition; Status the HTTP status code.
	Outcome Outcome
	Status  uint16
	// K is the requested suggestion count.
	K uint16
	// Generation is the engine snapshot that served the request.
	Generation uint64
	// Disposition bits.
	CacheHit bool
	Degraded bool
	Brownout bool
	// BreakerState is the admission breaker at record time (0 closed, 1
	// open, 2 half-open); GateDepth the suggest-gate queue depth.
	BreakerState uint8
	GateDepth    int32
	// Stage timings in nanoseconds (zero for stages that did not run).
	TotalNs       int64
	CompactNs     int64
	SolveNs       int64
	HittingNs     int64
	PersonalizeNs int64
}

// SetRequestID/SetTraceID/SetStrategy copy a string into the inline
// field without allocating.
func (e *WideEvent) SetRequestID(s string) { copyID(e.RequestID[:], s) }
func (e *WideEvent) SetTraceID(s string)   { copyID(e.TraceID[:], s) }
func (e *WideEvent) SetStrategy(s string)  { copyID(e.Strategy[:], s) }

func copyID(dst []byte, s string) {
	n := copy(dst, s)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

func idString(b []byte) string {
	n := 0
	for n < len(b) && b[n] != 0 {
		n++
	}
	return string(b[:n])
}

// RequestIDString, TraceIDString and StrategyString decode the inline
// fields (dump path only — they allocate).
func (e *WideEvent) RequestIDString() string { return idString(e.RequestID[:]) }
func (e *WideEvent) TraceIDString() string   { return idString(e.TraceID[:]) }
func (e *WideEvent) StrategyString() string  { return idString(e.Strategy[:]) }

// slot is one ring entry under a seqlock: version is odd while a writer
// is copying, and bumps by 2 per publication, so a reader that sees the
// same even version before and after its copy has a consistent event.
type slot struct {
	version atomic.Uint64
	ev      WideEvent
}

// FlightRecorder is the fixed-size wide-event ring.
type FlightRecorder struct {
	slots []slot
	seq   atomic.Uint64
	// dumps counts DumpToDir files written (observability for the
	// auto-dump path).
	dumps atomic.Int64
}

// DefaultFlightRecorderSize holds ~4k requests — tens of seconds of
// lead-up at a few hundred QPS for ~1 MiB of memory.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder builds a ring of the given capacity (minimum 16;
// ≤ 0 applies the default).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	if size < 16 {
		size = 16
	}
	return &FlightRecorder{slots: make([]slot, size)}
}

// Size reports the ring capacity.
func (r *FlightRecorder) Size() int { return len(r.slots) }

// Recorded reports how many events have ever been recorded.
func (r *FlightRecorder) Recorded() uint64 { return r.seq.Load() }

// Dumps reports how many automatic dump files have been written.
func (r *FlightRecorder) Dumps() int64 { return r.dumps.Load() }

// Record stores one event, overwriting the oldest slot. ev.Seq is
// assigned here. Zero heap allocations; safe for concurrent use.
func (r *FlightRecorder) Record(ev *WideEvent) {
	if r == nil {
		return
	}
	n := r.seq.Add(1)
	s := &r.slots[int((n-1)%uint64(len(r.slots)))]
	ev.Seq = n
	s.version.Add(1) // odd: write in progress
	s.ev = *ev
	s.version.Add(1) // even: published
}

// Events returns a consistent copy of the ring's contents, oldest
// first. Slots mid-write (or overwritten during the copy) are skipped —
// under concurrent load the dump is a near-exact window, never a torn
// record.
func (r *FlightRecorder) Events() []WideEvent {
	if r == nil {
		return nil
	}
	out := make([]WideEvent, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			v1 := s.version.Load()
			if v1 == 0 || v1%2 == 1 {
				break // never written, or a writer is mid-copy
			}
			ev := s.ev
			if s.version.Load() == v1 {
				out = append(out, ev)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL dumps the ring as one JSON object per line, oldest first.
// The encoding is hand-rolled: every field is a number, bool or
// hex/ASCII identifier, so no reflection or escaping is needed, and the
// dump path cannot disturb the serving path beyond the copy itself.
func (r *FlightRecorder) WriteJSONL(w io.Writer) (int, error) {
	events := r.Events()
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range events {
		buf = appendEventJSON(buf[:0], &events[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return i, err
		}
	}
	return len(events), bw.Flush()
}

// appendEventJSON renders one event. Identifier bytes are produced by
// the server (hex) or the strategy registry (lowercase names), so they
// need no JSON escaping.
func appendEventJSON(b []byte, e *WideEvent) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"at":"`...)
	b = time.Unix(0, e.UnixNano).UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","requestId":"`...)
	b = appendID(b, e.RequestID[:])
	b = append(b, `","traceId":"`...)
	b = appendID(b, e.TraceID[:])
	b = append(b, `","outcome":"`...)
	b = append(b, e.Outcome.String()...)
	b = append(b, `","status":`...)
	b = strconv.AppendUint(b, uint64(e.Status), 10)
	b = append(b, `,"strategy":"`...)
	b = appendID(b, e.Strategy[:])
	b = append(b, `","k":`...)
	b = strconv.AppendUint(b, uint64(e.K), 10)
	b = append(b, `,"generation":`...)
	b = strconv.AppendUint(b, e.Generation, 10)
	b = append(b, `,"cacheHit":`...)
	b = strconv.AppendBool(b, e.CacheHit)
	b = append(b, `,"degraded":`...)
	b = strconv.AppendBool(b, e.Degraded)
	b = append(b, `,"brownout":`...)
	b = strconv.AppendBool(b, e.Brownout)
	b = append(b, `,"breakerState":`...)
	b = strconv.AppendUint(b, uint64(e.BreakerState), 10)
	b = append(b, `,"gateDepth":`...)
	b = strconv.AppendInt(b, int64(e.GateDepth), 10)
	b = append(b, `,"totalMs":`...)
	b = appendMs(b, e.TotalNs)
	b = append(b, `,"compactMs":`...)
	b = appendMs(b, e.CompactNs)
	b = append(b, `,"solveMs":`...)
	b = appendMs(b, e.SolveNs)
	b = append(b, `,"hittingMs":`...)
	b = appendMs(b, e.HittingNs)
	b = append(b, `,"personalizeMs":`...)
	b = appendMs(b, e.PersonalizeNs)
	b = append(b, '}')
	return b
}

func appendID(b, id []byte) []byte {
	n := 0
	for n < len(id) && id[n] != 0 {
		n++
	}
	return append(b, id[:n]...)
}

func appendMs(b []byte, ns int64) []byte {
	return strconv.AppendFloat(b, float64(ns)/1e6, 'f', 3, 64)
}

// DumpToDir writes the ring to dir as
// flightrecorder-<seq>-<unixnano>.jsonl and returns the file path. The
// server calls this from the fast-burn transition hook, so the file
// holds the requests that led INTO the breach.
func (r *FlightRecorder) DumpToDir(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flightrecorder-%d-%d.jsonl", r.seq.Load(), time.Now().UnixNano())
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := r.WriteJSONL(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	r.dumps.Add(1)
	return path, nil
}
