package clickgraph

import (
	"math"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
)

func ts(s string) time.Time {
	t, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

func tableILog() *querylog.Log {
	l := &querylog.Log{}
	l.Append(querylog.Entry{UserID: "u1", Query: "sun", ClickedURL: "www.java.com", Time: ts("2012-12-12 11:12:41")})
	l.Append(querylog.Entry{UserID: "u1", Query: "sun java", ClickedURL: "java.sun.com", Time: ts("2012-12-12 11:13:01")})
	l.Append(querylog.Entry{UserID: "u1", Query: "jvm download", Time: ts("2012-12-12 11:14:21")})
	l.Append(querylog.Entry{UserID: "u2", Query: "sun", ClickedURL: "www.suncellular.com", Time: ts("2012-12-13 07:13:21")})
	l.Append(querylog.Entry{UserID: "u2", Query: "solar cell", ClickedURL: "en.wikipedia.org", Time: ts("2012-12-13 07:14:21")})
	l.Append(querylog.Entry{UserID: "u3", Query: "sun oracle", ClickedURL: "www.oracle.com", Time: ts("2012-12-14 14:35:14")})
	l.Append(querylog.Entry{UserID: "u3", Query: "java", ClickedURL: "www.java.com", Time: ts("2012-12-14 14:36:26")})
	return l
}

func TestBuildShape(t *testing.T) {
	g := Build(tableILog(), bipartite.Raw)
	// All 6 distinct queries are nodes, even the clickless "jvm download".
	if g.NumQueries() != 6 {
		t.Fatalf("queries = %d, want 6", g.NumQueries())
	}
	if g.URLs.Len() != 5 {
		t.Fatalf("urls = %d, want 5", g.URLs.Len())
	}
	jvm, ok := g.QueryID("jvm download")
	if !ok {
		t.Fatal("clickless query missing from node space")
	}
	if g.W.RowNNZ(jvm) != 0 {
		t.Error("clickless query has click edges")
	}
}

func TestQueryTransitionTableI(t *testing.T) {
	g := Build(tableILog(), bipartite.Raw)
	tr := g.QueryTransition()
	sun, _ := g.QueryID("sun")
	java, _ := g.QueryID("java")
	solar, _ := g.QueryID("solar cell")
	if tr.At(sun, java) <= 0 {
		t.Error("sun should reach java via www.java.com")
	}
	if tr.At(sun, solar) != 0 {
		t.Error("sun must NOT reach solar cell on the click graph (the paper's coverage argument)")
	}
	// Row-stochastic on nonempty rows.
	for q := 0; q < g.NumQueries(); q++ {
		s := tr.RowSum(q)
		if s != 0 && math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", q, s)
		}
	}
}

func TestCFIQFWeighting(t *testing.T) {
	g := Build(tableILog(), bipartite.CFIQF)
	sun, _ := g.QueryID("sun")
	javaCom, _ := g.URLs.Lookup("www.java.com")
	sunCell, _ := g.URLs.Lookup("www.suncellular.com")
	// www.java.com is shared by two queries → lower iqf than the
	// single-query www.suncellular.com.
	if g.W.At(sun, javaCom) >= g.W.At(sun, sunCell) {
		t.Errorf("shared URL weight %v should be below exclusive URL weight %v",
			g.W.At(sun, javaCom), g.W.At(sun, sunCell))
	}
}

func TestBipartiteTransitions(t *testing.T) {
	g := Build(tableILog(), bipartite.Raw)
	q2u, u2q := g.BipartiteTransitions()
	if q2u.Rows() != g.NumQueries() || q2u.Cols() != g.URLs.Len() {
		t.Fatal("q2u shape wrong")
	}
	if u2q.Rows() != g.URLs.Len() || u2q.Cols() != g.NumQueries() {
		t.Fatal("u2q shape wrong")
	}
	for r := 0; r < q2u.Rows(); r++ {
		if s := q2u.RowSum(r); s != 0 && math.Abs(s-1) > 1e-9 {
			t.Errorf("q2u row %d = %v", r, s)
		}
	}
	for r := 0; r < u2q.Rows(); r++ {
		if s := u2q.RowSum(r); s != 0 && math.Abs(s-1) > 1e-9 {
			t.Errorf("u2q row %d = %v", r, s)
		}
	}
}

func TestWithPseudoQuery(t *testing.T) {
	g := Build(tableILog(), bipartite.Raw)
	ng, pseudo := g.WithPseudoQuery(map[string]float64{
		"www.java.com": 2,
		"unknown.url":  5, // silently skipped
	})
	if ng.NumQueries() != g.NumQueries()+1 {
		t.Fatalf("pseudo graph has %d queries, want %d", ng.NumQueries(), g.NumQueries()+1)
	}
	javaCom, _ := ng.URLs.Lookup("www.java.com")
	if got := ng.W.At(pseudo, javaCom); got != 2 {
		t.Errorf("pseudo edge weight = %v, want 2", got)
	}
	if ng.W.RowNNZ(pseudo) != 1 {
		t.Errorf("pseudo row nnz = %d, want 1 (unknown URL skipped)", ng.W.RowNNZ(pseudo))
	}
	// Original edges preserved.
	sun, _ := ng.QueryID("sun")
	if ng.W.At(sun, javaCom) != 1 {
		t.Error("original edge lost in pseudo graph")
	}
	// Original graph untouched.
	if g.NumQueries() != 6 {
		t.Error("WithPseudoQuery mutated the source graph")
	}
}

func TestClickedURLs(t *testing.T) {
	g := Build(tableILog(), bipartite.Raw)
	java, _ := g.QueryID("java")
	urls := g.ClickedURLs(java)
	if len(urls) != 1 || urls["www.java.com"] != 1 {
		t.Errorf("ClickedURLs(java) = %v", urls)
	}
}
