// Package clickgraph implements the classic query–URL click graph — the
// de-facto query-log representation the paper's baselines (FRW, BRW, HT,
// DQS, PHT) operate on — in both raw-frequency and cf·iqf-weighted forms
// (Fig. 2(a) and Section VI-B of the paper).
package clickgraph

import (
	"math"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/sparse"
)

// Graph is a query–URL bipartite click graph.
type Graph struct {
	Queries *bipartite.Index
	URLs    *bipartite.Index
	// W is the queries × URLs weight matrix.
	W *sparse.Matrix
	// Weighting records how W was weighted.
	Weighting bipartite.Weighting
}

// Build constructs the click graph from a log.
func Build(l *querylog.Log, wt bipartite.Weighting) *Graph {
	g := &Graph{
		Queries:   bipartite.NewIndex(),
		URLs:      bipartite.NewIndex(),
		Weighting: wt,
	}
	type edge struct{ q, u int }
	counts := make(map[edge]float64)
	connected := make(map[int]map[int]bool)
	for _, e := range l.Entries {
		q := g.Queries.Intern(querylog.NormalizeQuery(e.Query))
		if e.ClickedURL == "" {
			continue
		}
		u := g.URLs.Intern(e.ClickedURL)
		counts[edge{q, u}]++
		set := connected[u]
		if set == nil {
			set = make(map[int]bool)
			connected[u] = set
		}
		set[q] = true
	}
	totalQ := float64(g.Queries.Len())
	b := sparse.NewBuilder(g.Queries.Len(), g.URLs.Len())
	for e, c := range counts {
		w := c
		if wt == bipartite.CFIQF {
			iqf := math.Log(totalQ / float64(len(connected[e.u])))
			if iqf <= 0 {
				iqf = math.Log(1.0001)
			}
			w = c * iqf
		}
		b.Add(e.q, e.u, w)
	}
	g.W = b.Build()
	return g
}

// NumQueries returns the query node count.
func (g *Graph) NumQueries() int { return g.Queries.Len() }

// QueryID resolves a raw query string (normalized) to its node ID.
func (g *Graph) QueryID(rawQuery string) (int, bool) {
	return g.Queries.Lookup(querylog.NormalizeQuery(rawQuery))
}

// QueryTransition returns the query→query two-step transition matrix
// (query → URL → query), row-normalized. Queries with no clicks have
// empty rows.
func (g *Graph) QueryTransition() *sparse.Matrix {
	w := g.W.RowNormalized()
	wt := g.W.Transpose().RowNormalized()
	return sparse.MulMat(w, wt)
}

// BipartiteTransitions returns the row-normalized query→URL and
// URL→query transition matrices — the walk alternates sides, which is
// how Craswell & Szummer's random-walk models are defined.
func (g *Graph) BipartiteTransitions() (q2u, u2q *sparse.Matrix) {
	return g.W.RowNormalized(), g.W.Transpose().RowNormalized()
}

// ClickedURLs returns URL name → weight for a query node.
func (g *Graph) ClickedURLs(q int) map[string]float64 {
	out := make(map[string]float64)
	g.W.Row(q, func(u int, v float64) {
		out[g.URLs.Name(u)] = v
	})
	return out
}

// WithPseudoQuery returns a copy of the graph extended with one extra
// query node (returned as id) connected to the given URL names with the
// given weights. This is the pseudo-node construction Mei et al. use for
// the personalized hitting time (PHT) baseline: the node represents the
// user's click history.
func (g *Graph) WithPseudoQuery(urlWeights map[string]float64) (*Graph, int) {
	ng := &Graph{
		Queries:   bipartite.NewIndex(),
		URLs:      g.URLs,
		Weighting: g.Weighting,
	}
	for _, name := range g.Queries.Names() {
		ng.Queries.Intern(name)
	}
	pseudoID := ng.Queries.Intern("\x00pseudo-user-node")
	b := sparse.NewBuilder(ng.Queries.Len(), g.URLs.Len())
	for q := 0; q < g.Queries.Len(); q++ {
		g.W.Row(q, func(u int, v float64) { b.Add(q, u, v) })
	}
	for name, w := range urlWeights {
		if u, ok := g.URLs.Lookup(name); ok && w > 0 {
			b.Add(pseudoID, u, w)
		}
	}
	ng.W = b.Build()
	return ng, pseudoID
}
