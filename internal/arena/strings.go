// Package arena provides flat, offset-addressed data structures whose
// backing storage is a caller-supplied byte buffer — typically a section
// of an mmap'd snapshot file (internal/snapwire). Nothing here owns
// memory: every structure aliases the buffer it was built over, reads
// are zero-copy and zero-allocation, and mutation is impossible by
// construction (there is no API that writes).
//
// The flagship type is Strings: a string table whose lookup index — an
// open-addressing hash table — is itself part of the flat layout, so
// loading a table of a million interned queries costs a handful of
// slice headers instead of a million map insertions and string copies.
package arena

import (
	"errors"
	"fmt"
	"math/bits"
	"unsafe"
)

// Strings is a read-only string table over flat storage: n strings
// stored back to back in blob, delimited by offsets (len n+1,
// offsets[0] == 0, ascending), with an open-addressing hash table for
// reverse lookup. All three slices typically alias one arena buffer.
//
// Name returns strings that alias blob via unsafe.String: callers MUST
// NOT mutate blob, and the returned strings live exactly as long as the
// buffer does (heap-backed buffers are kept alive by the returned
// strings themselves; mmap-backed buffers must not be unmapped while
// any derived string is reachable — see snapwire's aliasing contract).
type Strings struct {
	offsets []uint64
	blob    []byte
	table   []uint32 // power-of-two length; entry = id+1, 0 = empty
}

// ErrCorrupt reports a structurally invalid flat string table.
var ErrCorrupt = errors.New("arena: corrupt string table")

// NewStrings validates the flat layout and wraps it. It checks every
// invariant a hostile buffer could violate — offset monotonicity,
// bounds, table size and entry range — so subsequent Name/Lookup calls
// can index without panicking. It does NOT verify that table entries
// hash correctly (a corrupted-but-well-formed table degrades to wrong
// lookup results, never to unsafety); whole-file checksums upstream
// catch corruption.
func NewStrings(offsets []uint64, blob []byte, table []uint32) (*Strings, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("%w: empty offset array", ErrCorrupt)
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, fmt.Errorf("%w: offsets[0] = %d", ErrCorrupt, offsets[0])
	}
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return nil, fmt.Errorf("%w: offsets not monotone at %d", ErrCorrupt, i)
		}
	}
	if offsets[n] != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: offsets end at %d, blob is %d bytes", ErrCorrupt, offsets[n], len(blob))
	}
	if len(table) != tableSize(n) {
		return nil, fmt.Errorf("%w: hash table has %d slots, want %d for %d strings", ErrCorrupt, len(table), tableSize(n), n)
	}
	for _, e := range table {
		if e > uint32(n) {
			return nil, fmt.Errorf("%w: hash slot points at id %d of %d", ErrCorrupt, e-1, n)
		}
	}
	return &Strings{offsets: offsets, blob: blob, table: table}, nil
}

// BuildStrings lays out names as a flat string table: the writer-side
// inverse of NewStrings. The returned slices are freshly allocated.
func BuildStrings(names []string) (offsets []uint64, blob []byte, table []uint32) {
	offsets = make([]uint64, len(names)+1)
	total := 0
	for _, s := range names {
		total += len(s)
	}
	blob = make([]byte, 0, total)
	for i, s := range names {
		blob = append(blob, s...)
		offsets[i+1] = uint64(len(blob))
	}
	table = make([]uint32, tableSize(len(names)))
	mask := uint64(len(table) - 1)
	for i, s := range names {
		slot := Hash(s) & mask
		for table[slot] != 0 {
			slot = (slot + 1) & mask
		}
		table[slot] = uint32(i) + 1
	}
	return offsets, blob, table
}

// tableSize returns the open-addressing table length for n entries: the
// next power of two of 2n (load factor ≤ 0.5), at least 2 so there is
// always an empty slot to terminate probes.
func tableSize(n int) int {
	if n <= 0 {
		return 2
	}
	return 1 << bits.Len(uint(2*n-1))
}

// Hash is the table's hash function: FNV-1a, 64-bit.
func Hash(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Len returns the number of stored strings.
func (s *Strings) Len() int { return len(s.offsets) - 1 }

// Name returns string i, aliasing the blob (zero copy, zero alloc).
func (s *Strings) Name(i int) string {
	lo, hi := s.offsets[i], s.offsets[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&s.blob[lo], hi-lo)
}

// Lookup resolves a string to its id. The probe is bounded by the
// table length, so even a hostile all-full table terminates.
func (s *Strings) Lookup(name string) (int, bool) {
	mask := uint64(len(s.table) - 1)
	slot := Hash(name) & mask
	for probes := 0; probes < len(s.table); probes++ {
		e := s.table[slot]
		if e == 0 {
			return 0, false
		}
		id := int(e - 1)
		if s.Name(id) == name {
			return id, true
		}
		slot = (slot + 1) & mask
	}
	return 0, false
}

// Names materializes the full table as a []string (each element still
// aliases the blob). Intended for thaw/migration paths, not serving.
func (s *Strings) Names() []string {
	out := make([]string, s.Len())
	for i := range out {
		out[i] = s.Name(i)
	}
	return out
}

// Offsets exposes the raw offset array for wire writers (do not mutate).
func (s *Strings) Offsets() []uint64 { return s.offsets }

// Blob exposes the raw string bytes for wire writers (do not mutate).
func (s *Strings) Blob() []byte { return s.blob }

// Table exposes the raw hash table for wire writers (do not mutate).
func (s *Strings) Table() []uint32 { return s.table }
