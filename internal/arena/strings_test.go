package arena

import (
	"fmt"
	"testing"
)

func roundTrip(t *testing.T, names []string) *Strings {
	t.Helper()
	off, blob, table := BuildStrings(names)
	s, err := NewStrings(off, blob, table)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStringsRoundTrip(t *testing.T) {
	names := []string{"", "sun", "sun tan", "jvm", "sun", "ünïcode ☀"}
	// Note: duplicate "sun" — Lookup may return either id; Name must be
	// exact for all.
	s := roundTrip(t, names)
	if s.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(names))
	}
	for i, n := range names {
		if got := s.Name(i); got != n {
			t.Fatalf("Name(%d) = %q, want %q", i, got, n)
		}
	}
	for _, n := range names {
		id, ok := s.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missed", n)
		}
		if s.Name(id) != n {
			t.Fatalf("Lookup(%q) = id %d = %q", n, id, s.Name(id))
		}
	}
	if _, ok := s.Lookup("never interned"); ok {
		t.Fatal("phantom hit")
	}
}

func TestStringsEmpty(t *testing.T) {
	s := roundTrip(t, nil)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("hit in empty table")
	}
}

func TestStringsLarge(t *testing.T) {
	names := make([]string, 5000)
	for i := range names {
		names[i] = fmt.Sprintf("query %d about topic %d", i, i%97)
	}
	s := roundTrip(t, names)
	for i, n := range names {
		id, ok := s.Lookup(n)
		if !ok || id != i {
			t.Fatalf("Lookup(%q) = %d,%v want %d", n, id, ok, i)
		}
	}
}

func TestStringsZeroAllocLookup(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	s := roundTrip(t, names)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := s.Lookup("beta"); !ok {
			t.Fatal("miss")
		}
		if s.Name(2) != "gamma" {
			t.Fatal("bad name")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup/Name allocated %v per run", allocs)
	}
}

func TestNewStringsRejectsCorrupt(t *testing.T) {
	off, blob, table := BuildStrings([]string{"a", "bb", "ccc"})
	cases := []struct {
		name string
		mut  func() ([]uint64, []byte, []uint32)
	}{
		{"empty offsets", func() ([]uint64, []byte, []uint32) { return nil, blob, table }},
		{"nonzero start", func() ([]uint64, []byte, []uint32) {
			o := append([]uint64(nil), off...)
			o[0] = 1
			return o, blob, table
		}},
		{"non-monotone", func() ([]uint64, []byte, []uint32) {
			o := append([]uint64(nil), off...)
			o[1], o[2] = o[2], o[1]
			return o, blob, table
		}},
		{"blob mismatch", func() ([]uint64, []byte, []uint32) { return off, blob[:len(blob)-1], table }},
		{"bad table size", func() ([]uint64, []byte, []uint32) { return off, blob, table[:1] }},
		{"slot out of range", func() ([]uint64, []byte, []uint32) {
			tb := append([]uint32(nil), table...)
			tb[0] = 99
			return off, blob, tb
		}},
	}
	for _, tc := range cases {
		o, b, tb := tc.mut()
		if _, err := NewStrings(o, b, tb); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestLookupTerminatesOnHostileTable(t *testing.T) {
	// A table with every slot full (no empty terminator) must not spin.
	off, blob, table := BuildStrings([]string{"a", "bb"})
	for i := range table {
		if table[i] == 0 {
			table[i] = 1
		}
	}
	s, err := NewStrings(off, blob, table)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("zzz"); ok {
		t.Fatal("phantom hit")
	}
}
