// Package regularize implements the context-aware regularization
// framework of the paper's Section IV-B: it propagates an input query's
// (and its search context's) initial relevance vector F⁰ through the
// compact multi-bipartite representation by solving the sparse linear
// system of Eq. 15,
//
//	((1 + Σ_X α^X)·I − Σ_X α^X·L^X) F* = F⁰,
//
// and identifies the most relevant suggestion candidate as the largest
// entry of F* outside the seed set.
package regularize

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/bipartite"
	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Config tunes the framework.
type Config struct {
	// Alpha are the per-view Lagrange multipliers α^X (Eq. 15),
	// empirically tuned as the paper prescribes; defaults are 0.1 for
	// each view (light smoothing keeps the first candidate tightly
	// coupled to the seed's own neighborhoods). They must be
	// nonnegative and (with Mu) satisfy Σα ≤ μ so π = μ − Σα ≥ 0
	// (Eq. 14).
	Alpha [bipartite.NumViews]float64
	// Mu is the trade-off between fitting and smoothness (Eq. 10),
	// default 2.0. Only the Σα ≤ μ feasibility matters after
	// dualization; Mu is validated, not used numerically.
	Mu float64
	// Lambda is the forward-decay scale of the context vector (Eq. 7),
	// in 1/seconds; default ln(2)/60 (context weight halves per minute).
	Lambda float64
	// Solver options for the CG solve of Eq. 15.
	Solver sparse.SolveOptions
}

func (c Config) withDefaults() Config {
	allZero := true
	for _, a := range c.Alpha {
		if a != 0 {
			allZero = false
		}
	}
	if allZero {
		for v := range c.Alpha {
			c.Alpha[v] = 0.1
		}
	}
	if c.Mu <= 0 {
		c.Mu = 2.0
	}
	if c.Lambda <= 0 {
		c.Lambda = math.Ln2 / 60
	}
	return c
}

// Validate checks the dual-feasibility conditions of Eq. 14.
func (c Config) Validate() error {
	c = c.withDefaults()
	sum := 0.0
	for v, a := range c.Alpha {
		if a < 0 {
			return fmt.Errorf("regularize: alpha[%s] = %v < 0", bipartite.View(v), a)
		}
		sum += a
	}
	if sum > c.Mu {
		return fmt.Errorf("regularize: Σα = %v exceeds μ = %v (π would be negative)", sum, c.Mu)
	}
	return nil
}

// ContextEntry is one search-context query with its elapsed time before
// the input query.
type ContextEntry struct {
	// Local is the compact-local index of the context query.
	Local int
	// Before is how long before the input query it was submitted (≥ 0).
	Before time.Duration
}

// ContextVector builds F⁰ (Eq. 7) over a compact representation of size
// n: the input query's entry is 1, each context query q' decays as
// exp(−λ·Δt), everything else 0.
func ContextVector(n, inputLocal int, context []ContextEntry, lambda float64) []float64 {
	f0 := make([]float64, n)
	if inputLocal >= 0 && inputLocal < n {
		f0[inputLocal] = 1
	}
	for _, c := range context {
		if c.Local < 0 || c.Local >= n || c.Local == inputLocal {
			continue
		}
		dt := c.Before.Seconds()
		if dt < 0 {
			dt = 0
		}
		w := math.Exp(-lambda * dt)
		if w > f0[c.Local] {
			f0[c.Local] = w
		}
	}
	return f0
}

// Result carries the full relevance vector and the chosen candidate.
type Result struct {
	// F is the solved relevance vector F* over compact-local indices.
	F []float64
	// First is the compact-local index of the most relevant candidate
	// (largest F* outside the seeds), or −1 when no candidate exists.
	First int
	// Iterations is the CG iteration count (for the efficiency figures).
	Iterations int
	// Residual is the solve's final relative residual ‖Ax−b‖₂/‖b‖₂ —
	// solver-convergence telemetry surfaced per request.
	Residual float64
}

// FirstCandidate solves Eq. 15 on the compact representation and picks
// the most relevant suggestion candidate. seeds (input query + search
// context, compact-local) are excluded from candidacy.
func FirstCandidate(c *bipartite.Compact, f0 []float64, seeds []int, cfg Config) (Result, error) {
	return FirstCandidateCtx(context.Background(), c, f0, seeds, cfg)
}

// FirstCandidateCtx is FirstCandidate with request-scoped cancellation,
// threaded into the CG iteration of the Eq. 15 solve. On cancellation
// the returned error wraps ctx.Err() and carries the iteration count
// reached, so serving timings stay reportable.
func FirstCandidateCtx(ctx context.Context, c *bipartite.Compact, f0 []float64, seeds []int, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := c.Size()
	if len(f0) != n {
		return Result{}, fmt.Errorf("regularize: F0 length %d != compact size %d", len(f0), n)
	}
	a := System(c, cfg)
	// Convergence telemetry rides on a local copy of the solver options
	// so a caller-shared Config is never mutated.
	var st sparse.SolveStats
	solver := cfg.Solver
	solver.Stats = &st
	f, iters, err := sparse.SolveCGCtx(ctx, a, f0, nil, solver)
	if err != nil {
		return Result{Iterations: iters, Residual: st.Residual}, fmt.Errorf("regularize: solving Eq. 15: %w", err)
	}
	excluded := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		excluded[s] = true
	}
	best := -1
	for i := 0; i < n; i++ {
		if excluded[i] {
			continue
		}
		if best < 0 || f[i] > f[best] {
			best = i
		}
	}
	return Result{F: f, First: best, Iterations: iters, Residual: st.Residual}, nil
}

// System materializes the Eq. 15 coefficient matrix
// (1+Σα)I − Σ α^X L^X on the compact representation.
func System(c *bipartite.Compact, cfg Config) *sparse.Matrix {
	cfg = cfg.withDefaults()
	n := c.Size()
	sumAlpha := 0.0
	for _, a := range cfg.Alpha {
		sumAlpha += a
	}
	acc := sparse.Identity(n).Scale(1 + sumAlpha)
	for v := 0; v < bipartite.NumViews; v++ {
		if cfg.Alpha[v] == 0 {
			continue
		}
		l := c.NormalizedAffinity(bipartite.View(v))
		acc = sparse.Add(acc, l, -cfg.Alpha[v])
	}
	return acc
}

// Rank returns all non-seed compact-local indices ordered by descending
// F* — a full relevance-oriented ranking, used by ablation benches.
func (r Result) Rank(seeds []int) []int {
	excluded := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		excluded[s] = true
	}
	order := numeric.TopK(r.F, len(r.F))
	out := order[:0]
	for _, i := range order {
		if !excluded[i] {
			out = append(out, i)
		}
	}
	return out
}
