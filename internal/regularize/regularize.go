// Package regularize implements the context-aware regularization
// framework of the paper's Section IV-B: it propagates an input query's
// (and its search context's) initial relevance vector F⁰ through the
// compact multi-bipartite representation by solving the sparse linear
// system of Eq. 15,
//
//	((1 + Σ_X α^X)·I − Σ_X α^X·L^X) F* = F⁰,
//
// and identifies the most relevant suggestion candidate as the largest
// entry of F* outside the seed set.
package regularize

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/bipartite"
	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Config tunes the framework.
type Config struct {
	// Alpha are the per-view Lagrange multipliers α^X (Eq. 15),
	// empirically tuned as the paper prescribes; defaults are 0.1 for
	// each view (light smoothing keeps the first candidate tightly
	// coupled to the seed's own neighborhoods). They must be
	// nonnegative and (with Mu) satisfy Σα ≤ μ so π = μ − Σα ≥ 0
	// (Eq. 14).
	Alpha [bipartite.NumViews]float64
	// Mu is the trade-off between fitting and smoothness (Eq. 10),
	// default 2.0. Only the Σα ≤ μ feasibility matters after
	// dualization; Mu is validated, not used numerically.
	Mu float64
	// Lambda is the forward-decay scale of the context vector (Eq. 7),
	// in 1/seconds; default ln(2)/60 (context weight halves per minute).
	Lambda float64
	// Solver options for the CG solve of Eq. 15.
	Solver sparse.SolveOptions
}

func (c Config) withDefaults() Config {
	allZero := true
	for _, a := range c.Alpha {
		if a != 0 {
			allZero = false
		}
	}
	if allZero {
		for v := range c.Alpha {
			c.Alpha[v] = 0.1
		}
	}
	if c.Mu <= 0 {
		c.Mu = 2.0
	}
	if c.Lambda <= 0 {
		c.Lambda = math.Ln2 / 60
	}
	return c
}

// Validate checks the dual-feasibility conditions of Eq. 14.
func (c Config) Validate() error {
	c = c.withDefaults()
	sum := 0.0
	for v, a := range c.Alpha {
		if a < 0 {
			return fmt.Errorf("regularize: alpha[%s] = %v < 0", bipartite.View(v), a)
		}
		sum += a
	}
	if sum > c.Mu {
		return fmt.Errorf("regularize: Σα = %v exceeds μ = %v (π would be negative)", sum, c.Mu)
	}
	return nil
}

// ContextEntry is one search-context query with its elapsed time before
// the input query.
type ContextEntry struct {
	// Local is the compact-local index of the context query.
	Local int
	// Before is how long before the input query it was submitted (≥ 0).
	Before time.Duration
}

// ContextVector builds F⁰ (Eq. 7) over a compact representation of size
// n: the input query's entry is 1, each context query q' decays as
// exp(−λ·Δt), everything else 0.
func ContextVector(n, inputLocal int, context []ContextEntry, lambda float64) []float64 {
	f0 := make([]float64, n)
	if inputLocal >= 0 && inputLocal < n {
		f0[inputLocal] = 1
	}
	for _, c := range context {
		if c.Local < 0 || c.Local >= n || c.Local == inputLocal {
			continue
		}
		dt := c.Before.Seconds()
		if dt < 0 {
			dt = 0
		}
		w := math.Exp(-lambda * dt)
		if w > f0[c.Local] {
			f0[c.Local] = w
		}
	}
	return f0
}

// Result carries the full relevance vector and the chosen candidate.
type Result struct {
	// F is the solved relevance vector F* over compact-local indices.
	F []float64
	// First is the compact-local index of the most relevant candidate
	// (largest F* outside the seeds), or −1 when no candidate exists.
	First int
	// Iterations is the CG iteration count (for the efficiency figures).
	Iterations int
	// Residual is the solve's final relative residual ‖Ax−b‖₂/‖b‖₂ —
	// solver-convergence telemetry surfaced per request.
	Residual float64
	// Refinements counts float32 inner solves when the solver ran in
	// reduced precision (0 for plain float64 solves).
	Refinements int
	// FellBack reports that a float32 solve stalled and finished in
	// float64 via iterative-refinement fallback.
	FellBack bool
}

// FirstCandidate solves Eq. 15 on the compact representation and picks
// the most relevant suggestion candidate. seeds (input query + search
// context, compact-local) are excluded from candidacy.
func FirstCandidate(c *bipartite.Compact, f0 []float64, seeds []int, cfg Config) (Result, error) {
	return FirstCandidateCtx(context.Background(), c, f0, seeds, cfg)
}

// FirstCandidateCtx is FirstCandidate with request-scoped cancellation,
// threaded into the CG iteration of the Eq. 15 solve. On cancellation
// the returned error wraps ctx.Err() and carries the iteration count
// reached, so serving timings stay reportable.
func FirstCandidateCtx(ctx context.Context, c *bipartite.Compact, f0 []float64, seeds []int, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := c.Size()
	if len(f0) != n {
		return Result{}, fmt.Errorf("regularize: F0 length %d != compact size %d", len(f0), n)
	}
	a := System(c, cfg)
	// Convergence telemetry rides on a local copy of the solver options
	// so a caller-shared Config is never mutated.
	var st sparse.SolveStats
	solver := cfg.Solver
	solver.Stats = &st
	f, iters, err := sparse.SolveCGCtx(ctx, a, f0, nil, solver)
	if err != nil {
		return Result{Iterations: iters, Residual: st.Residual, Refinements: st.Refinements, FellBack: st.FellBack}, fmt.Errorf("regularize: solving Eq. 15: %w", err)
	}
	return Result{
		F:           f,
		First:       argmaxExcluding(f, seeds),
		Iterations:  iters,
		Residual:    st.Residual,
		Refinements: st.Refinements,
		FellBack:    st.FellBack,
	}, nil
}

// FirstCandidatesCtx is the batched form of FirstCandidateCtx: it solves
// Eq. 15 once per F⁰ column against ONE shared system matrix using the
// blocked multi-RHS CG kernel, so a batch of b requests on the same
// compact costs a single sweep of shared SpMM iterations instead of b
// independent SpMV-driven solves. seeds[i] are the compact-local indices
// excluded from candidacy for item i.
//
// On a solver error the per-item results still carry their iteration
// counts and residuals; items whose lane converged get their candidate
// filled so partial batches stay reportable.
func FirstCandidatesCtx(ctx context.Context, c *bipartite.Compact, f0s [][]float64, seeds [][]int, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) != len(f0s) {
		return nil, fmt.Errorf("regularize: %d seed sets for %d F0 vectors", len(seeds), len(f0s))
	}
	n := c.Size()
	for i, f0 := range f0s {
		if len(f0) != n {
			return nil, fmt.Errorf("regularize: F0[%d] length %d != compact size %d", i, len(f0), n)
		}
	}
	out := make([]Result, len(f0s))
	if len(f0s) == 0 {
		return out, nil
	}
	a := System(c, cfg)
	fs, stats, err := sparse.SolveCGMultiCtx(ctx, a, f0s, nil, cfg.Solver)
	for i := range out {
		out[i] = Result{
			F:           fs[i],
			First:       -1,
			Iterations:  stats[i].Iterations,
			Residual:    stats[i].Residual,
			Refinements: stats[i].Refinements,
			FellBack:    stats[i].FellBack,
		}
		if stats[i].Converged {
			out[i].First = argmaxExcluding(fs[i], seeds[i])
		}
	}
	if err != nil {
		return out, fmt.Errorf("regularize: solving Eq. 15 (batched, %d rhs): %w", len(f0s), err)
	}
	return out, nil
}

// argmaxExcluding finds the index of the largest entry of f outside the
// seed set. Seed sets are tiny (input query + context, a handful at
// most), so a linear scan per entry beats materializing a map — the
// old map-based exclusion was one of the per-request allocators this
// path sheds.
func argmaxExcluding(f []float64, seeds []int) int {
	best := -1
	for i, fi := range f {
		if best >= 0 && fi <= f[best] {
			continue
		}
		skip := false
		for _, s := range seeds {
			if s == i {
				skip = true
				break
			}
		}
		if !skip {
			best = i
		}
	}
	return best
}

// systemKey identifies one Eq. 15 coefficient matrix in a compact's
// derived-value memo: the system depends on the compact and the α
// vector only.
type systemKey struct {
	alpha [bipartite.NumViews]float64
}

// System materializes the Eq. 15 coefficient matrix
// (1+Σα)I − Σ α^X L^X on the compact representation. The matrix is a
// pure function of (compact, α), so it is memoized on the compact:
// repeated solves on a cached compact — the common case once the
// engine reuses compacts across requests — pay for the SpGEMM chain
// exactly once.
func System(c *bipartite.Compact, cfg Config) *sparse.Matrix {
	cfg = cfg.withDefaults()
	return c.Derived(systemKey{alpha: cfg.Alpha}, func() any {
		n := c.Size()
		sumAlpha := 0.0
		for _, a := range cfg.Alpha {
			sumAlpha += a
		}
		acc := sparse.ScaledIdentity(n, 1+sumAlpha)
		for v := 0; v < bipartite.NumViews; v++ {
			if cfg.Alpha[v] == 0 {
				continue
			}
			l := c.NormalizedAffinity(bipartite.View(v))
			acc = sparse.Add(acc, l, -cfg.Alpha[v])
		}
		return acc
	}).(*sparse.Matrix)
}

// Rank returns all non-seed compact-local indices ordered by descending
// F* — a full relevance-oriented ranking, used by ablation benches.
func (r Result) Rank(seeds []int) []int {
	excluded := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		excluded[s] = true
	}
	order := numeric.TopK(r.F, len(r.F))
	out := order[:0]
	for _, i := range order {
		if !excluded[i] {
			out = append(out, i)
		}
	}
	return out
}
