package regularize

import (
	"math"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/querylog"
	"repro/internal/synth"
)

func compactAround(t *testing.T, seedQuery int) *bipartite.Compact {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 11, NumFacets: 6, NumUsers: 15, SessionsPerUser: 10})
	rep := bipartite.Build(w.Log, querylog.SessionizerConfig{}, bipartite.CFIQF)
	return rep.BuildCompact([]int{seedQuery}, bipartite.CompactConfig{Budget: 40})
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := Config{Mu: 1, Alpha: [bipartite.NumViews]float64{1, 1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("Σα > μ accepted")
	}
	neg := Config{Mu: 5, Alpha: [bipartite.NumViews]float64{-1, 1, 1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestContextVector(t *testing.T) {
	lambda := math.Ln2 / 60 // halves every minute
	f0 := ContextVector(5, 0, []ContextEntry{
		{Local: 1, Before: time.Minute},
		{Local: 2, Before: 2 * time.Minute},
		{Local: 7, Before: time.Second}, // out of range: ignored
		{Local: 0, Before: time.Second}, // input itself: ignored
	}, lambda)
	if f0[0] != 1 {
		t.Errorf("input entry = %v, want 1", f0[0])
	}
	if math.Abs(f0[1]-0.5) > 1e-12 {
		t.Errorf("1-minute context = %v, want 0.5", f0[1])
	}
	if math.Abs(f0[2]-0.25) > 1e-12 {
		t.Errorf("2-minute context = %v, want 0.25", f0[2])
	}
	if f0[3] != 0 || f0[4] != 0 {
		t.Error("untouched entries nonzero")
	}
	// More recent context weighs more.
	if !(f0[1] > f0[2]) {
		t.Error("decay not monotone")
	}
}

func TestContextVectorNegativeDuration(t *testing.T) {
	f0 := ContextVector(3, 0, []ContextEntry{{Local: 1, Before: -time.Hour}}, 0.01)
	if f0[1] != 1 {
		t.Errorf("negative duration should clamp to weight 1, got %v", f0[1])
	}
}

func TestFirstCandidateOnSyntheticLog(t *testing.T) {
	c := compactAround(t, 0)
	if c.Size() < 3 {
		t.Skip("compact too small for this seed")
	}
	f0 := ContextVector(c.Size(), 0, nil, 0.01)
	res, err := FirstCandidate(c, f0, []int{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.First < 0 || res.First == 0 {
		t.Fatalf("First = %d, want a non-seed candidate", res.First)
	}
	// The input query itself must hold the largest F* overall (fitting
	// constraint dominates at the seed).
	for i, v := range res.F {
		if i != 0 && v > res.F[0] {
			t.Errorf("F[%d] = %v exceeds seed's %v", i, v, res.F[0])
		}
	}
	// All relevances must be nonnegative for a nonnegative F0.
	for i, v := range res.F {
		if v < -1e-9 {
			t.Errorf("F[%d] = %v negative", i, v)
		}
	}
}

func TestFirstCandidateRespectsSeedExclusion(t *testing.T) {
	c := compactAround(t, 1)
	if c.Size() < 4 {
		t.Skip("compact too small")
	}
	f0 := ContextVector(c.Size(), 0, []ContextEntry{{Local: 1, Before: time.Minute}}, 0.01)
	res, err := FirstCandidate(c, f0, []int{0, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.First == 0 || res.First == 1 {
		t.Errorf("seed %d chosen as candidate", res.First)
	}
}

func TestFirstCandidateLengthMismatch(t *testing.T) {
	c := compactAround(t, 0)
	if _, err := FirstCandidate(c, make([]float64, c.Size()+1), nil, Config{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSystemSPDStructure(t *testing.T) {
	c := compactAround(t, 2)
	a := System(c, Config{})
	n := a.Rows()
	if n != c.Size() || a.Cols() != n {
		t.Fatalf("system shape %dx%d", a.Rows(), a.Cols())
	}
	// Symmetry.
	for i := 0; i < n; i++ {
		a.Row(i, func(j int, v float64) {
			if math.Abs(v-a.At(j, i)) > 1e-9 {
				t.Fatalf("system not symmetric at (%d,%d)", i, j)
			}
		})
	}
	// Diagonal dominance-ish: diagonal = 1+Σα − α·L_ii ≥ 1 since L_ii ≤ 1.
	for i := 0; i < n; i++ {
		if a.At(i, i) < 1-1e-9 {
			t.Errorf("diagonal %d = %v < 1", i, a.At(i, i))
		}
	}
}

func TestSmoothnessPullsNeighbors(t *testing.T) {
	// Relevance must propagate: at least one non-seed query gets a
	// strictly positive score, and queries connected to the seed score
	// higher than isolated ones.
	c := compactAround(t, 0)
	if c.Size() < 3 {
		t.Skip("compact too small")
	}
	f0 := ContextVector(c.Size(), 0, nil, 0.01)
	res, err := FirstCandidate(c, f0, []int{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F[res.First] <= 0 {
		t.Errorf("best candidate score %v, want > 0 (propagation failed)", res.F[res.First])
	}
}

func TestRank(t *testing.T) {
	res := Result{F: []float64{0.9, 0.1, 0.7, 0.5}}
	rank := res.Rank([]int{0})
	want := []int{2, 3, 1}
	if len(rank) != 3 {
		t.Fatalf("rank = %v", rank)
	}
	for i := range want {
		if rank[i] != want[i] {
			t.Errorf("rank = %v, want %v", rank, want)
			break
		}
	}
}

// TestSystemMemoized pins that the Eq. 15 system is built once per
// (compact, α): repeated calls share the matrix, a different α builds a
// different one, and the memoized matrix matches a from-scratch build
// on an identical compact bit for bit.
func TestSystemMemoized(t *testing.T) {
	c := compactAround(t, 1)
	cfg := Config{}
	a1 := System(c, cfg)
	a2 := System(c, cfg)
	if a1 != a2 {
		t.Fatal("same config rebuilt the system matrix")
	}
	other := Config{Mu: 2, Alpha: [bipartite.NumViews]float64{0.2, 0.1, 0.1}}
	if System(c, other) == a1 {
		t.Fatal("different alpha shared a system matrix")
	}

	// Fresh identical compact → bit-identical system.
	want := System(compactAround(t, 1), cfg)
	n := c.Size()
	if want.Rows() != n || a1.Rows() != n {
		t.Fatalf("system sizes %d/%d != compact size %d", a1.Rows(), want.Rows(), n)
	}
	for i := 0; i < n; i++ {
		gr, wr := map[int]float64{}, map[int]float64{}
		a1.Row(i, func(j int, v float64) { gr[j] = v })
		want.Row(i, func(j int, v float64) { wr[j] = v })
		if len(gr) != len(wr) {
			t.Fatalf("row %d nnz %d != %d", i, len(gr), len(wr))
		}
		for j, v := range wr {
			if gr[j] != v {
				t.Fatalf("system[%d,%d] = %v, want %v", i, j, gr[j], v)
			}
		}
	}
}
