package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock shared by limiter/breaker
// tests so refill and cooldown math is exact, not sleep-based.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(RateConfig{Rate: 2, Burst: 3, Now: clk.Now})

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("u1"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, retry := l.Allow("u1")
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	// Rate 2/s with an empty bucket: the next token is 500ms away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	clk.Advance(retry)
	if ok, _ := l.Allow("u1"); !ok {
		t.Fatal("request after the advertised Retry-After still shed")
	}
	// A different key has its own bucket.
	if ok, _ := l.Allow("u2"); !ok {
		t.Fatal("fresh key shed")
	}
}

func TestLimiterRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(RateConfig{Rate: 10, Burst: 2, Now: clk.Now})
	l.Allow("k")
	clk.Advance(time.Hour) // long idle must not bank more than Burst
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatalf("request %d within burst shed after idle", i)
		}
	}
	if ok, _ := l.Allow("k"); ok {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestLimiterTTLEviction(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(RateConfig{Rate: 1, Burst: 1, TTL: time.Minute, Now: clk.Now})
	for i := 0; i < 64; i++ {
		l.Allow(fmt.Sprintf("key-%d", i))
	}
	if got := l.Keys(); got != 64 {
		t.Fatalf("resident keys = %d, want 64", got)
	}
	clk.Advance(2 * time.Minute)
	// One request per shard triggers the amortized sweep; the fresh key
	// stays, the idle 64 go.
	for i := 0; i < 256; i++ {
		l.Allow(fmt.Sprintf("fresh-%d", i))
	}
	if got := l.Keys(); got > 256 {
		t.Fatalf("idle keys not evicted: %d resident", got)
	}
}

func TestLimiterDisabledAndNil(t *testing.T) {
	if l := NewLimiter(RateConfig{Rate: 0}); l != nil {
		t.Fatal("Rate 0 should disable the limiter")
	}
	var l *Limiter
	if ok, retry := l.Allow("any"); !ok || retry != 0 {
		t.Fatal("nil limiter must admit everything")
	}
	if l.Keys() != 0 {
		t.Fatal("nil limiter reports keys")
	}
}

func TestLimiterConcurrentBound(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(RateConfig{Rate: 1, Burst: 50, Now: clk.Now})
	var admitted atomic64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if ok, _ := l.Allow("hot"); ok {
					admitted.add(1)
				}
			}
		}()
	}
	wg.Wait()
	// 800 concurrent requests against burst 50 with a frozen clock:
	// exactly 50 tokens exist.
	if got := admitted.load(); got != 50 {
		t.Fatalf("admitted %d, want exactly 50 (burst)", got)
	}
}

// atomic64 avoids importing sync/atomic with a type alias dance in
// multiple tests.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
