package admission

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Gate.Acquire when the bounded wait queue
// is already at capacity — the request must be shed immediately.
var ErrQueueFull = errors.New("admission: wait queue full")

// ErrWaitTimeout is returned when a queued request waited MaxWait
// without a slot freeing up. Shedding after a short bounded wait keeps
// the queue a shock absorber for microbursts instead of a latency
// amplifier under sustained overload.
var ErrWaitTimeout = errors.New("admission: queued past the wait budget")

// GateConfig tunes one bounded concurrency gate.
type GateConfig struct {
	// Limit is how many holders run concurrently. Zero or negative
	// disables the gate (NewGate returns nil, which admits everything).
	Limit int
	// Queue bounds how many requests may wait for a slot; arrivals
	// beyond it shed with ErrQueueFull. Negative defaults to 2·Limit;
	// zero means shed immediately when all slots are busy.
	Queue int
	// MaxWait bounds how long one queued request waits before shedding
	// with ErrWaitTimeout. Zero defaults to 100ms.
	MaxWait time.Duration
}

const defaultMaxWait = 100 * time.Millisecond

// Gate is a concurrency cap with a short bounded wait queue. The fast
// paths — an uncontended admit and a queue-full shed — are a channel
// try-send and an atomic CAS loop respectively: no locks, no
// allocations, so shedding a flood costs nanoseconds per request.
type Gate struct {
	// sem holds one token per running holder.
	sem chan struct{}
	// waiting counts queued acquirers; bounded by queueCap.
	waiting  atomic.Int64
	queueCap int64
	maxWait  time.Duration

	shedFull    atomic.Int64
	shedTimeout atomic.Int64
	admitted    atomic.Int64
}

// NewGate builds a gate; see GateConfig for defaulting. Returns nil
// (admit-everything) when Limit ≤ 0 — a nil *Gate is valid.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Limit <= 0 {
		return nil
	}
	if cfg.Queue < 0 {
		cfg.Queue = 2 * cfg.Limit
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultMaxWait
	}
	return &Gate{
		sem:      make(chan struct{}, cfg.Limit),
		queueCap: int64(cfg.Queue),
		maxWait:  cfg.MaxWait,
	}
}

// Acquire claims a slot, waiting in the bounded queue when all slots
// are busy. depth is the queue depth observed on entry (0 for an
// uncontended admit) — the server feeds it to the queue-depth
// histogram. The error is nil (admitted — caller must Release),
// ErrQueueFull, ErrWaitTimeout, or the context's error.
func (g *Gate) Acquire(ctx context.Context) (depth int, err error) {
	if g == nil {
		return 0, nil
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return 0, nil
	default:
	}
	// All slots busy: join the queue if it has room. CAS keeps the
	// bound exact under concurrency — a plain Add could overshoot and
	// admit more waiters than configured.
	for {
		n := g.waiting.Load()
		if n >= g.queueCap {
			g.shedFull.Add(1)
			return int(n), ErrQueueFull
		}
		if g.waiting.CompareAndSwap(n, n+1) {
			depth = int(n + 1)
			break
		}
	}
	defer g.waiting.Add(-1)
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return depth, nil
	case <-timer.C:
		g.shedTimeout.Add(1)
		return depth, ErrWaitTimeout
	case <-ctx.Done():
		return depth, ctx.Err()
	}
}

// Release frees a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	<-g.sem
}

// InFlight reports how many holders currently occupy slots.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Waiting reports the current queue depth.
func (g *Gate) Waiting() int {
	if g == nil {
		return 0
	}
	return int(g.waiting.Load())
}

// Limit reports the concurrency cap (0 for a nil gate).
func (g *Gate) Limit() int {
	if g == nil {
		return 0
	}
	return cap(g.sem)
}

// Saturation reports how full the gate is as a 0..1+ ratio of occupied
// slots plus waiters to the concurrency limit. 1.0 means every slot is
// busy; above 1.0 the wait queue is absorbing a burst. A nil gate
// (unlimited) is never saturated.
func (g *Gate) Saturation() float64 {
	if g == nil {
		return 0
	}
	return float64(len(g.sem)+int(g.waiting.Load())) / float64(cap(g.sem))
}

// RetryAfter is the backoff hint for shed requests: one MaxWait is the
// horizon after which a freed slot is plausible.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return 0
	}
	return g.maxWait
}

// Stats snapshots the gate counters.
func (g *Gate) Stats() (admitted, shedFull, shedTimeout int64) {
	if g == nil {
		return 0, 0, 0
	}
	return g.admitted.Load(), g.shedFull.Load(), g.shedTimeout.Load()
}
