package admission

import (
	"runtime"
	"time"
)

// Config assembles the whole admission-control surface. The zero value
// disables everything (every limiter, gate and the breaker is nil);
// DefaultConfig returns the recommended serving posture.
type Config struct {
	// User rate-limits suggestion traffic per user ID (anonymous
	// requests are exempt — the IP limiter covers them).
	User RateConfig
	// IP rate-limits all /v1 traffic per client IP.
	IP RateConfig
	// Suggest caps concurrently running suggestion pipelines — the
	// expensive stage class.
	Suggest GateConfig
	// Learn caps concurrent /v1/learn fold-ins.
	Learn GateConfig
	// Refresh caps concurrent /v1/refresh rebuilds. The rebuild itself
	// is serialized by the server; the gate bounds how many requests
	// may pile up waiting for that serialization.
	Refresh GateConfig
	// Breaker trips the personalize/hitting stage onto the cached
	// degraded path under sustained failure.
	Breaker BreakerConfig
}

// DefaultConfig is the recommended serving posture: suggestion
// concurrency capped at 4×GOMAXPROCS with a 2× wait queue, mutation
// single-file with a short queue, breaker at 50% failures over 10s.
// Rate limiters stay disabled — sensible per-key rates depend on the
// deployment and are opt-in via flags.
func DefaultConfig() Config {
	procs := runtime.GOMAXPROCS(0)
	return Config{
		Suggest: GateConfig{Limit: 4 * procs, Queue: -1, MaxWait: 100 * time.Millisecond},
		Learn:   GateConfig{Limit: 1, Queue: 4, MaxWait: time.Second},
		Refresh: GateConfig{Limit: 1, Queue: 2, MaxWait: time.Second},
		Breaker: BreakerConfig{FailureRatio: 0.5, Window: 10 * time.Second,
			MinSamples: 10, Cooldown: 5 * time.Second, Probes: 3},
	}
}

// Controller bundles the admission mechanisms for one server. Every
// field is nil-safe: a disabled mechanism admits everything, so call
// sites never branch on configuration.
type Controller struct {
	Users   *Limiter
	IPs     *Limiter
	Suggest *Gate
	Learn   *Gate
	Refresh *Gate
	Breaker *Breaker
}

// New builds a controller from cfg. Disabled mechanisms (zero
// rates/limits/ratio) come out nil and admit everything.
func New(cfg Config) *Controller {
	return &Controller{
		Users:   NewLimiter(cfg.User),
		IPs:     NewLimiter(cfg.IP),
		Suggest: NewGate(cfg.Suggest),
		Learn:   NewGate(cfg.Learn),
		Refresh: NewGate(cfg.Refresh),
		Breaker: NewBreaker(cfg.Breaker),
	}
}
