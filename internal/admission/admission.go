package admission

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Advisory is a coarse load-shedding hint an external policy layer (the
// server's SLO burn-rate engine) feeds into admission. It does not
// admit or reject by itself — the mechanisms here stay mechanism — but
// call sites consult it to bias toward cheaper serving before hard
// shedding becomes necessary.
type Advisory int32

const (
	// AdvisoryNone: no pressure; serve normally.
	AdvisoryNone Advisory = iota
	// AdvisoryConserve: error budget is burning slowly — prefer cheap
	// paths (cache, degraded fallbacks) where quality allows.
	AdvisoryConserve
	// AdvisoryShed: fast burn — the budget will be gone in hours;
	// aggressively prefer degraded responses over full pipelines.
	AdvisoryShed
)

func (a Advisory) String() string {
	switch a {
	case AdvisoryConserve:
		return "conserve"
	case AdvisoryShed:
		return "shed"
	default:
		return "none"
	}
}

// Config assembles the whole admission-control surface. The zero value
// disables everything (every limiter, gate and the breaker is nil);
// DefaultConfig returns the recommended serving posture.
type Config struct {
	// User rate-limits suggestion traffic per user ID (anonymous
	// requests are exempt — the IP limiter covers them).
	User RateConfig
	// IP rate-limits all /v1 traffic per client IP.
	IP RateConfig
	// Suggest caps concurrently running suggestion pipelines — the
	// expensive stage class.
	Suggest GateConfig
	// Learn caps concurrent /v1/learn fold-ins.
	Learn GateConfig
	// Refresh caps concurrent /v1/refresh rebuilds. The rebuild itself
	// is serialized by the server; the gate bounds how many requests
	// may pile up waiting for that serialization.
	Refresh GateConfig
	// Breaker trips the personalize/hitting stage onto the cached
	// degraded path under sustained failure.
	Breaker BreakerConfig
}

// DefaultConfig is the recommended serving posture: suggestion
// concurrency capped at 4×GOMAXPROCS with a 2× wait queue, mutation
// single-file with a short queue, breaker at 50% failures over 10s.
// Rate limiters stay disabled — sensible per-key rates depend on the
// deployment and are opt-in via flags.
func DefaultConfig() Config {
	procs := runtime.GOMAXPROCS(0)
	return Config{
		Suggest: GateConfig{Limit: 4 * procs, Queue: -1, MaxWait: 100 * time.Millisecond},
		Learn:   GateConfig{Limit: 1, Queue: 4, MaxWait: time.Second},
		Refresh: GateConfig{Limit: 1, Queue: 2, MaxWait: time.Second},
		Breaker: BreakerConfig{FailureRatio: 0.5, Window: 10 * time.Second,
			MinSamples: 10, Cooldown: 5 * time.Second, Probes: 3},
	}
}

// Controller bundles the admission mechanisms for one server. Every
// field is nil-safe: a disabled mechanism admits everything, so call
// sites never branch on configuration.
type Controller struct {
	Users   *Limiter
	IPs     *Limiter
	Suggest *Gate
	Learn   *Gate
	Refresh *Gate
	Breaker *Breaker

	advisory atomic.Int32
}

// SetAdvisory installs the current advisory level (called by the SLO
// evaluator on every evaluation). Nil-safe.
func (c *Controller) SetAdvisory(a Advisory) {
	if c == nil {
		return
	}
	c.advisory.Store(int32(a))
}

// Advisory returns the current advisory level. Nil-safe; lock-free.
func (c *Controller) Advisory() Advisory {
	if c == nil {
		return AdvisoryNone
	}
	return Advisory(c.advisory.Load())
}

// New builds a controller from cfg. Disabled mechanisms (zero
// rates/limits/ratio) come out nil and admit everything.
func New(cfg Config) *Controller {
	return &Controller{
		Users:   NewLimiter(cfg.User),
		IPs:     NewLimiter(cfg.IP),
		Suggest: NewGate(cfg.Suggest),
		Learn:   NewGate(cfg.Learn),
		Refresh: NewGate(cfg.Refresh),
		Breaker: NewBreaker(cfg.Breaker),
	}
}
