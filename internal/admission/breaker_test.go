package admission

import (
	"testing"
	"time"
)

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureRatio: 0.5,
		Window:       10 * time.Second,
		MinSamples:   4,
		Cooldown:     5 * time.Second,
		Probes:       2,
		Now:          clk.Now,
	})
}

func TestBreakerOpensOnFailureRatio(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	if b.State() != Closed {
		t.Fatal("fresh breaker not closed")
	}
	// 3 failures in a row: below MinSamples, must stay closed.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatal("tripped below MinSamples")
	}
	// 4th sample pushes total to MinSamples with 100% failures → open.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	if !b.Allow() {
		// Allowed? No: open means degraded.
	} else {
		t.Fatal("open breaker admitted a request")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 5s]", ra)
	}
}

func TestBreakerSuccessMajorityStaysClosed(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// 40% failures: below the 50% threshold at any sample count.
	for i := 0; i < 50; i++ {
		b.Record(i%5 < 2)
		b.Record(true)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed at sub-threshold failure rate", b.State())
	}
}

func TestBreakerHalfOpenProbeRecovery(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Cooldown not yet elapsed: still shedding.
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("admitted during cooldown")
	}
	// Cooldown elapsed: at most Probes=2 probes admitted.
	clk.Advance(2 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen after cooldown", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open refused probes")
	}
	if b.Allow() {
		t.Fatal("admitted a third concurrent probe (Probes = 2)")
	}
	// Both probes succeed → closed, window reset.
	b.Record(true)
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed after successful probes", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	// The pre-open failures must not re-trip the fresh window.
	b.Record(true)
	b.Record(true)
	if b.State() != Closed {
		t.Fatal("window not reset on close")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	clk.Advance(6 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want Open after failed probe", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// The cooldown restarts from the failed probe.
	if b.Allow() {
		t.Fatal("admitted right after re-open")
	}
}

func TestBreakerWindowSlidesFailuresOut(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// 3 failures now (sub-MinSamples)…
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	// …then the window slides twice; old failures expire.
	clk.Advance(25 * time.Second)
	for i := 0; i < 10; i++ {
		b.Record(true)
	}
	// One fresh failure: 1/11 in the live window, far below 50%.
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("state = %v: expired failures still counted", b.State())
	}
}

// A probe whose outcome is uninformative (cache hit, client cancel)
// must return its slot via Forfeit, or the half-open state wedges with
// all probe slots leaked.
func TestBreakerForfeitReleasesProbeSlot(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	clk.Advance(6 * time.Second)
	// Claim both probe slots (Probes = 2), forfeit both.
	if !b.Allow() || !b.Allow() {
		t.Fatal("probes refused")
	}
	if b.Allow() {
		t.Fatal("third probe admitted")
	}
	b.Forfeit()
	b.Forfeit()
	// The slots are reusable: recovery still possible.
	if !b.Allow() || !b.Allow() {
		t.Fatal("forfeited slots not reusable")
	}
	b.Record(true)
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
	// Forfeit outside half-open is a no-op (and nil-safe).
	b.Forfeit()
	var nilB *Breaker
	nilB.Forfeit()
}

func TestBreakerDisabledAndNil(t *testing.T) {
	if NewBreaker(BreakerConfig{FailureRatio: 0}) != nil {
		t.Fatal("FailureRatio 0 should disable the breaker")
	}
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must admit")
	}
	b.Record(false) // must not panic
	if b.State() != Closed || b.Opens() != 0 || b.StateValue() != 0 || b.RetryAfter() != 0 {
		t.Fatal("nil breaker reports state")
	}
}

// TestBreakerConcurrent exercises Allow/Record under -race.
func TestBreakerConcurrent(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
				_ = b.State()
				_ = b.StateValue()
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
