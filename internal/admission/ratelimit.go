// Package admission is the server's overload-protection layer: who
// gets in, how many run at once, and what happens when the expensive
// pipeline stops being affordable.
//
// A node serving real traffic fails in three distinct ways, and the
// package has one mechanism per failure mode:
//
//   - One client (or one NAT'd crowd) sends too fast → token-bucket
//     rate [Limiter]s keyed per user and per IP answer 429 with a
//     Retry-After hint instead of letting a single key starve everyone.
//   - Aggregate demand exceeds capacity → a bounded concurrency [Gate]
//     per stage class (suggest vs. learn vs. refresh) admits a fixed
//     number of pipelines, queues a short bounded tail, and sheds the
//     rest immediately — p99 stays near the unloaded latency because
//     work waits in the client's retry loop, not in our goroutines.
//   - The expensive personalize/hitting stage itself degrades (error
//     rate or sustained deadline overruns) → a circuit [Breaker] trips
//     and the server falls back to the generation-keyed cached
//     diversified list, marked degraded:true, until probes prove the
//     pipeline healthy again.
//
// Everything is stdlib-only, lock-free or sharded on the hot path, and
// deterministic under an injected clock so the chaos suite can drive
// state transitions without sleeping.
package admission

import (
	"sync"
	"time"
)

// RateConfig tunes one token-bucket limiter.
type RateConfig struct {
	// Rate is the sustained refill in tokens (requests) per second.
	// Zero or negative disables the limiter: Allow always admits.
	Rate float64
	// Burst is the bucket capacity — how many requests a key may send
	// back-to-back after an idle period. Values < 1 default to
	// max(1, 2·Rate).
	Burst float64
	// TTL evicts buckets idle longer than this, bounding memory on an
	// unbounded key space (every IP on the internet). Zero defaults to
	// 10 minutes.
	TTL time.Duration
	// Now is the clock (tests). Nil means time.Now.
	Now func() time.Time
}

const defaultBucketTTL = 10 * time.Minute

// limiterShards spreads the key space over independently locked maps so
// concurrent requests for different keys do not serialize. Power of two
// for cheap masking.
const limiterShards = 16

// Limiter is a keyed token-bucket rate limiter with lazy refill: a
// bucket holds up to Burst tokens, gains Rate tokens/second, and each
// admitted request takes one. Buckets are created on first use and
// evicted after TTL idle, so memory tracks the active key set, not the
// historical one.
type Limiter struct {
	cfg    RateConfig
	shards [limiterShards]limiterShard
}

type limiterShard struct {
	mu sync.Mutex
	m  map[string]*bucket
	// lastSweep is when this shard last evicted idle buckets.
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	// last is when tokens was computed.
	last time.Time
}

// NewLimiter builds a limiter; see RateConfig for defaulting. A nil
// receiver is valid and admits everything, so callers can thread an
// optional limiter without nil checks.
func NewLimiter(cfg RateConfig) *Limiter {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst < 1 {
		cfg.Burst = 2 * cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.TTL <= 0 {
		cfg.TTL = defaultBucketTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	l := &Limiter{cfg: cfg}
	for i := range l.shards {
		l.shards[i].m = make(map[string]*bucket)
	}
	return l
}

// Allow takes one token from key's bucket. It reports whether the
// request is admitted and, when shed, how long the client should wait
// before the next token is available (the Retry-After hint).
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.cfg.Now()
	sh := &l.shards[fnv32a(key)&(limiterShards-1)]
	sh.mu.Lock()
	if sh.lastSweep.IsZero() {
		sh.lastSweep = now
	} else if now.Sub(sh.lastSweep) > l.cfg.TTL {
		// Amortized eviction: at most one map sweep per TTL per shard,
		// paid by whichever request happens to land here first.
		for k, b := range sh.m {
			if now.Sub(b.last) > l.cfg.TTL {
				delete(sh.m, k)
			}
		}
		sh.lastSweep = now
	}
	b := sh.m[key]
	if b == nil {
		b = &bucket{tokens: l.cfg.Burst, last: now}
		sh.m[key] = b
	} else {
		// Lazy refill: tokens accrue only when the key is touched.
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.cfg.Rate
			if b.tokens > l.cfg.Burst {
				b.tokens = l.cfg.Burst
			}
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		sh.mu.Unlock()
		return true, 0
	}
	deficit := 1 - b.tokens
	sh.mu.Unlock()
	return false, time.Duration(deficit / l.cfg.Rate * float64(time.Second))
}

// Keys reports how many buckets are resident across all shards.
func (l *Limiter) Keys() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// fnv32a is FNV-1a over the key bytes — allocation-free shard
// selection (hash/fnv would force a []byte conversion).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
