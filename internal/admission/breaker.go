package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// Closed: the pipeline is healthy; requests run normally.
	Closed State = iota
	// Open: the pipeline tripped; requests are served degraded (from
	// the cache) until the cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; a few probe requests run the real
	// pipeline to test recovery while the rest stay degraded.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the personalize/hitting-stage circuit breaker.
type BreakerConfig struct {
	// FailureRatio opens the breaker when failures/total over the
	// rolling window reaches it. Zero or negative disables the breaker
	// (NewBreaker returns nil).
	FailureRatio float64
	// Window is the rolling observation window (default 10s).
	Window time.Duration
	// MinSamples is the minimum observations in the window before the
	// ratio can trip — a single failed request at boot must not open
	// the breaker (default 10).
	MinSamples int
	// Cooldown is how long the breaker stays open before probing
	// (default 5s).
	Cooldown time.Duration
	// Probes is how many half-open probes must succeed consecutively to
	// close (default 3); the first probe failure re-opens.
	Probes int
	// Now is the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// Breaker is a circuit breaker over a rolling failure-rate window.
// Failure counting uses two window buckets (current + previous), so the
// observed span is between Window and 2·Window — cheap, allocation-free
// and accurate enough to detect "the expensive stage has been failing
// for seconds", which is the granularity that matters.
//
// A nil *Breaker is valid: Allow admits everything and Record is a
// no-op, so callers thread an optional breaker without nil checks.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	openedAt time.Time
	// Two-bucket rolling window of pipeline outcomes.
	curStart            time.Time
	curTotal, curFail   int
	prevTotal, prevFail int
	// Half-open probe accounting.
	probesInFlight int
	probeSuccesses int

	opens atomic.Int64
	// stateAtomic mirrors state for lock-free gauges.
	stateAtomic atomic.Int32
}

// NewBreaker builds a breaker; see BreakerConfig for defaulting.
// Returns nil (always-closed) when FailureRatio ≤ 0.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureRatio <= 0 {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may run the real pipeline. False
// means the caller must serve the degraded (cached) path. In half-open,
// at most Probes requests are admitted concurrently as recovery probes;
// callers that got true MUST call Record with the outcome.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setState(HalfOpen)
		b.probesInFlight, b.probeSuccesses = 0, 0
		fallthrough
	default: // HalfOpen
		if b.probesInFlight < b.cfg.Probes {
			b.probesInFlight++
			return true
		}
		return false
	}
}

// Record feeds one real-pipeline outcome back. In the closed state it
// advances the rolling window and trips the breaker when the failure
// ratio crosses the threshold; in half-open it scores the probe.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case Closed:
		b.rotate(now)
		b.curTotal++
		if !success {
			b.curFail++
		}
		total := b.curTotal + b.prevTotal
		fail := b.curFail + b.prevFail
		if total >= b.cfg.MinSamples && float64(fail) >= b.cfg.FailureRatio*float64(total) {
			b.trip(now)
		}
	case HalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		if !success {
			b.trip(now)
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.Probes {
			b.setState(Closed)
			b.curStart, b.curTotal, b.curFail = now, 0, 0
			b.prevTotal, b.prevFail = 0, 0
		}
	case Open:
		// A request admitted before the trip finishing late — its
		// outcome belongs to the pre-open era; ignore it.
	}
}

// Forfeit releases a probe slot claimed by Allow without scoring it,
// for requests whose outcome says nothing about pipeline health (cache
// hits, client cancellations). Without it such a request would leak
// its half-open probe slot and recovery could wedge: probesInFlight
// never drains, so no further probes are admitted and the breaker
// stays half-open forever. No-op outside half-open.
func (b *Breaker) Forfeit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probesInFlight > 0 {
		b.probesInFlight--
	}
}

// trip opens the breaker.
func (b *Breaker) trip(now time.Time) {
	b.setState(Open)
	b.openedAt = now
	b.opens.Add(1)
}

// rotate slides the two-bucket window forward.
func (b *Breaker) rotate(now time.Time) {
	if b.curStart.IsZero() {
		b.curStart = now
		return
	}
	age := now.Sub(b.curStart)
	if age < b.cfg.Window {
		return
	}
	if age < 2*b.cfg.Window {
		b.prevTotal, b.prevFail = b.curTotal, b.curFail
	} else {
		b.prevTotal, b.prevFail = 0, 0
	}
	b.curTotal, b.curFail = 0, 0
	b.curStart = now
}

func (b *Breaker) setState(s State) {
	b.state = s
	b.stateAtomic.Store(int32(s))
}

// State reports the breaker's position, surfacing the lazy
// open→half-open transition without waiting for the next Allow.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// StateValue is the lock-free gauge read (0 closed, 1 open, 2
// half-open), safe on the metrics path. It reports the last committed
// state and does not surface the lazy open→half-open flip.
func (b *Breaker) StateValue() int32 {
	if b == nil {
		return int32(Closed)
	}
	return b.stateAtomic.Load()
}

// Opens counts how many times the breaker tripped.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	return b.opens.Load()
}

// RetryAfter is the backoff hint while open: the remaining cooldown
// (at least a millisecond so clients never get zero while shed).
func (b *Breaker) RetryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < time.Millisecond {
		rem = time.Millisecond
	}
	return rem
}
