package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateLimitAndImmediateShed(t *testing.T) {
	g := NewGate(GateConfig{Limit: 2, Queue: 0, MaxWait: time.Second})
	ctx := context.Background()
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("inFlight = %d, want 2", g.InFlight())
	}
	// Queue 0: the third acquire sheds without waiting.
	start := time.Now()
	_, err := g.Acquire(ctx)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("queue-full shed waited instead of returning immediately")
	}
	g.Release()
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestGateBoundedQueueAdmitsOnRelease(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, Queue: 2, MaxWait: 5 * time.Second})
	ctx := context.Background()
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 4)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := g.Acquire(ctx)
			if err == nil {
				defer g.Release()
			}
			results <- err
		}()
	}
	// Wait for both waiters to be queued.
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiting = %d, want 2", g.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	// Third waiter overflows the queue.
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	// Releasing the slot drains the queue one by one.
	g.Release()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued acquire %d: %v", i, err)
		}
	}
	if g.Waiting() != 0 {
		t.Fatalf("waiting = %d after drain", g.Waiting())
	}
	admitted, shedFull, shedTimeout := g.Stats()
	if admitted != 3 || shedFull != 1 || shedTimeout != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (3, 1, 0)", admitted, shedFull, shedTimeout)
	}
}

func TestGateWaitTimeout(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, Queue: 1, MaxWait: 20 * time.Millisecond})
	ctx := context.Background()
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := g.Acquire(ctx)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v, want ErrWaitTimeout", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("timed out after %v, before MaxWait", waited)
	}
	if g.Waiting() != 0 {
		t.Fatal("timed-out waiter still counted")
	}
}

func TestGateContextCancel(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, Queue: 1, MaxWait: 5 * time.Second})
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGateNilAdmitsEverything(t *testing.T) {
	var g *Gate
	if NewGate(GateConfig{Limit: 0}) != nil {
		t.Fatal("Limit 0 should disable the gate")
	}
	for i := 0; i < 100; i++ {
		if _, err := g.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	g.Release() // must not panic
	if g.Limit() != 0 || g.Waiting() != 0 || g.InFlight() != 0 {
		t.Fatal("nil gate reports occupancy")
	}
}

// TestGateConcurrentNeverExceedsBounds hammers the gate from many
// goroutines and asserts the two invariants that make shedding safe:
// in-flight never exceeds Limit, queue depth never exceeds Queue.
func TestGateConcurrentNeverExceedsBounds(t *testing.T) {
	const limit, queue = 3, 4
	g := NewGate(GateConfig{Limit: limit, Queue: queue, MaxWait: 10 * time.Millisecond})
	var wg sync.WaitGroup
	var mu sync.Mutex
	running, maxRunning, maxWaiting := 0, 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if w := g.Waiting(); w > queue {
					t.Errorf("waiting = %d > queue %d", w, queue)
				}
				_, err := g.Acquire(context.Background())
				if err != nil {
					continue
				}
				mu.Lock()
				running++
				if running > maxRunning {
					maxRunning = running
				}
				if w := g.Waiting(); w > maxWaiting {
					maxWaiting = w
				}
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				running--
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if maxRunning > limit {
		t.Fatalf("observed %d concurrent holders, limit %d", maxRunning, limit)
	}
	if maxWaiting > queue {
		t.Fatalf("observed queue depth %d, bound %d", maxWaiting, queue)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inFlight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}

func BenchmarkGateShedQueueFull(b *testing.B) {
	g := NewGate(GateConfig{Limit: 1, Queue: 0})
	if _, err := g.Acquire(context.Background()); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
			b.Fatal("expected shed")
		}
	}
}
