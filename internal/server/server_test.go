package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/synth"
)

func testServer(t *testing.T) (*Server, *httptest.Server, *synth.World, *bytes.Buffer) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 81, NumFacets: 4, NumUsers: 8, SessionsPerUser: 12})
	engine, err := core.NewEngine(w.Log, core.Config{
		Compact:             bipartite.CompactConfig{Budget: 40},
		SkipPersonalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &bytes.Buffer{}
	srv := New(engine, sink)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, w, sink
}

func pickKnownQuery(t *testing.T, w *synth.World) string {
	t.Helper()
	best, n := "", 0
	for q, f := range w.Log.QueryFrequency() {
		if f > n {
			best, n = q, f
		}
	}
	return best
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, into any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts, _, _ := testServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Errorf("health = %v", out)
	}
}

func TestSuggestGet(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	var out SuggestResponse
	code := getJSON(t, ts.URL+"/api/suggest?user=u0000&q="+strings.ReplaceAll(q, " ", "+")+"&k=5", &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if len(out.Suggestions) > 5 {
		t.Fatalf("k not honored: %d", len(out.Suggestions))
	}
	// The middleware records the query.
	if rec := srv.Recorded(); rec.Len() != 1 || rec.Entries[0].Query != q {
		t.Errorf("recorded = %v", rec.Entries)
	}
}

func TestSuggestPostWithContext(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	now := time.Now().UTC()
	var out SuggestResponse
	code := postJSON(t, ts.URL+"/api/suggest", SuggestRequest{
		User: "u0001", Query: q, K: 6,
		At: now.Format(time.RFC3339),
		Context: []ContextItem{
			{Query: q, At: now.Add(-time.Minute).Format(time.RFC3339)},
		},
	}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.CompactSize == 0 {
		t.Error("no compact diagnostics")
	}
}

func TestSuggestErrors(t *testing.T) {
	_, ts, _, _ := testServer(t)
	if code := getJSON(t, ts.URL+"/api/suggest?user=u&q=", nil); code != 400 {
		t.Errorf("empty query: status %d, want 400", code)
	}
	// Unknown query → empty result, not an error.
	var out SuggestResponse
	if code := getJSON(t, ts.URL+"/api/suggest?user=u&q=zzz+qqq+www", &out); code != 200 {
		t.Errorf("unknown query: status %d, want 200", code)
	}
	if len(out.Suggestions) != 0 {
		t.Errorf("unknown query suggestions = %v", out.Suggestions)
	}
	// Bad JSON body.
	resp, err := http.Post(ts.URL+"/api/suggest", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}
}

func TestFeedbackFlow(t *testing.T) {
	srv, ts, w, sink := testServer(t)
	q := pickKnownQuery(t, w)
	for i, rating := range []float64{1, 0.6, 0.2} {
		code := postJSON(t, ts.URL+"/api/feedback", Feedback{
			User: fmt.Sprintf("expert%d", i), Query: q, Suggestion: "some suggestion", Rating: rating,
		}, nil)
		if code != 200 {
			t.Fatalf("feedback %d: status %d", i, code)
		}
	}
	if got := len(srv.FeedbackLog()); got != 3 {
		t.Fatalf("feedback count = %d", got)
	}
	if hpr := srv.MeanHPR(); hpr < 0.59 || hpr > 0.61 {
		t.Errorf("MeanHPR = %v, want 0.6", hpr)
	}
	if !strings.Contains(sink.String(), "feedback\texpert0") {
		t.Error("sink did not receive feedback lines")
	}
	// Invalid ratings rejected.
	if code := postJSON(t, ts.URL+"/api/feedback", Feedback{
		User: "e", Query: q, Suggestion: "s", Rating: 0.5,
	}, nil); code != 400 {
		t.Errorf("off-scale rating: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/api/feedback", Feedback{Rating: 0.2}, nil); code != 400 {
		t.Errorf("missing fields: status %d, want 400", code)
	}
}

func TestLogEndpoint(t *testing.T) {
	srv, ts, _, sink := testServer(t)
	code := postJSON(t, ts.URL+"/api/log", LogRequest{
		User: "u7", Query: "manual event", ClickedURL: "example.com/page",
	}, nil)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	rec := srv.Recorded()
	if rec.Len() != 1 || rec.Entries[0].ClickedURL != "example.com/page" {
		t.Errorf("recorded = %+v", rec.Entries)
	}
	if !strings.Contains(sink.String(), "entry\tu7\tmanual event") {
		t.Error("sink missing entry line")
	}
	if code := postJSON(t, ts.URL+"/api/log", LogRequest{User: "u"}, nil); code != 400 {
		t.Errorf("missing query: status %d", code)
	}
}

func TestMeanHPREmpty(t *testing.T) {
	srv, _, _, _ := testServer(t)
	if got := srv.MeanHPR(); got != 0 {
		t.Errorf("MeanHPR with no feedback = %v", got)
	}
}
