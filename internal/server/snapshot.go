package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/snapwire"
)

// This file is the snapshot-distribution surface: GET /v1/snapshot
// streams the serving engine's wire image (the snapwire format —
// sectioned, checksummed, mmap-loadable), and POST /v1/snapshot
// replaces the serving snapshot with a posted image. Together they
// make replicas cheap: one instance builds from the raw log, every
// other instance pulls the image over HTTP and serves it without ever
// seeing the log.

// DefaultMaxSnapshotBytes caps POST /v1/snapshot bodies. Snapshot
// images are far larger than API bodies, so the endpoint is exempt
// from the regular -max-body-bytes cap and carries its own.
const DefaultMaxSnapshotBytes = 1 << 30

// codeInvalidSnapshot rejects a posted image that fails snapwire
// validation (bad magic, version skew, checksum mismatch, hostile
// section table). The snapwire error detail names the failing section.
const codeInvalidSnapshot = "invalid_snapshot"

// handleSnapshotGet streams the wire image of the serving snapshot.
// The encoding is cached per snapshot (core.Engine.WireImage), so
// repeated downloads of an unchanged engine cost one encode and N
// copies.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	eng := s.engine.Load()
	img, err := eng.WireImage()
	if err != nil {
		writeAPIError(w, r, http.StatusInternalServerError,
			newAPIError(codeInternal, "encoding snapshot: "+err.Error()))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	w.Header().Set("X-Snapshot-Generation", strconv.FormatUint(eng.Generation(), 10))
	w.Header().Set("X-Snapshot-Version", strconv.Itoa(snapwire.Version))
	_, _ = w.Write(img)
}

// handleSnapshotPost checksum-verifies the posted image, assembles the
// flat-backed snapshot, and swaps it into the serving engine under the
// same lock the refresh/learn swaps take. The adopted snapshot gets
// the next generation, so every generation-keyed cache invalidates.
func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, DefaultMaxSnapshotBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.stats.bodyTooLarge.Add(1)
			writeAPIError(w, r, http.StatusRequestEntityTooLarge,
				newAPIError(codePayloadTooLarge, "snapshot image exceeds the size cap"))
			return
		}
		writeAPIError(w, r, http.StatusBadRequest,
			newAPIError(codeBadJSON, "reading snapshot body: "+err.Error()))
		return
	}
	l, err := snapwire.Load(body)
	if err != nil {
		writeAPIError(w, r, http.StatusBadRequest,
			newAPIError(codeInvalidSnapshot, err.Error()))
		return
	}

	s.swapMu.Lock()
	eng := s.engine.Load()
	adoptErr := eng.AdoptSnapshot(l)
	s.swapMu.Unlock()
	if adoptErr != nil {
		writeAPIError(w, r, http.StatusConflict,
			newAPIError(codeConflict, adoptErr.Error()))
		return
	}
	s.stats.swaps.Add(1)
	s.ObserveSnapshotLoad("http", time.Since(start))

	writeJSON(w, http.StatusOK, map[string]any{
		"generation": eng.Generation(),
		"sizeBytes":  l.Size,
		"version":    l.Version,
		"sections":   len(l.Sections),
		"queries":    l.Snap.Stats.NumQueries,
		"profiles":   l.Snap.Profiles != nil,
	})
}

// ObserveSnapshotLoad feeds the snapshot-load latency histogram.
// Sources: "mmap" and "heap" for file loads (cmd/pqsda records its
// -snapshot-load time here), "http" for POST /v1/snapshot adoptions.
func (s *Server) ObserveSnapshotLoad(source string, d time.Duration) {
	if h := s.tel.snapLoad[source]; h != nil {
		h.Observe(d.Seconds())
	}
}

// snapshotStatsPayload describes the wire image behind the serving
// engine for /v1/stats; loaded is false for engines built from a log.
func (s *Server) snapshotStatsPayload() map[string]any {
	info := s.engine.Load().LoadedImage()
	out := map[string]any{"loaded": info.Present}
	if info.Present {
		out["mapped"] = info.Mapped
		out["sizeBytes"] = info.Size
		out["formatVersion"] = info.Version
		sections := make(map[string]any, len(info.Sections))
		for _, sec := range info.Sections {
			sections[sec.Name()] = sec.Length
		}
		out["sections"] = sections
	}
	return out
}
