package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
)

// This file is the server half of the admission-control layer
// (internal/admission): per-IP and per-user token buckets answering
// 429 + Retry-After, bounded concurrency gates per stage class
// (suggest / learn / refresh) that shed instead of queueing unboundedly,
// the circuit-breaker degraded path that serves the cached diversified
// list when the personalize/hitting stage is tripped, and the
// request-body cap. Shedding is engineered to be nearly free: the
// flood fast path writes a precomputed envelope and costs two header
// allocations per shed request (guarded by BenchmarkShedPath).

// DefaultMaxBodyBytes caps /v1 POST bodies at 1 MiB unless
// SetMaxBodyBytes overrides it. Without a cap, one oversized
// /v1/learn payload is an OOM, not a 413.
const DefaultMaxBodyBytes = 1 << 20

// SetAdmission installs the overload-protection layer built from cfg:
// rate limiters, stage-class concurrency gates and the personalize/
// hitting circuit breaker. The zero Config disables every mechanism.
// Safe to call while serving; in-flight requests finish under the
// controller they started with.
func (s *Server) SetAdmission(cfg admission.Config) {
	s.admission.Store(admission.New(cfg))
}

// Admission returns the active admission controller, nil when none was
// installed.
func (s *Server) Admission() *admission.Controller { return s.admission.Load() }

// SetMaxBodyBytes caps every /v1 and /api POST body; overflow is a 413
// payload_too_large envelope. Zero disables the cap (not recommended).
// Safe to call while serving.
func (s *Server) SetMaxBodyBytes(n int64) { s.maxBodyBytes.Store(n) }

// MaxBodyBytes reports the configured request-body cap.
func (s *Server) MaxBodyBytes() int64 { return s.maxBodyBytes.Load() }

// guardedPath reports whether admission control and the body cap apply
// to this route. Only the API surface is guarded: health checks
// (/healthz AND /v1/health — a readiness probe must answer while the
// server sheds, and must not burn the availability budget it reports
// on) and the observability endpoints stay reachable.
func guardedPath(path string) bool {
	if path == "/v1/health" {
		return false
	}
	return strings.HasPrefix(path, "/v1/") || strings.HasPrefix(path, "/api/")
}

// clientIP strips the port from a RemoteAddr ("1.2.3.4:56" → "1.2.3.4",
// "[::1]:56" → "[::1]") without allocating.
func clientIP(remote string) string {
	if i := strings.LastIndexByte(remote, ':'); i >= 0 {
		return remote[:i]
	}
	return remote
}

// --- Fast shed path --------------------------------------------------

// Precomputed envelope bodies for the shed fast path: shedding a flood
// must not pay JSON marshalling per request. They match the /v1 error
// envelope shape minus the requestId detail — clients correlate via the
// X-Request-Id response header the middleware already set.
var (
	shedBodyOverloaded  = []byte(`{"error":{"code":"overloaded","message":"server at concurrency capacity, retry later"}}` + "\n")
	shedBodyRateLimited = []byte(`{"error":{"code":"rate_limited","message":"rate limit exceeded, retry later"}}` + "\n")
)

// retryAfterStrings serves Retry-After header values for small waits
// from a static table so the flood path does not allocate per shed.
var retryAfterStrings = [...]string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}

// retryAfterValue renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (RFC 7231 wants a non-negative integer, and 0
// would invite an immediate retry storm).
func retryAfterValue(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs <= len(retryAfterStrings) {
		return retryAfterStrings[secs-1]
	}
	return strconv.Itoa(secs)
}

// writeShedFast writes a 429 with Retry-After and a precomputed
// envelope body. Two allocations per call (the two header value
// slices) — this is the per-request cost of surviving a flood.
func writeShedFast(w http.ResponseWriter, body []byte, retry time.Duration) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", retryAfterValue(retry))
	w.WriteHeader(http.StatusTooManyRequests)
	_, _ = w.Write(body)
}

// admitSuggest gates one single-request suggestion (GET/POST
// /v1/suggest) through the suggest concurrency gate. It returns the
// gate to Release (nil when gating is disabled) and whether the request
// was admitted; on a shed the 429 response has already been written.
func (s *Server) admitSuggest(ctx context.Context, w http.ResponseWriter) (*admission.Gate, bool) {
	ctrl := s.admission.Load()
	if ctrl == nil || ctrl.Suggest == nil {
		return nil, true
	}
	depth, err := ctrl.Suggest.Acquire(ctx)
	s.tel.queueDepth.Observe(float64(depth))
	if err == nil {
		s.stats.admitted.Add(1)
		return ctrl.Suggest, true
	}
	s.stats.shedOverloaded.Add(1)
	writeShedFast(w, shedBodyOverloaded, ctrl.Suggest.RetryAfter())
	// Wide event + structured line for the shed. Both stay inside the
	// flood budget (BenchmarkShedPath): the event is stack-built and
	// Record is allocation-free; the log attrs are only materialized
	// when the level is enabled (the benchmark's logger discards).
	s.flightShed(obs.RequestIDFrom(ctx), slo.OutcomeShedGate)
	if lg := s.Logger(); lg.Enabled(ctx, slog.LevelWarn) {
		lg.LogAttrs(ctx, slog.LevelWarn, "request shed",
			slog.String("requestId", obs.RequestIDFrom(ctx)),
			slog.String("reason", "overloaded"),
			slog.Int("queueDepth", depth))
	}
	return nil, false
}

// acquireGate claims a slot on g (nil admits everything), observing the
// queue depth, and returns the 429 envelope when shed. On success the
// caller owns a slot and must g.Release().
func (s *Server) acquireGate(ctx context.Context, g *admission.Gate) *apiError {
	if g == nil {
		return nil
	}
	depth, err := g.Acquire(ctx)
	s.tel.queueDepth.Observe(float64(depth))
	if err == nil {
		s.stats.admitted.Add(1)
		return nil
	}
	s.stats.shedOverloaded.Add(1)
	return overloadedError(g.RetryAfter())
}

// --- Shed / degraded envelope helpers --------------------------------

// overloadedError is the 429 envelope for concurrency-gate sheds.
func overloadedError(retry time.Duration) *apiError {
	return retryableError(codeOverloaded, "server at concurrency capacity, retry later", retry)
}

// rateLimitedError is the 429 envelope for token-bucket sheds.
func rateLimitedError(retry time.Duration) *apiError {
	return retryableError(codeRateLimited, "rate limit exceeded, retry later", retry)
}

// degradedUnavailableError is the 503 envelope for breaker-open
// requests whose query has no cached diversified list to fall back on.
func degradedUnavailableError(retry time.Duration) *apiError {
	return retryableError(codeDegraded, "suggestion pipeline degraded and no cached list for this query", retry)
}

func retryableError(code, msg string, retry time.Duration) *apiError {
	e := newAPIError(code, msg)
	e.retryAfter = retry
	secs, _ := strconv.Atoi(retryAfterValue(retry))
	e.Details = map[string]any{"retryAfterSeconds": secs}
	return e
}

// --- Breaker integration ---------------------------------------------

// suggestPipeline runs the engine for one admitted suggestion request,
// routing through the circuit breaker: when the breaker is closed (or
// this request is a half-open probe) the real pipeline runs and its
// outcome is recorded; when open, the request is answered from the
// generation-keyed suggestion cache only (degraded), or shed with 503
// when no cached list exists. degraded reports which path answered.
func (s *Server) suggestPipeline(ctx context.Context, eng *core.Engine, creq core.SuggestRequest) (res core.Result, degraded bool, err error, aerr *apiError) {
	breaker := s.suggestBreaker()
	if !breaker.Allow() {
		return s.suggestDegraded(ctx, eng, creq, breaker)
	}
	res, err = eng.Do(ctx, creq)
	s.recordSolve(res)
	s.recordBreaker(ctx, breaker, err, res.CacheHit)
	return res, false, err, nil
}

// suggestBreaker returns the installed circuit breaker, nil (which
// admits everything — Allow is nil-receiver safe) when admission
// control is off.
func (s *Server) suggestBreaker() *admission.Breaker {
	if ctrl := s.admission.Load(); ctrl != nil {
		return ctrl.Breaker
	}
	return nil
}

// suggestDegraded answers one request while the breaker is open: from
// the generation-keyed suggestion cache when possible, then via the
// brownout strategy, else the 503 degraded envelope. Shared by the
// single-request pipeline and the batch group runner.
func (s *Server) suggestDegraded(ctx context.Context, eng *core.Engine, creq core.SuggestRequest, breaker *admission.Breaker) (res core.Result, degraded bool, err error, aerr *apiError) {
	s.stats.degradedRequests.Add(1)
	dreq := creq
	dreq.CachedOnly = true
	res, err = eng.Do(ctx, dreq)
	if errors.Is(err, core.ErrNotCached) {
		// Brownout: before shedding with 503, a designated cheap
		// strategy (SetBrownoutStrategy, typically "relevance") may
		// answer the miss by running the pipeline without the
		// expensive stage the breaker protects.
		if bres, berr, ok := s.serveBrownout(ctx, eng, creq); ok {
			return bres, true, berr, nil
		}
		s.stats.degradedMisses.Add(1)
		return res, true, nil, degradedUnavailableError(breaker.RetryAfter())
	}
	return res, true, err, nil
}

// recordBreaker reports one pipeline run to the breaker. Only real
// pipeline runs inform it: counting cache hits would dilute the failure
// rate of the stage the breaker protects, and a client that
// disconnected mid-request says nothing about pipeline health. Those
// requests Forfeit instead — if Allow had admitted them as a half-open
// probe, the slot must be returned or recovery wedges.
func (s *Server) recordBreaker(ctx context.Context, breaker *admission.Breaker, err error, cacheHit bool) {
	if breaker == nil {
		return
	}
	if success, record := breakerOutcome(ctx, err); record && !cacheHit {
		breaker.Record(success)
	} else {
		breaker.Forfeit()
	}
}

// breakerOutcome classifies one pipeline result for the breaker.
// Unknown queries are healthy traffic; a client cancellation is
// nobody's failure; a deadline overrun or pipeline error is exactly
// the pressure signal the breaker watches.
func breakerOutcome(ctx context.Context, err error) (success, record bool) {
	switch {
	case err == nil, errors.Is(err, core.ErrUnknownQuery):
		return true, true
	case errors.Is(ctx.Err(), context.Canceled):
		return false, false
	default:
		return false, true
	}
}
