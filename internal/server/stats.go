package server

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// stageStats aggregates one pipeline stage's latency: count, sum and
// max, all updated lock-free so the suggestion hot path never contends.
type stageStats struct {
	count atomic.Int64
	sumNs atomic.Int64
	maxNs atomic.Int64
}

func (st *stageStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	st.count.Add(1)
	st.sumNs.Add(ns)
	for {
		cur := st.maxNs.Load()
		if ns <= cur || st.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func (st *stageStats) snapshot() map[string]any {
	n := st.count.Load()
	sum := st.sumNs.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(sum) / float64(n) / 1e6
	}
	return map[string]any{
		"count":   n,
		"totalMs": float64(sum) / 1e6,
		"meanMs":  mean,
		"maxMs":   float64(st.maxNs.Load()) / 1e6,
	}
}

// serverStats is the middleware's observability surface: request and
// error counters, per-stage latency aggregates fed from core.Result
// timings, and refresh/hot-swap accounting. It backs both /api/stats
// and the expvar-published "pqsda" variable on /debug/vars.
type serverStats struct {
	suggestRequests atomic.Int64
	suggestErrors   atomic.Int64
	suggestUnknown  atomic.Int64
	suggestTimeouts atomic.Int64
	// suggestCacheHits counts requests whose diversified list came from
	// the suggestion cache (batch items included).
	suggestCacheHits atomic.Int64
	// batchRequests counts /v1/suggest/batch payloads (their items are
	// counted individually in suggestRequests).
	batchRequests atomic.Int64

	logRequests      atomic.Int64
	feedbackRequests atomic.Int64
	learnRequests    atomic.Int64

	refreshes     atomic.Int64
	refreshErrors atomic.Int64
	// swaps counts successful engine hot-swaps (refresh + learn).
	swaps         atomic.Int64
	refreshSumNs  atomic.Int64
	lastRefreshNs atomic.Int64

	compact     stageStats
	solve       stageStats
	hitting     stageStats
	personalize stageStats
	total       stageStats
}

func (ss *serverStats) observeRefresh(d time.Duration) {
	ss.refreshes.Add(1)
	ss.refreshSumNs.Add(d.Nanoseconds())
	ss.lastRefreshNs.Store(d.Nanoseconds())
}

func (ss *serverStats) snapshot() map[string]any {
	return map[string]any{
		"suggest": map[string]any{
			"requests":  ss.suggestRequests.Load(),
			"errors":    ss.suggestErrors.Load(),
			"unknown":   ss.suggestUnknown.Load(),
			"timeouts":  ss.suggestTimeouts.Load(),
			"cacheHits": ss.suggestCacheHits.Load(),
			"batches":   ss.batchRequests.Load(),
		},
		"log":      map[string]any{"requests": ss.logRequests.Load()},
		"feedback": map[string]any{"requests": ss.feedbackRequests.Load()},
		"learn":    map[string]any{"requests": ss.learnRequests.Load()},
		"refresh": map[string]any{
			"count":         ss.refreshes.Load(),
			"errors":        ss.refreshErrors.Load(),
			"swaps":         ss.swaps.Load(),
			"totalMs":       float64(ss.refreshSumNs.Load()) / 1e6,
			"lastRefreshMs": float64(ss.lastRefreshNs.Load()) / 1e6,
		},
		"stages": map[string]any{
			"compact":     ss.compact.snapshot(),
			"solve":       ss.solve.snapshot(),
			"hitting":     ss.hitting.snapshot(),
			"personalize": ss.personalize.snapshot(),
			"total":       ss.total.snapshot(),
		},
	}
}

// expvar variable names are process-global and Publish panics on
// duplicates, so only the first Server in a process exports its stats
// there (tests spin up many servers). /api/stats is always
// per-instance.
var expvarOnce sync.Once

func (s *Server) publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("pqsda", expvar.Func(func() any { return s.statsPayload() }))
	})
}
