package server

import (
	"expvar"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/snapwire"
)

// serverStats is the middleware's counter surface: request and error
// counters plus refresh/hot-swap accounting, all lock-free atomics.
// Latency distributions live in the per-Server obs.Registry histograms
// (see newTelemetry) — count/mean/max-only aggregates hid the tail, so
// /v1/stats now reports p50/p90/p99 from the same histograms /metrics
// exposes.
type serverStats struct {
	suggestRequests atomic.Int64
	suggestErrors   atomic.Int64
	suggestUnknown  atomic.Int64
	suggestTimeouts atomic.Int64
	// suggestCacheHits counts requests whose diversified list came from
	// the suggestion cache (batch items included).
	suggestCacheHits atomic.Int64
	// batchRequests counts /v1/suggest/batch payloads (their items are
	// counted individually in suggestRequests).
	batchRequests atomic.Int64
	// slowQueries counts suggestions over the slow-query threshold.
	slowQueries atomic.Int64
	// precisionFallbacks counts Eq. 15 solves (lanes, for blocked
	// multi-RHS solves) whose reduced-precision float32 run stalled and
	// finished in float64 via iterative refinement. A rising rate means
	// the serving systems are too ill-conditioned for float32 and the
	// -precision knob is costing rather than saving time.
	precisionFallbacks atomic.Int64

	logRequests      atomic.Int64
	feedbackRequests atomic.Int64
	learnRequests    atomic.Int64

	refreshes     atomic.Int64
	refreshErrors atomic.Int64
	// swaps counts successful engine hot-swaps (refresh + learn).
	swaps         atomic.Int64
	refreshSumNs  atomic.Int64
	lastRefreshNs atomic.Int64

	// Admission-control accounting (see admission.go).
	admitted         atomic.Int64 // requests admitted through a concurrency gate
	shedRateIP       atomic.Int64 // 429s from the per-IP token bucket
	shedRateUser     atomic.Int64 // 429s from the per-user token bucket
	shedOverloaded   atomic.Int64 // 429s from a full/timed-out gate queue
	degradedRequests atomic.Int64 // breaker-open requests routed to the cache-only path
	degradedMisses   atomic.Int64 // degraded requests with no cached list (503)
	brownoutServed   atomic.Int64 // degraded cache misses answered by the brownout strategy
	bodyTooLarge     atomic.Int64 // 413s from the request-body cap
}

func (ss *serverStats) observeRefresh(d time.Duration) {
	ss.refreshes.Add(1)
	ss.refreshSumNs.Add(d.Nanoseconds())
	ss.lastRefreshNs.Store(d.Nanoseconds())
}

func (ss *serverStats) snapshot() map[string]any {
	return map[string]any{
		"suggest": map[string]any{
			"requests":           ss.suggestRequests.Load(),
			"errors":             ss.suggestErrors.Load(),
			"unknown":            ss.suggestUnknown.Load(),
			"timeouts":           ss.suggestTimeouts.Load(),
			"cacheHits":          ss.suggestCacheHits.Load(),
			"batches":            ss.batchRequests.Load(),
			"slow":               ss.slowQueries.Load(),
			"precisionFallbacks": ss.precisionFallbacks.Load(),
		},
		"log":      map[string]any{"requests": ss.logRequests.Load()},
		"feedback": map[string]any{"requests": ss.feedbackRequests.Load()},
		"learn":    map[string]any{"requests": ss.learnRequests.Load()},
		"refresh": map[string]any{
			"count":         ss.refreshes.Load(),
			"errors":        ss.refreshErrors.Load(),
			"swaps":         ss.swaps.Load(),
			"totalMs":       float64(ss.refreshSumNs.Load()) / 1e6,
			"lastRefreshMs": float64(ss.lastRefreshNs.Load()) / 1e6,
		},
		"admission": map[string]any{
			"admitted":            ss.admitted.Load(),
			"shedRateLimitedIP":   ss.shedRateIP.Load(),
			"shedRateLimitedUser": ss.shedRateUser.Load(),
			"shedOverloaded":      ss.shedOverloaded.Load(),
			"degraded":            ss.degradedRequests.Load(),
			"degradedMisses":      ss.degradedMisses.Load(),
			"brownoutServed":      ss.brownoutServed.Load(),
			"bodyTooLarge":        ss.bodyTooLarge.Load(),
		},
	}
}

// telemetry is one Server's histogram surface: a private obs.Registry
// (rendered verbatim by /metrics) plus direct handles on the histograms
// the serving path feeds. Per-instance by design — unlike expvar there
// is no process-global namespace to collide in, so every server in a
// test binary gets its own.
type telemetry struct {
	registry *obs.Registry

	// Per-stage latency histograms (seconds), one per pipeline stage of
	// the paper's Fig. 7 breakdown plus the end-to-end total.
	stageNames []string
	stages     map[string]*obs.Histogram

	// Pipeline depth histograms, fed from inside the instrumented
	// packages via the context metric sink (obs.Observe).
	cgIterations     *obs.Histogram
	cgResidual       *obs.Histogram
	hittingRounds    *obs.Histogram
	hittingWalkSteps *obs.Histogram
	// solveBatchSize records the right-hand-side count of each fresh
	// Eq. 15 solve: 1 on the single-request path, the solve-group size
	// for blocked multi-RHS solves under /v1/suggest/batch. One sample
	// per blocked solve, not per lane.
	solveBatchSize *obs.Histogram

	// Per-strategy serving counters and diversifier-Select latency,
	// pre-registered from the engine's strategy table at construction
	// time: the table is immutable while serving and clones share it, so
	// the name set is stable across hot-swaps, and pre-registration keeps
	// the serving path free of registry mutation. Strategies added via
	// core.Engine.AddDiversifier after the server was built are served
	// but not counted here.
	strategyNames    []string
	strategyRequests map[string]*atomic.Int64
	selectDuration   map[string]*obs.Histogram

	// httpDuration covers every HTTP request through the middleware.
	httpDuration *obs.Histogram
	// queueDepth records the gate wait-queue depth observed by each
	// admission attempt — the histogram that proves the queue is bounded.
	queueDepth *obs.Histogram
	// refreshDuration covers /v1/refresh rebuilds.
	refreshDuration *obs.Histogram
	// snapshotBuild* split the rebuild time by build mode and record
	// how many fresh entries each delta build folded in.
	snapshotBuildFull  *obs.Histogram
	snapshotBuildDelta *obs.Histogram
	snapshotDeltaSize  *obs.Histogram
	// snapLoad splits wire-image snapshot load time by source: mmap and
	// heap file loads (recorded by cmd/pqsda via ObserveSnapshotLoad)
	// and http adoptions (POST /v1/snapshot).
	snapLoad map[string]*obs.Histogram
}

// stageName constants keep the /v1/stats keys, the Prometheus "stage"
// label and the trace span names aligned.
var pipelineStages = []string{"compact", "solve", "hitting", "personalize", "total"}

// newTelemetry builds the registry and registers every series: the
// latency/depth histograms and counter/gauge views over the server's
// atomics, the engine generation and the suggestion-cache counters.
func newTelemetry(s *Server) *telemetry {
	reg := obs.NewRegistry()
	t := &telemetry{
		registry:   reg,
		stageNames: pipelineStages,
		stages:     make(map[string]*obs.Histogram, len(pipelineStages)),
	}
	for _, stg := range pipelineStages {
		t.stages[stg] = reg.NewHistogram("pqsda_stage_duration_seconds",
			"Latency of one suggestion pipeline stage.",
			obs.LatencyBuckets, obs.Labels{"stage": stg})
	}
	t.cgIterations = reg.NewHistogram(obs.MetricCGIterations,
		"CG iterations per Eq. 15 solve.", obs.CountBuckets, nil)
	t.cgResidual = reg.NewHistogram(obs.MetricCGResidual,
		"Final relative residual per Eq. 15 solve.", obs.ResidualBuckets, nil)
	t.hittingRounds = reg.NewHistogram(obs.MetricHittingRounds,
		"Greedy rounds per Algorithm-1 hitting-time selection.", obs.CountBuckets, nil)
	t.hittingWalkSteps = reg.NewHistogram(obs.MetricHittingWalkSteps,
		"Executed hitting-time sweeps per selection (at most rounds x truncation depth; less when the early convergence exit fires).", obs.CountBuckets, nil)
	t.solveBatchSize = reg.NewHistogram("pqsda_solve_batch_size",
		"Right-hand sides per fresh Eq. 15 solve (1 = single request, >1 = blocked multi-RHS batch solve).", obs.CountBuckets, nil)
	if eng := s.engine.Load(); eng != nil {
		t.strategyNames = eng.StrategyNames()
	}
	t.strategyRequests = make(map[string]*atomic.Int64, len(t.strategyNames))
	t.selectDuration = make(map[string]*obs.Histogram, len(t.strategyNames))
	for _, name := range t.strategyNames {
		c := &atomic.Int64{}
		t.strategyRequests[name] = c
		reg.CounterFunc("pqsda_strategy_requests_total",
			"Suggestion requests served per diversification strategy.",
			obs.Labels{"strategy": name},
			func() float64 { return float64(c.Load()) })
		t.selectDuration[name] = reg.NewHistogram("pqsda_select_duration_seconds",
			"Latency of the diversifier Select stage, per strategy.",
			obs.LatencyBuckets, obs.Labels{"strategy": name})
	}
	t.httpDuration = reg.NewHistogram("pqsda_http_request_duration_seconds",
		"Wall time of one HTTP request through the middleware.", obs.LatencyBuckets, nil)
	t.queueDepth = reg.NewHistogram("pqsda_admission_queue_depth",
		"Gate wait-queue depth seen by each admission attempt.", obs.CountBuckets, nil)
	t.refreshDuration = reg.NewHistogram("pqsda_refresh_duration_seconds",
		"Engine rebuild time per /v1/refresh.", obs.LatencyBuckets, nil)
	t.snapshotBuildFull = reg.NewHistogram(obs.MetricSnapshotBuildDuration,
		"Serving-snapshot build time by mode.", obs.LatencyBuckets, obs.Labels{"mode": "full"})
	t.snapshotBuildDelta = reg.NewHistogram(obs.MetricSnapshotBuildDuration,
		"Serving-snapshot build time by mode.", obs.LatencyBuckets, obs.Labels{"mode": "delta"})
	t.snapshotDeltaSize = reg.NewHistogram(obs.MetricSnapshotDeltaEntries,
		"Fresh entries folded in per delta snapshot build.", obs.CountBuckets, nil)
	t.snapLoad = make(map[string]*obs.Histogram, 3)
	for _, src := range []string{"mmap", "heap", "http"} {
		t.snapLoad[src] = reg.NewHistogram("pqsda_snapshot_load_duration_seconds",
			"Wire-image snapshot load time by source (mmap/heap file loads, http adoptions).",
			obs.LatencyBuckets, obs.Labels{"source": src})
	}
	// One gauge per wire-format section over the image behind the
	// serving engine (0 for log-built engines and absent sections). The
	// section-name universe is fixed by the format version, so the
	// series set is stable across loads and adoptions.
	for _, name := range snapwire.SectionNames() {
		name := name
		reg.GaugeFunc("pqsda_snapshot_bytes",
			"Bytes per section of the wire image behind the serving engine (0 when built from a log).",
			obs.Labels{"section": name},
			func() float64 {
				for _, sec := range s.engine.Load().LoadedImage().Sections {
					if sec.Name() == name {
						return float64(sec.Length)
					}
				}
				return 0
			})
	}

	counter := func(a *atomic.Int64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	st := &s.stats
	for _, c := range []struct {
		name, help string
		read       func() float64
	}{
		{"pqsda_suggest_requests_total", "Suggestion requests received (batch items included).", counter(&st.suggestRequests)},
		{"pqsda_suggest_errors_total", "Suggestion requests answered with an error envelope.", counter(&st.suggestErrors)},
		{"pqsda_suggest_unknown_total", "Suggestion requests for queries unknown to the representation.", counter(&st.suggestUnknown)},
		{"pqsda_suggest_timeouts_total", "Suggestion requests that overran the per-request deadline.", counter(&st.suggestTimeouts)},
		{"pqsda_suggest_cache_hits_total", "Suggestion requests served from the snapshot-keyed cache.", counter(&st.suggestCacheHits)},
		{"pqsda_suggest_slow_total", "Suggestions over the slow-query threshold.", counter(&st.slowQueries)},
		{"pqsda_batch_requests_total", "POST /v1/suggest/batch payloads.", counter(&st.batchRequests)},
		{"pqsda_solve_precision_fallback_total", "Reduced-precision Eq. 15 solves (lanes) that fell back to float64 iterative refinement.", counter(&st.precisionFallbacks)},
		{"pqsda_log_requests_total", "POST /v1/log events recorded.", counter(&st.logRequests)},
		{"pqsda_feedback_requests_total", "POST /v1/feedback ratings recorded.", counter(&st.feedbackRequests)},
		{"pqsda_learn_requests_total", "POST /v1/learn fold-ins requested.", counter(&st.learnRequests)},
		{"pqsda_refreshes_total", "Successful /v1/refresh rebuilds.", counter(&st.refreshes)},
		{"pqsda_refresh_errors_total", "Failed /v1/refresh attempts.", counter(&st.refreshErrors)},
		{"pqsda_engine_swaps_total", "Engine hot-swaps (refresh + learn).", counter(&st.swaps)},
		{"pqsda_admission_admitted_total", "Requests admitted through a concurrency gate.", counter(&st.admitted)},
		{"pqsda_degraded_total", "Breaker-open requests routed to the cache-only degraded path.", counter(&st.degradedRequests)},
		{"pqsda_degraded_miss_total", "Degraded requests with no cached list (503).", counter(&st.degradedMisses)},
		{"pqsda_brownout_total", "Degraded cache misses answered by the brownout strategy.", counter(&st.brownoutServed)},
		{"pqsda_body_too_large_total", "Requests rejected by the body-size cap (413).", counter(&st.bodyTooLarge)},
	} {
		reg.CounterFunc(c.name, c.help, nil, c.read)
	}
	// Shed counters share one series split by reason, mirroring how an
	// operator asks the question ("who is turning my traffic away?").
	reg.CounterFunc("pqsda_shed_total", "Requests shed by admission control.",
		obs.Labels{"reason": "rate_limited_ip"}, counter(&st.shedRateIP))
	reg.CounterFunc("pqsda_shed_total", "Requests shed by admission control.",
		obs.Labels{"reason": "rate_limited_user"}, counter(&st.shedRateUser))
	reg.CounterFunc("pqsda_shed_total", "Requests shed by admission control.",
		obs.Labels{"reason": "overloaded"}, counter(&st.shedOverloaded))

	// Breaker and gate occupancy gauges read the live controller (0 /
	// closed when admission is disabled).
	reg.GaugeFunc("pqsda_breaker_state", "Circuit breaker state (0 closed, 1 open, 2 half-open).", nil,
		func() float64 {
			if ctrl := s.admission.Load(); ctrl != nil {
				return float64(ctrl.Breaker.StateValue())
			}
			return 0
		})
	reg.CounterFunc("pqsda_breaker_opens_total", "Times the circuit breaker tripped open.", nil,
		func() float64 {
			if ctrl := s.admission.Load(); ctrl != nil {
				return float64(ctrl.Breaker.Opens())
			}
			return 0
		})
	reg.GaugeFunc("pqsda_suggest_inflight", "Requests currently holding a suggest-gate slot.", nil,
		func() float64 {
			if ctrl := s.admission.Load(); ctrl != nil {
				return float64(ctrl.Suggest.InFlight())
			}
			return 0
		})
	reg.GaugeFunc("pqsda_suggest_waiting", "Requests currently queued at the suggest gate.", nil,
		func() float64 {
			if ctrl := s.admission.Load(); ctrl != nil {
				return float64(ctrl.Suggest.Waiting())
			}
			return 0
		})

	reg.GaugeFunc("pqsda_engine_generation", "Generation of the serving engine snapshot.", nil,
		func() float64 { return float64(s.engine.Load().Generation()) })
	cacheStat := func(read func(cs cacheCounters) float64) func() float64 {
		return func() float64 {
			eng := s.engine.Load()
			c := eng.Cache()
			if c == nil {
				return 0
			}
			cs := c.Stats()
			return read(cacheCounters{
				hits: cs.Hits, misses: cs.Misses, coalesced: cs.Coalesced,
				evictions: cs.Evictions, expirations: cs.Expirations, entries: int64(cs.Entries),
			})
		}
	}
	reg.CounterFunc("pqsda_cache_hits_total", "Suggestion-cache hits.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.hits) }))
	reg.CounterFunc("pqsda_cache_misses_total", "Suggestion-cache misses.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.misses) }))
	reg.CounterFunc("pqsda_cache_coalesced_total", "Requests coalesced onto a concurrent identical computation.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.coalesced) }))
	reg.CounterFunc("pqsda_cache_evictions_total", "Suggestion-cache LRU evictions.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.evictions) }))
	reg.CounterFunc("pqsda_cache_expirations_total", "Suggestion-cache TTL expirations.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.expirations) }))
	reg.GaugeFunc("pqsda_cache_entries", "Suggestion-cache resident entries.", nil, cacheStat(func(c cacheCounters) float64 { return float64(c.entries) }))

	compactStat := func(read func(cs core.CompactCacheStats) float64) func() float64 {
		return func() float64 { return read(s.engine.Load().CompactCacheStats()) }
	}
	reg.CounterFunc("pqsda_compact_cache_hits_total", "Compact-representation cache hits (requests that skipped the graph carving).", nil, compactStat(func(cs core.CompactCacheStats) float64 { return float64(cs.Hits) }))
	reg.CounterFunc("pqsda_compact_cache_misses_total", "Compact-representation cache misses (full BuildCompact runs).", nil, compactStat(func(cs core.CompactCacheStats) float64 { return float64(cs.Misses) }))
	reg.GaugeFunc("pqsda_compact_cache_entries", "Compact-representation cache resident entries.", nil, compactStat(func(cs core.CompactCacheStats) float64 { return float64(cs.Entries) }))

	reg.GaugeFunc("pqsda_uptime_seconds", "Seconds since the server was created.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("pqsda_goroutines", "Live goroutines in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("pqsda_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapAlloc) })
	reg.CounterFunc("pqsda_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.PauseTotalNs) / 1e9 })
	return t
}

// cacheCounters decouples the gauge closures from the suggestcache
// stats struct shape.
type cacheCounters struct {
	hits, misses, coalesced, evictions, expirations, entries int64
}

// observe feeds one stage duration, pinning the request as the bucket
// exemplar when retention is enabled (ObserveExemplar degrades to a
// plain Observe otherwise).
func (t *telemetry) observeStage(stage string, d time.Duration, reqID, traceID string) {
	if h := t.stages[stage]; h != nil {
		h.ObserveExemplar(d.Seconds(), reqID, traceID)
	}
}

// observeStrategy counts one completed suggestion against its strategy
// and, when the Select stage actually ran (cache hits report zero),
// feeds its duration into the per-strategy latency histogram.
func (t *telemetry) observeStrategy(name string, selectTime time.Duration, reqID, traceID string) {
	if name == "" {
		return
	}
	if c := t.strategyRequests[name]; c != nil {
		c.Add(1)
	}
	if selectTime > 0 {
		if h := t.selectDuration[name]; h != nil {
			h.ObserveExemplar(selectTime.Seconds(), reqID, traceID)
		}
	}
}

// recordSolve feeds the solve-shape metrics from one single-path
// pipeline run: the RHS count of every fresh Eq. 15 solve (1 on this
// path) and the float32→float64 refinement-fallback counter. Cache
// hits and degraded answers carry no fresh solve and are skipped.
func (s *Server) recordSolve(res core.Result) {
	if res.CacheHit || res.SolveBatchSize < 1 {
		return
	}
	s.tel.solveBatchSize.Observe(float64(res.SolveBatchSize))
	if res.SolveFellBack {
		s.stats.precisionFallbacks.Add(1)
	}
}

// recordBatchSolve feeds the same metrics from one DoBatch group run.
// All computing lanes of a group share ONE blocked solve, so the batch
// size is observed once (first fresh lane); the fallback counter counts
// per lane, since refinement retries individual right-hand sides.
func (s *Server) recordBatchSolve(results []core.Result) {
	recorded := false
	for _, res := range results {
		if res.CacheHit || res.SolveBatchSize < 1 {
			continue
		}
		if !recorded {
			s.tel.solveBatchSize.Observe(float64(res.SolveBatchSize))
			recorded = true
		}
		if res.SolveFellBack {
			s.stats.precisionFallbacks.Add(1)
		}
	}
}

// observeSnapshotBuild feeds the build-mode histograms from one
// refresh's snapshot stats.
func (t *telemetry) observeSnapshotBuild(b snapshot.Stats) {
	if b.Mode == snapshot.ModeDelta {
		t.snapshotBuildDelta.Observe(b.Duration.Seconds())
		t.snapshotDeltaSize.Observe(float64(b.DeltaEntries))
	} else {
		t.snapshotBuildFull.Observe(b.Duration.Seconds())
	}
}

// reset re-baselines every latency/depth histogram (counts, sums and
// the previously forever-monotonic max) without touching the request
// counters — the counters are rates, the histograms are distributions.
func (t *telemetry) reset() {
	for _, h := range t.stages {
		h.Reset()
	}
	for _, h := range t.selectDuration {
		h.Reset()
	}
	for _, h := range []*obs.Histogram{
		t.cgIterations, t.cgResidual, t.hittingRounds, t.hittingWalkSteps,
		t.solveBatchSize, t.httpDuration, t.queueDepth, t.refreshDuration,
		t.snapshotBuildFull, t.snapshotBuildDelta, t.snapshotDeltaSize,
	} {
		h.Reset()
	}
}

// stageStatsPayload renders one latency histogram for /v1/stats: the
// legacy count/totalMs/meanMs/maxMs keys plus the tail percentiles the
// old aggregates could not express.
func stageStatsPayload(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	return map[string]any{
		"count":   int64(s.Count),
		"totalMs": s.Sum * 1e3,
		"meanMs":  s.Mean() * 1e3,
		"maxMs":   s.Max * 1e3,
		"p50Ms":   s.Quantile(0.50) * 1e3,
		"p90Ms":   s.Quantile(0.90) * 1e3,
		"p99Ms":   s.Quantile(0.99) * 1e3,
	}
}

// depthStatsPayload renders one unitless depth histogram (iterations,
// rounds, residuals) for /v1/stats.
func depthStatsPayload(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	return map[string]any{
		"count": int64(s.Count),
		"mean":  s.Mean(),
		"max":   s.Max,
		"p50":   s.Quantile(0.50),
		"p90":   s.Quantile(0.90),
		"p99":   s.Quantile(0.99),
	}
}

// runtimePayload is the /v1/stats "runtime" section: process uptime,
// goroutine count and a memory/GC summary, so a long-running middleware
// can be health-checked without attaching pprof.
func (s *Server) runtimePayload() map[string]any {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	lastPause := float64(0)
	if m.NumGC > 0 {
		lastPause = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
	}
	return map[string]any{
		"uptimeSeconds":  time.Since(s.start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"heapAllocBytes": m.HeapAlloc,
		"heapSysBytes":   m.HeapSys,
		"numGC":          m.NumGC,
		"gcPauseTotalMs": float64(m.PauseTotalNs) / 1e6,
		"lastGCPauseMs":  lastPause,
	}
}

// expvarSeq numbers the Servers of this process so each can publish
// its stats under a unique /debug/vars name: expvar's namespace is
// process-global and Publish panics on duplicates. The first server
// keeps the historical name "pqsda"; later ones (more servers in one
// process, test fixtures) get "pqsda_2", "pqsda_3", … instead of being
// silently dropped as before. Published closures keep their Server
// reachable for the life of the process — the price of expvar's global
// registry; the per-instance /metrics endpoint has no such pin.
var expvarSeq atomic.Int64

func (s *Server) publishExpvar() {
	s.expvarOnce.Do(func() {
		n := expvarSeq.Add(1)
		name := "pqsda"
		if n > 1 {
			name = fmt.Sprintf("pqsda_%d", n)
		}
		s.expvarName = name
		expvar.Publish(name, expvar.Func(func() any { return s.statsPayload() }))
	})
}

// ExpvarName reports the name this server's stats are published under
// on /debug/vars ("pqsda" for the first server in the process,
// "pqsda_N" after).
func (s *Server) ExpvarName() string {
	s.publishExpvar()
	return s.expvarName
}
