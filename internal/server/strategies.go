package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
)

// This file is the server surface of the pluggable diversification
// boundary (internal/diversify): strategy discovery (GET /v1/strategies)
// and the brownout fallback — when the circuit breaker is open and a
// request's diversified list is not cached, the server can re-run the
// pipeline under a designated cheap strategy instead of shedding with
// 503.

// brownout holds the fallback strategy name behind an atomic pointer so
// SetBrownoutStrategy is safe while serving. nil (the default) disables
// the fallback, preserving the strict cache-or-503 degraded behavior.
type brownoutState struct {
	strategy atomic.Pointer[string]
}

// SetBrownoutStrategy designates the diversification strategy that
// answers breaker-open cache misses ("" disables the fallback). The
// name is validated against the serving engine's registry — designating
// a strategy the engine cannot run would turn every brownout into a
// 503 with extra steps. "relevance" is the intended choice: it skips
// the hitting-time solve entirely and bounds the degraded cost to the
// compact build + CG solve.
func (s *Server) SetBrownoutStrategy(name string) error {
	if name == "" {
		s.brownout.strategy.Store(nil)
		return nil
	}
	known := s.engine.Load().StrategyNames()
	found := false
	for _, k := range known {
		if k == name {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("server: unknown brownout strategy %q (known: %v)", name, known)
	}
	s.brownout.strategy.Store(&name)
	return nil
}

// BrownoutStrategy reports the designated fallback strategy, "" when
// the brownout path is disabled.
func (s *Server) BrownoutStrategy() string {
	if p := s.brownout.strategy.Load(); p != nil {
		return *p
	}
	return ""
}

// serveBrownout attempts the brownout fallback for one breaker-open
// cache miss: re-run the pipeline under the designated cheap strategy.
// ok reports whether the fallback produced a servable result (including
// the healthy "unknown query" outcome); on !ok the caller sheds with
// the degraded 503 as before.
func (s *Server) serveBrownout(ctx context.Context, eng *core.Engine, creq core.SuggestRequest) (core.Result, error, bool) {
	fallback := s.BrownoutStrategy()
	if fallback == "" {
		return core.Result{}, nil, false
	}
	breq := creq
	breq.CachedOnly = false
	breq.Strategy = fallback
	res, err := eng.Do(ctx, breq)
	if err != nil && !errors.Is(err, core.ErrUnknownQuery) {
		// The cheap strategy failed too (deadline, solver error): the
		// original 503 is the honest answer.
		return core.Result{}, nil, false
	}
	s.stats.brownoutServed.Add(1)
	return res, err, true
}

// handleStrategies answers GET /v1/strategies: the registered
// diversification strategies with their parameters, which one is the
// default, and the designated brownout fallback (empty when disabled).
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	eng := s.engine.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"default":    eng.DiversifyDefault(),
		"brownout":   s.BrownoutStrategy(),
		"strategies": eng.Diversifiers(),
	})
}
