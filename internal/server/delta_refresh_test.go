package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestRefreshBuildOverrideDelta: a refresh with "build": "delta" takes
// the incremental path, reports it in the response, and leaves the new
// vocabulary servable.
func TestRefreshBuildOverrideDelta(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "deltauser", Query: "incremental topic phrase"}, nil)
	}
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "deltauser", Query: q}, nil)

	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs", Build: "delta"}, &out); code != 200 {
		t.Fatalf("delta refresh: status %d (%v)", code, out)
	}
	if out["build"] != "delta" {
		t.Errorf("build = %v, want delta", out["build"])
	}
	if out["deltaEntries"].(float64) != 4 {
		t.Errorf("deltaEntries = %v, want 4", out["deltaEntries"])
	}
	var sugg SuggestResponse
	if code := getJSON(t, ts.URL+"/api/suggest?user=deltauser&q=incremental+topic+phrase&k=5", &sugg); code != 200 {
		t.Fatalf("suggest after delta refresh: status %d", code)
	}

	// An explicit full build is also honored and reported.
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "deltauser", Query: q}, nil)
	var out2 map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs", Build: "full"}, &out2); code != 200 {
		t.Fatalf("full refresh: status %d (%v)", code, out2)
	}
	if out2["build"] != "full" {
		t.Errorf("build = %v, want full", out2["build"])
	}
	if out2["deltaEntries"].(float64) != 0 {
		t.Errorf("full build deltaEntries = %v, want 0", out2["deltaEntries"])
	}
}

// TestRefreshBuildOverrideInvalid: an unknown build strategy is a 400
// and must not consume the recorded entries.
func TestRefreshBuildOverrideInvalid(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "u", Query: "pending entry"}, nil)
	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs", Build: "partial"}, &out); code != 400 {
		t.Fatalf("bad build: status %d", code)
	}
	// The entry is still pending: a valid refresh ingests it.
	var out2 map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs", Build: "delta"}, &out2); code != 200 {
		t.Fatalf("refresh after bad build: status %d", code)
	}
	if out2["ingested"].(float64) != 1 {
		t.Errorf("ingested = %v, want 1 (bad build consumed the entry?)", out2["ingested"])
	}
	_ = srv
}

// TestStatsReportLastBuild: /v1/stats exposes the snapshot build stats
// (mode, delta size) plus the pending/clamp counters, and /metrics
// carries the mode-labeled build-duration histogram.
func TestStatsReportLastBuild(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "s", Query: q}, nil)
	postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs", Build: "delta"}, nil)

	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	eng := stats["engine"].(map[string]any)
	if eng["pendingEntries"].(float64) != 0 {
		t.Errorf("pendingEntries = %v", eng["pendingEntries"])
	}
	if eng["dirtyClamps"].(float64) != 0 {
		t.Errorf("dirtyClamps = %v", eng["dirtyClamps"])
	}
	lb := eng["lastBuild"].(map[string]any)
	if lb["mode"] != "delta" {
		t.Errorf("lastBuild.mode = %v, want delta", lb["mode"])
	}
	if lb["deltaEntries"].(float64) != 1 {
		t.Errorf("lastBuild.deltaEntries = %v, want 1", lb["deltaEntries"])
	}
	if lb["affectedUsers"].(float64) != 1 {
		t.Errorf("lastBuild.affectedUsers = %v, want 1", lb["affectedUsers"])
	}
	if lb["entries"].(float64) != float64(w.Log.Len()+1) {
		t.Errorf("lastBuild.entries = %v, want %d", lb["entries"], w.Log.Len()+1)
	}

	body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`pqsda_snapshot_build_duration_seconds_count{mode="delta"} 1`,
		"pqsda_snapshot_delta_entries_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
