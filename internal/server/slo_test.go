package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/synth"
)

// sloClock is the fake clock injected through SLOConfig.Burn.Now so the
// burn-rate lifecycle runs in microseconds of wall time.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *sloClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testSLOConfig compresses the burn windows (fast {60s, 5s, ×10}, slow
// {300s, 30s, ×2}, 1s buckets) and disables the background ticker so
// tests drive EvaluateSLO directly against the fake clock.
func testSLOConfig(clock *sloClock, dumpDir string) SLOConfig {
	cfg := DefaultSLOConfig()
	cfg.EvalInterval = 0
	cfg.ExemplarMinAge = -1 // rotate every observation
	cfg.DumpDir = dumpDir
	cfg.Burn = slo.Config{
		Fast:       slo.BurnWindow{Long: 60 * time.Second, Short: 5 * time.Second, Factor: 10},
		Slow:       slo.BurnWindow{Long: 300 * time.Second, Short: 30 * time.Second, Factor: 2},
		Resolution: time.Second,
		Now:        clock.Now,
	}
	return cfg
}

func getHealth(t *testing.T, url string) (int, string, map[string]any) {
	t.Helper()
	var out struct {
		Status     string                    `json:"status"`
		Components map[string]map[string]any `json:"components"`
	}
	resp, err := http.Get(url + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	comps := make(map[string]any, len(out.Components))
	for k, v := range out.Components {
		comps[k] = v
	}
	return resp.StatusCode, out.Status, comps
}

// TestSLOLifecycle is the acceptance path end to end: healthy baseline →
// latency regression → fast burn → /v1/health flips unhealthy (503) and
// the advisory goes to shed → the flight recorder auto-dumps the
// lead-up, whose trace IDs resolve through /debug/exemplars → recovery
// clears everything.
func TestSLOLifecycle(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.DefaultConfig())
	clock := newSLOClock()
	dumpDir := t.TempDir()
	srv.EnableSLO(testSLOConfig(clock, dumpDir))
	defer srv.Close()
	query := pickKnownQuery(t, w)

	// Phase 1: healthy baseline. Real requests feed the latency,
	// availability and fidelity objectives through the serving path and
	// leave wide events (with trace IDs) in the flight recorder.
	for i := 0; i < 20; i++ {
		code := getJSON(t, fmt.Sprintf("%s/v1/suggest?user=u0001&q=%s&k=5", ts.URL, query), nil)
		if code != 200 {
			t.Fatalf("baseline suggest %d: status %d", i, code)
		}
		clock.Advance(time.Second)
	}
	srv.EvaluateSLO()
	if st := srv.SLOState(); st != slo.Healthy {
		t.Fatalf("baseline SLO state = %v, want Healthy", st)
	}
	if code, status, _ := getHealth(t, ts.URL); code != 200 || status != "ready" {
		t.Fatalf("baseline health = %d %q, want 200 ready", code, status)
	}
	if adv := srv.Admission().Advisory(); adv != admission.AdvisoryNone {
		t.Fatalf("baseline advisory = %v, want none", adv)
	}
	fr := srv.FlightRecorder()
	if fr == nil || fr.Recorded() < 20 {
		t.Fatalf("flight recorder missing baseline events: %v", fr.Recorded())
	}

	// Phase 2: latency regression. Every observation blows the 250ms
	// end-to-end budget for 10 fake seconds — enough to push both fast
	// windows far over their ×10 factor.
	rt := srv.sloState.Load()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			rt.latencyTotal.ObserveLatency(2 * time.Second)
		}
		clock.Advance(time.Second)
	}
	srv.EvaluateSLO()
	if st := srv.SLOState(); st != slo.FastBurn {
		t.Fatalf("post-regression SLO state = %v, want FastBurn", st)
	}
	code, status, comps := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || status != "unhealthy" {
		t.Fatalf("post-regression health = %d %q, want 503 unhealthy", code, status)
	}
	sloComp, _ := comps["slo"].(map[string]any)
	if sloComp["status"] != "unhealthy" {
		t.Fatalf("slo component = %v, want unhealthy", sloComp)
	}
	if adv := srv.Admission().Advisory(); adv != admission.AdvisoryShed {
		t.Fatalf("post-regression advisory = %v, want shed", adv)
	}

	// The fast-burn transition must have auto-dumped the flight recorder,
	// and the dump must hold the baseline requests' wide events with
	// trace IDs that still resolve through /debug/exemplars.
	dumps, err := filepath.Glob(filepath.Join(dumpDir, "flightrecorder-*.jsonl"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no flight-recorder dump in %s (err %v)", dumpDir, err)
	}
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traceID, lines := "", 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var ev struct {
			TraceID string `json:"traceId"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("dump line %d not JSON: %v", lines, err)
		}
		if ev.Outcome == "ok" && ev.TraceID != "" {
			traceID = ev.TraceID
		}
	}
	if lines < 20 {
		t.Fatalf("dump holds %d events, want ≥ 20", lines)
	}
	if traceID == "" {
		t.Fatal("dump holds no ok event with a trace ID")
	}
	var resolved struct {
		Trace       map[string]any `json:"trace"`
		Attribution map[string]any `json:"attribution"`
	}
	if code := getJSON(t, ts.URL+"/debug/exemplars?trace="+traceID, &resolved); code != 200 {
		t.Fatalf("/debug/exemplars?trace=%s: status %d", traceID, code)
	}
	if resolved.Attribution == nil || resolved.Trace == nil {
		t.Fatalf("trace %s resolved without attribution: %+v", traceID, resolved)
	}

	// /debug/exemplars without a trace filter lists pinned exemplars
	// whose trace IDs come from real requests.
	var exOut struct {
		Exemplars []struct {
			Metric  string `json:"metric"`
			TraceID string `json:"traceId"`
		} `json:"exemplars"`
	}
	if code := getJSON(t, ts.URL+"/debug/exemplars", &exOut); code != 200 {
		t.Fatalf("/debug/exemplars: status %d", code)
	}
	if len(exOut.Exemplars) == 0 {
		t.Fatal("no exemplars pinned after 20 suggestions")
	}

	// /debug/flightrecorder streams the live ring as JSONL.
	resp, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	body := bufio.NewScanner(resp.Body)
	frLines := 0
	for body.Scan() {
		frLines++
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/debug/flightrecorder Content-Type = %q", ct)
	}
	if frLines < 20 {
		t.Fatalf("/debug/flightrecorder returned %d lines, want ≥ 20", frLines)
	}

	// Phase 3: recovery. Good traffic flushes the short windows; the
	// alert clears and health returns to ready.
	for i := 0; i < 120; i++ {
		for j := 0; j < 5; j++ {
			rt.latencyTotal.ObserveLatency(time.Millisecond)
		}
		clock.Advance(time.Second)
	}
	srv.EvaluateSLO()
	if st := srv.SLOState(); st != slo.Healthy {
		t.Fatalf("post-recovery SLO state = %v, want Healthy", st)
	}
	if code, status, _ := getHealth(t, ts.URL); code != 200 || status != "ready" {
		t.Fatalf("post-recovery health = %d %q, want 200 ready", code, status)
	}
	if adv := srv.Admission().Advisory(); adv != admission.AdvisoryNone {
		t.Fatalf("post-recovery advisory = %v, want none", adv)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want exactly 1 (one transition)", fr.Dumps())
	}
}

// TestDumpOncePerEvaluation: when several objectives cross into fast
// burn at the same evaluation (one slow dependency breaches every
// stage budget at once), the ring is dumped once, not once per
// objective — the contents are identical.
func TestDumpOncePerEvaluation(t *testing.T) {
	srv, _, _, _ := testServer(t)
	clock := newSLOClock()
	srv.EnableSLO(testSLOConfig(clock, t.TempDir()))
	defer srv.Close()
	rt := srv.sloState.Load()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			rt.latencyTotal.ObserveLatency(2 * time.Second)
			for _, tr := range rt.stageLatency {
				tr.ObserveLatency(2 * time.Second)
			}
		}
		clock.Advance(time.Second)
	}
	srv.EvaluateSLO()
	burning := 0
	for _, st := range srv.SLOStatuses() {
		if st.State == slo.FastBurn.String() {
			burning++
		}
	}
	if burning < 2 {
		t.Fatalf("want ≥2 objectives in fast burn, got %d", burning)
	}
	if got := rt.flight.Dumps(); got != 1 {
		t.Fatalf("Dumps() = %d after %d simultaneous transitions, want 1", got, burning)
	}
}

func TestHealthWithoutSLO(t *testing.T) {
	_, ts, _, _ := testServer(t)
	code, status, comps := getHealth(t, ts.URL)
	if code != 200 || status != "ready" {
		t.Fatalf("health without SLO = %d %q, want 200 ready", code, status)
	}
	sloComp, _ := comps["slo"].(map[string]any)
	detail, _ := sloComp["detail"].(map[string]any)
	if detail["enabled"] != false {
		t.Fatalf("slo component should report enabled=false: %v", sloComp)
	}
}

func TestHealthDegradedOnStaleSnapshot(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	clock := newSLOClock()
	cfg := testSLOConfig(clock, "")
	cfg.SnapshotMaxAge = time.Nanosecond // everything is stale
	srv.EnableSLO(cfg)
	defer srv.Close()
	code, status, comps := getHealth(t, ts.URL)
	if code != 200 || status != "degraded" {
		t.Fatalf("health with stale snapshot = %d %q, want 200 degraded", code, status)
	}
	engComp, _ := comps["engine"].(map[string]any)
	if engComp["status"] != "degraded" {
		t.Fatalf("engine component = %v, want degraded", engComp)
	}
}

func TestHealthNotGuardedByAdmission(t *testing.T) {
	// A health probe must answer even while every guarded request sheds.
	srv, ts, _, _ := testServer(t)
	srv.SetAdmission(admission.Config{IP: admission.RateConfig{Rate: 0.0001, Burst: 1}})
	// Exhaust the per-IP bucket on a guarded path.
	getJSON(t, ts.URL+"/v1/stats", nil)
	if code := getJSON(t, ts.URL+"/v1/stats", nil); code != 429 {
		t.Fatalf("guarded path should shed: got %d", code)
	}
	if code, _, _ := getHealth(t, ts.URL); code != 200 {
		t.Fatalf("/v1/health shed by admission control: %d", code)
	}
}

func TestDebugEndpointsDisabledWithoutSLO(t *testing.T) {
	_, ts, _, _ := testServer(t)
	if code := getJSON(t, ts.URL+"/debug/exemplars", nil); code != 404 {
		t.Fatalf("/debug/exemplars without SLO = %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/debug/flightrecorder", nil); code != 404 {
		t.Fatalf("/debug/flightrecorder without SLO = %d, want 404", code)
	}
}

// TestStatsMetricsParity pins the contract that /v1/stats and /metrics
// are two views over the same counters: cache hit/miss/coalesce and the
// admission shed counters must agree exactly at quiescence.
func TestStatsMetricsParity(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.Engine().EnableCache(64, 0)
	srv.SetAdmission(admission.Config{IP: admission.RateConfig{Rate: 0.0001, Burst: 8}})
	query := pickKnownQuery(t, w)

	// Two identical suggestions: one miss, one hit. Then burn the rest of
	// the IP budget so some requests shed.
	for i := 0; i < 12; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/suggest?user=u0001&q=%s&k=5", ts.URL, query), nil)
	}

	var stats struct {
		Cache struct {
			Hits      float64 `json:"hits"`
			Misses    float64 `json:"misses"`
			Coalesced float64 `json:"coalesced"`
		} `json:"cache"`
		Admission struct {
			ShedIP float64 `json:"shedRateLimitedIP"`
		} `json:"admission"`
	}
	// /v1/stats itself is guarded and the bucket is empty — read the
	// payload directly instead of burning more budget.
	raw, err := json.Marshal(srv.statsPayload())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits == 0 || stats.Cache.Misses == 0 {
		t.Fatalf("expected cache traffic, got hits=%v misses=%v", stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Admission.ShedIP == 0 {
		t.Fatal("expected rate-limited sheds")
	}

	metrics := scrapeMetrics(t, ts.URL+"/metrics")
	pairs := []struct {
		metric string
		want   float64
	}{
		{`pqsda_cache_hits_total`, stats.Cache.Hits},
		{`pqsda_cache_misses_total`, stats.Cache.Misses},
		{`pqsda_cache_coalesced_total`, stats.Cache.Coalesced},
		{`pqsda_shed_total{reason="rate_limited_ip"}`, stats.Admission.ShedIP},
	}
	for _, p := range pairs {
		got, ok := metrics[p.metric]
		if !ok {
			t.Errorf("metric %s absent from /metrics", p.metric)
			continue
		}
		if got != p.want {
			t.Errorf("%s = %v on /metrics but %v on /v1/stats", p.metric, got, p.want)
		}
	}
}

// scrapeMetrics parses a classic exposition into sample line → value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil {
			out[line[:i]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsExpositionConformance runs both exposition formats of a
// fully loaded server through the strict linter.
func TestMetricsExpositionConformance(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.Engine().EnableCache(64, 0)
	srv.SetAdmission(admission.DefaultConfig())
	srv.EnableSLO(testSLOConfig(newSLOClock(), ""))
	defer srv.Close()
	query := pickKnownQuery(t, w)
	for i := 0; i < 5; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/suggest?user=u0001&q=%s&k=5", ts.URL, query), nil)
	}

	get := func(accept string) string {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return b.String()
	}
	classic := get("")
	if err := obs.LintText(classic); err != nil {
		t.Fatalf("classic /metrics fails lint: %v", err)
	}
	om := get("application/openmetrics-text")
	if err := obs.LintOpenMetrics(om); err != nil {
		t.Fatalf("OpenMetrics /metrics fails lint: %v", err)
	}
	// Exemplars from real requests must appear in the OM exposition.
	if !strings.Contains(om, "trace_id=") {
		t.Fatal("OpenMetrics exposition carries no exemplars after real traffic")
	}
	// The SLO series register only with EnableSLO.
	for _, name := range []string{"pqsda_slo_state", "pqsda_flightrecorder_events_total", "pqsda_flightrecorder_dumps_total"} {
		if !strings.Contains(classic, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}

// TestMetricsManifest pins the registered metric family names against
// the checked-in manifest (metrics.txt at the repo root) — the
// metrics-lint CI step. Renaming or dropping a series is a deliberate
// act: regenerate the manifest in the same change with
//
//	UPDATE_METRICS_MANIFEST=1 go test ./internal/server -run TestMetricsManifest
func TestMetricsManifest(t *testing.T) {
	srv, _, _, _ := testServer(t)
	srv.Engine().EnableCache(64, 0)
	srv.EnableSLO(testSLOConfig(newSLOClock(), ""))
	defer srv.Close()

	if os.Getenv("UPDATE_METRICS_MANIFEST") != "" {
		var b strings.Builder
		b.WriteString("# Registered metric family names, one per line, in registration order.\n")
		b.WriteString("# Checked by TestMetricsManifest (make metrics-lint); regenerate with\n")
		b.WriteString("#   UPDATE_METRICS_MANIFEST=1 go test ./internal/server -run TestMetricsManifest\n")
		for _, name := range srv.tel.registry.Names() {
			b.WriteString(name)
			b.WriteByte('\n')
		}
		if err := os.WriteFile("../../metrics.txt", []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skip("metrics.txt regenerated")
	}

	raw, err := os.ReadFile("../../metrics.txt")
	if err != nil {
		t.Fatalf("metrics manifest missing: %v", err)
	}
	manifest := map[string]bool{}
	var ordered []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		manifest[line] = true
		ordered = append(ordered, line)
	}
	registered := srv.tel.registry.Names()
	regSet := map[string]bool{}
	for _, name := range registered {
		regSet[name] = true
		if !manifest[name] {
			t.Errorf("metric %q registered but missing from metrics.txt — add it deliberately", name)
		}
	}
	for _, name := range ordered {
		if !regSet[name] {
			t.Errorf("metric %q in metrics.txt but not registered — remove it deliberately", name)
		}
	}
}

// TestFlashCrowdSLOReport drives the PR6 flash crowd (96 clients,
// cold nocache suggestions) against a server with live SLOs on
// compressed real-time windows and prints the per-objective burn-rate
// verdict table plus the flight-recorder outcome mix — the measurement
// harness behind the EXPERIMENTS.md SLO table, not a regression test.
// Runs when PQSDA_SLOREPORT=1.
func TestFlashCrowdSLOReport(t *testing.T) {
	if os.Getenv("PQSDA_SLOREPORT") != "1" {
		t.Skip("set PQSDA_SLOREPORT=1 to run the flash-crowd SLO measurement")
	}
	const clients, perEach = 96, 10
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	world := synth.Generate(synth.Config{Seed: 7, NumFacets: 8, NumUsers: 48, SessionsPerUser: 40})

	// Two conditions: admission control off (the crowd lands directly on
	// the engine) and on (gate 4/4, 10ms max wait). The contrast is the
	// point — the gate trades a slice of availability (shed events are
	// still "good" for the latency objectives, which only count served
	// requests) for latency budgets that survive the crowd.
	run := func(admit bool) {
		engine, err := core.NewEngine(world.Log, core.Config{
			Compact:             bipartite.CompactConfig{Budget: 200},
			SkipPersonalization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(engine, io.Discard)
		if admit {
			srv.SetAdmission(admission.Config{
				Suggest: admission.GateConfig{Limit: 4, Queue: 4, MaxWait: 10 * time.Millisecond},
			})
		}
		cfg := DefaultSLOConfig()
		cfg.LatencyP99 = 50 * time.Millisecond // a loaded box will breach this
		cfg.EvalInterval = 0                   // evaluated manually at the end
		cfg.Burn = slo.Config{                 // compressed real-time windows: a verdict within one run
			Fast:       slo.BurnWindow{Long: 10 * time.Second, Short: 2 * time.Second, Factor: 10},
			Slow:       slo.BurnWindow{Long: 60 * time.Second, Short: 10 * time.Second, Factor: 2},
			Resolution: time.Second,
		}
		srv.EnableSLO(cfg)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		q := pickKnownQuery(t, world)
		u := ts.URL + "/v1/suggest?nocache=1&q=" + url.QueryEscape(q)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perEach; i++ {
					if resp, err := client.Get(u); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Wait()
		srv.EvaluateSLO()

		t.Logf("admission=%v", admit)
		t.Logf("%-18s %-10s %8s %8s %8s %8s %10s", "objective", "state", "fastL", "fastS", "slowL", "slowS", "budget")
		for _, st := range srv.SLOStatuses() {
			t.Logf("%-18s %-10s %8.1f %8.1f %8.1f %8.1f %9.0f%%",
				st.Name, st.State, st.FastLong, st.FastShort, st.SlowLong, st.SlowShort, 100*st.BudgetRemaining)
		}
		outcomes := map[string]int{}
		for _, ev := range srv.FlightRecorder().Events() {
			outcomes[ev.Outcome.String()]++
		}
		advisory := "none"
		if ctrl := srv.Admission(); ctrl != nil {
			advisory = ctrl.Advisory().String()
		}
		t.Logf("flight recorder: recorded=%d outcomes=%v advisory=%s",
			srv.FlightRecorder().Recorded(), outcomes, advisory)
		code, status, _ := getHealth(t, ts.URL)
		t.Logf("/v1/health: %d %s", code, status)
	}
	run(false)
	run(true)
}

// TestSLOHammer races real suggestions, scrapes, stats resets and
// burn-rate evaluations — the -race coverage for the whole SLO surface.
func TestSLOHammer(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.DefaultConfig())
	clock := newSLOClock()
	srv.EnableSLO(testSLOConfig(clock, ""))
	defer srv.Close()
	query := pickKnownQuery(t, w)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	worker(func() { // real traffic: exemplar rotation + flight events
		http.Get(fmt.Sprintf("%s/v1/suggest?user=u0001&q=%s&k=5", ts.URL, query))
	})
	worker(func() { // OpenMetrics scrapes render live exemplars
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		req.Header.Set("Accept", "application/openmetrics-text")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	})
	worker(func() { // burn evaluation against a moving clock
		clock.Advance(100 * time.Millisecond)
		srv.EvaluateSLO()
	})
	worker(func() { // histogram resets race the observers
		http.Post(ts.URL+"/debug/stats/reset", "application/json", nil)
	})
	worker(func() { // flight-recorder reads race the writers
		if resp, err := http.Get(ts.URL + "/debug/flightrecorder"); err == nil {
			resp.Body.Close()
		}
	})
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
