package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/topicmodel"
)

func jsonBody(v any) io.Reader {
	raw, _ := json.Marshal(v)
	return bytes.NewReader(raw)
}

// heavyServer builds a personalized fixture whose retrain-mode refresh
// is slow enough (hundreds of Gibbs sweeps) to open a measurable window
// for concurrent suggestion traffic.
func heavyServer(t *testing.T) (*Server, *httptest.Server, *synth.World) {
	t.Helper()
	w := synth.Generate(synth.Config{Seed: 7, NumFacets: 5, NumUsers: 16, SessionsPerUser: 20})
	engine, err := core.NewEngine(w.Log, core.Config{
		Compact: bipartite.CompactConfig{Budget: 60},
		UPM:     topicmodel.UPMConfig{K: 5, Iterations: 150, Seed: 1, HyperRounds: 1, HyperIters: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, w
}

// TestSuggestNotBlockedByRetrain is the tentpole's acceptance test: with
// a retrain-mode /api/refresh in flight, concurrent /api/suggest
// requests must keep completing on the old engine instead of queueing
// behind the rebuild. Run with -race: it also exercises the
// clone→mutate→swap path against lock-free engine loads.
func TestSuggestNotBlockedByRetrain(t *testing.T) {
	_, ts, w := heavyServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))
	users := w.UserIDs()

	// Seed fresh traffic so the refresh has something to ingest.
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "fresh", Query: "hot swap probe"}, nil)
	}

	// Kick off the retrain and record its window.
	type window struct {
		start, end time.Time
		code       int
		body       map[string]any
	}
	refreshDone := make(chan window, 1)
	go func() {
		var out map[string]any
		wdw := window{start: time.Now()}
		resp, err := http.Post(ts.URL+"/api/refresh", "application/json",
			jsonBody(RefreshRequest{Mode: "retrain"}))
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			wdw.code = resp.StatusCode
		}
		wdw.end = time.Now()
		wdw.body = out
		refreshDone <- wdw
	}()

	// Hammer suggestions until the refresh finishes.
	type sample struct{ start, end time.Time }
	var mu sync.Mutex
	var samples []sample
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/api/suggest?user=%s&q=%s&k=5", ts.URL, users[(g+i)%len(users)], q))
				if err != nil {
					t.Errorf("suggest during refresh: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("suggest during refresh: status %d (a partially built engine?)", resp.StatusCode)
				}
				var out SuggestResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("suggest during refresh: bad JSON: %v", err)
				}
				resp.Body.Close()
				mu.Lock()
				samples = append(samples, sample{s0, time.Now()})
				mu.Unlock()
			}
		}(g)
	}

	wdw := <-refreshDone
	close(stop)
	wg.Wait()
	if wdw.code != http.StatusOK {
		t.Fatalf("retrain refresh: status %d (%v)", wdw.code, wdw.body)
	}
	refreshDur := wdw.end.Sub(wdw.start)

	// Count suggestions that ran entirely INSIDE the refresh window —
	// with the old whole-refresh engineMu.Lock they queued behind the
	// rebuild and zero could complete inside it.
	inside, maxLat := 0, time.Duration(0)
	for _, s := range samples {
		if lat := s.end.Sub(s.start); lat > maxLat {
			maxLat = lat
		}
		if s.start.After(wdw.start) && s.end.Before(wdw.end) {
			inside++
		}
	}
	t.Logf("refresh %v; %d suggests total, %d completed inside the refresh window, max latency %v",
		refreshDur, len(samples), inside, maxLat)
	if inside == 0 {
		t.Fatalf("no suggestion completed during the %v retrain window: serving blocked on refresh", refreshDur)
	}
	// Latency must not degrade toward the refresh duration. Only
	// meaningful when the retrain is actually slow; the /2 bound leaves
	// generous headroom on a loaded CI box.
	if refreshDur > 300*time.Millisecond && maxLat > refreshDur/2 {
		t.Errorf("max suggest latency %v approaches refresh duration %v: serving path stalled", maxLat, refreshDur)
	}
}

// TestRefreshSwapsEngineAndRecordsStats checks the swap is visible:
// traffic recorded pre-refresh becomes servable, the serving engine
// pointer changes, and /api/stats reports the refresh.
func TestRefreshSwapsEngineAndRecordsStats(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))
	if code := getJSON(t, ts.URL+"/api/suggest?user=u1&q="+q+"&k=5", nil); code != 200 {
		t.Fatalf("suggest: status %d", code)
	}
	before := srv.Engine()
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "fresh", Query: "swap visibility probe"}, nil)
	}
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{}, nil); code != 200 {
		t.Fatalf("refresh: status %d", code)
	}
	if srv.Engine() == before {
		t.Fatal("refresh did not swap the engine pointer")
	}
	if _, ok := before.Rep().QueryID("swap visibility probe"); ok {
		t.Fatal("refresh mutated the old serving engine")
	}
	if _, ok := srv.Engine().Rep().QueryID("swap visibility probe"); !ok {
		t.Fatal("swapped engine does not serve the ingested query")
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	refresh := stats["refresh"].(map[string]any)
	if refresh["count"].(float64) != 1 || refresh["swaps"].(float64) != 1 {
		t.Errorf("refresh stats = %v, want count=1 swaps=1", refresh)
	}
	stages := stats["stages"].(map[string]any)
	if stages["solve"].(map[string]any)["count"].(float64) < 1 {
		t.Errorf("solve stage never observed: %v", stages)
	}
}

// TestSuggestDeadline504 checks the cancellation path end to end: an
// already-expired per-request deadline must return 504 with partial
// timings instead of running the solver to completion.
func TestSuggestDeadline504(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetRequestTimeout(time.Nanosecond)
	q := url.QueryEscape(pickKnownQuery(t, w))
	resp, err := http.Get(ts.URL + "/api/suggest?user=u1&q=" + q + "&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	var out struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error.Code != "deadline_exceeded" {
		t.Errorf("504 code = %q", out.Error.Code)
	}
	if _, ok := out.Error.Details["elapsedMs"]; !ok {
		t.Errorf("504 envelope missing partial timings: %+v", out.Error)
	}

	// Restore a generous deadline: the same request now succeeds.
	srv.SetRequestTimeout(time.Minute)
	var ok SuggestResponse
	if code := getJSON(t, ts.URL+"/api/suggest?user=u1&q="+q+"&k=5", &ok); code != 200 {
		t.Fatalf("suggest with sane deadline: status %d", code)
	}

	var stats map[string]any
	getJSON(t, ts.URL+"/api/stats", &stats)
	if n := stats["suggest"].(map[string]any)["timeouts"].(float64); n != 1 {
		t.Errorf("timeout counter = %v, want 1", n)
	}
}

// TestLearnHotSwap checks /api/learn follows the same clone→swap
// discipline: the pre-learn engine is never mutated.
func TestLearnHotSwap(t *testing.T) {
	srv, ts, w := personalizedServer(t)
	q := pickKnownQuery(t, w)
	before := srv.Engine()
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "visitor", Query: q}, nil)
	}
	if code := postJSON(t, ts.URL+"/api/learn", LearnRequest{User: "visitor"}, nil); code != 200 {
		t.Fatalf("learn: status %d", code)
	}
	if before.Profiles().Theta("visitor") != nil {
		t.Fatal("learn mutated the old serving engine's profiles")
	}
	if srv.Engine().Profiles().Theta("visitor") == nil {
		t.Fatal("swapped engine has no profile for the learned user")
	}
}

// TestDebugVars checks the expvar surface is mounted.
func TestDebugVars(t *testing.T) {
	_, ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["pqsda"]; !ok {
		t.Error("/debug/vars does not export the pqsda stats variable")
	}
}
