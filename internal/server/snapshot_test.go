package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/snapwire"
)

func TestSnapshotDownloadVerifies(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	if g := resp.Header.Get("X-Snapshot-Generation"); g == "" {
		t.Fatal("no generation header")
	}
	img, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapwire.Verify(img); err != nil {
		t.Fatalf("downloaded image fails verification: %v", err)
	}

	// The image must load into a servable snapshot.
	l, err := snapwire.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if l.Snap.Rep.NumQueries() != srv.Engine().Snapshot().Rep.NumQueries() {
		t.Fatal("loaded image does not match the serving representation")
	}

	// A second download reuses the cached encoding (same snapshot).
	resp2, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	img2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(img, img2) {
		t.Fatal("repeated download differs")
	}
}

func TestSnapshotPostSwapsAndBumpsGeneration(t *testing.T) {
	// Source server A: download its image.
	_, tsA, wA, _ := testServer(t)
	resp, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	img, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Target server B: post A's image in.
	srvB, tsB, _, _ := testServer(t)
	prevGen := srvB.Engine().Generation()
	preSwaps := srvB.stats.swaps.Load()
	post, err := http.Post(tsB.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(post.Body)
		t.Fatalf("status %d: %s", post.StatusCode, body)
	}
	var out struct {
		Generation uint64 `json:"generation"`
		SizeBytes  int64  `json:"sizeBytes"`
		Version    uint16 `json:"version"`
		Sections   int    `json:"sections"`
	}
	decodeInto(t, post, &out)
	if out.Generation != prevGen+1 {
		t.Fatalf("generation %d, want %d", out.Generation, prevGen+1)
	}
	if out.SizeBytes != int64(len(img)) || out.Version != snapwire.Version || out.Sections == 0 {
		t.Fatalf("response %+v", out)
	}
	if got := srvB.Engine().Generation(); got != prevGen+1 {
		t.Fatalf("engine generation %d after swap", got)
	}
	if srvB.stats.swaps.Load() != preSwaps+1 {
		t.Fatal("swap not counted")
	}

	// B now serves A's world.
	q := pickKnownQuery(t, wA)
	var sug map[string]any
	if code := getJSON(t, tsB.URL+"/v1/suggest?q="+q+"&k=5", &sug); code != http.StatusOK {
		t.Fatalf("suggest on adopted snapshot: %d", code)
	}

	// Stats and health report the adopted image.
	var stats map[string]any
	getJSON(t, tsB.URL+"/v1/stats", &stats)
	snap, ok := stats["snapshot"].(map[string]any)
	if !ok || snap["loaded"] != true {
		t.Fatalf("stats snapshot section: %#v", stats["snapshot"])
	}
	if snap["sizeBytes"].(float64) != float64(len(img)) {
		t.Fatalf("stats size %v", snap["sizeBytes"])
	}
	var health map[string]any
	getJSON(t, tsB.URL+"/v1/health", &health)
	comps := health["components"].(map[string]any)
	hs, ok := comps["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("health has no snapshot component: %#v", comps)
	}
	detail := hs["detail"].(map[string]any)
	if detail["loaded"] != true {
		t.Fatalf("health snapshot detail: %#v", detail)
	}

	// The load-duration histogram saw the http source.
	var buf bytes.Buffer
	srvB.tel.registry.WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, `pqsda_snapshot_load_duration_seconds_count{source="http"} 1`) {
		t.Fatal("http load not observed in pqsda_snapshot_load_duration_seconds")
	}
	if !strings.Contains(text, `pqsda_snapshot_bytes{section="meta"}`) {
		t.Fatal("pqsda_snapshot_bytes{section} missing from exposition")
	}
}

func TestSnapshotPostRejectsCorrupt(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	prevGen := srv.Engine().Generation()

	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"garbage", []byte("definitely not a snapshot")},
		{"empty", nil},
	} {
		post, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		decodeInto(t, post, &env)
		if post.StatusCode != http.StatusBadRequest || env.Error.Code != codeInvalidSnapshot {
			t.Fatalf("%s: status %d code %q", tc.name, post.StatusCode, env.Error.Code)
		}
	}

	// A flipped payload byte must be named a checksum failure.
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	img[len(img)-64] ^= 0x20
	post, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	decodeInto(t, post, &env)
	if post.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt image: status %d", post.StatusCode)
	}
	if !strings.Contains(env.Error.Message, "checksum") {
		t.Fatalf("corrupt image error lacks checksum detail: %q", env.Error.Message)
	}
	if srv.Engine().Generation() != prevGen {
		t.Fatal("corrupt post changed the serving engine")
	}

	// And the serving path still answers afterwards.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("health after corrupt post: %d", code)
	}
}

func TestSnapshotPostExemptFromBodyCap(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	srv.SetMaxBodyBytes(64) // far below any real image
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(img) <= 64 {
		t.Fatalf("image unexpectedly small: %d", len(img))
	}
	post, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("snapshot post hit the API body cap: %d", post.StatusCode)
	}
}
