package server

import (
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/slo"
)

// This file is the component-scoreboard health endpoint, GET /v1/health.
// The legacy GET /healthz stays a liveness probe ("is the process up
// and answering"); /v1/health is the readiness/quality verdict: each
// serving component reports its own status, and the worst one decides
// the HTTP code, so a load balancer can stop sending traffic to an
// instance whose error budget is burning fast while operators read the
// same payload to see exactly which component turned the light yellow.
//
//	ready     → 200: every component ok
//	degraded  → 200: serving, but impaired (slow burn, breaker open,
//	            gate near saturation, stale snapshot) — keep routing,
//	            start looking
//	unhealthy → 503: an SLO is in fast burn; route away
//
// The endpoint is deliberately NOT guarded by admission control
// (guardedPath excludes it): it must stay answerable while the server
// sheds, and a health probe must never burn the availability budget it
// reports on.

// gateSaturationDegraded is the suggest-gate occupancy (slots + queue
// over slots) at which the gate component reports degraded.
const gateSaturationDegraded = 0.9

type healthComponent struct {
	Status string         `json:"status"` // "ok" | "degraded" | "unhealthy"
	Detail map[string]any `json:"detail,omitempty"`
}

// worseHealth returns the more severe of two component statuses.
func worseHealth(a, b string) string {
	rank := func(s string) int {
		switch s {
		case "unhealthy":
			return 2
		case "degraded":
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

func (s *Server) handleHealthV1(w http.ResponseWriter, r *http.Request) {
	overall := "ok"
	components := map[string]healthComponent{}

	// Engine / snapshot staleness.
	eng := s.engine.Load()
	build := eng.LastBuild()
	engDetail := map[string]any{
		"generation": eng.Generation(),
		"buildMode":  build.Mode.String(),
	}
	engStatus := "ok"
	if !build.BuiltAt.IsZero() {
		age := time.Since(build.BuiltAt)
		engDetail["snapshotAgeSeconds"] = age.Seconds()
		if rt := s.sloState.Load(); rt != nil && rt.cfg.SnapshotMaxAge > 0 && age > rt.cfg.SnapshotMaxAge {
			engStatus = "degraded"
			engDetail["snapshotMaxAgeSeconds"] = rt.cfg.SnapshotMaxAge.Seconds()
		}
	}
	components["engine"] = healthComponent{Status: engStatus, Detail: engDetail}
	overall = worseHealth(overall, engStatus)

	// Snapshot provenance: which wire image (if any) is behind the
	// serving engine. Informational — a log-built engine is healthy.
	snapDetail := map[string]any{"loaded": false}
	if info := eng.LoadedImage(); info.Present {
		snapDetail = map[string]any{
			"loaded":        true,
			"mapped":        info.Mapped,
			"sizeBytes":     info.Size,
			"formatVersion": info.Version,
		}
	}
	components["snapshot"] = healthComponent{Status: "ok", Detail: snapDetail}

	// Admission: breaker state and gate saturation.
	if ctrl := s.admission.Load(); ctrl != nil {
		bStatus := "ok"
		if st := ctrl.Breaker.State(); st != admission.Closed {
			bStatus = "degraded"
		}
		components["breaker"] = healthComponent{Status: bStatus, Detail: map[string]any{
			"state": ctrl.Breaker.State().String(),
			"opens": ctrl.Breaker.Opens(),
		}}
		overall = worseHealth(overall, bStatus)

		gStatus := "ok"
		sat := ctrl.Suggest.Saturation()
		if sat >= gateSaturationDegraded && ctrl.Suggest.Limit() > 0 {
			gStatus = "degraded"
		}
		components["suggestGate"] = healthComponent{Status: gStatus, Detail: map[string]any{
			"saturation": sat,
			"limit":      ctrl.Suggest.Limit(),
			"inFlight":   ctrl.Suggest.InFlight(),
			"waiting":    ctrl.Suggest.Waiting(),
		}}
		overall = worseHealth(overall, gStatus)
		components["advisory"] = healthComponent{Status: "ok", Detail: map[string]any{
			"level": ctrl.Advisory().String(),
		}}
	}

	// SLO burn state: the only component that can flip the whole
	// endpoint to 503.
	if rt := s.sloState.Load(); rt != nil {
		sloStatus := "ok"
		switch rt.engine.State() {
		case slo.FastBurn:
			sloStatus = "unhealthy"
		case slo.SlowBurn:
			sloStatus = "degraded"
		}
		components["slo"] = healthComponent{Status: sloStatus, Detail: map[string]any{
			"state":      rt.engine.State().String(),
			"objectives": rt.engine.Statuses(),
		}}
		overall = worseHealth(overall, sloStatus)
	} else {
		components["slo"] = healthComponent{Status: "ok", Detail: map[string]any{"enabled": false}}
	}

	status, code := "ready", http.StatusOK
	switch overall {
	case "unhealthy":
		status, code = "unhealthy", http.StatusServiceUnavailable
	case "degraded":
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":     status,
		"components": components,
	})
}
