package server

import (
	"testing"
)

func TestRefreshEndpointGraphs(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	// Feed the server some brand-new traffic.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "fresh", Query: "brand new topic phrase"}, nil)
	}
	postJSON(t, ts.URL+"/api/log", LogRequest{User: "fresh", Query: q}, nil)
	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs"}, &out); code != 200 {
		t.Fatalf("refresh: status %d (%v)", code, out)
	}
	if out["ingested"].(float64) != 4 {
		t.Errorf("ingested = %v, want 4", out["ingested"])
	}
	// The new query is now servable.
	var sugg SuggestResponse
	if code := getJSON(t, ts.URL+"/api/suggest?user=fresh&q=brand+new+topic+phrase&k=5", &sugg); code != 200 {
		t.Fatalf("suggest after refresh: status %d", code)
	}
	// Second refresh has nothing new (the suggest above recorded one
	// more entry).
	var out2 map[string]any
	postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs"}, &out2)
	if out2["ingested"].(float64) != 1 {
		t.Errorf("second refresh ingested = %v, want 1", out2["ingested"])
	}
}

func TestRefreshEndpointBadMode(t *testing.T) {
	_, ts, _, _ := testServer(t)
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "everything"}, nil); code != 400 {
		t.Errorf("bad mode: status %d", code)
	}
}

func TestRefreshEndpointFoldInWithoutProfiles(t *testing.T) {
	_, ts, _, _ := testServer(t) // diversification-only fixture
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "foldin"}, nil); code != 409 {
		t.Errorf("foldin without profiles: status %d, want 409", code)
	}
}

func TestRefreshEndpointFoldIn(t *testing.T) {
	_, ts, w := personalizedServer(t)
	q := pickKnownQuery(t, w)
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "newbie", Query: q}, nil)
	}
	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "foldin"}, &out); code != 200 {
		t.Fatalf("foldin refresh: status %d (%v)", code, out)
	}
}
