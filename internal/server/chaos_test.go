package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/synth"
)

// Chaos/overload suite: floods, shed correctness, breaker transitions
// and the degraded fallback. Everything here runs under `make chaos`
// with -race — admission control is exactly the code that only breaks
// under concurrency.

// chaosClock is a deterministic clock for driving breaker transitions.
type chaosClock struct {
	mu  sync.Mutex
	now time.Time
}

func newChaosClock() *chaosClock {
	return &chaosClock{now: time.Unix(1700000000, 0)}
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// The error-envelope decode type is shared with v1_test.go (envelope).

func getRaw(t *testing.T, u string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestFloodShedsWith429AndBoundedQueue is the core overload scenario:
// with the single pipeline slot held and the queue full, every further
// request must shed immediately with 429 + Retry-After — never pile up.
func TestFloodShedsWith429AndBoundedQueue(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		Suggest: admission.GateConfig{Limit: 1, Queue: 2, MaxWait: 5 * time.Second},
	})
	q := pickKnownQuery(t, w)
	suggestURL := ts.URL + "/v1/suggest?q=" + url.QueryEscape(q)

	// Occupy the only slot so HTTP requests queue deterministically.
	gate := srv.Admission().Suggest
	if _, err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const flood = 10
	type outcome struct {
		status     int
		retryAfter string
		code       string
	}
	results := make(chan outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := getRaw(t, suggestURL)
			var env envelope
			_ = json.Unmarshal(body, &env)
			code := ""
			if env.Error != nil {
				code = env.Error.Code
			}
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), code}
		}()
	}
	// Wait until the bounded queue has filled (2 waiters) AND the other
	// 8 requests have all shed, then release the slot: only the two
	// queued requests run and succeed. Releasing earlier would let a
	// slow-starting goroutine find the recycled slot free and sneak in.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, shedFull, _ := gate.Stats()
		if gate.Waiting() == 2 && shedFull == flood-2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, shedFull = %d; want 2 and %d", gate.Waiting(), shedFull, flood-2)
		}
		time.Sleep(time.Millisecond)
	}
	if gate.Waiting() > 2 {
		t.Fatalf("queue depth %d exceeds bound 2", gate.Waiting())
	}
	gate.Release()
	wg.Wait()
	close(results)

	ok, shed := 0, 0
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Error("shed response missing Retry-After")
			}
			if r.code != "overloaded" {
				t.Errorf("shed code = %q, want overloaded", r.code)
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok != 2 || shed != 8 {
		t.Fatalf("ok = %d, shed = %d; want 2 admitted (the queued pair), 8 shed", ok, shed)
	}
	admitted, shedFull, _ := gate.Stats()
	if shedFull != 8 {
		t.Fatalf("gate shedFull = %d, want 8", shedFull)
	}
	if admitted != 3 { // the test's own Acquire + the two queued requests
		t.Fatalf("gate admitted = %d, want 3", admitted)
	}
	if gate.InFlight() != 0 || gate.Waiting() != 0 {
		t.Fatalf("gate not drained: inFlight=%d waiting=%d", gate.InFlight(), gate.Waiting())
	}
}

// TestFloodConcurrentBounds hammers the server at 4x the concurrency
// cap with real pipeline work and asserts the bounds hold under -race:
// every response is 200 or a well-formed 429, and the queue histogram
// never observed a depth over the configured bound.
func TestFloodConcurrentBounds(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	const limit, queue = 2, 2
	srv.SetAdmission(admission.Config{
		Suggest: admission.GateConfig{Limit: limit, Queue: queue, MaxWait: 2 * time.Millisecond},
	})
	q := pickKnownQuery(t, w)
	suggestURL := ts.URL + "/v1/suggest?nocache=1&q=" + url.QueryEscape(q)

	const clients, perClient = 8, 10 // 4x the cap, sustained
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, _ := getRaw(t, suggestURL)
				if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for code := range statuses {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d (distribution %v)", code, statuses)
		}
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatal("flood starved every request; gate admitted nothing")
	}
	gate := srv.Admission().Suggest
	if gate.InFlight() != 0 || gate.Waiting() != 0 {
		t.Fatalf("gate not drained: inFlight=%d waiting=%d", gate.InFlight(), gate.Waiting())
	}
	// The queue-depth histogram's max is the strongest "bounded" proof:
	// no admission attempt ever saw more than `queue` waiters.
	if max := srv.tel.queueDepth.Snapshot().Max; max > queue {
		t.Fatalf("observed queue depth %v exceeds bound %d", max, queue)
	}
}

// TestBreakerDegradedFallback drives the full breaker lifecycle over
// HTTP: trip it with deadline failures, verify open state serves the
// generation-keyed cached diversified list with degraded:true (and 503
// for uncached queries), then recover through half-open probes.
func TestBreakerDegradedFallback(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.Engine().EnableCache(64, 0)
	clk := newChaosClock()
	srv.SetAdmission(admission.Config{
		Breaker: admission.BreakerConfig{
			FailureRatio: 0.5,
			Window:       10 * time.Second,
			MinSamples:   4,
			Cooldown:     5 * time.Second,
			Probes:       2,
			Now:          clk.Now,
		},
	})
	q := pickKnownQuery(t, w)
	suggestURL := ts.URL + "/v1/suggest?q=" + url.QueryEscape(q)
	breaker := srv.Admission().Breaker

	// Prime the cache while healthy.
	var warm SuggestResponse
	if code := getJSON(t, suggestURL, &warm); code != http.StatusOK {
		t.Fatalf("warm request: %d", code)
	}
	if warm.Degraded {
		t.Fatal("healthy response marked degraded")
	}

	// Trip: an impossible deadline makes every real pipeline run fail
	// (nocache so the primed cache cannot mask the failures).
	srv.SetRequestTimeout(time.Nanosecond)
	for i := 0; i < 10 && breaker.State() != admission.Open; i++ {
		resp, _ := getRaw(t, suggestURL+"&nocache=1")
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("failure-injection request %d: status %d, want 504", i, resp.StatusCode)
		}
	}
	srv.SetRequestTimeout(0)
	if st := breaker.State(); st != admission.Open {
		t.Fatalf("breaker state = %v, want Open after sustained deadline failures", st)
	}

	// Open: the cached query is served degraded, bit-identical to the
	// cached diversified list, without running the pipeline.
	solves := srv.Engine().SolveCount()
	var deg SuggestResponse
	if code := getJSON(t, suggestURL, &deg); code != http.StatusOK {
		t.Fatalf("degraded request: %d", code)
	}
	if !deg.Degraded || !deg.Cached {
		t.Fatalf("degraded=%v cached=%v, want both true", deg.Degraded, deg.Cached)
	}
	if strings.Join(deg.Diversified, "\x00") != strings.Join(warm.Diversified, "\x00") {
		t.Fatalf("degraded list diverged from cached list:\n%v\n%v", deg.Diversified, warm.Diversified)
	}
	if srv.Engine().SolveCount() != solves {
		t.Fatal("degraded request ran a CG solve")
	}

	// Open + uncached query: 503 degraded_unavailable with Retry-After.
	other := otherKnownQuery(t, w, q)
	resp, body := getRaw(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(other))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached degraded status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "degraded_unavailable" {
		t.Fatalf("code = %q, want degraded_unavailable", env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// Cooldown elapses → half-open; two successful probes (nocache so
	// they run the real pipeline, which is healthy again) close it.
	clk.Advance(6 * time.Second)
	if st := breaker.State(); st != admission.HalfOpen {
		t.Fatalf("breaker state = %v, want HalfOpen after cooldown", st)
	}
	for i := 0; i < 2; i++ {
		var probe SuggestResponse
		if code := getJSON(t, suggestURL+"&nocache=1", &probe); code != http.StatusOK {
			t.Fatalf("probe %d: status %d", i, code)
		}
		if probe.Degraded {
			t.Fatalf("probe %d served degraded; wanted a real pipeline run", i)
		}
	}
	if st := breaker.State(); st != admission.Closed {
		t.Fatalf("breaker state = %v, want Closed after successful probes", st)
	}
	var healthy SuggestResponse
	if code := getJSON(t, suggestURL, &healthy); code != http.StatusOK || healthy.Degraded {
		t.Fatalf("post-recovery: code %d degraded %v", code, healthy.Degraded)
	}
	if breaker.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", breaker.Opens())
	}
}

// otherKnownQuery picks a logged query different from avoid (so it is
// in the representation but not in the suggestion cache).
func otherKnownQuery(t *testing.T, w *synth.World, avoid string) string {
	t.Helper()
	for q := range w.Log.QueryFrequency() {
		if q != avoid {
			return q
		}
	}
	t.Fatal("no second known query in the synthetic world")
	return ""
}

// TestPerUserRateLimit exhausts one user's token bucket and verifies
// the 429 names the right code while other users sail through.
func TestPerUserRateLimit(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		User: admission.RateConfig{Rate: 0.001, Burst: 2},
	})
	q := pickKnownQuery(t, w)
	mk := func(user string) string {
		return ts.URL + "/v1/suggest?user=" + user + "&q=" + url.QueryEscape(q)
	}
	for i := 0; i < 2; i++ {
		if code := getJSON(t, mk("alice"), nil); code != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, code)
		}
	}
	resp, body := getRaw(t, mk("alice"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "rate_limited" {
		t.Fatalf("code = %q, want rate_limited", env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// Another user has their own bucket.
	if code := getJSON(t, mk("bob"), nil); code != http.StatusOK {
		t.Fatalf("other user: %d", code)
	}
	// Anonymous requests are exempt from the per-user bucket.
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q), nil); code != http.StatusOK {
		t.Fatalf("anonymous: %d", code)
	}
}

// TestPerIPRateLimit floods from one IP (httptest traffic all comes
// from 127.0.0.1) and verifies the middleware turns requests away
// before any handler work, while /healthz and /metrics stay open.
func TestPerIPRateLimit(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		IP: admission.RateConfig{Rate: 0.001, Burst: 3},
	})
	q := pickKnownQuery(t, w)
	suggestURL := ts.URL + "/v1/suggest?q=" + url.QueryEscape(q)
	for i := 0; i < 3; i++ {
		if code := getJSON(t, suggestURL, nil); code != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, code)
		}
	}
	resp, body := getRaw(t, suggestURL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "rate_limited" {
		t.Fatalf("code = %q, want rate_limited", env.Error.Code)
	}
	// Observability and health must remain reachable while shedding —
	// they are outside the guarded /v1 surface by design.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during shed: %d", code)
	}
	if r, _ := getRaw(t, ts.URL+"/metrics"); r.StatusCode != http.StatusOK {
		t.Fatalf("metrics during shed: %d", r.StatusCode)
	}
	if srv.stats.shedRateIP.Load() < 1 {
		t.Fatalf("shedRateIP = %d, want >= 1", srv.stats.shedRateIP.Load())
	}
}

// TestStatsAdmissionSection: /v1/stats carries the admission section —
// counters, breaker state, gate occupancy, limiter key counts.
func TestStatsAdmissionSection(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.DefaultConfig())
	q := pickKnownQuery(t, w)
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q), nil); code != http.StatusOK {
		t.Fatalf("suggest: %d", code)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	adm, ok := stats["admission"].(map[string]any)
	if !ok {
		t.Fatalf("no admission section in /v1/stats: %v", stats)
	}
	if adm["enabled"] != true {
		t.Fatalf("enabled = %v, want true", adm["enabled"])
	}
	if adm["admitted"].(float64) < 1 {
		t.Fatalf("admitted = %v, want >= 1", adm["admitted"])
	}
	br := adm["breaker"].(map[string]any)
	if br["state"] != "closed" {
		t.Fatalf("breaker state = %v, want closed", br["state"])
	}
	gate := adm["suggestGate"].(map[string]any)
	if gate["limit"].(float64) <= 0 {
		t.Fatalf("suggest gate limit = %v, want > 0", gate["limit"])
	}
	if _, ok := adm["queueDepth"].(map[string]any); !ok {
		t.Fatal("no queueDepth histogram in admission section")
	}
}

// TestBodyCapReturns413: POST bodies over -max-body-bytes are a 413
// payload_too_large envelope, not an unbounded read (the old decoder
// read any body to the end).
func TestBodyCapReturns413(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	srv.SetMaxBodyBytes(64)
	big := `{"user":"u0001","query":"` + strings.Repeat("x", 256) + `"}`
	resp, err := http.Post(ts.URL+"/v1/log", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "payload_too_large" {
		t.Fatalf("code = %q, want payload_too_large", env.Error.Code)
	}
	if srv.stats.bodyTooLarge.Load() != 1 {
		t.Fatalf("bodyTooLarge counter = %d, want 1", srv.stats.bodyTooLarge.Load())
	}
	// A body under the cap still works.
	if code := postJSON(t, ts.URL+"/v1/log", map[string]string{"user": "u", "query": "q"}, nil); code != http.StatusOK {
		t.Fatalf("small body: %d", code)
	}
}

// TestTrailingGarbageRejected: the shared decoder must reject JSON
// bodies with trailing data — json.Decoder reads a stream, so without
// the explicit EOF check `{"query":"x"}{"admin":true}` decoded fine
// and the second value was silently ignored.
func TestTrailingGarbageRejected(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	for _, body := range []string{
		`{"query":"` + q + `"}garbage`,
		`{"query":"` + q + `"}{"query":"second"}`,
		`{"query":"` + q + `"} 1`,
	} {
		resp, err := http.Post(ts.URL+"/v1/suggest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_json" {
			t.Fatalf("body %q: status %d code %q, want 400 bad_json", body, resp.StatusCode, env.Error.Code)
		}
	}
	// Trailing whitespace is NOT garbage; a normal body still decodes.
	resp, err := http.Post(ts.URL+"/v1/suggest", "application/json", strings.NewReader(`{"query":"`+q+`"}`+"\n  "))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trailing whitespace rejected: %d", resp.StatusCode)
	}
	// Empty bodies keep their documented defaults semantics.
	if code := postJSON(t, ts.URL+"/v1/refresh", nil, nil); code != http.StatusOK {
		t.Fatalf("empty refresh body: %d", code)
	}
}

// TestBatchItemsShedIndividually: a batch bigger than the gate capacity
// returns per-item 429s, not an all-or-nothing failure.
func TestBatchItemsShedIndividually(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		Suggest: admission.GateConfig{Limit: 1, Queue: 0, MaxWait: time.Millisecond},
	})
	// Hold the only slot: every batch item must shed, but the batch
	// request itself still answers 200 with per-item errors.
	gate := srv.Admission().Suggest
	if _, err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer gate.Release()

	q := pickKnownQuery(t, w)
	var batch BatchSuggestResponse
	code := postJSON(t, ts.URL+"/v1/suggest/batch", map[string]any{
		"requests": []map[string]any{{"query": q}, {"query": q}},
	}, &batch)
	if code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", code)
	}
	for i, item := range batch.Results {
		if item.Status != http.StatusTooManyRequests {
			t.Fatalf("item %d status = %d, want 429", i, item.Status)
		}
		if item.Error == nil || item.Error.Code != "overloaded" {
			t.Fatalf("item %d error = %+v, want overloaded", i, item.Error)
		}
	}
}

// TestLearnAndRefreshGated: the mutate stage classes have their own
// gates — a held learn slot sheds further learns but does not block
// suggestions.
func TestLearnAndRefreshGated(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		Learn:   admission.GateConfig{Limit: 1, Queue: 0, MaxWait: time.Millisecond},
		Refresh: admission.GateConfig{Limit: 1, Queue: 0, MaxWait: time.Millisecond},
	})
	ctrl := srv.Admission()
	if _, err := ctrl.Learn.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Learn.Release()
	if _, err := ctrl.Refresh.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Refresh.Release()

	var env envelope
	if code := postJSON(t, ts.URL+"/v1/learn", map[string]string{"user": "u0001"}, &env); code != http.StatusTooManyRequests {
		t.Fatalf("learn status = %d, want 429", code)
	}
	if env.Error.Code != "overloaded" {
		t.Fatalf("learn code = %q", env.Error.Code)
	}
	if code := postJSON(t, ts.URL+"/v1/refresh", map[string]string{}, &env); code != http.StatusTooManyRequests {
		t.Fatalf("refresh status = %d, want 429", code)
	}
	// Suggest is a different stage class: unaffected.
	q := pickKnownQuery(t, w)
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q), nil); code != http.StatusOK {
		t.Fatalf("suggest while mutate gates held: %d", code)
	}
}

// nullResponseWriter is the cheapest possible sink for the shed
// benchmark: a reusable header map and a discarding body.
type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header         { return w.h }
func (w nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nullResponseWriter) WriteHeader(int)             {}

// BenchmarkShedPath measures the full handler cost of shedding one
// flood request — gate check, counters, histogram, precomputed 429
// body. Guarded at ≤2 allocs/op in `make bench-guard` (the two header
// value slices); anything above means the shed path started doing
// per-request work it must not do under flood.
func BenchmarkShedPath(b *testing.B) {
	srv := New(nil, nil)
	srv.SetAdmission(admission.Config{
		Suggest: admission.GateConfig{Limit: 1, Queue: 0, MaxWait: time.Millisecond},
	})
	if _, err := srv.Admission().Suggest.Acquire(context.Background()); err != nil {
		b.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/suggest?q=x", nil)
	w := nullResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.handleSuggestGet(w, r)
	}
	if srv.stats.shedOverloaded.Load() != int64(b.N) {
		b.Fatalf("shed %d of %d", srv.stats.shedOverloaded.Load(), b.N)
	}
}

// TestFlashCrowdReport replays a flash crowd — 48 clients hammering
// cold (nocache) suggestions — twice: once with admission control off
// and once with the suggest gate capped, and prints the latency/error
// mix of both runs. It is the measurement harness behind the
// EXPERIMENTS.md overload table, not a regression test, so it only
// runs when PQSDA_FLASHCROWD=1.
func TestFlashCrowdReport(t *testing.T) {
	if os.Getenv("PQSDA_FLASHCROWD") != "1" {
		t.Skip("set PQSDA_FLASHCROWD=1 to run the flash-crowd measurement")
	}
	const (
		clients  = 96
		perEach  = 10
		gateSize = 4
	)
	// A transport with enough connections that the crowd actually lands
	// on the server concurrently — the default pool would serialize it
	// client-side and mask the overload.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	// A deliberately heavy world — unlike testServer's — so one nocache
	// suggestion costs real pipeline work and the crowd can actually
	// saturate the box.
	world := synth.Generate(synth.Config{Seed: 7, NumFacets: 8, NumUsers: 48, SessionsPerUser: 40})
	run := func(admit bool) (p50ok, p99ok, p99all time.Duration, okN, shedN, errN int) {
		engine, err := core.NewEngine(world.Log, core.Config{
			Compact:             bipartite.CompactConfig{Budget: 200},
			SkipPersonalization: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(engine, io.Discard)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		if admit {
			srv.SetAdmission(admission.Config{
				Suggest: admission.GateConfig{Limit: gateSize, Queue: gateSize, MaxWait: 10 * time.Millisecond},
			})
		}
		q := pickKnownQuery(t, world)
		u := ts.URL + "/v1/suggest?nocache=1&q=" + url.QueryEscape(q)
		var mu sync.Mutex
		var okLat, allLat []time.Duration
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perEach; i++ {
					start := time.Now()
					resp, _ := client.Get(u)
					el := time.Since(start)
					mu.Lock()
					allLat = append(allLat, el)
					switch {
					case resp != nil && resp.StatusCode == http.StatusOK:
						okLat = append(okLat, el)
						okN++
					case resp != nil && resp.StatusCode == http.StatusTooManyRequests:
						shedN++
					default:
						errN++
					}
					mu.Unlock()
					if resp != nil {
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Wait()
		pct := func(d []time.Duration, p float64) time.Duration {
			if len(d) == 0 {
				return 0
			}
			sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
			i := int(p * float64(len(d)-1))
			return d[i]
		}
		return pct(okLat, 0.50), pct(okLat, 0.99), pct(allLat, 0.99), okN, shedN, errN
	}

	for _, mode := range []bool{false, true} {
		p50, p99, p99all, okN, shedN, errN := run(mode)
		t.Logf("admission=%v: ok=%d shed=%d err=%d p50(ok)=%v p99(ok)=%v p99(all)=%v",
			mode, okN, shedN, errN, p50, p99, p99all)
	}
}
