package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/admission"
)

// One solve group must cost ONE suggest-gate slot, however many items
// ride in it. The gate here has a single slot and no queue — if the
// grouped path acquired per item (as the legacy path does), the
// concurrent items would shed each other; instead the whole payload
// runs on one slot and one blocked multi-RHS solve.
func TestBatchGroupedOneGateSlotPerSolveGroup(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.SetAdmission(admission.Config{
		Suggest: admission.GateConfig{Limit: 1, Queue: 0, MaxWait: time.Second},
	})
	q := pickKnownQuery(t, w)

	// Eight items, one solve signature: six per-user duplicates plus two
	// k variations. No cache is attached, so every item becomes a lane
	// of the same blocked solve.
	var reqs []SuggestRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, SuggestRequest{User: fmt.Sprintf("u%d", i), Query: q, K: 5})
	}
	reqs = append(reqs,
		SuggestRequest{Query: q, K: 3},
		SuggestRequest{Query: q, K: 7},
	)

	var out BatchSuggestResponse
	if code := postJSON(t, ts.URL+"/v1/suggest/batch", BatchSuggestRequest{Requests: reqs}, &out); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	for i, r := range out.Results {
		if r.Status != 200 || r.Response == nil {
			t.Fatalf("item %d: %+v — a grouped batch must not shed itself on a 1-slot gate", i, r)
		}
		if len(r.Response.Suggestions) == 0 {
			t.Fatalf("item %d: empty suggestions", i)
		}
	}
	if solves := srv.Engine().SolveCount(); solves != 1 {
		t.Errorf("batch ran %d CG solves, want 1 blocked solve", solves)
	}

	// The solve-shape telemetry saw one blocked solve of 8 right-hand
	// sides, and no precision fallbacks (the engine runs float64 here).
	snap := srv.tel.solveBatchSize.Snapshot()
	if snap.Count != 1 {
		t.Errorf("solve_batch_size samples = %d, want 1 (one observation per blocked solve)", int64(snap.Count))
	}
	if snap.Max != float64(len(reqs)) {
		t.Errorf("solve_batch_size max = %v, want %d", snap.Max, len(reqs))
	}
	if n := srv.stats.precisionFallbacks.Load(); n != 0 {
		t.Errorf("precision fallbacks = %d on a float64 engine", n)
	}
}

// SetBatchSolve(false) restores the legacy independent-item model:
// items coalesce only through the suggestion cache, and the payload
// still answers correctly.
func TestBatchSolveToggle(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	if !srv.BatchSolve() {
		t.Fatal("batch solving must default on")
	}
	srv.SetBatchSolve(false)
	srv.Engine().EnableCache(64, 0)
	q := pickKnownQuery(t, w)

	reqs := make([]SuggestRequest, 4)
	for i := range reqs {
		reqs[i] = SuggestRequest{Query: q, K: 5}
	}
	var out BatchSuggestResponse
	if code := postJSON(t, ts.URL+"/v1/suggest/batch", BatchSuggestRequest{Requests: reqs}, &out); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	for i, r := range out.Results {
		if r.Status != 200 || r.Response == nil {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
	// Legacy coalescing still holds: identical concurrent items share
	// one pipeline run through the cache's inflight table.
	if solves := srv.Engine().SolveCount(); solves != 1 {
		t.Errorf("legacy batch ran %d CG solves, want 1", solves)
	}
	// The single-path metric shape: one sample per solo solve, size 1.
	snap := srv.tel.solveBatchSize.Snapshot()
	if snap.Count != 1 || snap.Max != 1 {
		t.Errorf("solve_batch_size = count %d max %v, want one size-1 sample", int64(snap.Count), snap.Max)
	}
}
