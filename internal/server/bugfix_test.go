package server

import (
	"net/http"
	"strings"
	"testing"
)

// POST /api/refresh with an empty body must behave as the documented
// default (mode "graphs"), not 400 on json.Decode's EOF.
func TestRefreshEmptyBodyDefaultsToGraphs(t *testing.T) {
	_, ts, _, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/api/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("empty-body refresh: status %d, want 200", resp.StatusCode)
	}
}

// A refresh mode the engine cannot satisfy must be rejected BEFORE the
// recorded entries are consumed: the next valid refresh still ingests
// them, and the serving engine is untouched by the failed attempt.
func TestRefreshRejectedModeDoesNotConsumeEntries(t *testing.T) {
	srv, ts, _, _ := testServer(t) // diversification-only fixture
	before := srv.Engine()
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/api/log", LogRequest{User: "u", Query: "pending entry probe"}, nil)
	}
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "foldin"}, nil); code != 409 {
		t.Fatalf("foldin without profiles: status %d, want 409", code)
	}
	if srv.Engine() != before {
		t.Fatal("rejected refresh swapped the engine")
	}
	if got := before.PendingEntries(); got != 0 {
		t.Fatalf("rejected refresh ingested %d entries into the serving engine", got)
	}
	// The entries are still pending for a valid refresh.
	var out map[string]any
	if code := postJSON(t, ts.URL+"/api/refresh", RefreshRequest{Mode: "graphs"}, &out); code != 200 {
		t.Fatalf("graphs refresh after rejected foldin: status %d", code)
	}
	if out["ingested"].(float64) != 3 {
		t.Errorf("ingested = %v after rejected foldin, want 3 (entries were consumed by the 409)", out["ingested"])
	}
}

// GET /api/suggest must reject malformed and non-positive k instead of
// Sscanf-accepting trailing garbage ("5x" → 5).
func TestSuggestGetRejectsBadK(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	for _, k := range []string{"5x", "-3", "0", "2.5", "1e3", ""} {
		u := ts.URL + "/api/suggest?user=u&q=" + q + "&k=" + k
		want := 400
		if k == "" { // absent k falls back to the default of 10
			want = 200
		}
		if code := getJSON(t, u, nil); code != want {
			t.Errorf("k=%q: status %d, want %d", k, code, want)
		}
	}
}

// Tabs and newlines in user-controlled strings must not corrupt the
// one-event-per-line TSV sink.
func TestSinkEscapesControlCharacters(t *testing.T) {
	_, ts, _, sink := testServer(t)
	evil := "tab\there\nand a newline"
	if code := postJSON(t, ts.URL+"/api/log", LogRequest{User: "u\t1", Query: evil}, nil); code != 200 {
		t.Fatalf("log: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/feedback", Feedback{
		User: "u1", Query: evil, Suggestion: "sugg\nwith newline", Rating: 0.8,
	}, nil); code != 200 {
		t.Fatalf("feedback: status %d", code)
	}
	out := sink.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink has %d lines for 2 events:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "entry\t") || !strings.HasPrefix(lines[1], "feedback\t") {
		t.Fatalf("sink lines mangled:\n%s", out)
	}
	// The entry line must have exactly its 5 fields; a raw tab in the
	// query would add more.
	if got := len(strings.Split(lines[0], "\t")); got != 5 {
		t.Errorf("entry line has %d tab-separated fields, want 5: %q", got, lines[0])
	}
	if !strings.Contains(lines[0], `tab\there\nand a newline`) {
		t.Errorf("query not escaped in sink: %q", lines[0])
	}
}

// escapeTSV round-trip sanity on the escaping itself.
func TestEscapeTSV(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a\tb":         `a\tb`,
		"a\nb":         `a\nb`,
		"a\r\nb":       `a\r\nb`,
		`back\slash`:   `back\\slash`,
		"\t\n\r\\mix—": `\t\n\r\\mix—`,
	}
	for in, want := range cases {
		if got := escapeTSV(in); got != want {
			t.Errorf("escapeTSV(%q) = %q, want %q", in, got, want)
		}
	}
}
