package server

import (
	"encoding/json"
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro/internal/admission"
)

// --- Strategy request field ------------------------------------------

// The strategy field must round-trip on both verbs: accepted on the
// request, resolved to its canonical name, and echoed on the response.
func TestV1StrategyAcceptAndEcho(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)

	var def SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q), &def); code != 200 {
		t.Fatalf("default GET: %d", code)
	}
	if def.Strategy != "hitting" {
		t.Fatalf("default strategy echo %q, want %q", def.Strategy, "hitting")
	}

	var mmr SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q)+"&strategy=mmr", &mmr); code != 200 {
		t.Fatalf("GET strategy=mmr: %d", code)
	}
	if mmr.Strategy != "mmr" {
		t.Fatalf("GET strategy echo %q, want %q", mmr.Strategy, "mmr")
	}

	var rel SuggestResponse
	code := postJSON(t, ts.URL+"/v1/suggest",
		map[string]any{"query": q, "strategy": "relevance"}, &rel)
	if code != 200 {
		t.Fatalf("POST strategy=relevance: %d", code)
	}
	if rel.Strategy != "relevance" {
		t.Fatalf("POST strategy echo %q, want %q", rel.Strategy, "relevance")
	}
}

// An unregistered strategy is a stable 400 envelope, and the details
// list the known names so the client can fix the request.
func TestV1UnknownStrategy(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)
	resp, body := doRaw(t, http.MethodGet,
		ts.URL+"/v1/suggest?q="+url.QueryEscape(q)+"&strategy=bogus", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("bad envelope: %s", body)
	}
	if env.Error.Code != "unknown_strategy" {
		t.Fatalf("code %q, want unknown_strategy", env.Error.Code)
	}
	if env.Error.Details["strategy"] != "bogus" {
		t.Fatalf("details.strategy = %v, want bogus", env.Error.Details["strategy"])
	}
	known, ok := env.Error.Details["known"].([]any)
	if !ok || len(known) < 4 {
		t.Fatalf("details.known = %v, want the registered strategy names", env.Error.Details["known"])
	}
}

// --- Strategy discovery ----------------------------------------------

func TestV1Strategies(t *testing.T) {
	srv, ts, _, _ := testServer(t)
	var out struct {
		Default    string `json:"default"`
		Brownout   string `json:"brownout"`
		Strategies []struct {
			Name   string         `json:"name"`
			Params map[string]any `json:"params"`
		} `json:"strategies"`
	}
	if code := getJSON(t, ts.URL+"/v1/strategies", &out); code != 200 {
		t.Fatalf("GET /v1/strategies: %d", code)
	}
	if out.Default != "hitting" {
		t.Fatalf("default = %q, want hitting", out.Default)
	}
	if out.Brownout != "" {
		t.Fatalf("brownout = %q, want disabled by default", out.Brownout)
	}
	names := map[string]bool{}
	for _, st := range out.Strategies {
		names[st.Name] = true
	}
	for _, want := range []string{"hitting", "mmr", "pfar", "relevance"} {
		if !names[want] {
			t.Errorf("strategy %q missing from discovery payload %v", want, names)
		}
	}

	if err := srv.SetBrownoutStrategy("relevance"); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/v1/strategies", &out); code != 200 {
		t.Fatal("second GET failed")
	}
	if out.Brownout != "relevance" {
		t.Fatalf("brownout = %q after SetBrownoutStrategy", out.Brownout)
	}

	// The endpoint is v1-only: it postdates the /api surface.
	resp, _ := doRaw(t, http.MethodGet, ts.URL+"/api/strategies", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/api/strategies status %d, want 404", resp.StatusCode)
	}
}

// --- Deprecation / Sunset headers ------------------------------------

// Every /api alias must carry the full deprecation header set
// (Deprecation, Sunset, Link rel="successor-version"); /v1 none of it.
func TestLegacyAliasSunsetHeaders(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))

	cases := []struct {
		name, method, path, body string
	}{
		{"suggest GET", http.MethodGet, "/api/suggest?q=" + q, ""},
		{"suggest POST", http.MethodPost, "/api/suggest", `{"query":"x"}`},
		{"feedback", http.MethodPost, "/api/feedback", `{}`},
		{"log", http.MethodPost, "/api/log", `{}`},
		{"learn", http.MethodPost, "/api/learn", `{}`},
		{"refresh", http.MethodPost, "/api/refresh", `{"mode":"yolo"}`},
		{"stats", http.MethodGet, "/api/stats", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := doRaw(t, tc.method, ts.URL+tc.path, tc.body)
			if got := resp.Header.Get("Sunset"); got != legacySunset {
				t.Errorf("Sunset = %q, want %q", got, legacySunset)
			}
			if resp.Header.Get("Deprecation") != "true" {
				t.Error("Deprecation header missing")
			}
			if link := resp.Header.Get("Link"); link == "" {
				t.Error("Link successor-version header missing")
			}
		})
	}

	// The canonical surface must NOT look deprecated.
	resp, _ := doRaw(t, http.MethodGet, ts.URL+"/v1/suggest?q="+q, "")
	for _, h := range []string{"Sunset", "Deprecation"} {
		if v := resp.Header.Get(h); v != "" {
			t.Errorf("/v1 response carries %s: %q", h, v)
		}
	}
}

// --- Brownout fallback -----------------------------------------------

// With the breaker open and no cached list, a designated brownout
// strategy answers the miss (200 degraded, strategy echoed) instead of
// the 503 shed; without a designation the 503 behavior is unchanged.
func TestBrownoutFallback(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.Engine().EnableCache(64, 0)
	clk := newChaosClock()
	srv.SetAdmission(admission.Config{
		Breaker: admission.BreakerConfig{
			FailureRatio: 0.5,
			Window:       10 * time.Second,
			MinSamples:   4,
			Cooldown:     5 * time.Second,
			Probes:       2,
			Now:          clk.Now,
		},
	})
	if err := srv.SetBrownoutStrategy("nope"); err == nil {
		t.Fatal("unknown brownout strategy accepted")
	}

	q := pickKnownQuery(t, w)
	// Trip the breaker with deadline failures (nocache so nothing masks
	// them), exactly like the chaos suite does.
	breaker := srv.Admission().Breaker
	srv.SetRequestTimeout(time.Nanosecond)
	for i := 0; i < 10 && breaker.State() != admission.Open; i++ {
		getRaw(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q)+"&nocache=1")
	}
	srv.SetRequestTimeout(0)
	if st := breaker.State(); st != admission.Open {
		t.Fatalf("breaker state = %v, want Open", st)
	}

	// No brownout designated: uncached query sheds 503 (the PR6 contract).
	resp, _ := getRaw(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("without brownout: status %d, want 503", resp.StatusCode)
	}

	// Brownout designated: the same miss is answered by the cheap
	// strategy, marked degraded, with the fallback name echoed.
	if err := srv.SetBrownoutStrategy("relevance"); err != nil {
		t.Fatal(err)
	}
	var out SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q), &out); code != http.StatusOK {
		t.Fatalf("brownout request: %d, want 200", code)
	}
	if !out.Degraded {
		t.Fatal("brownout response not marked degraded")
	}
	if out.Strategy != "relevance" {
		t.Fatalf("brownout strategy echo %q, want relevance", out.Strategy)
	}
	if len(out.Diversified) == 0 {
		t.Fatal("brownout served an empty list for a known query")
	}

	// The stats surface must account for the brownout serve.
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatal("stats failed")
	}
	adm, _ := stats["admission"].(map[string]any)
	if n, _ := adm["brownoutServed"].(float64); n < 1 {
		t.Fatalf("admission.brownoutServed = %v, want >= 1", adm["brownoutServed"])
	}
	strat, _ := stats["strategies"].(map[string]any)
	if strat == nil {
		t.Fatal("stats missing strategies section")
	}
	if strat["brownout"] != "relevance" {
		t.Fatalf("stats strategies.brownout = %v", strat["brownout"])
	}
	by, _ := strat["byStrategy"].(map[string]any)
	if by == nil || by["relevance"] == nil {
		t.Fatalf("stats strategies.byStrategy missing relevance: %v", by)
	}
}
