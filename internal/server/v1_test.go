package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// envelope mirrors the documented /v1 error shape.
type envelope struct {
	Error *struct {
		Code    string         `json:"code"`
		Message string         `json:"message"`
		Details map[string]any `json:"details"`
	} `json:"error"`
}

func doRaw(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var req *http.Request
	var err error
	if method == http.MethodGet {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// Every /v1 failure mode must answer with the uniform envelope
// {"error": {"code", "message"}} and the documented status.
func TestV1ErrorEnvelopeTable(t *testing.T) {
	_, ts, _, _ := testServer(t) // diversification-only: no profiles
	hugeBatch, _ := json.Marshal(map[string]any{
		"requests": make([]map[string]any, MaxBatchSize+1),
	})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"suggest GET missing query", "GET", "/v1/suggest?user=u", "", 400, "missing_query"},
		{"suggest GET garbage k", "GET", "/v1/suggest?q=sun&k=5x", "", 400, "bad_k"},
		{"suggest GET zero k", "GET", "/v1/suggest?q=sun&k=0", "", 400, "bad_k"},
		{"suggest GET negative k", "GET", "/v1/suggest?q=sun&k=-3", "", 400, "bad_k"},
		{"suggest POST bad JSON", "POST", "/v1/suggest", "{", 400, "bad_json"},
		{"suggest POST missing query", "POST", "/v1/suggest", `{"user":"u"}`, 400, "missing_query"},
		{"suggest POST negative k", "POST", "/v1/suggest", `{"query":"sun","k":-1}`, 400, "bad_k"},
		{"suggest POST bad at", "POST", "/v1/suggest", `{"query":"sun","at":"yesterday"}`, 400, "bad_timestamp"},
		{"suggest POST bad context time", "POST", "/v1/suggest",
			`{"query":"sun","context":[{"query":"x","at":"noonish"}]}`, 400, "bad_timestamp"},
		{"refresh bad JSON", "POST", "/v1/refresh", "{", 400, "bad_json"},
		{"refresh unknown mode", "POST", "/v1/refresh", `{"mode":"yolo"}`, 400, "bad_mode"},
		{"refresh unsupported mode", "POST", "/v1/refresh", `{"mode":"foldin"}`, 409, "conflict"},
		{"learn bad JSON", "POST", "/v1/learn", "{", 400, "bad_json"},
		{"learn missing user", "POST", "/v1/learn", `{}`, 400, "missing_user"},
		{"learn unknown user", "POST", "/v1/learn", `{"user":"nobody"}`, 404, "not_found"},
		{"feedback bad JSON", "POST", "/v1/feedback", "{", 400, "bad_json"},
		{"feedback missing fields", "POST", "/v1/feedback", `{"rating":0.2}`, 400, "missing_field"},
		{"feedback off-scale rating", "POST", "/v1/feedback",
			`{"user":"u","suggestion":"s","rating":0.5}`, 400, "bad_rating"},
		{"log bad JSON", "POST", "/v1/log", "{", 400, "bad_json"},
		{"log missing query", "POST", "/v1/log", `{"user":"u"}`, 400, "missing_field"},
		{"log bad at", "POST", "/v1/log", `{"user":"u","query":"q","at":"eventually"}`, 400, "bad_timestamp"},
		{"batch bad JSON", "POST", "/v1/suggest/batch", "{", 400, "bad_json"},
		{"batch empty", "POST", "/v1/suggest/batch", `{"requests":[]}`, 400, "bad_batch"},
		{"batch too large", "POST", "/v1/suggest/batch", string(hugeBatch), 413, "batch_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := doRaw(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			var env envelope
			if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
				t.Fatalf("body is not the error envelope: %s", raw)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// The /v1 endpoints must answer exactly like their /api forebears, and
// the /api aliases must carry the deprecation headers.
func TestV1AndLegacyAliases(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	q := url.QueryEscape(pickKnownQuery(t, w))

	var v1, legacy SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?user=u&q="+q+"&k=5", &v1); code != 200 {
		t.Fatalf("/v1/suggest: status %d", code)
	}
	resp, raw := doRaw(t, "GET", ts.URL+"/api/suggest?user=u&q="+q+"&k=5", "")
	if resp.StatusCode != 200 {
		t.Fatalf("/api/suggest: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &legacy); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/api alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/suggest") {
		t.Errorf("/api alias Link = %q, want successor /v1/suggest", link)
	}
	if len(v1.Suggestions) == 0 || fmt.Sprint(v1.Suggestions) != fmt.Sprint(legacy.Suggestions) {
		t.Errorf("alias diverged: v1 %v, legacy %v", v1.Suggestions, legacy.Suggestions)
	}
	// The /v1 path itself must NOT be marked deprecated.
	resp2, _ := doRaw(t, "GET", ts.URL+"/v1/suggest?user=u&q="+q+"&k=5", "")
	if resp2.Header.Get("Deprecation") != "" {
		t.Error("/v1 endpoint carries a Deprecation header")
	}
	// Both requests above recorded entries.
	if n := srv.Recorded().Len(); n < 2 {
		t.Errorf("recorded %d entries", n)
	}

	// Remaining aliases answer on both mounts.
	for _, path := range []string{"/stats", "/refresh", "/log", "/feedback", "/learn"} {
		for _, prefix := range []string{"/v1", "/api"} {
			method := "POST"
			if path == "/stats" {
				method = "GET"
			}
			resp, _ := doRaw(t, method, ts.URL+prefix+path, "")
			if resp.StatusCode == http.StatusNotFound && path != "/learn" {
				t.Errorf("%s%s not mounted", prefix, path)
			}
		}
	}
}

// GET and POST flow through ONE decoder: the same malformed input is
// rejected identically on both transports, and the same valid input
// produces the same suggestion list.
func TestSuggestTransportsCannotDrift(t *testing.T) {
	_, ts, w, _ := testServer(t)
	q := pickKnownQuery(t, w)

	var viaGet, viaPost SuggestResponse
	if code := getJSON(t, ts.URL+"/v1/suggest?user=u9&q="+url.QueryEscape(q)+"&k=7", &viaGet); code != 200 {
		t.Fatalf("GET: %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/suggest", SuggestRequest{User: "u9", Query: q, K: 7}, &viaPost); code != 200 {
		t.Fatalf("POST: %d", code)
	}
	if fmt.Sprint(viaGet.Suggestions) != fmt.Sprint(viaPost.Suggestions) {
		t.Errorf("transports diverged:\nGET  %v\nPOST %v", viaGet.Suggestions, viaPost.Suggestions)
	}

	// k clamping is shared: k over the cap serves the cap, not an
	// error, on both transports.
	if code := getJSON(t, ts.URL+"/v1/suggest?q="+url.QueryEscape(q)+"&k=10000", nil); code != 200 {
		t.Errorf("GET k=10000: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/suggest", SuggestRequest{Query: q, K: 10000}, nil); code != 200 {
		t.Errorf("POST k=10000: status %d", code)
	}
}

func TestBatchSuggest(t *testing.T) {
	srv, ts, w, _ := testServer(t)
	srv.Engine().EnableCache(256, 0)
	q := pickKnownQuery(t, w)

	// Three copies of the same request, one distinct valid request, one
	// invalid item: the batch answers all five positionally; the bad
	// item fails alone.
	batch := BatchSuggestRequest{Requests: []SuggestRequest{
		{User: "u1", Query: q, K: 5},
		{User: "u2", Query: q, K: 5},
		{User: "u3", Query: q, K: 5},
		{User: "u1", Query: q, K: 3},
		{User: "u1", Query: "", K: 5},
	}}
	var out BatchSuggestResponse
	if code := postJSON(t, ts.URL+"/v1/suggest/batch", batch, &out); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if len(out.Results) != 5 {
		t.Fatalf("%d results for 5 requests", len(out.Results))
	}
	for i := 0; i < 4; i++ {
		if out.Results[i].Status != 200 || out.Results[i].Response == nil {
			t.Fatalf("item %d: %+v", i, out.Results[i])
		}
		if len(out.Results[i].Response.Suggestions) == 0 {
			t.Fatalf("item %d: empty suggestions", i)
		}
	}
	// Identical items share one diversified list.
	for i := 1; i < 3; i++ {
		if fmt.Sprint(out.Results[i].Response.Diversified) != fmt.Sprint(out.Results[0].Response.Diversified) {
			t.Errorf("duplicate items %d and 0 diverged", i)
		}
	}
	if out.Results[3].Response.Suggestions != nil && len(out.Results[3].Response.Suggestions) > 3 {
		t.Errorf("k=3 item returned %d suggestions", len(out.Results[3].Response.Suggestions))
	}
	bad := out.Results[4]
	if bad.Status != 400 || bad.Error == nil || bad.Error.Code != "missing_query" {
		t.Fatalf("invalid item = %+v", bad)
	}

	// Solve sharing: all four valid items carry the same solve signature
	// (same query, no context), so the whole payload ran ONE blocked
	// multi-RHS solve — the three identical items coalesced onto the
	// k=5 leader's lane, and k=3 rode along as a second right-hand side.
	if solves := srv.Engine().SolveCount(); solves != 1 {
		t.Errorf("batch ran %d CG solves, want 1", solves)
	}
	st := srv.Engine().Cache().Stats()
	if st.Entries != 2 {
		t.Errorf("cache entries = %d for 2 unique valid keys (stats %+v)", st.Entries, st)
	}
	if st.Misses != 4 {
		t.Errorf("cache misses = %d for 4 valid lookups on a cold cache (stats %+v)", st.Misses, st)
	}
	// All four successes were recorded for future training.
	if n := srv.Recorded().Len(); n != 4 {
		t.Errorf("recorded %d entries, want 4", n)
	}
}
