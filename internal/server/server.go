// Package server implements the web-search middleware of the paper's
// HPR study (Section VI-C): an HTTP service that serves PQS-DA
// suggestions, records the searchers' query log for future profile
// training, and collects explicit 6-point relevance ratings of the
// suggestions it served.
//
// The serving path is non-blocking and bounded: the engine lives behind
// an atomic pointer, mutation (refresh/learn) happens on a clone that
// is hot-swapped in when ready, and every suggestion request carries a
// context deadline threaded down to the Eq. 15 CG solve and the
// hitting-time greedy loop.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/querylog"
)

// Server is the suggestion middleware. Create with New and mount via
// Handler.
type Server struct {
	// engine is the serving engine. Suggestion requests Load it without
	// any lock; mutators build a replacement off the serving path and
	// Store it — an in-flight request keeps using the engine it loaded,
	// which stays valid (engines are immutable once swapped in).
	engine atomic.Pointer[core.Engine]
	// swapMu serializes the clone→mutate→swap sequences of /api/refresh
	// and /api/learn against each other. The suggestion path never
	// takes it.
	swapMu sync.Mutex
	// timeoutNs is the per-request suggestion deadline in nanoseconds
	// (0 = none), settable at runtime via SetRequestTimeout.
	timeoutNs atomic.Int64

	stats serverStats

	mu sync.Mutex
	// lastIngested is how many recorded entries have been handed to the
	// engine already.
	lastIngested int
	// recorded accumulates the query events observed through the
	// middleware (the experts' log in the paper's study).
	recorded querylog.Log
	// feedback accumulates explicit suggestion ratings.
	feedback []Feedback
	// sink, when set, receives every recorded entry and rating as TSV
	// lines for durable storage.
	sink io.Writer
}

// Feedback is one explicit rating of a served suggestion on the
// paper's 6-point scale {0, 0.2, 0.4, 0.6, 0.8, 1}.
type Feedback struct {
	User       string    `json:"user"`
	Query      string    `json:"query"`
	Suggestion string    `json:"suggestion"`
	Rating     float64   `json:"rating"`
	At         time.Time `json:"at"`
}

// New wraps an engine. sink may be nil; when set, recorded events and
// feedback are appended to it as TSV lines (control characters in
// user-supplied fields are backslash-escaped so one event is always one
// line).
func New(engine *core.Engine, sink io.Writer) *Server {
	s := &Server{sink: sink}
	s.engine.Store(engine)
	return s
}

// Engine returns the engine currently serving suggestions. Refresh and
// learn swap in a new engine, so holders of the returned pointer see a
// consistent—possibly slightly stale—snapshot.
func (s *Server) Engine() *core.Engine { return s.engine.Load() }

// SetRequestTimeout bounds every suggestion request: on overrun the
// handler stops the pipeline (mid-CG-solve if need be) and returns 504
// with the stage timings completed so far. Zero disables the deadline.
// Safe to call while serving.
func (s *Server) SetRequestTimeout(d time.Duration) { s.timeoutNs.Store(int64(d)) }

// RequestTimeout returns the configured per-request deadline.
func (s *Server) RequestTimeout() time.Duration { return time.Duration(s.timeoutNs.Load()) }

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	s.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /api/suggest", s.handleSuggestGet)
	mux.HandleFunc("POST /api/suggest", s.handleSuggestPost)
	mux.HandleFunc("POST /api/feedback", s.handleFeedback)
	mux.HandleFunc("POST /api/log", s.handleLog)
	mux.HandleFunc("POST /api/learn", s.handleLearn)
	mux.HandleFunc("POST /api/refresh", s.handleRefresh)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// decodeBody decodes an optional JSON request body into v. An empty
// body is valid and leaves v at its zero value, so handlers whose
// request fields all have documented defaults (e.g. /api/refresh's
// mode) accept a bare POST.
func decodeBody(r *http.Request, v any) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// RefreshRequest is the POST /api/refresh body: ingest all recorded
// traffic into the engine and rebuild per mode ("graphs", "foldin" or
// "retrain"). An empty body (or empty mode) means "graphs".
type RefreshRequest struct {
	Mode string `json:"mode"`
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	var req RefreshRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var mode core.RefreshMode
	switch req.Mode {
	case "", "graphs":
		mode = core.RebuildGraphs
	case "foldin":
		mode = core.FoldInUsers
	case "retrain":
		mode = core.RetrainProfiles
	default:
		httpError(w, http.StatusBadRequest, "mode must be graphs, foldin or retrain")
		return
	}

	// One rebuild at a time; suggestions never wait here — they read
	// the old engine until the swap below.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.engine.Load()

	// Validate BEFORE ingesting: a mode the engine cannot satisfy must
	// not consume the recorded entries or touch any engine state.
	if err := cur.CanRefresh(mode); err != nil {
		s.stats.refreshErrors.Add(1)
		httpError(w, http.StatusConflict, err.Error())
		return
	}

	// Snapshot the fresh entries under the record lock. Entries that
	// arrive while the rebuild runs stay pending for the next refresh.
	s.mu.Lock()
	prevIngested := s.lastIngested
	fresh := append([]querylog.Entry(nil), s.recorded.Entries[s.lastIngested:]...)
	s.lastIngested = s.recorded.Len()
	s.mu.Unlock()

	start := time.Now()
	next, err := cur.Rebuild(fresh, mode)
	if err != nil {
		// Roll the ingest cursor back: the entries were never applied.
		s.mu.Lock()
		s.lastIngested = prevIngested
		s.mu.Unlock()
		s.stats.refreshErrors.Add(1)
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.engine.Store(next)
	d := time.Since(start)
	s.stats.observeRefresh(d)
	s.stats.swaps.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "refreshed",
		"ingested":   len(fresh),
		"durationMs": float64(d.Microseconds()) / 1000,
	})
}

// LearnRequest is the POST /api/learn body: fold the middleware's
// recorded history for the user into the engine's profiles (online
// profiling of new users without retraining).
type LearnRequest struct {
	User string `json:"user"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req LearnRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User == "" {
		httpError(w, http.StatusBadRequest, "missing user")
		return
	}
	s.stats.learnRequests.Add(1)
	s.mu.Lock()
	entries := s.recorded.ByUser(req.User)
	s.mu.Unlock()
	if len(entries) == 0 {
		httpError(w, http.StatusNotFound, "no recorded history for user")
		return
	}
	// Fold-in mutates the profile store, so it follows the same
	// clone→mutate→swap discipline as refresh: suggestions keep reading
	// the old engine until the swap.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.engine.Load()
	if cur.Profiles == nil {
		httpError(w, http.StatusConflict, "core: engine built without personalization")
		return
	}
	next := cur.Clone()
	if err := next.LearnUser(req.User, entries); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.engine.Store(next)
	s.stats.swaps.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"status": "learned", "entries": len(entries)})
}

// SuggestRequest is the POST /api/suggest body.
type SuggestRequest struct {
	User  string `json:"user"`
	Query string `json:"query"`
	K     int    `json:"k"`
	// Context lists the current session's previous queries, most
	// recent last, with RFC3339 timestamps.
	Context []ContextItem `json:"context,omitempty"`
	// At is the submission time (RFC3339; empty means now).
	At string `json:"at,omitempty"`
}

// ContextItem is one search-context query.
type ContextItem struct {
	Query string `json:"query"`
	At    string `json:"at"`
}

// SuggestResponse is the suggestion payload.
type SuggestResponse struct {
	Suggestions []string `json:"suggestions"`
	Diversified []string `json:"diversified"`
	CompactSize int      `json:"compactSize"`
	ElapsedMS   float64  `json:"elapsedMs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, f := s.recorded.Len(), len(s.feedback)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "recordedEntries": n, "feedback": f,
		"swaps": s.stats.swaps.Load(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.snapshot())
}

func (s *Server) handleSuggestGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := 10
	if ks := q.Get("k"); ks != "" {
		// strconv.Atoi rejects trailing garbage ("5x") that Sscanf
		// silently accepted; non-positive k is an error, not a panic
		// source further down.
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = v
	}
	s.serveSuggestion(w, r, SuggestRequest{User: q.Get("user"), Query: q.Get("q"), K: k})
}

func (s *Server) handleSuggestPost(w http.ResponseWriter, r *http.Request) {
	var req SuggestRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.serveSuggestion(w, r, req)
}

func (s *Server) serveSuggestion(w http.ResponseWriter, r *http.Request, req SuggestRequest) {
	s.stats.suggestRequests.Add(1)
	if req.Query == "" {
		s.stats.suggestErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing query")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 100 {
		req.K = 100
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			s.stats.suggestErrors.Add(1)
			httpError(w, http.StatusBadRequest, "bad at timestamp")
			return
		}
		at = t
	}
	var sctx []querylog.Entry
	for _, c := range req.Context {
		t, err := time.Parse(time.RFC3339, c.At)
		if err != nil {
			s.stats.suggestErrors.Add(1)
			httpError(w, http.StatusBadRequest, "bad context timestamp")
			return
		}
		sctx = append(sctx, querylog.Entry{UserID: req.User, Query: c.Query, Time: t})
	}

	// Request-scoped deadline: client disconnects cancel via
	// r.Context(), and the configured timeout bounds the pipeline.
	ctx := r.Context()
	if d := s.RequestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	start := time.Now()
	// Lock-free engine access: a refresh swapping the pointer mid-call
	// does not affect this request, which finishes on its snapshot.
	res, err := s.engine.Load().SuggestContext(ctx, req.User, req.Query, sctx, at, req.K)
	elapsed := time.Since(start)
	s.observeStages(res, elapsed)
	if err != nil {
		if ctx.Err() != nil {
			// Deadline overrun (or client gone): report how far the
			// pipeline got instead of running the solver to completion.
			s.stats.suggestTimeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, map[string]any{
				"error":           "deadline exceeded",
				"compactSize":     res.CompactSize,
				"solveIterations": res.SolveIterations,
				"compactMs":       ms(res.CompactTime),
				"solveMs":         ms(res.SolveTime),
				"hittingMs":       ms(res.HittingTime),
				"elapsedMs":       ms(elapsed),
			})
			return
		}
		if errors.Is(err, core.ErrUnknownQuery) {
			s.stats.suggestUnknown.Add(1)
			writeJSON(w, http.StatusOK, SuggestResponse{Suggestions: []string{}, Diversified: []string{}})
			return
		}
		s.stats.suggestErrors.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The middleware records what the searcher asked — future profile
	// training data, as in the paper's four-month study.
	s.record(querylog.Entry{UserID: req.User, Query: req.Query, Time: at})

	writeJSON(w, http.StatusOK, SuggestResponse{
		Suggestions: res.Suggestions,
		Diversified: res.Diversified,
		CompactSize: res.CompactSize,
		ElapsedMS:   ms(elapsed),
	})
}

// observeStages feeds the core.Result timing breakdown into the latency
// aggregates (partial results from cancelled requests count too — their
// completed stages are real work).
func (s *Server) observeStages(res core.Result, total time.Duration) {
	s.stats.total.observe(total)
	if res.CompactTime > 0 {
		s.stats.compact.observe(res.CompactTime)
	}
	if res.SolveTime > 0 {
		s.stats.solve.observe(res.SolveTime)
	}
	if res.HittingTime > 0 {
		s.stats.hitting.observe(res.HittingTime)
	}
	if res.PersonalizeTime > 0 {
		s.stats.personalize.observe(res.PersonalizeTime)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var fb Feedback
	if err := decodeBody(r, &fb); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if fb.User == "" || fb.Suggestion == "" {
		httpError(w, http.StatusBadRequest, "missing user or suggestion")
		return
	}
	if !validRating(fb.Rating) {
		httpError(w, http.StatusBadRequest, "rating must be one of 0, 0.2, 0.4, 0.6, 0.8, 1")
		return
	}
	s.stats.feedbackRequests.Add(1)
	fb.At = time.Now()
	s.mu.Lock()
	s.feedback = append(s.feedback, fb)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "feedback\t%s\t%s\t%s\t%.1f\n",
			escapeTSV(fb.User), escapeTSV(fb.Query), escapeTSV(fb.Suggestion), fb.Rating)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

// LogRequest is the POST /api/log body: one raw search event.
type LogRequest struct {
	User       string `json:"user"`
	Query      string `json:"query"`
	ClickedURL string `json:"clickedUrl,omitempty"`
	At         string `json:"at,omitempty"`
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	var req LogRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User == "" || req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing user or query")
		return
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad at timestamp")
			return
		}
		at = t
	}
	s.stats.logRequests.Add(1)
	s.record(querylog.Entry{UserID: req.User, Query: req.Query, ClickedURL: req.ClickedURL, Time: at})
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) record(e querylog.Entry) {
	s.mu.Lock()
	s.recorded.Append(e)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "entry\t%s\t%s\t%s\t%s\n",
			escapeTSV(e.UserID), escapeTSV(e.Query), escapeTSV(e.ClickedURL),
			e.Time.UTC().Format(time.RFC3339))
	}
	s.mu.Unlock()
}

// escapeTSV backslash-escapes the characters that would corrupt the
// one-event-per-line TSV sink: user-controlled queries and suggestions
// may legally contain tabs and newlines.
func escapeTSV(s string) string {
	if !strings.ContainsAny(s, "\t\n\r\\") {
		return s
	}
	return tsvEscaper.Replace(s)
}

var tsvEscaper = strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`)

// Recorded returns a copy of the query log observed so far.
func (s *Server) Recorded() *querylog.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &querylog.Log{Entries: append([]querylog.Entry(nil), s.recorded.Entries...)}
	return out
}

// FeedbackLog returns a copy of the collected ratings.
func (s *Server) FeedbackLog() []Feedback {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Feedback(nil), s.feedback...)
}

// MeanHPR returns the average rating collected so far (NaN-free: 0
// when empty) — the number the paper's Fig. 6 averages over experts.
func (s *Server) MeanHPR() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.feedback) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range s.feedback {
		sum += f.Rating
	}
	return sum / float64(len(s.feedback))
}

func validRating(r float64) bool {
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		if r > v-1e-9 && r < v+1e-9 {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
