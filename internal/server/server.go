// Package server implements the web-search middleware of the paper's
// HPR study (Section VI-C): an HTTP service that serves PQS-DA
// suggestions, records the searchers' query log for future profile
// training, and collects explicit 6-point relevance ratings of the
// suggestions it served.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/querylog"
)

// Server is the suggestion middleware. Create with New and mount via
// Handler.
type Server struct {
	engine *core.Engine
	// engineMu serializes engine mutation (refresh/learn) against
	// concurrent suggestion serving.
	engineMu sync.RWMutex
	// lastIngested is how many recorded entries have been handed to the
	// engine already.
	lastIngested int

	mu sync.Mutex
	// recorded accumulates the query events observed through the
	// middleware (the experts' log in the paper's study).
	recorded querylog.Log
	// feedback accumulates explicit suggestion ratings.
	feedback []Feedback
	// sink, when set, receives every recorded entry and rating as TSV
	// lines for durable storage.
	sink io.Writer
}

// Feedback is one explicit rating of a served suggestion on the
// paper's 6-point scale {0, 0.2, 0.4, 0.6, 0.8, 1}.
type Feedback struct {
	User       string    `json:"user"`
	Query      string    `json:"query"`
	Suggestion string    `json:"suggestion"`
	Rating     float64   `json:"rating"`
	At         time.Time `json:"at"`
}

// New wraps an engine. sink may be nil; when set, recorded events and
// feedback are appended to it as TSV lines.
func New(engine *core.Engine, sink io.Writer) *Server {
	return &Server{engine: engine, sink: sink}
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /api/suggest", s.handleSuggestGet)
	mux.HandleFunc("POST /api/suggest", s.handleSuggestPost)
	mux.HandleFunc("POST /api/feedback", s.handleFeedback)
	mux.HandleFunc("POST /api/log", s.handleLog)
	mux.HandleFunc("POST /api/learn", s.handleLearn)
	mux.HandleFunc("POST /api/refresh", s.handleRefresh)
	return mux
}

// RefreshRequest is the POST /api/refresh body: ingest all recorded
// traffic into the engine and rebuild per mode ("graphs", "foldin" or
// "retrain").
type RefreshRequest struct {
	Mode string `json:"mode"`
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	var req RefreshRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var mode core.RefreshMode
	switch req.Mode {
	case "", "graphs":
		mode = core.RebuildGraphs
	case "foldin":
		mode = core.FoldInUsers
	case "retrain":
		mode = core.RetrainProfiles
	default:
		httpError(w, http.StatusBadRequest, "mode must be graphs, foldin or retrain")
		return
	}
	// Snapshot the fresh entries under the record lock.
	s.mu.Lock()
	fresh := append([]querylog.Entry(nil), s.recorded.Entries[s.lastIngested:]...)
	s.lastIngested = s.recorded.Len()
	s.mu.Unlock()

	s.engineMu.Lock()
	s.engine.Ingest(fresh)
	err := s.engine.Refresh(mode)
	s.engineMu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "refreshed", "ingested": len(fresh)})
}

// LearnRequest is the POST /api/learn body: fold the middleware's
// recorded history for the user into the engine's profiles (online
// profiling of new users without retraining).
type LearnRequest struct {
	User string `json:"user"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req LearnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User == "" {
		httpError(w, http.StatusBadRequest, "missing user")
		return
	}
	s.mu.Lock()
	entries := s.recorded.ByUser(req.User)
	s.mu.Unlock()
	if len(entries) == 0 {
		httpError(w, http.StatusNotFound, "no recorded history for user")
		return
	}
	s.engineMu.Lock()
	err := s.engine.LearnUser(req.User, entries)
	s.engineMu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "learned", "entries": len(entries)})
}

// SuggestRequest is the POST /api/suggest body.
type SuggestRequest struct {
	User  string `json:"user"`
	Query string `json:"query"`
	K     int    `json:"k"`
	// Context lists the current session's previous queries, most
	// recent last, with RFC3339 timestamps.
	Context []ContextItem `json:"context,omitempty"`
	// At is the submission time (RFC3339; empty means now).
	At string `json:"at,omitempty"`
}

// ContextItem is one search-context query.
type ContextItem struct {
	Query string `json:"query"`
	At    string `json:"at"`
}

// SuggestResponse is the suggestion payload.
type SuggestResponse struct {
	Suggestions []string `json:"suggestions"`
	Diversified []string `json:"diversified"`
	CompactSize int      `json:"compactSize"`
	ElapsedMS   float64  `json:"elapsedMs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, f := s.recorded.Len(), len(s.feedback)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "recordedEntries": n, "feedback": f,
	})
}

func (s *Server) handleSuggestGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := 10
	if ks := q.Get("k"); ks != "" {
		if _, err := fmt.Sscanf(ks, "%d", &k); err != nil {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
	}
	s.serveSuggestion(w, SuggestRequest{User: q.Get("user"), Query: q.Get("q"), K: k})
}

func (s *Server) handleSuggestPost(w http.ResponseWriter, r *http.Request) {
	var req SuggestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.serveSuggestion(w, req)
}

func (s *Server) serveSuggestion(w http.ResponseWriter, req SuggestRequest) {
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing query")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 100 {
		req.K = 100
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad at timestamp")
			return
		}
		at = t
	}
	var ctx []querylog.Entry
	for _, c := range req.Context {
		t, err := time.Parse(time.RFC3339, c.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad context timestamp")
			return
		}
		ctx = append(ctx, querylog.Entry{UserID: req.User, Query: c.Query, Time: t})
	}

	start := time.Now()
	s.engineMu.RLock()
	res, err := s.engine.Suggest(req.User, req.Query, ctx, at, req.K)
	s.engineMu.RUnlock()
	if err != nil {
		if errors.Is(err, core.ErrUnknownQuery) {
			writeJSON(w, http.StatusOK, SuggestResponse{Suggestions: []string{}, Diversified: []string{}})
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The middleware records what the searcher asked — future profile
	// training data, as in the paper's four-month study.
	s.record(querylog.Entry{UserID: req.User, Query: req.Query, Time: at})

	writeJSON(w, http.StatusOK, SuggestResponse{
		Suggestions: res.Suggestions,
		Diversified: res.Diversified,
		CompactSize: res.CompactSize,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var fb Feedback
	if err := json.NewDecoder(r.Body).Decode(&fb); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if fb.User == "" || fb.Suggestion == "" {
		httpError(w, http.StatusBadRequest, "missing user or suggestion")
		return
	}
	if !validRating(fb.Rating) {
		httpError(w, http.StatusBadRequest, "rating must be one of 0, 0.2, 0.4, 0.6, 0.8, 1")
		return
	}
	fb.At = time.Now()
	s.mu.Lock()
	s.feedback = append(s.feedback, fb)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "feedback\t%s\t%s\t%s\t%.1f\n", fb.User, fb.Query, fb.Suggestion, fb.Rating)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

// LogRequest is the POST /api/log body: one raw search event.
type LogRequest struct {
	User       string `json:"user"`
	Query      string `json:"query"`
	ClickedURL string `json:"clickedUrl,omitempty"`
	At         string `json:"at,omitempty"`
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	var req LogRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User == "" || req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing user or query")
		return
	}
	at := time.Now()
	if req.At != "" {
		t, err := time.Parse(time.RFC3339, req.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad at timestamp")
			return
		}
		at = t
	}
	s.record(querylog.Entry{UserID: req.User, Query: req.Query, ClickedURL: req.ClickedURL, Time: at})
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) record(e querylog.Entry) {
	s.mu.Lock()
	s.recorded.Append(e)
	if s.sink != nil {
		fmt.Fprintf(s.sink, "entry\t%s\t%s\t%s\t%s\n",
			e.UserID, e.Query, e.ClickedURL, e.Time.UTC().Format(time.RFC3339))
	}
	s.mu.Unlock()
}

// Recorded returns a copy of the query log observed so far.
func (s *Server) Recorded() *querylog.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &querylog.Log{Entries: append([]querylog.Entry(nil), s.recorded.Entries...)}
	return out
}

// FeedbackLog returns a copy of the collected ratings.
func (s *Server) FeedbackLog() []Feedback {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Feedback(nil), s.feedback...)
}

// MeanHPR returns the average rating collected so far (NaN-free: 0
// when empty) — the number the paper's Fig. 6 averages over experts.
func (s *Server) MeanHPR() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.feedback) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range s.feedback {
		sum += f.Rating
	}
	return sum / float64(len(s.feedback))
}

func validRating(r float64) bool {
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		if r > v-1e-9 && r < v+1e-9 {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
